"""Ablation — MANT code width 2/3/4 bits (the PE's mixed-precision modes).

The accelerator's PEG composes INT8xINT2 units (Sec. VI-B), so 2- and
3-bit MANT are free to run at 2x/4x the 4-bit throughput.  This
ablation reports the quantization-error side of that trade on trained
weights, plus the matching simulator throughput, connecting the
accuracy and hardware halves of the mixed-precision story.
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.codec import MantCodec
from repro.core.selection import MseSearchSelector
from repro.hardware.pe import PEArray

from common import run_once, save_result


def experiment():
    rng = np.random.default_rng(3)
    # Heavy-tailed weight stand-in: Gaussian bulk + scaled groups.
    w = rng.normal(size=(64, 512)) * np.exp(rng.normal(0, 0.6, size=(1, 512)))
    arr = PEArray("mant")
    out = {}
    for bits in (2, 3, 4):
        sel = MseSearchSelector(bits=bits, group_size=64)
        codec = MantCodec(bits=bits, group_size=64)
        w_hat = codec.qdq(w, sel.select(w))
        rel = float(np.mean((w_hat - w) ** 2) / np.mean(w * w))
        out[bits] = {
            "rel_mse": rel,
            "macs_per_cycle": arr.macs_per_cycle(8, bits),
            "bits_per_element": bits + 24 / 64,
        }
    return out


def test_bench_ablation_bitwidth(benchmark):
    out = run_once(benchmark, experiment)
    rows = [
        [f"MANT-{b}", v["rel_mse"], v["macs_per_cycle"], v["bits_per_element"]]
        for b, v in out.items()
    ]
    print()
    print(render_table(
        ["code", "relative MSE", "MACs/cycle (a8)", "bits/elem"],
        rows, title="Ablation: MANT code width", ndigits=5,
    ))
    save_result("ablation_bitwidth", {str(k): v for k, v in out.items()})

    # Monotone trade-off: each extra bit cuts error, halves throughput.
    assert out[2]["rel_mse"] > out[3]["rel_mse"] > out[4]["rel_mse"]
    assert out[2]["macs_per_cycle"] == 2 * out[4]["macs_per_cycle"]
    # 4-bit is the paper's sweet spot: ~1% relative MSE.
    assert out[4]["rel_mse"] < 0.02