"""Ablation — variance-based vs full-MSE coefficient selection for KV.

The paper chooses variance mapping for the KV cache because full MSE
search "requires performing quantization to each data type", which is
intolerable in real time (Sec. V-C).  This ablation quantifies both
sides of the trade: accuracy gap (small) and encode cost (large).
"""

import time

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.codec import MantCodec
from repro.core.selection import MseSearchSelector, VarianceSelector

from common import run_once, save_result


def experiment():
    rng = np.random.default_rng(0)
    # A mixture of group shapes, like real KV data.
    groups = np.concatenate([
        rng.normal(size=(1500, 64)),
        rng.laplace(scale=0.3, size=(1500, 64)),
        rng.uniform(-1, 1, size=(1500, 64)),
    ])
    codec = MantCodec(group_size=64, fp16_scales=False)

    mse_sel = MseSearchSelector(group_size=64)
    t0 = time.perf_counter()
    a_mse = mse_sel.select(groups)
    t_mse = time.perf_counter() - t0

    var_sel = VarianceSelector(group_size=64).fit(groups[::8])
    t0 = time.perf_counter()
    a_var = var_sel.select_batch(groups)
    t_var = time.perf_counter() - t0

    err_mse = float(np.mean((codec.qdq(groups, a_mse.reshape(-1, 1)) - groups) ** 2))
    err_var = float(np.mean((codec.qdq(groups, a_var.reshape(-1, 1)) - groups) ** 2))
    return {
        "mse_search": {"err": err_mse, "seconds": t_mse},
        "variance_map": {"err": err_var, "seconds": t_var},
        "accuracy_gap_pct": 100 * (err_var - err_mse) / err_mse,
        "speedup": t_mse / t_var,
    }


def test_bench_ablation_selection(benchmark):
    out = run_once(benchmark, experiment)
    rows = [
        ["MSE search (Eq. 6)", out["mse_search"]["err"], out["mse_search"]["seconds"]],
        ["variance map (Eq. 7)", out["variance_map"]["err"], out["variance_map"]["seconds"]],
    ]
    print()
    print(render_table(["selector", "quant MSE", "encode time (s)"], rows,
                       title="Ablation: KV coefficient selection", ndigits=5))
    print(f"  accuracy gap {out['accuracy_gap_pct']:.1f}%, "
          f"selection speedup {out['speedup']:.0f}x")
    save_result("ablation_selection", out)

    # The paper's premise: variance selection is far cheaper and nearly
    # as accurate.
    assert out["speedup"] > 5
    assert out["accuracy_gap_pct"] < 40
