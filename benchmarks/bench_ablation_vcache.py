"""Ablation — the two-phase V-cache window vs naive alternatives.

Compares three real-time V-cache schemes over a decode stream:

* two-phase (paper Fig. 8): INT8 staging + windowed MANT4 along the
  sequence (the V inner dimension);
* direct per-token INT4 along d_head (what an INT accelerator without
  temporal windows must do);
* per-token MANT4 along d_head (adaptive type, wrong dimension —
  cannot feed low-bit accumulation over the sequence).

The two-phase scheme quantizes along the *accumulation* dimension (so
low-bit compute works) while matching the accuracy of per-token
schemes; the latest tokens additionally retain INT8 quality.
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.selection import VarianceSelector
from repro.quant.kvcache import IntKVCache, MantKVCache

from common import run_once, save_result


def experiment():
    rng = np.random.default_rng(7)
    heads, dh = 4, 64
    prefill, decode = 64, 192
    k0 = rng.normal(size=(heads, prefill, dh))
    v0 = rng.normal(size=(heads, prefill, dh))
    stream = [
        (rng.normal(size=(heads, dh)), rng.normal(size=(heads, dh)))
        for _ in range(decode)
    ]
    v_true = np.concatenate([v0] + [v[:, None, :] for _, v in stream], axis=1)

    selector = VarianceSelector(group_size=64).fit(rng.normal(size=(512, 64)))

    caches = {
        "two-phase MANT4 (paper)": MantKVCache(selector=selector, group_size=64, window=64),
        "per-token INT4": IntKVCache(bits=4, group_size=64),
        "per-token INT8": IntKVCache(bits=8, group_size=64),
    }
    out = {}
    for name, cache in caches.items():
        cache.prefill(k0, v0)
        for k_t, v_t in stream:
            cache.append(k_t, v_t)
        err = float(np.mean((cache.values() - v_true) ** 2) / np.mean(v_true**2))
        out[name] = err
    return out


def test_bench_ablation_vcache(benchmark):
    out = run_once(benchmark, experiment)
    rows = [[k, v] for k, v in out.items()]
    print()
    print(render_table(["V-cache scheme", "relative MSE"], rows,
                       title="Ablation: V-cache real-time quantization", ndigits=5))
    save_result("ablation_vcache", out)

    # Two-phase 4-bit stays in the same accuracy class as per-token
    # INT4 while quantizing along the accumulation dimension (which
    # per-token schemes cannot), and INT8 staging bounds it below 8x
    # of the INT8 reference error.
    assert out["two-phase MANT4 (paper)"] < 2.5 * out["per-token INT4"]
    assert out["per-token INT8"] < out["two-phase MANT4 (paper)"]
