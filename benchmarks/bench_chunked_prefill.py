"""Chunked prefill: decode-latency p95 under long-prompt interleave.

The mixed prefill+decode tick exists to keep decode inter-token latency
flat while long prompts stream in.  Two questions, answered on the
unit-test model over the paged engine:

1. **Decode p95 under interleave.**  A batch of short-prompt decode
   requests runs continuously while long prompts (``LONG_PROMPT``
   tokens each) arrive mid-stream.  Whole-prompt prefill stalls every
   decoder for one giant tick per arrival; chunked prefill
   (``prefill_chunk_tokens`` + Sarathi-style ``max_tokens_per_tick``)
   spreads the same FLOPs across bounded ticks.  The benchmark reports
   the p95 inter-token latency of the *short* requests for both
   engines; ``check_perf.py --check-speedups`` enforces the >= 1.5x
   improvement floor.

2. **Throughput parity.**  Bounding ticks must not cost aggregate
   throughput: the standard batch-8 serving workload runs with chunking
   enabled and must stay >= 0.95x the whole-prefill paged engine.

Run:  PYTHONPATH=src python benchmarks/bench_chunked_prefill.py
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import GenerationEngine, GenerationRequest, ServeConfig

from bench_paged_kv import BLOCK_TOKENS, paged_config
from bench_serve_throughput import CACHE_FACTORIES, make_requests, run_workload

BATCH = 8
CHUNK_TOKENS = 32          # = BLOCK_TOKENS = the mant4 window in CACHE_FACTORIES
TICK_BUDGET = 64           # decode rows charged first, remainder feeds chunks
N_SHORT = 6
SHORT_PROMPT = 16
SHORT_TOKENS = 64
N_LONG = 6
LONG_PROMPT = 256
LONG_TOKENS = 2
LONG_EVERY = 8             # ticks between long-prompt arrivals: frequent
                           # enough that >5% of decode gaps ride a prefill


def chunked_config(max_batch: int = BATCH) -> ServeConfig:
    return ServeConfig(
        max_batch_size=max_batch,
        paged=True,
        block_tokens=BLOCK_TOKENS,
        prefill_chunk_tokens=CHUNK_TOKENS,
        max_tokens_per_tick=TICK_BUDGET,
    )


def interleave_workload(model, cache_factory, config: ServeConfig):
    """Short decoders + mid-stream long prompts; returns latency detail.

    The short requests' inter-token gaps are timestamped via their
    ``on_token`` callbacks (wall clock, not engine stats, so the two
    engines are measured identically); long-prompt requests ride along
    only to inject prefill pressure.
    """
    rng = np.random.default_rng(0)
    vocab = model.config.vocab_size
    engine = GenerationEngine(model, cache_factory, config)
    gaps: list[float] = []
    last_emit: dict[str, float] = {}

    def on_token(event):
        now = time.perf_counter()
        if event.token is not None:
            if event.request_id in last_emit:
                gaps.append(now - last_emit[event.request_id])
            last_emit[event.request_id] = now

    for i in range(N_SHORT):
        engine.submit(
            GenerationRequest(f"short-{i}", rng.integers(0, vocab, size=SHORT_PROMPT),
                              max_tokens=SHORT_TOKENS),
            on_token=on_token,
        )
    longs = iter(range(N_LONG))
    next_long = next(longs, None)
    tick = 0
    t0 = time.perf_counter()
    while engine.has_work():
        if next_long is not None and tick == (next_long + 1) * LONG_EVERY:
            engine.submit(GenerationRequest(
                f"long-{next_long}", rng.integers(0, vocab, size=LONG_PROMPT),
                max_tokens=LONG_TOKENS))
            next_long = next(longs, None)
        engine.step()
        tick += 1
    elapsed = time.perf_counter() - t0
    stats = engine.stats()
    return {
        "decode_p95_ms": float(np.percentile(gaps, 95) * 1e3),
        "decode_p50_ms": float(np.percentile(gaps, 50) * 1e3),
        "decode_max_ms": float(np.max(gaps) * 1e3),
        "ticks": tick,
        "elapsed_ms": elapsed * 1e3,
        "tokens_generated": stats.tokens_generated,
        "prefill_chunks": stats.prefill_chunks,
        "engine_itl_p95_ms": stats.inter_token_p95_s * 1e3,
        "engine_ttft_p95_ms": stats.ttft_p95_s * 1e3,
    }


def decode_p95_improvement(model, cache_name: str = "fp16"):
    """(whole_detail, chunked_detail, p95 improvement) on the interleave."""
    factory = CACHE_FACTORIES[cache_name]
    whole = interleave_workload(model, factory, paged_config())
    chunked = interleave_workload(model, factory, chunked_config())
    return whole, chunked, whole["decode_p95_ms"] / chunked["decode_p95_ms"]


def throughput_ratio(model, cache_name: str = "fp16"):
    """(paged_tps, chunked_tps, ratio) on the standard batch-8 workload."""
    factory = CACHE_FACTORIES[cache_name]
    p_elapsed, p_stats = run_workload(
        model, factory, make_requests(model.config.vocab_size), max_batch=BATCH,
        config=paged_config(),
    )
    c_elapsed, c_stats = run_workload(
        model, factory, make_requests(model.config.vocab_size), max_batch=BATCH,
        config=chunked_config(),
    )
    paged_tps = p_stats.tokens_generated / p_elapsed
    chunked_tps = c_stats.tokens_generated / c_elapsed
    return paged_tps, chunked_tps, chunked_tps / paged_tps


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")

    print(f"\ndecode inter-token p95 under long-prompt interleave "
          f"({N_SHORT} decoders x {SHORT_TOKENS} tokens, {N_LONG} x "
          f"{LONG_PROMPT}-token prompts arriving mid-stream; "
          f"chunk={CHUNK_TOKENS}, tick budget={TICK_BUDGET})")
    report: dict[str, dict] = {"interleave": {}, "throughput": {}}
    for name in CACHE_FACTORIES:
        whole, chunked, imp = decode_p95_improvement(model, name)
        report["interleave"][name] = {
            "whole_prefill": whole, "chunked": chunked,
            "p95_improvement": round(imp, 2),
        }
        print(f"  {name:>6} | whole p95 {whole['decode_p95_ms']:7.2f} ms "
              f"(max {whole['decode_max_ms']:7.2f}) | "
              f"chunked p95 {chunked['decode_p95_ms']:7.2f} ms "
              f"(max {chunked['decode_max_ms']:7.2f}) | {imp:5.2f}x better")

    print(f"\naggregate throughput, standard batch-{BATCH} workload "
          f"(chunked vs whole-prefill paged)")
    for name in CACHE_FACTORIES:
        paged_tps, chunked_tps, ratio = throughput_ratio(model, name)
        report["throughput"][name] = {
            "paged_tokens_per_s": round(paged_tps, 1),
            "chunked_tokens_per_s": round(chunked_tps, 1),
            "chunked_vs_paged": round(ratio, 3),
        }
        print(f"  {name:>6} | paged {paged_tps:8.1f} tok/s | "
              f"chunked {chunked_tps:8.1f} tok/s | ratio {ratio:5.2f}x")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "chunked_prefill.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
