"""Decode-step scaling of the KV caches: per-token cost vs sequence length.

Not a paper table — this certifies the O(T) property of the buffered
KV caches.  Each decode step appends one token and reads the full cache
(exactly what the attention loop does); with the preallocated
zero-copy buffers the append+read cost must stay *flat* as the
sequence grows, whereas the seed's list+concatenate layout
(:class:`legacy_impl.LegacyListKVCache`) grows linearly per step,
i.e. O(T²) for the whole generation.

Run directly (``PYTHONPATH=src python benchmarks/bench_decode_scaling.py``)
for the scaling table, or through pytest-benchmark for timings.
"""

import json
import os
import time

import numpy as np

from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache

from legacy_impl import LegacyListKVCache

HEADS = 8
D_HEAD = 64
PREFILL = 64
TOKENS = 768
CHUNK = 128


def decode_chunk_times(cache, tokens=TOKENS, chunk=CHUNK, seed=0):
    """Wall time of each ``chunk``-token slice of a decode run.

    Every step performs the attention loop's cache traffic: one append
    plus a full keys()/values() read.
    """
    rng = np.random.default_rng(seed)
    cache.prefill(
        rng.normal(size=(HEADS, PREFILL, D_HEAD)),
        rng.normal(size=(HEADS, PREFILL, D_HEAD)),
    )
    times = []
    t0 = time.perf_counter()
    for t in range(tokens):
        cache.append(rng.normal(size=(HEADS, D_HEAD)), rng.normal(size=(HEADS, D_HEAD)))
        k = cache.keys()
        v = cache.values()
        assert k.shape[1] == v.shape[1] == PREFILL + t + 1
        if (t + 1) % chunk == 0:
            t1 = time.perf_counter()
            times.append(t1 - t0)
            t0 = t1
    return times


def scaling_report():
    caches = {
        "fp16": FP16KVCache(),
        "int4": IntKVCache(bits=4, group_size=64),
        "mant4": MantKVCache(group_size=64),
        "mant4-legacy-list": LegacyListKVCache(MantKVCache(group_size=64)),
    }
    report = {}
    for name, cache in caches.items():
        times = decode_chunk_times(cache)
        report[name] = {
            "chunk_ms": [round(t * 1e3, 3) for t in times],
            "last_over_first": round(times[-1] / times[0], 3),
            "total_ms": round(sum(times) * 1e3, 2),
        }
    return report


def test_bench_decode_scaling(benchmark):
    report = benchmark.pedantic(scaling_report, rounds=1, iterations=1)
    print()
    for name, row in report.items():
        print(
            f"  {name:>18}: total {row['total_ms']:8.1f} ms, "
            f"last/first chunk ratio {row['last_over_first']:5.2f}"
        )
    # The buffered caches must be flat in sequence length (ratio ~1; 2.0
    # leaves headroom for timer noise), while the legacy list layout
    # demonstrably grows with T.
    for name in ("fp16", "int4", "mant4"):
        assert report[name]["last_over_first"] < 2.0, (name, report[name])
    assert (
        report["mant4-legacy-list"]["last_over_first"]
        > report["mant4"]["last_over_first"]
    )


def main():
    report = scaling_report()
    print(f"decode scaling: {TOKENS} tokens after a {PREFILL}-token prefill; "
          f"per-{CHUNK}-token chunk wall times (ms)")
    for name, row in report.items():
        chunks = " ".join(f"{c:7.1f}" for c in row["chunk_ms"])
        print(f"  {name:>18}: {chunks}   (last/first {row['last_over_first']:.2f})")
    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "decode_scaling.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
