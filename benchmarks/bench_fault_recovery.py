"""Fault-tolerance costs: steady-state hook overhead, recovery latency.

Two questions about the fault-tolerant serving engine, answered on the
unit-test model:

1. **Steady-state overhead.**  The fault machinery — an attached
   :class:`~repro.serve.faults.FaultInjector` consulted at every
   forward/alloc/callback occasion, plus an armed per-request timeout
   swept at every tick boundary — must be ~free when nothing ever
   fires.  The benchmark serves the standard batch-8 workload on a
   plain engine and on a hooked engine (injector attached with *no*
   rules armed, ``request_timeout_s`` set far above the run time) and
   reports the elapsed-time ratio; ``check_perf.py --check-speedups``
   enforces the <= 1.05x ceiling (best of 3, damping scheduler
   jitter).

2. **Recovery latency.**  A transient forward fault injected into one
   mid-decode request of a full batch: how many ticks (and how much
   wall clock) until the victim streams tokens again?  Recovery rides
   the preemption recompute path — the victim replays prompt + emitted
   tokens through one prefill — so the expected shape is ~2 ticks (the
   faulted tick's retry admission, then the resumed decode).
   Informational: latency depends on the victim's replay length.

Run:  PYTHONPATH=src python benchmarks/bench_fault_recovery.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import (
    FORWARD,
    FaultInjector,
    GenerationEngine,
    GenerationRequest,
    ServeConfig,
)

from bench_serve_throughput import CACHE_FACTORIES, make_requests

BATCH = 8
FAULT_AFTER = 8            # decode forwards the victim survives first
RECOVERY_RETRIES = 1


def fault_config(max_batch: int = BATCH, **overrides) -> ServeConfig:
    """The timed ``serve_fault_batch8`` shape for check_perf.py:
    timeout armed (but far beyond the run), fault sites consulted."""
    overrides.setdefault("max_batch_size", max_batch)
    overrides.setdefault("request_timeout_s", 3600.0)
    return ServeConfig(**overrides)


def hooked_workload(model, cache_factory, requests,
                    config: ServeConfig | None = None):
    """Serve ``requests`` on an engine with the fault machinery engaged
    but never firing; returns ``(elapsed_s, stats)``."""
    engine = GenerationEngine(
        model, cache_factory, config or fault_config(),
        faults=FaultInjector(),        # attached, nothing armed
    )
    t0 = time.perf_counter()
    engine.generate(requests)
    elapsed = time.perf_counter() - t0
    return elapsed, engine.stats()


def plain_workload(model, cache_factory, requests):
    engine = GenerationEngine(
        model, cache_factory, ServeConfig(max_batch_size=BATCH))
    t0 = time.perf_counter()
    engine.generate(requests)
    elapsed = time.perf_counter() - t0
    return elapsed, engine.stats()


def fault_overhead(model, cache_name: str = "fp16"):
    """(plain_detail, hooked_detail, hooked/plain elapsed ratio)."""
    factory = CACHE_FACTORIES[cache_name]
    vocab = model.config.vocab_size
    plain_s, plain_stats = plain_workload(
        model, factory, make_requests(vocab, n_requests=BATCH))
    hooked_s, hooked_stats = hooked_workload(
        model, factory, make_requests(vocab, n_requests=BATCH))
    plain = {"elapsed_ms": plain_s * 1e3,
             "tokens_per_s": plain_stats.tokens_generated / plain_s}
    hooked = {"elapsed_ms": hooked_s * 1e3,
              "tokens_per_s": hooked_stats.tokens_generated / hooked_s,
              "timed_out": hooked_stats.requests_timed_out,
              "failed": hooked_stats.requests_failed}
    return plain, hooked, hooked_s / plain_s


def recovery_latency(model, cache_name: str = "fp16"):
    """Inject one mid-decode transient fault into a full batch; report
    the ticks and wall clock from the fault to the victim's next token."""
    factory = CACHE_FACTORIES[cache_name]
    victim = "req-0"
    injector = FaultInjector().arm(
        FORWARD, victim, after=FAULT_AFTER, transient=True)
    engine = GenerationEngine(
        model, factory,
        ServeConfig(max_batch_size=BATCH, paged=True, block_tokens=32,
                    max_retries=RECOVERY_RETRIES),
        faults=injector,
    )
    for request in make_requests(model.config.vocab_size, n_requests=BATCH):
        engine.submit(request)
    while engine.has_work() and not injector.fired:
        engine.step()
    t0 = time.perf_counter()
    ticks = 0
    recovered = False
    while engine.has_work() and not recovered:
        events = engine.step()
        ticks += 1
        recovered = any(e.request_id == victim and e.token is not None
                        for e in events)
    latency_s = time.perf_counter() - t0
    engine.generate()                  # drain the rest
    stats = engine.stats()
    return {
        "fault_fired": injector.fired_at(FORWARD),
        "recovery_ticks": ticks,
        "recovery_latency_ms": latency_s * 1e3,
        "retries": stats.retries,
        "requests_failed": stats.requests_failed,
        "victim_finish": engine.result(victim).finish_reason,
    }


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")
    report: dict[str, dict] = {"overhead": {}, "recovery": {}}

    print(f"\nsteady-state fault-hook overhead (batch {BATCH}, injector "
          "attached + timeout armed, nothing fires)")
    for name in CACHE_FACTORIES:
        plain, hooked, ratio = fault_overhead(model, name)
        report["overhead"][name] = {
            "plain": plain, "hooked": hooked, "ratio": round(ratio, 3),
        }
        print(f"  {name:>6} | plain {plain['elapsed_ms']:7.1f} ms | hooked "
              f"{hooked['elapsed_ms']:7.1f} ms | {ratio:5.3f}x")

    print(f"\nrecovery latency: transient forward fault on one request "
          f"after {FAULT_AFTER} decode steps (batch {BATCH}, paged)")
    for name in CACHE_FACTORIES:
        detail = recovery_latency(model, name)
        report["recovery"][name] = detail
        print(f"  {name:>6} | {detail['recovery_ticks']} ticks | "
              f"{detail['recovery_latency_ms']:6.1f} ms | "
              f"{detail['retries']} retry | "
              f"victim finished '{detail['victim_finish']}'")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "fault_recovery.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
