"""Fig. 1 — LLM accuracy vs quantization granularity (W4A16 INT).

Paper series (LLaMA-7B): FP16 5.68; channel-wise 6.85; group-wise
G-128/G-64/G-32 close the gap with diminishing returns below G-64.
Reproduced shape: channel ≫ group PPL loss; G-32 ≈ G-64 ≲ G-128.
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.model.perplexity import perplexity_from_rows
from repro.model.quantized import PTQConfig, build_ptq
from repro.quant.config import Granularity

from common import load, run_once, save_result

MODEL = "tinyllama-s"


def experiment():
    # Group sizes are width-scaled: the paper's G-128/64/32 on 4096-wide
    # models map to G-64/32/16 on our 128-wide stand-in (same fraction
    # of a row per group).
    model, _corpus, calib, rows = load(MODEL)
    fp16 = perplexity_from_rows(model, rows)
    results = [("fp16", fp16)]
    settings = [
        ("channel", dict(w_granularity=Granularity.CHANNEL)),
        ("group-64", dict(w_granularity=Granularity.GROUP, group_size=64)),
        ("group-32", dict(w_granularity=Granularity.GROUP, group_size=32)),
        ("group-16", dict(w_granularity=Granularity.GROUP, group_size=16)),
    ]
    for name, kw in settings:
        cfg = PTQConfig(method="int", w_bits=4, a_bits=16, label=f"int4-{name}", **kw)
        setup = build_ptq(model, cfg, calib)
        results.append((name, setup.ppl(model, rows)))
    return results


def test_bench_fig01_granularity(benchmark):
    results = run_once(benchmark, experiment)
    rows = [[name, ppl, ppl - results[0][1]] for name, ppl in results]
    print()
    print(render_table(["granularity", "ppl", "ppl loss"], rows,
                       title=f"Fig. 1 (W4A16 INT, {MODEL}; groups width-scaled)",
                       ndigits=3))
    save_result("fig01_granularity", {n: p for n, p in results})

    ppl = dict(results)
    # Shape: channel-wise loses the most; every group size beats it.
    # (Orderings *between* group sizes sit inside eval noise on the
    # tiny stand-in and are reported, not asserted — EXPERIMENTS.md.)
    assert ppl["channel"] > ppl["fp16"]
    for g in ("group-64", "group-32", "group-16"):
        assert ppl["channel"] >= ppl[g] - 1e-9, g
