"""Fig. 2 — PPL loss of INT vs ANT vs Ideal (k-means) in group quant.

Paper (LLaMA-7B, G-128, 4-bit): INT 0.404, ANT 0.218, Ideal 0.074.
Reproduced shape: loss(INT) > loss(ANT) > loss(Ideal).
"""

from repro.analysis.reporting import render_table
from repro.model.perplexity import perplexity_from_rows
from repro.model.quantized import PTQConfig, build_ptq
from repro.quant.config import Granularity

from common import load, run_once, save_result

MODEL = "tinyllama-s"
# Width-scaled analogue of the paper's G-128 on 4096-wide models.
GROUP = 64


import numpy as np


def experiment():
    model, _corpus, calib, rows = load(MODEL)
    fp16 = perplexity_from_rows(model, rows)
    out = {"fp16": {"ppl": fp16, "weight_mse": 0.0}}
    names = model.config.linear_names()
    for method in ("int", "ant", "mant", "cluster"):
        cfg = PTQConfig(
            method=method, w_bits=4, a_bits=16, group_size=GROUP,
            w_granularity=Granularity.GROUP, label=f"{method}-g{GROUP}",
        )
        # calibration=None: every method minimises the same raw
        # weight-MSE objective, making the adaptivity comparison exact.
        setup = build_ptq(model, cfg, None)
        mse = float(np.mean([
            np.mean((setup.weights[n] - model.params[n]) ** 2) for n in names
        ]))
        out[method] = {"ppl": setup.ppl(model, rows), "weight_mse": mse}
    return out


def test_bench_fig02_adaptivity_gap(benchmark):
    out = run_once(benchmark, experiment)
    rows = [
        [m, out[m]["ppl"], out[m]["ppl"] - out["fp16"]["ppl"], out[m]["weight_mse"]]
        for m in ("int", "ant", "mant", "cluster")
    ]
    print()
    print(render_table(
        ["method", "ppl", "ppl loss", "weight MSE"], rows,
        title=f"Fig. 2 (W4A16, G-{GROUP}, {MODEL}; cluster = Ideal)", ndigits=4,
    ))
    save_result("fig02_adaptivity_gap", out)

    # Adaptivity ordering on the shared objective (guaranteed by
    # construction: ANT's and MANT's candidate sets contain INT; the
    # per-group k-means "Ideal" is the unconstrained optimum).  The PPL
    # deltas carry the same sign but sit near eval noise on the tiny
    # stand-in and are reported (EXPERIMENTS.md).
    assert out["cluster"]["weight_mse"] <= out["mant"]["weight_mse"]
    assert out["cluster"]["weight_mse"] <= out["ant"]["weight_mse"]
    assert out["ant"]["weight_mse"] <= out["int"]["weight_mse"] + 1e-12
    assert out["mant"]["weight_mse"] <= out["int"]["weight_mse"] + 1e-12
    assert out["cluster"]["ppl"] <= out["int"]["ppl"] + 0.2
