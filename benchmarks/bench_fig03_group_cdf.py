"""Fig. 3 — distribution diversity at tensor / channel / group level.

Paper: CDFs of 16 tensors nearly coincide while 16 groups differ
sharply ("while different tensors exhibit similar distributions, small
groups can have markedly different distributions").  Reproduced as the
mean pairwise KS distance at each granularity, on trained Q-projection
weights and on V-cache activations.
"""

import numpy as np

from repro.analysis.distributions import granularity_report
from repro.analysis.reporting import render_table

from common import load, run_once, save_result

MODEL = "tinyllama-s"


def experiment():
    model, corpus, _calib, rows = load(MODEL)

    weights = {
        name: model.params[name]
        for name in model.config.linear_names()
        if "attn.wq" in name or "attn.wv" in name or "ffn" in name
    }
    weight_rep = granularity_report(weights, group_size=64, n_units=12)

    # V-cache values: capture via the kv hook on a forward pass.
    captured = []

    def kv_hook(layer, q, k, v):
        captured.append(v)
        return q, k, v

    model.forward_logits(rows[:4, :-1], kv_quant=kv_hook)
    v = np.concatenate([c.reshape(-1, c.shape[-1]) for c in captured])
    v_tensors = {f"v{i}": v[i * 32 : (i + 1) * 32] for i in range(8)}
    v_rep = granularity_report(v_tensors, group_size=32, n_units=12)

    return {"weights": weight_rep, "v_cache": v_rep}


def test_bench_fig03_group_cdf(benchmark):
    rep = run_once(benchmark, experiment)
    rows = [
        ["weight (Q/V/FFN)", rep["weights"]["tensor"], rep["weights"]["channel"], rep["weights"]["group"]],
        ["V cache", rep["v_cache"]["tensor"], rep["v_cache"]["channel"], rep["v_cache"]["group"]],
    ]
    print()
    print(render_table(
        ["source", "tensor KS", "channel KS", "group KS"], rows,
        title=f"Fig. 3 (mean pairwise KS distance, {MODEL})", ndigits=3,
    ))
    save_result("fig03_group_cdf", rep)

    # Takeaway 1: group-level diversity is of the same order as (or
    # exceeds) tensor-level diversity, despite groups being 64 values
    # against whole matrices.  On the paper's 4096-wide LLMs the group
    # signal strictly dominates; on 128-wide stand-ins our "tensors"
    # mix roles across only 2-3 layers, which inflates the tensor-level
    # number, so the assertion uses a 0.75 factor and the raw values
    # are recorded (EXPERIMENTS.md).
    assert rep["v_cache"]["group"] > 0.75 * rep["v_cache"]["tensor"]
    assert rep["weights"]["group"] > 0.75 * rep["weights"]["tensor"]
    # Groups must show *substantial* absolute diversity.
    assert rep["v_cache"]["group"] > 0.1
