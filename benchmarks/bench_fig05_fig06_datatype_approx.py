"""Fig. 5 & 6 — MANT approximating other data types by sweeping ``a``.

Fig. 5: a ≈ 17 matches FP4, a ≈ 25 matches NF4.  Fig. 6: the
normalised grid morphs smoothly from PoT (a = 0) toward INT (a → 128),
with the grid variance increasing monotonically.
"""

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.core.mant import MantGrid, approximate_datatype
from repro.datatypes import fp4_e2m1, nf4, pot4
from repro.datatypes.int_type import int4

from common import run_once, save_result


def experiment():
    targets = {"float (fp4_e2m1)": fp4_e2m1, "NF4": nf4, "PoT": pot4, "INT4": int4}
    fits = {name: approximate_datatype(dt) for name, dt in targets.items()}
    sweep = {
        a: {
            "variance": MantGrid(a).normalized_variance(),
            "grid": MantGrid(a).normalized_grid(),
        }
        for a in (0, 5, 17, 25, 40, 60, 90, 125)
    }
    return fits, sweep


def test_bench_fig05_fig06(benchmark):
    fits, sweep = run_once(benchmark, experiment)
    rows = [[name, a, err] for name, (a, err) in fits.items()]
    print()
    print(render_table(["target type", "best a", "max abs err"], rows,
                       title="Fig. 5 (grid approximation)", ndigits=3))
    print()
    print(render_series(
        "Fig. 6 normalised grid variance vs a",
        list(sweep), [v["variance"] for v in sweep.values()], ndigits=3,
    ))
    save_result("fig05_fig06", {
        "fits": {k: list(v) for k, v in fits.items()},
        "variance_vs_a": {str(a): v["variance"] for a, v in sweep.items()},
    })

    assert fits["PoT"][0] == 0
    assert 10 <= fits["float (fp4_e2m1)"][0] <= 25
    assert 17 <= fits["NF4"][0] <= 35
    assert fits["INT4"][0] >= 90
    variances = [v["variance"] for v in sweep.values()]
    assert all(b > a for a, b in zip(variances, variances[1:]))
