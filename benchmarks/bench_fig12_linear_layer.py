"""Fig. 12 — linear-layer speedup and energy breakdown (seq 2048).

Paper geomeans (MANT over each baseline): Tender 1.83x / 1.39x energy,
OliVe 1.96x / 1.54x, ANT* 2.00x / 1.57x, BitFusion 4.93x / 4.16x.
Shape targets: the same ordering, energy dominated by static + DRAM
differences, similar core energy across designs.
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.hardware.configs import ACCELERATORS, get_policy
from repro.hardware.simulator import simulate_linear_layer, speedup_and_energy
from repro.hardware.workloads import MODEL_SHAPES

from common import run_once, save_result

MODELS = ("llama-7b", "llama-65b", "opt-6.7b", "opt-13b")


def experiment():
    per_model = {}
    for model in MODELS:
        shape = MODEL_SHAPES[model]
        results = {
            n: simulate_linear_layer(a, get_policy(n, shape.family), shape, 2048)
            for n, a in ACCELERATORS.items()
        }
        per_model[model] = speedup_and_energy(results, baseline="MANT")
    return per_model


def test_bench_fig12_linear_layer(benchmark):
    per_model = run_once(benchmark, experiment)
    names = list(ACCELERATORS)
    rows = []
    geo_speed = {n: [] for n in names}
    geo_energy = {n: [] for n in names}
    for model, norm in per_model.items():
        for n in names:
            mant_speedup = 1.0 / norm[n]["speedup"]
            geo_speed[n].append(mant_speedup)
            geo_energy[n].append(norm[n]["norm_energy"])
            rows.append([
                model, n, mant_speedup, norm[n]["norm_energy"],
                norm[n]["core"], norm[n]["buffer"], norm[n]["dram"], norm[n]["static"],
            ])
    geo = lambda v: float(np.exp(np.mean(np.log(v))))
    for n in names:
        rows.append(["geomean", n, geo(geo_speed[n]), geo(geo_energy[n]),
                     None, None, None, None])
    print()
    print(render_table(
        ["model", "accel", "MANT speedup", "norm energy",
         "core", "buffer", "dram", "static"],
        rows, title="Fig. 12 (linear layer, seq 2048; energy normalised to MANT)",
    ))
    save_result("fig12_linear_layer", per_model)

    # Paper ordering and rough bands.
    assert 1.4 < geo(geo_speed["Tender"]) < 2.2
    assert geo(geo_speed["Tender"]) < geo(geo_speed["OliVe"]) < geo(geo_speed["ANT*"])
    assert geo(geo_speed["BitFusion"]) > 3.5
    assert geo(geo_energy["Tender"]) > 1.2
    assert geo(geo_energy["BitFusion"]) > 3.0
