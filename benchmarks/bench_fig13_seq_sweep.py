"""Fig. 13 — all-layer (linear + attention) speedup/energy vs context.

Paper: MANT 2.04-4.54x over OliVe across 2K-128K; 2.99x average (up to
4.46x) over Tender; the linear layer dominates at 2K, attention at
128K, where only MANT's quantized KV cache keeps scaling.
"""

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.hardware.configs import ACCELERATORS, get_policy
from repro.hardware.simulator import simulate_token

from common import run_once, save_result
from repro.hardware.workloads import MODEL_SHAPES

SEQS = (2048, 8192, 32768, 131072)
MODEL = "llama-7b"


def experiment():
    shape = MODEL_SHAPES[MODEL]
    out = {}
    for s in SEQS:
        out[s] = {
            n: simulate_token(a, get_policy(n, shape.family), shape, s)
            for n, a in ACCELERATORS.items()
        }
    return out


def test_bench_fig13_seq_sweep(benchmark):
    out = run_once(benchmark, experiment)
    rows = []
    speedups_vs = {n: [] for n in ACCELERATORS if n != "MANT"}
    for s in SEQS:
        mant = out[s]["MANT"]["total"]
        for n in ACCELERATORS:
            parts = out[s][n]
            speed = parts["total"].cycles / mant.cycles
            rows.append([
                s, n, speed if n != "MANT" else 1.0,
                parts["linear"].cycles / parts["total"].cycles,
                parts["attention"].cycles / parts["total"].cycles,
                parts["total"].energy.total / mant.energy.total,
            ])
            if n != "MANT":
                speedups_vs[n].append(speed)
    print()
    print(render_table(
        ["seq", "accel", "MANT speedup", "linear frac", "attn frac", "energy vs MANT"],
        rows, title=f"Fig. 13 ({MODEL}, decode token at context S)",
    ))
    for n, v in speedups_vs.items():
        print(render_series(f"  MANT speedup vs {n}", SEQS, v))
    save_result("fig13_seq_sweep", {
        str(s): {n: out[s][n]["total"].cycles for n in ACCELERATORS} for s in SEQS
    })

    # Speedup over every baseline grows monotonically with context.
    for n, v in speedups_vs.items():
        assert all(b >= a - 1e-9 for a, b in zip(v, v[1:])), n
    assert speedups_vs["OliVe"][-1] > 2.5
    # Crossover: linear dominates at 2K, attention at 128K (baselines).
    first, last = out[SEQS[0]]["OliVe"], out[SEQS[-1]]["OliVe"]
    assert first["linear"].cycles > first["attention"].cycles
    assert last["attention"].cycles > last["linear"].cycles
