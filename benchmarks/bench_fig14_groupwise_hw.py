"""Fig. 14 — group-wise (G=64) hardware comparison: MANT vs ANT vs INT.

Paper: with everyone at group size 64 (ANT extended with per-group
weight types and group-INT KV; INT with more 8-bit layers to match
PPL), MANT averages 1.70x speedup and 1.55x energy efficiency over
group-wise ANT in the linear layer.
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.hardware.configs import GROUPWISE_ACCELERATORS, GROUPWISE_POLICIES
from repro.hardware.simulator import simulate_linear_layer, speedup_and_energy
from repro.hardware.workloads import MODEL_SHAPES

from common import run_once, save_result

MODELS = ("llama-7b", "llama-65b", "opt-6.7b", "opt-13b")


def experiment():
    per_model = {}
    for model in MODELS:
        shape = MODEL_SHAPES[model]
        results = {
            n: simulate_linear_layer(a, GROUPWISE_POLICIES[n][shape.family], shape, 2048)
            for n, a in GROUPWISE_ACCELERATORS.items()
        }
        per_model[model] = speedup_and_energy(results, baseline="MANT")
    return per_model


def test_bench_fig14_groupwise_hw(benchmark):
    per_model = run_once(benchmark, experiment)
    rows = []
    ant_speed, ant_energy = [], []
    for model, norm in per_model.items():
        for n in GROUPWISE_ACCELERATORS:
            rows.append([model, n, 1.0 / norm[n]["speedup"], norm[n]["norm_energy"]])
            if n == "ANT-g64":
                ant_speed.append(1.0 / norm[n]["speedup"])
                ant_energy.append(norm[n]["norm_energy"])
    geo = lambda v: float(np.exp(np.mean(np.log(v))))
    print()
    print(render_table(
        ["model", "config", "MANT speedup", "norm energy"], rows,
        title="Fig. 14 (group size 64 everywhere, linear layer)",
    ))
    print(f"  geomean MANT over group-ANT: {geo(ant_speed):.2f}x speed, "
          f"{geo(ant_energy):.2f}x energy (paper: 1.70x / 1.55x)")
    save_result("fig14_groupwise_hw", per_model)

    assert 1.3 < geo(ant_speed) < 2.1
    assert 1.1 < geo(ant_energy) < 1.9
