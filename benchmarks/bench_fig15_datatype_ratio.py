"""Fig. 15 — selection ratio of coefficient ``a`` across tensors/layers.

Paper: layer 0 of LLaMA-2-7B / OPT-6.7B mostly selects a = 0 (PoT-like
grids), later layers select a broad mix — the evidence that group-level
adaptivity is actually exercised.  Reproduced per projection role and
layer on the trained stand-in models.
"""

import numpy as np

from repro.analysis.reporting import render_table
from repro.core.codec import INT_A
from repro.model.quantized import PTQConfig, build_ptq

from common import load, run_once, save_result

MODELS = ("tinyllama-s", "tinyopt-s")


def experiment():
    out = {}
    for model_name in MODELS:
        model, _corpus, calib, _rows = load(model_name)
        setup = build_ptq(model, PTQConfig(method="mant", w_bits=4, a_bits=8), calib)
        mq = setup.artifacts["mant_weights"]
        hists = mq.datatype_ratio_table()
        out[model_name] = {
            name: {("INT" if a == INT_A else f"{a:g}"): frac
                   for a, frac in hist.items()}
            for name, hist in hists.items()
        }
    return out


def _bucket(hist: dict[str, float]) -> dict[str, float]:
    """Collapse to the paper's visual buckets: a=0 / small / large / INT."""
    buckets = {"a=0": 0.0, "a<=30": 0.0, "a>30": 0.0, "INT": 0.0}
    for key, frac in hist.items():
        if key == "INT":
            buckets["INT"] += frac
        elif float(key) == 0:
            buckets["a=0"] += frac
        elif float(key) <= 30:
            buckets["a<=30"] += frac
        else:
            buckets["a>30"] += frac
    return buckets


def test_bench_fig15_datatype_ratio(benchmark):
    out = run_once(benchmark, experiment)
    rows = []
    for model_name, hists in out.items():
        for name, hist in hists.items():
            b = _bucket(hist)
            rows.append([model_name, name, b["a=0"], b["a<=30"], b["a>30"], b["INT"]])
    print()
    print(render_table(
        ["model", "tensor", "a=0", "a<=30", "a>30", "INT"], rows,
        title="Fig. 15 (coefficient selection ratio per tensor)",
    ))
    save_result("fig15_datatype_ratio", out)

    for model_name, hists in out.items():
        # Adaptivity is exercised: more than one coefficient in use.
        all_keys = set()
        for hist in hists.values():
            all_keys |= set(hist)
        assert len(all_keys) >= 3, model_name
        # Every histogram is a distribution.
        for name, hist in hists.items():
            assert abs(sum(hist.values()) - 1.0) < 1e-9, name
