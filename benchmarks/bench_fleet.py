"""Fleet fault-tolerance benchmark: recovery gap under replica loss.

Two questions about the multi-replica :class:`~repro.serve.fleet.
FleetRouter` under the same three-class trace the loadgen benchmarks
use (urgent / standard / bulk on the unit-test model), all on the
deterministic virtual clock:

1. **Recovery gap.**  Drive the trace near the two-replica fleet's
   knee twice — once undisturbed, once with a seeded ``REPLICA_CRASH``
   killing one replica mid-run.  In-flight requests fail over to the
   survivor via the snapshot/journal recompute path, so the crashed
   run should lose *headroom*, not requests: the gate in
   ``check_perf.py --check-speedups`` bounds the SLO attainment gap
   (:func:`repro.serve.slo.attainment_gap`) from above and the
   goodput ratio (crashed/baseline tokens-per-virtual-second) from
   below — the crash may cost recompute, never completions.

2. **Chaos determinism.**  ``check_perf.py --quick`` replays a seeded
   replica-crash run twice and asserts bit-for-bit identical request
   records and fault logs, plus per-replica storage back at baseline
   — the chaos-replay methodology the fleet tests rely on, validated
   end to end through the harness.

Run:  PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import (
    REPLICA_CRASH,
    FaultInjector,
    FleetConfig,
    FleetRouter,
    LoadHarness,
    ServeConfig,
    attainment_gap,
    evaluate,
    generate_trace,
)

from bench_loadgen import BATCH, make_spec, slo_spec
from bench_serve_throughput import CACHE_FACTORIES

SEED = 0

# Recovery scenario: a rate near the two-replica fleet's knee — high
# enough that losing a replica visibly eats headroom (the survivor
# pays recompute for every failed-over request, so fleet goodput
# drops), low enough that the survivor still absorbs the backlog
# without blowing the SLOs.
RECOVERY_RATE = 1800.0
RECOVERY_REQUESTS = 120
CRASH_AFTER_TICKS = 40     # replica-0 dies this many router ticks in

# Smoke scenario (check_perf --quick and the timed suite entry).
SMOKE_RATE = 300.0
SMOKE_REQUESTS = 24
SMOKE_CRASH_TICKS = 12


def fleet_factory(model, cache_name: str, *, faults=None,
                  n_replicas: int = 2):
    """``LoadHarness(engine_factory=...)`` hook building the router."""

    def build(clock):
        return FleetRouter(
            model, CACHE_FACTORIES[cache_name],
            ServeConfig(max_batch_size=BATCH),
            FleetConfig(n_replicas=n_replicas),
            clock=clock, faults=faults,
        )

    return build


def run_fleet(model, cache_name: str, rate: float, *, n_requests: int,
              faults=None, seed: int = SEED, n_replicas: int = 2):
    """One virtual-clock harness run through a fleet; (result, report)."""
    trace = generate_trace(make_spec(rate, n_requests, seed))
    harness = LoadHarness(
        model, CACHE_FACTORIES[cache_name],
        ServeConfig(max_batch_size=BATCH), clock="virtual",
        engine_factory=fleet_factory(model, cache_name, faults=faults,
                                     n_replicas=n_replicas),
    )
    result = harness.run(trace)
    return result, evaluate(result, slo_spec())


# ----------------------------------------------------------------------
# check_perf hooks
# ----------------------------------------------------------------------
def fleet_recovery_gap(model, cache_name: str = "fp16"):
    """(baseline_report, crashed_report, attainment_gap dict).

    Same trace, same virtual clock, two runs: undisturbed two-replica
    fleet vs the same fleet with replica-0 crash-killed
    ``CRASH_AFTER_TICKS`` router ticks in.  The crash orphans every
    request routed to replica-0; the router fails them over to the
    survivor through the journal recompute path (exact for the greedy
    trace), so the gap measures lost headroom — queueing and recompute
    delay — not lost requests.
    """
    _, base = run_fleet(model, cache_name, RECOVERY_RATE,
                        n_requests=RECOVERY_REQUESTS)
    fi = FaultInjector(seed=SEED)
    fi.arm(REPLICA_CRASH, "replica-0", after=CRASH_AFTER_TICKS)
    crashed_result, crashed = run_fleet(model, cache_name, RECOVERY_RATE,
                                        n_requests=RECOVERY_REQUESTS,
                                        faults=fi)
    assert any(site == REPLICA_CRASH for site, _ in fi.log), \
        "armed replica crash never fired"
    abnormal = [r for r in crashed_result.records
                if r.finish_reason not in ("length", "stop")]
    assert not abnormal, (
        f"{len(abnormal)} requests lost to the crash "
        f"({sorted({r.finish_reason for r in abnormal})}) — failover "
        "must preserve every in-flight request"
    )
    return base, crashed, attainment_gap(base, crashed)


def fleet_workload(model, cache_name: str = "fp16"):
    """The timed ``serve_fleet_smoke`` entry: one deterministic
    virtual-clock run of the smoke trace through a two-replica fleet
    with a seeded mid-run replica crash."""
    fi = FaultInjector(seed=SEED)
    fi.arm(REPLICA_CRASH, "replica-0", after=SMOKE_CRASH_TICKS)
    result, _ = run_fleet(model, cache_name, SMOKE_RATE,
                          n_requests=SMOKE_REQUESTS, faults=fi)
    return result


def _storage_baseline(router) -> None:
    """Every replica's pool/arena must be back at baseline post-run."""
    for engine in router.replicas:
        if engine.pool is not None:
            assert engine.pool.blocks_in_use == 0, (
                f"{engine.pool.blocks_in_use} pool blocks still "
                "referenced after the fleet run"
            )
        else:
            assert engine.arena.slots_in_use == 0, (
                f"{engine.arena.slots_in_use} arena slots still leased "
                "after the fleet run"
            )
    router.check_invariants()


def fleet_smoke(model, cache_name: str = "fp16") -> dict:
    """Seconds-scale fleet validation for ``check_perf.py --quick``.

    Runs the smoke trace through a two-replica fleet with a seeded
    replica crash, twice, and checks the chaos-replay contract:
    identical request records, identical fault logs, every request
    finishing normally despite the crash, per-replica storage back at
    baseline, and a crash that demonstrably fired (incarnation bumped,
    failovers counted).  Returns the findings; raises AssertionError
    on any violation.
    """
    trace = generate_trace(make_spec(SMOKE_RATE, SMOKE_REQUESTS))

    def run(t):
        fi = FaultInjector(seed=SEED)
        fi.arm(REPLICA_CRASH, "replica-0", after=SMOKE_CRASH_TICKS)
        harness = LoadHarness(
            model, CACHE_FACTORIES[cache_name],
            ServeConfig(max_batch_size=BATCH), clock="virtual",
            engine_factory=fleet_factory(model, cache_name, faults=fi),
        )
        result = harness.run(t)
        return result, harness.engine, fi

    result, router, fi = run(trace)
    replay, router2, fi2 = run(trace)

    crashes = [e for e in fi.log if e[0] == REPLICA_CRASH]
    assert crashes, "armed replica crash never fired"
    summary = router.stats().summary()
    assert summary["fleet"]["replica_crashes"] >= 1, "crash not counted"
    assert summary["fleet"]["failovers"] >= 1, \
        "crash orphaned no in-flight requests — raise the rate or delay"
    status = router.replica_status()
    assert status["replica-0"].incarnation == 1, \
        "crashed replica not rebuilt under a new incarnation"

    assert ([r.to_dict() for r in result.records]
            == [r.to_dict() for r in replay.records]), \
        "seeded replica-crash replay diverged (records)"
    assert fi.log == fi2.log, \
        "seeded replica-crash replay diverged (fault log)"

    abnormal = [r for r in result.records
                if r.finish_reason not in ("length", "stop")]
    assert not abnormal, (
        f"{len(abnormal)} requests did not survive the crash: "
        f"{sorted({r.finish_reason for r in abnormal})}"
    )
    _storage_baseline(router)
    _storage_baseline(router2)

    report = evaluate(result, slo_spec())
    return {
        "cache": cache_name,
        "requests": len(result.records),
        "duration_s": result.duration_s,
        "replica_crashes": summary["fleet"]["replica_crashes"],
        "failovers": summary["fleet"]["failovers"],
        "attainment": report.attainment,
        "goodput_tokens_per_s": report.goodput_tokens_per_s,
        "replay_identical": True,
    }


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")
    report: dict = {"smoke": {}, "recovery": {}}

    print("\nfleet smoke (2 replicas, seeded crash, virtual clock)")
    for name in CACHE_FACTORIES:
        smoke = fleet_smoke(model, name)
        report["smoke"][name] = smoke
        print(f"  {name:>6} | {smoke['requests']} requests | "
              f"{smoke['failovers']} failovers | attainment "
              f"{smoke['attainment']:6.1%} | replay identical")

    print(f"\nrecovery gap at {RECOVERY_RATE:.0f} req/s "
          f"({RECOVERY_REQUESTS} requests, crash after "
          f"{CRASH_AFTER_TICKS} ticks)")
    for name in CACHE_FACTORIES:
        base, crashed, gap = fleet_recovery_gap(model, name)
        report["recovery"][name] = {
            "baseline_attainment": base.attainment,
            "crashed_attainment": crashed.attainment,
            "gap": gap,
        }
        print(f"  {name:>6} | baseline {base.attainment:6.1%} | "
              f"crashed {crashed.attainment:6.1%} | gap "
              f"{gap['overall']:+.1%} | goodput ratio "
              f"{gap['goodput_ratio']:5.2f}")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "fleet_recovery.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nsaved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
