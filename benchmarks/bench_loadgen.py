"""Trace-driven load benchmark: SLO scorecards + saturation knees.

Four questions about the serving stack under a realistic multi-tenant
workload (three traffic classes: a latency-sensitive ``urgent`` class
with a shared system prompt, priority and a deadline; a ``standard``
interactive class; a throughput-oriented ``bulk`` class), all on the
unit-test model:

1. **SLO scorecards.**  At a moderate offered rate, per-class TTFT
   p50/p99, inter-token p99, deadline hit-rate, attainment and goodput
   (tokens/s from SLO-compliant requests only) for each cache type —
   the fp16/int4/mant4 comparison under one reproducible request mix.

2. **Saturation knees.**  :func:`repro.serve.slo.find_knee` binary-
   searches the highest arrival rate at which the workload still
   passes its :class:`~repro.serve.slo.SLOSpec`, per cache type — the
   knee of the saturation curve, with the full probe curve saved.

3. **Policy wins under saturation.**  At ~3x the knee, the urgent
   class's attainment under :class:`~repro.serve.policy.PriorityPolicy`
   (and its deadline hit-rate under EDF
   :class:`~repro.serve.policy.DeadlinePolicy`) versus FCFS.
   ``check_perf.py --check-speedups`` enforces both gaps as floors.

4. **Reproducibility.**  The workload trace regenerated from the same
   seed must be bit-for-bit identical JSON, and a virtual-clock replay
   must produce identical harness records — asserted on every run.

Run:  PYTHONPATH=src python benchmarks/bench_loadgen.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import (
    ArrivalProcess,
    ClassSLO,
    LengthDist,
    LoadHarness,
    ServeConfig,
    SLOSpec,
    TrafficClass,
    WorkloadSpec,
    WorkloadTrace,
    evaluate,
    find_knee,
    generate_trace,
)

from bench_serve_throughput import CACHE_FACTORIES

BATCH = 8
VOCAB = 256                # unit-test model vocabulary
SEED = 0

# Saturated-policy scenario: offered rate ~3x the fp16 knee, enough
# requests for stable urgent-class percentiles without minutes of wall
# clock per probe.
SATURATED_RATE = 700.0
SATURATED_REQUESTS = 240

# Scorecard scenario: comfortably below the knee.
SCORECARD_RATE = 120.0
SCORECARD_REQUESTS = 96

# Saturation sweep bracket and probe sizing.
SWEEP_LO = 50.0
SWEEP_HI = 1200.0
SWEEP_ITERS = 4
SWEEP_SPAN_S = 0.35        # arrival span per probe (requests = rate * span)

# Smoke scenario (check_perf --quick and the timed suite entry):
# virtual clock, deterministic end to end.
SMOKE_RATE = 400.0
SMOKE_REQUESTS = 16


def workload_classes() -> tuple:
    """The three-tenant mix every scenario here uses."""
    return (
        TrafficClass(
            "urgent", weight=1.0,
            prompt_len=LengthDist.fixed(12),
            output_len=LengthDist.fixed(8),
            priority=8, deadline_s=0.12,
            prefix_tokens=16, prefix_pool=2,   # shared system prompt
        ),
        TrafficClass(
            "standard", weight=2.0,
            prompt_len=LengthDist.uniform(16, 48),
            output_len=LengthDist.uniform(8, 16),
        ),
        TrafficClass(
            "bulk", weight=1.0,
            prompt_len=LengthDist.lognormal(32, 0.6, lo=8, hi=128),
            output_len=LengthDist.fixed(24),
        ),
    )


def slo_spec() -> SLOSpec:
    """Per-class objectives: tight for urgent, generous for bulk."""
    return SLOSpec(classes={
        "urgent": ClassSLO(ttft_p99_s=0.1, deadline_hit_rate=0.8,
                           attainment_target=0.9),
        "standard": ClassSLO(ttft_p99_s=1.5, attainment_target=0.8),
        "bulk": ClassSLO(ttft_p99_s=5.0, attainment_target=0.7),
    })


def make_spec(rate: float, n_requests: int, seed: int = SEED,
              bursty: bool = False) -> WorkloadSpec:
    arrivals = (ArrivalProcess.bursty(rate * 0.4, rate * 2.5, 0.08, 0.04)
                if bursty else ArrivalProcess.poisson(rate))
    return WorkloadSpec(classes=workload_classes(), arrivals=arrivals,
                        n_requests=n_requests, vocab_size=VOCAB, seed=seed)


def run_rate(model, cache_name: str, rate: float, *,
             n_requests: int, policy: str = "fcfs", seed: int = SEED,
             clock: str = "wall"):
    """One harness run at ``rate``; returns (HarnessResult, SLOReport)."""
    trace = generate_trace(make_spec(rate, n_requests, seed))
    harness = LoadHarness(
        model, CACHE_FACTORIES[cache_name],
        ServeConfig(max_batch_size=BATCH, scheduler_policy=policy),
        clock=clock,
    )
    result = harness.run(trace)
    return result, evaluate(result, slo_spec())


# ----------------------------------------------------------------------
# check_perf hooks
# ----------------------------------------------------------------------
def urgent_attainment_gain(model, cache_name: str = "fp16"):
    """(fcfs_report, priority_report, urgent-attainment gap).

    At ~3x the knee the urgent class's SLO attainment collapses under
    FCFS (its requests queue behind the bulk backlog and blow the TTFT
    ceiling) while PriorityPolicy keeps admitting it first; the gap
    (priority minus fcfs attainment, in absolute fraction) is the
    enforced floor.
    """
    _, fcfs = run_rate(model, cache_name, SATURATED_RATE,
                       n_requests=SATURATED_REQUESTS, policy="fcfs")
    _, prio = run_rate(model, cache_name, SATURATED_RATE,
                       n_requests=SATURATED_REQUESTS, policy="priority")
    gap = (prio.classes["urgent"].attainment
           - fcfs.classes["urgent"].attainment)
    return fcfs, prio, gap


def deadline_hit_gain(model, cache_name: str = "fp16"):
    """(fcfs_report, edf_report, urgent deadline-hit-rate gap).

    Same saturated workload; EDF orders by effective deadline, so the
    urgent class (the only one carrying ``deadline_s``) hits its
    deadline far more often than under FCFS.
    """

    def hit_rate(report) -> float:
        for o in report.classes["urgent"].objectives:
            if o["objective"] == "deadline_hit_rate":
                return o["measured"]
        return 0.0

    _, fcfs = run_rate(model, cache_name, SATURATED_RATE,
                       n_requests=SATURATED_REQUESTS, policy="fcfs")
    _, edf = run_rate(model, cache_name, SATURATED_RATE,
                      n_requests=SATURATED_REQUESTS, policy="deadline")
    return fcfs, edf, hit_rate(edf) - hit_rate(fcfs)


def smoke_workload(model, cache_name: str = "fp16"):
    """The timed ``serve_loadgen_smoke`` entry: one deterministic
    virtual-clock harness run over the small smoke trace."""
    trace = generate_trace(make_spec(SMOKE_RATE, SMOKE_REQUESTS))
    harness = LoadHarness(
        model, CACHE_FACTORIES[cache_name],
        ServeConfig(max_batch_size=BATCH), clock="virtual",
    )
    return harness.run(trace)


def loadgen_smoke(model, cache_name: str = "fp16") -> dict:
    """Seconds-scale validation for ``check_perf.py --quick``.

    Runs the smoke trace on a virtual clock and checks the whole
    contract: bit-for-bit trace reproducibility, JSON round-trip,
    replay-identical harness records, and a structurally sound SLO
    report (every class present, attainment in [0, 1], positive
    goodput).  Returns the findings; raises AssertionError on any
    violation.
    """
    spec = make_spec(SMOKE_RATE, SMOKE_REQUESTS)
    trace = generate_trace(spec)
    again = generate_trace(spec)
    assert trace.to_json() == again.to_json(), \
        "same-seed trace not bit-for-bit reproducible"
    roundtrip = WorkloadTrace.from_json(trace.to_json())
    assert roundtrip.to_json() == trace.to_json(), \
        "workload trace JSON round-trip drifted"

    def run(t):
        harness = LoadHarness(
            model, CACHE_FACTORIES[cache_name],
            ServeConfig(max_batch_size=BATCH), clock="virtual",
        )
        return harness.run(t)

    result = run(trace)
    replay = run(roundtrip)
    assert ([r.to_dict() for r in result.records]
            == [r.to_dict() for r in replay.records]), \
        "virtual-clock replay diverged from the original run"

    report = evaluate(result, slo_spec())
    seen = set(report.classes)
    expected = {c.name for c in spec.classes} & {
        r.traffic_class for r in result.records}
    assert seen == expected, f"classes {expected} expected, got {seen}"
    for name, cr in report.classes.items():
        assert 0.0 <= cr.attainment <= 1.0, f"{name} attainment {cr.attainment}"
    assert report.goodput_tokens_per_s > 0, "smoke run produced no goodput"
    return {
        "cache": cache_name,
        "requests": len(result.records),
        "duration_s": result.duration_s,
        "attainment": report.attainment,
        "goodput_tokens_per_s": report.goodput_tokens_per_s,
        "trace_reproducible": True,
        "replay_identical": True,
    }


# ----------------------------------------------------------------------
# Saturation sweep
# ----------------------------------------------------------------------
def saturation_sweep(model, cache_name: str) -> dict:
    """Binary-search the max sustainable rate for one cache type."""

    def run_at(rate: float):
        n = max(24, int(rate * SWEEP_SPAN_S))
        _, report = run_rate(model, cache_name, rate, n_requests=n)
        return report

    return find_knee(run_at, SWEEP_LO, SWEEP_HI, iters=SWEEP_ITERS)


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")
    spec = slo_spec()
    report: dict = {
        "workload": make_spec(SCORECARD_RATE, SCORECARD_REQUESTS).to_dict(),
        "slo_spec": spec.to_dict(),
        "smoke": loadgen_smoke(model),
        "scorecards": {},
        "knees": {},
        "policy_gains": {},
    }
    print(f"smoke (virtual clock): {report['smoke']['requests']} requests, "
          f"trace bit-for-bit reproducible, replay identical")

    print(f"\nscorecards at {SCORECARD_RATE:.0f} req/s "
          f"({SCORECARD_REQUESTS} requests, {BATCH} lanes, wall clock)")
    for name in CACHE_FACTORIES:
        _, card = run_rate(model, name, SCORECARD_RATE,
                           n_requests=SCORECARD_REQUESTS)
        report["scorecards"][name] = card.to_dict()
        print(f"\n-- {name} --")
        print(card.render())

    print(f"\nsaturation knees (bracket [{SWEEP_LO:.0f}, {SWEEP_HI:.0f}] "
          f"req/s, {SWEEP_ITERS} bisection steps)")
    for name in CACHE_FACTORIES:
        knee = saturation_sweep(model, name)
        report["knees"][name] = knee
        curve = " ".join(
            f"{p['rate']:.0f}:{'ok' if p['ok'] else 'X'}"
            for p in knee["probes"])
        print(f"  {name:>6} | knee {knee['knee_rate']:7.1f} req/s | {curve}")

    print(f"\npolicy wins at {SATURATED_RATE:.0f} req/s "
          f"({SATURATED_REQUESTS} requests, urgent class)")
    fcfs, prio, att_gap = urgent_attainment_gain(model)
    _, edf, hit_gap = deadline_hit_gain(model)
    report["policy_gains"] = {
        "urgent_attainment": {
            "fcfs": fcfs.classes["urgent"].attainment,
            "priority": prio.classes["urgent"].attainment,
            "gap": att_gap,
        },
        "urgent_deadline_hit": {"gap": hit_gap},
    }
    print(f"  attainment   | fcfs {fcfs.classes['urgent'].attainment:6.1%} | "
          f"priority {prio.classes['urgent'].attainment:6.1%} | "
          f"gap {att_gap:+.1%}")
    print(f"  deadline-hit | gap {hit_gap:+.1%} (edf vs fcfs)")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "loadgen_slo.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\nsaved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
