"""Microbenchmarks: codec / fused-kernel / selection throughput.

Not a paper table — these time the core primitives so performance
regressions in the library itself are visible in CI.  The ``legacy_*``
benchmarks time the seed (pre-fast-path) implementations from
:mod:`legacy_impl`, so one ``pytest benchmarks/bench_micro_codec.py
--benchmark-only`` run shows the select/encode speedups directly;
``check_perf.py`` gates on them.
"""

import numpy as np
import pytest

from repro.core.codec import MantCodec
from repro.core.fused import (
    fused_group_gemm,
    fused_group_gemm_two_psum,
    quantize_activations_int8,
)
from repro.core.selection import MseSearchSelector, VarianceSelector

from legacy_impl import LegacyMantCodec, LegacyMseSearchSelector

RNG = np.random.default_rng(0)
W = RNG.standard_normal((256, 1024))
X = RNG.standard_normal((16, 1024))
A17 = np.full((256, 16), 17.0)
AMIX = RNG.choice([0.0, 5.0, 17.0, 60.0, 120.0, -1.0], size=(256, 16))
CODEC = MantCodec(group_size=64)
LEGACY_CODEC = LegacyMantCodec(group_size=64)
ENC = CODEC.encode(W, A17)
XQ = quantize_activations_int8(X, 64)
SELECTOR = MseSearchSelector(group_size=64)
LEGACY_SELECTOR = LegacyMseSearchSelector(group_size=64)
VAR_SELECTOR = VarianceSelector(group_size=64)
GROUPS = RNG.standard_normal((4096, 64))


def test_bench_encode(benchmark):
    benchmark(CODEC.encode, W, A17)


def test_bench_encode_mixed_a(benchmark):
    benchmark(CODEC.encode, W, AMIX)


def test_bench_legacy_encode(benchmark):
    benchmark(LEGACY_CODEC.encode, W, A17)


def test_bench_decode(benchmark):
    benchmark(CODEC.decode, ENC)


def test_bench_fused_gemm(benchmark):
    benchmark(fused_group_gemm, XQ, ENC)


def test_bench_fused_gemm_two_psum(benchmark):
    benchmark(fused_group_gemm_two_psum, XQ, ENC)


def test_bench_activation_quant(benchmark):
    benchmark(quantize_activations_int8, X, 64)


def test_bench_mse_search(benchmark):
    benchmark(SELECTOR.select, W)


def test_bench_legacy_mse_search(benchmark):
    benchmark(LEGACY_SELECTOR.select, W)


def test_bench_fused_select_encode(benchmark):
    benchmark(SELECTOR.select_and_encode, W)


def test_bench_variance_select(benchmark):
    benchmark(VAR_SELECTOR.select_batch, GROUPS)


def test_bench_throughput_sanity(benchmark):
    # Selection must stay usable at model scale: > 10k groups/s.
    result = benchmark(VAR_SELECTOR.select_batch, GROUPS)
    assert result.shape == (4096,)
