"""Observability costs: steady-state tracing overhead, trace capture.

Two questions about the serving observability layer, answered on the
unit-test model:

1. **Steady-state overhead.**  With ``ServeConfig.observe`` on
   (the default), every tick records phase spans (two tracer-clock
   reads and a tuple append each), every request keeps a lifecycle
   timeline and every statistic routes through registry instruments.
   That must be ~free: the benchmark serves the standard batch-8
   workload with observability on and off and reports the elapsed-time
   ratio; ``check_perf.py --check-speedups`` enforces the <= 1.05x
   ceiling (best of 3, damping scheduler jitter).

2. **Trace capture.**  A mixed prefill+decode chunked run with one
   injected transient fault, exported via ``engine.trace.save`` —
   reports span counts per phase, the fault instants, and verifies the
   fault joined the victim's timeline.  This is the demo artifact
   (``artifacts/results/observability_trace.json``): load it at
   https://ui.perfetto.dev or ``chrome://tracing``.

Run:  PYTHONPATH=src python benchmarks/bench_observability.py
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import (
    FORWARD,
    FaultInjector,
    GenerationEngine,
    ServeConfig,
)

from bench_serve_throughput import CACHE_FACTORIES, make_requests

BATCH = 8
FAULT_AFTER = 4            # decode forwards the victim survives first


def obs_config(max_batch: int = BATCH, **overrides) -> ServeConfig:
    """The timed ``serve_obs_batch8`` shape for check_perf.py:
    observability fully on (tick spans, timelines, registry stats)."""
    overrides.setdefault("max_batch_size", max_batch)
    overrides.setdefault("observe", True)
    return ServeConfig(**overrides)


def observed_workload(model, cache_factory, requests,
                      config: ServeConfig | None = None):
    """Serve ``requests`` with observability on; ``(elapsed_s, stats)``."""
    engine = GenerationEngine(model, cache_factory, config or obs_config())
    t0 = time.perf_counter()
    engine.generate(requests)
    elapsed = time.perf_counter() - t0
    return elapsed, engine.stats()


def plain_workload(model, cache_factory, requests):
    engine = GenerationEngine(
        model, cache_factory, ServeConfig(max_batch_size=BATCH, observe=False))
    t0 = time.perf_counter()
    engine.generate(requests)
    elapsed = time.perf_counter() - t0
    return elapsed, engine.stats()


def obs_overhead(model, cache_name: str = "fp16"):
    """(plain_detail, observed_detail, observed/plain elapsed ratio)."""
    factory = CACHE_FACTORIES[cache_name]
    vocab = model.config.vocab_size
    plain_s, plain_stats = plain_workload(
        model, factory, make_requests(vocab, n_requests=BATCH))
    obs_s, obs_stats = observed_workload(
        model, factory, make_requests(vocab, n_requests=BATCH))
    plain = {"elapsed_ms": plain_s * 1e3,
             "tokens_per_s": plain_stats.tokens_generated / plain_s}
    observed = {"elapsed_ms": obs_s * 1e3,
                "tokens_per_s": obs_stats.tokens_generated / obs_s,
                "ticks_traced": obs_stats.decode_ticks}
    return plain, observed, obs_s / plain_s


def capture_trace(model, cache_name: str = "fp16", path: str | None = None):
    """A chunked mixed prefill+decode run with one injected transient
    fault, exported as Chrome-trace JSON; returns a summary dict."""
    factory = CACHE_FACTORIES[cache_name]
    victim = "req-0"
    injector = FaultInjector().arm(
        FORWARD, victim, after=FAULT_AFTER, transient=True)
    engine = GenerationEngine(
        model, factory,
        ServeConfig(max_batch_size=BATCH, paged=True, block_tokens=32,
                    prefill_chunk_tokens=32, max_tokens_per_tick=64),
        faults=injector,
    )
    requests = make_requests(model.config.vocab_size, n_requests=BATCH,
                             prompt_len=48, max_tokens=24)
    engine.generate(requests)
    if path is not None:
        engine.trace.save(path)
    trace = engine.trace
    victim_events = engine.request_trace(victim).names()
    summary = {
        "spans": {name: len(trace.spans(name))
                  for name in ("tick", "sweep", "admit", "plan",
                               "pack_prefill", "forward", "append",
                               "sample", "deliver", "finish")},
        "fault_instants": len(trace.instants("fault")),
        "fault_in_victim_timeline": "fault" in victim_events,
        "victim_timeline": victim_events,
        "victim_finish": engine.result(victim).finish_reason,
    }
    return summary


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")
    report: dict[str, dict] = {"overhead": {}, "trace": {}}

    print(f"\nsteady-state observability overhead (batch {BATCH}, "
          "spans + timelines + registry on vs all off)")
    for name in CACHE_FACTORIES:
        plain, observed, ratio = obs_overhead(model, name)
        report["overhead"][name] = {
            "plain": plain, "observed": observed, "ratio": round(ratio, 3),
        }
        print(f"  {name:>6} | off {plain['elapsed_ms']:7.1f} ms | on "
              f"{observed['elapsed_ms']:7.1f} ms | {ratio:5.3f}x")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    trace_path = os.path.join(out, "observability_trace.json")
    print(f"\ntrace capture: chunked mixed ticks, batch {BATCH}, one "
          f"transient forward fault on req-0 after {FAULT_AFTER} decodes")
    summary = capture_trace(model, "fp16", path=trace_path)
    report["trace"] = summary
    spans = summary["spans"]
    print("  spans: " + " ".join(f"{k}={v}" for k, v in spans.items() if v))
    print(f"  fault instants: {summary['fault_instants']} | joined to "
          f"victim timeline: {summary['fault_in_victim_timeline']} | "
          f"victim finished '{summary['victim_finish']}'")
    print(f"  victim timeline: {' '.join(summary['victim_timeline'])}")
    print(f"saved {os.path.normpath(trace_path)} "
          "(load at https://ui.perfetto.dev)")

    path = os.path.join(out, "observability.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
