"""Paged vs contiguous-arena KV cache: throughput parity + prefix reuse.

Two questions, answered on the unit-test model at batch 8:

1. **Throughput parity.**  Paging gathers non-contiguous pages at
   attention time and allocates on demand per tick; that bookkeeping
   must not cost real decode throughput.  The same workload as
   ``bench_serve_throughput.py`` runs through the arena engine and the
   paged engine; ``check_perf.py --check-speedups`` enforces paged
   >= 0.9x arena (the "within 10%" acceptance floor).

2. **Prefill-block reuse.**  A shared-prefix workload (every request
   starts with one common system prompt) measures how many prompt
   pages the hash-based prefix cache deduplicates: *reuse* is tokens
   prefilled divided by the tokens actually allocated for them
   (``block_tokens x freshly written prefill pages``).  The arena
   engine always re-materializes every prompt, so its reuse is 1.0 by
   construction; the acceptance floor for the paged engine is >= 1.5x.

Run:  PYTHONPATH=src python benchmarks/bench_paged_kv.py
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import GenerationEngine, GenerationRequest, ServeConfig

from bench_serve_throughput import (
    CACHE_FACTORIES,
    MAX_TOKENS,
    N_REQUESTS,
    PROMPT_LEN,
    make_requests,
    run_workload,
)

BATCH = 8
BLOCK_TOKENS = 32          # multiple of the mant4 window (32) in CACHE_FACTORIES
PREFIX_LEN = 64            # shared system prompt: 2 full pages
TAIL_LEN = 8               # unique per-request suffix


def paged_config(max_batch: int = BATCH, enable_prefix_cache: bool = True) -> ServeConfig:
    return ServeConfig(
        max_batch_size=max_batch,
        paged=True,
        block_tokens=BLOCK_TOKENS,
        enable_prefix_cache=enable_prefix_cache,
    )


def make_shared_prefix_requests(vocab_size: int, n_requests: int = N_REQUESTS,
                                prefix_len: int = PREFIX_LEN,
                                tail_len: int = TAIL_LEN,
                                max_tokens: int = MAX_TOKENS,
                                seed: int = 0) -> list[GenerationRequest]:
    """N requests sharing one system prompt, each with a unique tail."""
    rng = np.random.default_rng(seed)
    system = rng.integers(0, vocab_size, size=prefix_len)
    return [
        GenerationRequest(
            f"req-{i}",
            np.concatenate([system, rng.integers(0, vocab_size, size=tail_len)]),
            max_tokens=max_tokens,
        )
        for i in range(n_requests)
    ]


def throughput_parity(model, cache_name: str = "fp16"):
    """(arena_tps, paged_tps, ratio) on the standard serving workload."""
    factory = CACHE_FACTORIES[cache_name]
    a_elapsed, a_stats = run_workload(
        model, factory, make_requests(model.config.vocab_size), max_batch=BATCH
    )
    p_elapsed, p_stats = run_workload(
        model, factory, make_requests(model.config.vocab_size), max_batch=BATCH,
        config=paged_config(),
    )
    arena_tps = a_stats.tokens_generated / a_elapsed
    paged_tps = p_stats.tokens_generated / p_elapsed
    return arena_tps, paged_tps, paged_tps / arena_tps


def prefix_reuse(model, cache_name: str = "mant4"):
    """Serve the shared-prefix workload paged; return (reuse, detail)."""
    factory = CACHE_FACTORIES[cache_name]
    engine = GenerationEngine(model, factory, paged_config())
    requests = make_shared_prefix_requests(model.config.vocab_size)
    results = engine.generate(requests)
    pool = engine.pool
    tokens_prefilled = sum(int(r.prompt.size) for r in requests)
    fresh_pages = pool.prefill_pages_total - pool.prefill_pages_hit
    reuse = tokens_prefilled / (BLOCK_TOKENS * fresh_pages)
    detail = {
        "tokens_prefilled": tokens_prefilled,
        "prefill_pages_total": pool.prefill_pages_total,
        "prefill_pages_hit": pool.prefill_pages_hit,
        "fresh_prefill_pages": fresh_pages,
        "prefix_hit_tokens": pool.prefix_hit_tokens,
        "block_tokens": BLOCK_TOKENS,
        "blocks_high_water": pool.high_water,
        "reuse": round(reuse, 2),
        "requests_completed": len(results),
    }
    return reuse, detail


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")

    print(f"\npaged vs arena decode throughput "
          f"({N_REQUESTS} requests x {MAX_TOKENS} tokens, "
          f"{PROMPT_LEN}-token prompts, batch {BATCH}, "
          f"block_tokens={BLOCK_TOKENS})")
    report: dict[str, dict] = {"throughput": {}, "prefix_reuse": {}}
    for name in CACHE_FACTORIES:
        arena_tps, paged_tps, ratio = throughput_parity(model, name)
        report["throughput"][name] = {
            "arena_tokens_per_s": round(arena_tps, 1),
            "paged_tokens_per_s": round(paged_tps, 1),
            "paged_vs_arena": round(ratio, 3),
        }
        print(f"  {name:>6} | arena {arena_tps:8.1f} tok/s | "
              f"paged {paged_tps:8.1f} tok/s | ratio {ratio:5.2f}x")

    print(f"\nshared-prefix prefill-block reuse "
          f"({N_REQUESTS} requests, {PREFIX_LEN}-token shared system prompt "
          f"+ {TAIL_LEN}-token unique tails)")
    for name in CACHE_FACTORIES:
        reuse, detail = prefix_reuse(model, name)
        report["prefix_reuse"][name] = detail
        print(f"  {name:>6} | {detail['prefill_pages_hit']:3d}/"
              f"{detail['prefill_pages_total']:3d} prompt pages shared | "
              f"{detail['fresh_prefill_pages']:3d} fresh | reuse {reuse:5.2f}x")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "paged_kv.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
