"""Policy scheduling: high-priority TTFT, deadline hit-rate, fork savings.

Three questions about the serving API v2, answered on the unit-test
model:

1. **High-priority TTFT.**  A saturated engine (``BATCH`` lanes, a
   deep backlog of background requests) receives a burst of
   high-priority requests.  Under FCFS they wait behind the whole
   backlog; under :class:`~repro.serve.policy.PriorityPolicy` they are
   admitted as soon as lanes free.  The benchmark reports the urgent
   requests' TTFT p95 for both policies; ``check_perf.py
   --check-speedups`` enforces the >= 2x improvement floor.

2. **Deadline hit-rate** (informational).  A workload whose *later*
   arrivals carry *tighter* deadlines — the adversarial case for FCFS —
   is measured for the fraction of requests finishing inside their
   ``deadline_s`` under FCFS vs :class:`~repro.serve.policy.
   DeadlinePolicy` (EDF).

3. **Fork-based parallel sampling.**  ``GenerationRequest(n=4)``
   prefills once and forks the paged lease copy-on-write per sample;
   the baseline resubmits the same prompt 4 times.  The benchmark
   reports prompt tokens actually run through the model
   (``EngineStats.prefill_tokens``) and wall-clock for both; the
   >= 1.5x fewer-prefill-tokens floor is enforced by ``check_perf.py``.

Run:  PYTHONPATH=src python benchmarks/bench_policy_scheduling.py
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.model.zoo import get_model
from repro.serve import GenerationEngine, GenerationRequest, SamplingParams, ServeConfig

from bench_serve_throughput import CACHE_FACTORIES

BATCH = 4                  # lanes in the saturated-priority scenario
N_BACKGROUND = 12          # backlog depth (3x the lanes)
N_URGENT = 4
BG_PROMPT = 24
BG_TOKENS = 24
URGENT_PROMPT = 16
URGENT_TOKENS = 8

N_DEADLINE = 12
DEADLINE_BATCH = 2

FORK_N = 4
FORK_PROMPT = 64
FORK_TOKENS = 16
FORK_REQUESTS = 8


def mixed_priority_workload(model, cache_factory, policy: str):
    """Backlogged engine + urgent burst; returns TTFT detail per class."""
    rng = np.random.default_rng(0)
    vocab = model.config.vocab_size
    engine = GenerationEngine(
        model, cache_factory,
        ServeConfig(max_batch_size=BATCH, scheduler_policy=policy),
    )
    for i in range(N_BACKGROUND):
        engine.submit(GenerationRequest(
            f"bg-{i}", rng.integers(0, vocab, size=BG_PROMPT),
            max_tokens=BG_TOKENS, priority=0))
    for i in range(N_URGENT):
        engine.submit(GenerationRequest(
            f"urgent-{i}", rng.integers(0, vocab, size=URGENT_PROMPT),
            max_tokens=URGENT_TOKENS, priority=8))
    t0 = time.perf_counter()
    engine.generate()
    elapsed = time.perf_counter() - t0
    urgent = [engine.result(f"urgent-{i}").ttft_s for i in range(N_URGENT)]
    background = [engine.result(f"bg-{i}").ttft_s for i in range(N_BACKGROUND)]
    return {
        "policy": policy,
        "urgent_ttft_p95_ms": float(np.percentile(urgent, 95) * 1e3),
        "urgent_ttft_mean_ms": float(np.mean(urgent) * 1e3),
        "background_ttft_p95_ms": float(np.percentile(background, 95) * 1e3),
        "elapsed_ms": elapsed * 1e3,
        "tokens_generated": engine.stats().tokens_generated,
    }


def high_priority_ttft_gain(model, cache_name: str = "fp16"):
    """(fcfs_detail, priority_detail, urgent-TTFT-p95 improvement)."""
    factory = CACHE_FACTORIES[cache_name]
    fcfs = mixed_priority_workload(model, factory, "fcfs")
    prio = mixed_priority_workload(model, factory, "priority")
    return fcfs, prio, fcfs["urgent_ttft_p95_ms"] / prio["urgent_ttft_p95_ms"]


def deadline_workload(model, cache_factory, policy: str):
    """Later arrivals get tighter deadlines; returns the hit-rate."""
    rng = np.random.default_rng(1)
    vocab = model.config.vocab_size
    engine = GenerationEngine(
        model, cache_factory,
        ServeConfig(max_batch_size=DEADLINE_BATCH, scheduler_policy=policy),
    )
    t_submit = {}
    t_finish = {}

    def on_token(event):
        if event.finished:
            t_finish[event.request_id] = time.perf_counter()

    deadlines = {}
    for i in range(N_DEADLINE):
        rid = f"d-{i}"
        # Arrival i of N: deadline shrinks as i grows (EDF's win case).
        deadlines[rid] = 0.120 * (N_DEADLINE - i) / N_DEADLINE + 0.010
        t_submit[rid] = time.perf_counter()
        engine.submit(GenerationRequest(
            rid, rng.integers(0, vocab, size=12), max_tokens=8,
            deadline_s=deadlines[rid]), on_token=on_token)
    engine.generate()
    hits = sum(
        t_finish[rid] - t_submit[rid] <= deadlines[rid] for rid in deadlines
    )
    return {"policy": policy, "hit_rate": hits / N_DEADLINE,
            "deadline_range_ms": [min(deadlines.values()) * 1e3,
                                  max(deadlines.values()) * 1e3]}


def fork_sampling_workload(model, cache_factory, use_fork: bool):
    """n=4 via one fork-backed request vs 4 resubmissions per prompt."""
    rng = np.random.default_rng(2)
    vocab = model.config.vocab_size
    engine = GenerationEngine(model, cache_factory, ServeConfig(
        max_batch_size=8, paged=True, block_tokens=32,
        enable_prefix_cache=False,      # measure compute, not page dedup
    ))
    prompts = [rng.integers(0, vocab, size=FORK_PROMPT)
               for _ in range(FORK_REQUESTS)]
    t0 = time.perf_counter()
    if use_fork:
        engine.generate(
            GenerationRequest(f"r{i}", p, max_tokens=FORK_TOKENS,
                              sampling=SamplingParams(temperature=0.8, seed=i),
                              n=FORK_N)
            for i, p in enumerate(prompts))
    else:
        engine.generate(
            GenerationRequest(f"r{i}-s{j}", p, max_tokens=FORK_TOKENS,
                              sampling=SamplingParams(temperature=0.8,
                                                      seed=1000 * i + j))
            for i, p in enumerate(prompts) for j in range(FORK_N))
    elapsed = time.perf_counter() - t0
    stats = engine.stats()
    return {
        "mode": "fork" if use_fork else "resubmit",
        "prefill_tokens": stats.prefill_tokens,
        "forks": engine.pool.forks,
        "tokens_generated": stats.tokens_generated,
        "elapsed_ms": elapsed * 1e3,
    }


def fork_prefill_savings(model, cache_name: str = "fp16"):
    """(fork_detail, resubmit_detail, prefill-token savings ratio)."""
    factory = CACHE_FACTORIES[cache_name]
    fork = fork_sampling_workload(model, factory, use_fork=True)
    resub = fork_sampling_workload(model, factory, use_fork=False)
    return fork, resub, resub["prefill_tokens"] / fork["prefill_tokens"]


def policy_config(max_batch: int = 8) -> ServeConfig:
    """The timed ``serve_policy_batch8`` shape for check_perf.py."""
    return ServeConfig(max_batch_size=max_batch, scheduler_policy="priority")


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")
    report: dict[str, dict] = {"priority_ttft": {}, "deadline": {}, "fork": {}}

    print(f"\nhigh-priority TTFT under a saturated engine "
          f"({N_BACKGROUND} background x {BG_TOKENS} tokens backlog, "
          f"{N_URGENT} urgent arrivals, {BATCH} lanes)")
    for name in CACHE_FACTORIES:
        fcfs, prio, gain = high_priority_ttft_gain(model, name)
        report["priority_ttft"][name] = {
            "fcfs": fcfs, "priority": prio, "p95_improvement": round(gain, 2),
        }
        print(f"  {name:>6} | fcfs p95 {fcfs['urgent_ttft_p95_ms']:7.2f} ms | "
              f"priority p95 {prio['urgent_ttft_p95_ms']:7.2f} ms | "
              f"{gain:5.2f}x better")

    print(f"\ndeadline hit-rate, later arrivals = tighter deadlines "
          f"({N_DEADLINE} requests, {DEADLINE_BATCH} lanes)")
    for name in CACHE_FACTORIES:
        fcfs = deadline_workload(model, CACHE_FACTORIES[name], "fcfs")
        edf = deadline_workload(model, CACHE_FACTORIES[name], "deadline")
        report["deadline"][name] = {"fcfs": fcfs, "deadline": edf}
        print(f"  {name:>6} | fcfs {fcfs['hit_rate']:5.0%} | "
              f"edf {edf['hit_rate']:5.0%}")

    print(f"\nparallel sampling: n={FORK_N} via PagedLease.fork vs "
          f"{FORK_N}x resubmission ({FORK_REQUESTS} x {FORK_PROMPT}-token "
          "prompts)")
    for name in CACHE_FACTORIES:
        fork, resub, savings = fork_prefill_savings(model, name)
        report["fork"][name] = {
            "fork": fork, "resubmit": resub,
            "prefill_savings": round(savings, 2),
        }
        print(f"  {name:>6} | fork {fork['prefill_tokens']:6d} prefill tokens "
              f"({fork['elapsed_ms']:7.1f} ms) | resubmit "
              f"{resub['prefill_tokens']:6d} ({resub['elapsed_ms']:7.1f} ms) | "
              f"{savings:4.2f}x fewer")

    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "policy_scheduling.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
