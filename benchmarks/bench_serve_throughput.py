"""Serving throughput: aggregate tokens/s vs concurrency per KV-cache type.

Runs the same fixed workload (N requests, identical prompt/output
budgets) through the continuous-batching engine at increasing
``max_batch_size`` and reports aggregate decode throughput for
FP16/INT4/MANT4 KV caches.  Batch 1 *is* sequential 1-by-1 serving
(admission waits for the running request to finish), so the speedup
column reads directly as batched-vs-sequential.

The batched decode path runs the dense projections once per tick for
the whole batch instead of once per sequence, so aggregate throughput
must *scale* with concurrency; the ``--check-speedups`` mode of
``check_perf.py`` enforces the >=2x floor at batch 8.

Run:  PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import functools
import json
import os
import time

import numpy as np

from repro.model.zoo import get_model
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache
from repro.serve import GenerationEngine, GenerationRequest, ServeConfig

N_REQUESTS = 16
PROMPT_LEN = 32
MAX_TOKENS = 16
CONCURRENCY = (1, 2, 4, 8)

CACHE_FACTORIES = {
    "fp16": FP16KVCache,
    "int4": functools.partial(IntKVCache, bits=4, group_size=32),
    "mant4": functools.partial(MantKVCache, group_size=32, window=32),
}


def make_requests(vocab_size: int, n_requests: int = N_REQUESTS,
                  prompt_len: int = PROMPT_LEN, max_tokens: int = MAX_TOKENS,
                  seed: int = 0) -> list[GenerationRequest]:
    rng = np.random.default_rng(seed)
    return [
        GenerationRequest(
            f"req-{i}",
            rng.integers(0, vocab_size, size=prompt_len),
            max_tokens=max_tokens,
        )
        for i in range(n_requests)
    ]


def run_workload(model, cache_factory, requests, max_batch: int, config=None):
    """Serve ``requests`` at ``max_batch`` lanes; returns (elapsed_s, stats).

    ``config`` overrides the whole :class:`ServeConfig` (the paged
    benchmark passes one with ``paged=True``); ``max_batch`` is ignored
    when it is given.
    """
    if config is None:
        config = ServeConfig(max_batch_size=max_batch)
    engine = GenerationEngine(model, cache_factory, config)
    t0 = time.perf_counter()
    engine.generate(requests)
    elapsed = time.perf_counter() - t0
    return elapsed, engine.stats()


def sweep(model):
    report: dict[str, dict] = {}
    for cache_name, factory in CACHE_FACTORIES.items():
        rows = {}
        base_tps = None
        for batch in CONCURRENCY:
            requests = make_requests(model.config.vocab_size)
            elapsed, stats = run_workload(model, factory, requests, batch)
            tps = stats.tokens_generated / elapsed
            if base_tps is None:
                base_tps = tps
            rows[batch] = {
                "tokens_per_s": round(tps, 1),
                "speedup_vs_sequential": round(tps / base_tps, 2),
                "mean_batch_occupancy": round(stats.mean_batch_occupancy, 2),
                "elapsed_ms": round(elapsed * 1e3, 1),
            }
        report[cache_name] = rows
    return report


def main():
    print("loading unit-test model ...")
    model, _ = get_model("unit-test")
    report = sweep(model)
    top = CONCURRENCY[-1]
    print(f"\nserving throughput: {N_REQUESTS} requests x {MAX_TOKENS} tokens, "
          f"{PROMPT_LEN}-token prompts (aggregate tokens/s)")
    print(f"  {'cache':>6} | " + " | ".join(f"batch {b:>2}" for b in CONCURRENCY)
          + f" | speedup @{top}")
    for name, rows in report.items():
        cells = " | ".join(f"{rows[b]['tokens_per_s']:8.1f}" for b in CONCURRENCY)
        print(f"  {name:>6} | {cells} | {rows[top]['speedup_vs_sequential']:9.2f}x")
    out = os.path.join(os.path.dirname(__file__), "..", "artifacts", "results")
    os.makedirs(out, exist_ok=True)
    path = os.path.join(out, "serve_throughput.json")
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"saved {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
