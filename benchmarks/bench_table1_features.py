"""Tbl. I — feature matrix of adaptive-data-type accelerators."""

from repro.analysis.features import feature_rows
from repro.analysis.reporting import render_table

from common import run_once, save_result

HEADERS = [
    "arch", "encode", "enc eff", "compute", "bits", "comp eff",
    "decode", "dec eff", "adaptivity",
]


def test_bench_table1_features(benchmark):
    rows = run_once(benchmark, feature_rows)
    print()
    print(render_table(HEADERS, rows, title="Tbl. I (feature matrix)"))
    save_result("table1_features", rows)

    mant = rows[-1]
    assert mant[0] == "MANT"
    # MANT's distinguishing cells: INT compute, calculation-based
    # decode, high adaptivity.
    assert mant[3] == "INT" and mant[6] == "Calculation" and mant[8] == "High"
