"""Tbl. II — PTQ perplexity across models and methods.

Paper rows: W4A4 for ANT/OliVe/Tender/MANT (baselines blow up, MANT
stays close), W8A8 for the baselines, MANT W4A8 near-lossless, and
MANT W4A8 with the 8/4 attention (KV cache quantized).  Shape targets:

* W4A4: MANT < Tender < {OliVe, ANT} in PPL, baselines clearly hurt;
* W8A8 baselines recover; MANT W4A8 within a small loss of FP16;
* the +KV row costs only a little extra.
"""

from repro.analysis.reporting import render_table
from repro.model.perplexity import perplexity_from_rows
from repro.model.quantized import PTQConfig, build_ptq

from common import ACCURACY_MODELS, load, run_once, save_result

from common import GROUP

ROWS = [
    PTQConfig(method="ant", w_bits=4, a_bits=4, group_size=GROUP, label="ANT W4A4"),
    PTQConfig(method="olive", w_bits=4, a_bits=4, group_size=GROUP, label="OliVe W4A4"),
    PTQConfig(method="tender", w_bits=4, a_bits=4, group_size=GROUP, label="Tender W4A4"),
    PTQConfig(method="mant", w_bits=4, a_bits=4, group_size=GROUP, label="MANT W4A4"),
    PTQConfig(method="ant", w_bits=8, a_bits=8, group_size=GROUP, label="ANT W8A8"),
    PTQConfig(method="olive", w_bits=8, a_bits=8, group_size=GROUP, label="OliVe W8A8"),
    PTQConfig(method="tender", w_bits=8, a_bits=8, group_size=GROUP, label="Tender W8A8"),
    PTQConfig(method="mant", w_bits=4, a_bits=8, group_size=GROUP, label="MANT W4A8"),
    PTQConfig(method="mant", w_bits=4, a_bits=8, group_size=GROUP, kv_method="mant",
              kv_bits=4, attn_act_bits=8, label="MANT W4A8 KV84"),
]


def experiment():
    table: dict[str, dict[str, float]] = {"FP16": {}}
    for model_name in ACCURACY_MODELS:
        model, _corpus, calib, rows = load(model_name)
        table["FP16"][model_name] = perplexity_from_rows(model, rows)
        for cfg in ROWS:
            setup = build_ptq(model, cfg, calib)
            table.setdefault(cfg.label, {})[model_name] = setup.ppl(model, rows)
    return table


def test_bench_table2_ptq_ppl(benchmark):
    table = run_once(benchmark, experiment)
    headers = ["method"] + list(ACCURACY_MODELS)
    rows = [[m] + [table[m][n] for n in ACCURACY_MODELS] for m in table]
    print()
    print(render_table(headers, rows, title="Tbl. II (Wikitext-substitute PPL)",
                       ndigits=3))
    save_result("table2_ptq_ppl", table)

    for name in ACCURACY_MODELS:
        fp16 = table["FP16"][name]
        # MANT W4A4 at worst ties the best 4-bit baseline (see
        # EXPERIMENTS.md: the paper's catastrophic ANT/OliVe blow-ups
        # need real-LLM outlier magnitudes our synthetic substrate
        # deliberately keeps moderate).
        best_baseline = min(
            table["Tender W4A4"][name],
            table["ANT W4A4"][name],
            table["OliVe W4A4"][name],
        )
        assert table["MANT W4A4"][name] <= best_baseline * 1.05
        assert table["MANT W4A4"][name] <= table["Tender W4A4"][name] + 1e-6
        # MANT W4A8 is near-lossless; KV row costs only slightly more.
        assert table["MANT W4A8"][name] < fp16 * 1.05
        assert table["MANT W4A8 KV84"][name] < fp16 * 1.08
        # 8-bit baselines recover from their 4-bit losses.
        assert table["Tender W8A8"][name] < table["Tender W4A4"][name]
        assert table["OliVe W8A8"][name] <= table["OliVe W4A4"][name] + 1e-6
