"""Tbl. III — generation tasks with a quantized KV cache.

Paper (LLaMA-2-7B, W4A8): TruthfulQA BLEU 27.88 (FP16) → 26.19 (MANT4
KV) vs 25.48 (INT4 KV); TriviaQA F1 87.72 → 86.86 vs 85.13.  Shape:
MANT4 KV beats INT4 KV on both tasks and stays close to the FP16 cache.

Substitutes (DESIGN.md): TriviaQA → key-value recall F1 through the
decode-stage cache; TruthfulQA → continuation BLEU vs the FP16 model.
"""

import functools

from repro.analysis.reporting import render_table
from repro.model.quantized import PTQConfig, build_ptq
from repro.model.tasks import ContinuationTask, RecallTask
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache

from common import GROUP, load, run_once, save_result

MODEL = "tinyllama-s"


def experiment():
    model, corpus, calib, _rows = load(MODEL)
    w4a8 = build_ptq(
        model, PTQConfig(method="mant", w_bits=4, a_bits=8, group_size=GROUP), calib
    )

    caches = {
        "FP16 KV": FP16KVCache,
        "INT4 KV": functools.partial(IntKVCache, bits=4, group_size=GROUP),
        "MANT4 KV": functools.partial(
            MantKVCache, selector=calib.kv_selector, group_size=GROUP,
            window=GROUP,
        ),
    }

    recall = RecallTask(vocab_size=model.config.vocab_size,
                        prompt_len=160, n_pairs=4, n_episodes=16)
    contin = ContinuationTask(hmm=corpus.hmm, prompt_len=96, gen_len=24,
                              n_episodes=8)
    refs = contin.references(model, FP16KVCache)

    table: dict[str, dict[str, float]] = {}
    # FP16 weights + FP16 KV reference row.
    table["FP16/FP16"] = {
        "recall_f1": recall.evaluate(model, FP16KVCache),
        "continuation_bleu": contin.evaluate(model, FP16KVCache, refs),
    }
    for name, factory in caches.items():
        table[f"W4A8/{name}"] = {
            "recall_f1": recall.evaluate(
                model, factory, weights=w4a8.weights, act_quant=w4a8.act_quant
            ),
            "continuation_bleu": contin.evaluate(
                model, factory, refs, weights=w4a8.weights,
                act_quant=w4a8.act_quant,
            ),
        }
    return table


def test_bench_table3_generation(benchmark):
    table = run_once(benchmark, experiment)
    rows = [[k, v["recall_f1"], v["continuation_bleu"]] for k, v in table.items()]
    print()
    print(render_table(
        ["config", "recall F1 (TriviaQA sub)", "continuation BLEU (TruthfulQA sub)"],
        rows, title=f"Tbl. III (generation tasks, {MODEL})", ndigits=3,
    ))
    save_result("table3_generation", table)

    # Shape: MANT4 KV >= INT4 KV, close to the FP16 cache.  The recall
    # column is only informative when the stand-in model formed
    # induction heads (FP16 recall clearly above chance); otherwise the
    # comparison is carried by the continuation-BLEU metric and the
    # recall numbers are reported for the record (EXPERIMENTS.md).
    if table["FP16/FP16"]["recall_f1"] > 0.1:
        assert (
            table["W4A8/MANT4 KV"]["recall_f1"]
            >= table["W4A8/INT4 KV"]["recall_f1"] - 0.05
        )
    else:
        print("  note: FP16 recall at chance level — induction heads did "
              "not form in the training budget; see EXPERIMENTS.md.")
    assert (
        table["W4A8/MANT4 KV"]["continuation_bleu"]
        >= table["W4A8/INT4 KV"]["continuation_bleu"] - 0.05
    )
