"""Tbl. IV — area of core components and buffers (28 nm).

Component unit areas come from the paper's synthesis (DESIGN.md §7);
the model reproduces the composed core areas: MANT 0.302 mm², OliVe
0.337 mm², ANT 0.327 mm², Tender 0.317 mm².
"""

from repro.analysis.reporting import render_table
from repro.hardware.area import area_table

from common import run_once, save_result


def test_bench_table4_area(benchmark):
    rows_raw = run_once(benchmark, area_table)
    rows = [[r["architecture"], r["core_mm2"], r["total_mm2"]] for r in rows_raw]
    print()
    print(render_table(["architecture", "core mm2", "total mm2"], rows,
                       title="Tbl. IV (area)", ndigits=3))
    for r in rows_raw:
        print(f"  {r['architecture']}: " + ", ".join(
            f"{k}={v:.4f}" for k, v in r["breakdown"].items()))
    save_result("table4_area", rows_raw)

    areas = {r["architecture"]: r["core_mm2"] for r in rows_raw}
    assert abs(areas["MANT"] - 0.302) < 0.002
    assert abs(areas["OliVe"] - 0.337) < 0.002
    assert abs(areas["ANT"] - 0.327) < 0.002
    assert abs(areas["Tender"] - 0.317) < 0.002
