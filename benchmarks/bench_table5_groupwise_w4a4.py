"""Tbl. V — W4A4 perplexity at group sizes 128/64/32 (+ MXFP4 at G-32).

Paper (LLaMA-2-7B, FP16 = 5.47):

    G-128: MANT 6.26 < OliVe 6.43 < ANT 6.49 < INT 6.54
    G-64 : MANT 5.91 < INT 6.14 < OliVe 6.31 < ANT 6.38
    G-32 : MANT 5.76 < INT 5.95 < ANT 6.23 < OliVe 6.72;  MXFP4 7.16

Shape targets: MANT best at every group size and improving as groups
shrink; group-wise ANT falling behind plain INT at G-64/32 (its
per-tensor activation type); OliVe not improving with smaller groups;
MXFP4 worst.
"""

from repro.analysis.reporting import render_table
from repro.model.perplexity import perplexity_from_rows
from repro.model.quantized import PTQConfig, build_ptq
from repro.quant.config import Granularity

from common import load, run_once, save_result

MODEL = "tinyllama-s"
# Width-scaled analogues of the paper's G-128/64/32 (4096-wide rows).
GROUPS = (64, 32, 16)


def experiment():
    model, _corpus, calib, rows = load(MODEL)
    table = {"FP16": {"-": perplexity_from_rows(model, rows)}}
    for g in GROUPS:
        for method in ("mant", "olive", "ant", "int"):
            cfg = PTQConfig(
                method=method, w_bits=4, a_bits=4, group_size=g,
                w_granularity=Granularity.GROUP,
                a_granularity=Granularity.GROUP if method in ("mant", "int") else None,
                label=f"{method}-g{g}",
            )
            table.setdefault(method, {})[f"G-{g}"] = build_ptq(
                model, cfg, calib
            ).ppl(model, rows)
    table["mxfp"] = {
        "G-32": build_ptq(
            model,
            PTQConfig(method="mxfp", w_bits=4, a_bits=4, group_size=32,
                      label="mxfp4-g32"),
            calib,
        ).ppl(model, rows)
    }
    return table


def test_bench_table5_groupwise_w4a4(benchmark):
    table = run_once(benchmark, experiment)
    headers = ["method"] + [f"G-{g}" for g in GROUPS]
    rows = []
    for method in ("mant", "olive", "ant", "int", "mxfp"):
        rows.append([method] + [table[method].get(f"G-{g}") for g in GROUPS])
    print()
    print(render_table(headers, rows,
                       title=f"Tbl. V (W4A4, {MODEL}; FP16 = "
                             f"{table['FP16']['-']:.3f})", ndigits=3))
    save_result("table5_groupwise_w4a4", table)

    finest = f"G-{GROUPS[-1]}"
    # MANT wins at the finest granularity (where its per-group
    # adaptivity is fully exercised) ...
    for method in ("olive", "ant", "int"):
        assert table["mant"][finest] <= table[method][finest] * 1.03, method
    # ... and is the method that *benefits* from shrinking groups
    # (monotone improvement), while OliVe barely moves — the paper's
    # central Tbl. V contrast.
    mant_ppl = [table["mant"][f"G-{g}"] for g in GROUPS]
    assert all(b <= a + 1e-6 for a, b in zip(mant_ppl, mant_ppl[1:]))
    mant_gain = table["mant"][f"G-{GROUPS[0]}"] - table["mant"][finest]
    olive_gain = table["olive"][f"G-{GROUPS[0]}"] - table["olive"][finest]
    assert mant_gain > olive_gain
    # MXFP4 (reported at its spec group of 32) pays the E8M0 scale
    # penalty relative to free-scale FP4 — asserted at the unit level
    # in tests/test_datatypes_float_nf_mxfp.py; recorded here.
