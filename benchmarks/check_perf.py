"""Performance regression gate for the MANT hot loops.

Times the core primitives, compares against the committed baseline in
``artifacts/perf_baseline.json`` and fails on a >2x slowdown of any op.
Also verifies the headline fast-path speedups against the in-repo seed
implementations (``legacy_impl``) and the O(T) decode property, so the
perf architecture cannot silently rot.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/check_perf.py            # gate
    PYTHONPATH=src python benchmarks/check_perf.py --update   # rebaseline
    PYTHONPATH=src python benchmarks/check_perf.py --check-speedups
    PYTHONPATH=src python benchmarks/check_perf.py --quick    # loadgen+fleet smoke

The gate compares wall-clock on the current machine against a baseline
recorded on a (possibly different) machine, hence the generous 2x
threshold: it catches algorithmic regressions (an accidental O(n²), a
dropped LUT cache), not scheduler jitter.  Re-run with ``--update``
after intentional perf-relevant changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import timeit

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.codec import MantCodec
from repro.core.fused import fused_group_gemm, quantize_activations_int8
from repro.core.selection import MseSearchSelector, VarianceSelector
from repro.model.zoo import get_model
from repro.quant.kvcache import FP16KVCache, MantKVCache

from bench_chunked_prefill import (
    chunked_config,
    decode_p95_improvement,
    throughput_ratio,
)
from bench_decode_scaling import decode_chunk_times
from bench_fault_recovery import fault_config, fault_overhead, hooked_workload
from bench_fleet import fleet_recovery_gap, fleet_smoke, fleet_workload
from bench_loadgen import (
    deadline_hit_gain,
    loadgen_smoke,
    smoke_workload,
    urgent_attainment_gain,
)
from bench_observability import obs_config, obs_overhead, observed_workload
from bench_policy_scheduling import (
    fork_prefill_savings,
    high_priority_ttft_gain,
    policy_config,
)
from bench_paged_kv import paged_config, prefix_reuse, throughput_parity
from bench_serve_throughput import CACHE_FACTORIES, make_requests, run_workload
from legacy_impl import LegacyListKVCache, LegacyMantCodec, LegacyMseSearchSelector

BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "artifacts", "perf_baseline.json"
)
SLOWDOWN_LIMIT = 2.0

# Acceptance floors for the fast paths vs the seed implementations.
MIN_SELECT_SPEEDUP = 5.0
MIN_ENCODE_SPEEDUP = 3.0

# Serving: aggregate decode throughput at batch 8 vs 1-by-1 serving of
# the same workload (the continuous-batching payoff).
MIN_SERVE_SPEEDUP = 2.0

# Paged KV cache: decode throughput within 10% of the contiguous arena
# on the same batch-8 workload, and >= 1.5x prefill-block reuse on the
# shared-system-prompt workload (prefix cache actually deduplicating).
MIN_PAGED_VS_ARENA = 0.9
MIN_PREFIX_REUSE = 1.5

# Chunked prefill: decode inter-token p95 on the long-prompt-interleave
# workload must improve >= 1.5x over whole-prompt prefill, and the
# mixed tick must keep >= 0.95x of the paged engine's aggregate batch-8
# throughput (bounded ticks cannot cost real decode throughput).
MIN_CHUNKED_P95_IMPROVEMENT = 1.5
MIN_CHUNKED_VS_PAGED = 0.95

# Policy scheduling: on the saturated mixed-priority workload, urgent
# requests' TTFT p95 under PriorityPolicy must be >= 2x better than
# FCFS; fork-based n=4 parallel sampling must run >= 1.5x fewer prompt
# tokens through the model than n resubmissions of the same prompt.
MIN_PRIORITY_TTFT_GAIN = 2.0
MIN_FORK_PREFILL_SAVINGS = 1.5

# Fault tolerance: with the fault machinery fully engaged but never
# firing (injector attached, per-request timeout armed), the batch-8
# workload must cost <= 1.05x the plain engine — the hooks are tick-
# boundary-only by design and may not tax the steady state.
MAX_FAULT_OVERHEAD = 1.05

# Observability: with spans, request timelines and registry-backed
# stats all on (the default), the batch-8 workload must cost <= 1.05x
# an observe=False engine — a span is two clock reads and a tuple
# append, and the registry swaps `+= 1` for `.inc()`; neither may tax
# the steady state.
MAX_OBS_OVERHEAD = 1.05

# Loadgen/SLO: on the saturated three-class trace (~3x the knee), the
# urgent class's SLO attainment under PriorityPolicy — and its
# deadline hit-rate under EDF — must beat FCFS by >= 0.3 in absolute
# fraction (measured gaps sit around 0.85; the floor is the "policies
# actually work under load" guarantee, not a tight bound).
MIN_URGENT_ATTAINMENT_GAIN = 0.3
MIN_DEADLINE_HIT_GAIN = 0.3

# Fleet recovery: kill one of two replicas near the fleet knee and the
# router must fail every in-flight request over to the survivor — no
# lost completions, so the SLO attainment gap vs the undisturbed run
# stays small, and the crash may only cost recompute: fleet goodput
# (tokens per virtual second) must hold >= 0.75x baseline.  Both runs
# are on the virtual clock, so the measured values (gap 0.00, ratio
# ~0.83) are deterministic; the floors leave margin for workload
# retunes, not for jitter.
MAX_FLEET_RECOVERY_GAP = 0.05
MIN_FLEET_GOODPUT_RATIO = 0.75


def _time(fn, number=10, repeat=3) -> float:
    fn()  # warm caches (grid tables, numpy buffers)
    return min(timeit.repeat(fn, number=number, repeat=repeat)) / number


def build_suite():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((256, 1024))
    x = rng.standard_normal((16, 1024))
    a17 = np.full((256, 16), 17.0)
    amix = rng.choice([0.0, 5.0, 17.0, 60.0, 120.0, -1.0], size=(256, 16))
    groups = rng.standard_normal((4096, 64))

    codec = MantCodec(group_size=64)
    selector = MseSearchSelector(group_size=64)
    var_selector = VarianceSelector(group_size=64)
    enc = codec.encode(w, a17)
    xq = quantize_activations_int8(x, 64)

    def decode_step_cost():
        cache = MantKVCache(group_size=64)
        return sum(decode_chunk_times(cache, tokens=256, chunk=256))

    serve_model, _ = get_model("unit-test")

    def serve_workload():
        requests = make_requests(serve_model.config.vocab_size, n_requests=8)
        return run_workload(serve_model, FP16KVCache, requests, max_batch=8)

    def serve_paged_workload():
        requests = make_requests(serve_model.config.vocab_size, n_requests=8)
        return run_workload(serve_model, FP16KVCache, requests, max_batch=8,
                            config=paged_config())

    def serve_chunked_workload():
        requests = make_requests(serve_model.config.vocab_size, n_requests=8)
        return run_workload(serve_model, FP16KVCache, requests, max_batch=8,
                            config=chunked_config())

    def serve_policy_workload():
        requests = make_requests(serve_model.config.vocab_size, n_requests=8)
        return run_workload(serve_model, FP16KVCache, requests, max_batch=8,
                            config=policy_config())

    def serve_fault_workload():
        requests = make_requests(serve_model.config.vocab_size, n_requests=8)
        return hooked_workload(serve_model, FP16KVCache, requests,
                               config=fault_config())

    def serve_obs_workload():
        requests = make_requests(serve_model.config.vocab_size, n_requests=8)
        return observed_workload(serve_model, FP16KVCache, requests,
                                 config=obs_config())

    def serve_loadgen_workload():
        return smoke_workload(serve_model)

    def serve_fleet_workload():
        return fleet_workload(serve_model)

    return {
        "mse_select": lambda: selector.select(w),
        "fused_select_encode": lambda: selector.select_and_encode(w),
        "encode_single_a": lambda: codec.encode(w, a17),
        "encode_mixed_a": lambda: codec.encode(w, amix),
        "decode": lambda: codec.decode(enc),
        "fused_gemm": lambda: fused_group_gemm(xq, enc),
        "variance_select_batch": lambda: var_selector.select_batch(groups),
        "kv_decode_256_tokens": decode_step_cost,
        "serve_fp16_batch8": serve_workload,
        "serve_paged_batch8": serve_paged_workload,
        "serve_chunked_batch8": serve_chunked_workload,
        "serve_policy_batch8": serve_policy_workload,
        "serve_fault_batch8": serve_fault_workload,
        "serve_obs_batch8": serve_obs_workload,
        "serve_loadgen_smoke": serve_loadgen_workload,
        "serve_fleet_smoke": serve_fleet_workload,
    }


def measure() -> dict[str, float]:
    return {name: _time(fn) for name, fn in build_suite().items()}


def check_speedups() -> list[str]:
    """Assert the fast paths beat the seed implementations."""
    rng = np.random.default_rng(0)
    w = rng.standard_normal((256, 1024))
    a17 = np.full((256, 16), 17.0)

    new_sel = MseSearchSelector(group_size=64)
    old_sel = LegacyMseSearchSelector(group_size=64)
    new_codec = MantCodec(group_size=64)
    old_codec = LegacyMantCodec(group_size=64)

    failures = []
    s_sel = _time(lambda: old_sel.select(w)) / _time(lambda: new_sel.select(w))
    s_enc = _time(lambda: old_codec.encode(w, a17)) / _time(
        lambda: new_codec.encode(w, a17)
    )
    print(f"  MseSearchSelector.select speedup vs seed: {s_sel:5.1f}x "
          f"(floor {MIN_SELECT_SPEEDUP}x)")
    print(f"  MantCodec.encode speedup vs seed:         {s_enc:5.1f}x "
          f"(floor {MIN_ENCODE_SPEEDUP}x)")
    if s_sel < MIN_SELECT_SPEEDUP:
        failures.append(f"select speedup {s_sel:.1f}x < {MIN_SELECT_SPEEDUP}x")
    if s_enc < MIN_ENCODE_SPEEDUP:
        failures.append(f"encode speedup {s_enc:.1f}x < {MIN_ENCODE_SPEEDUP}x")

    # O(T) decode: buffered cache flat, legacy list cache growing.
    flat = decode_chunk_times(MantKVCache(group_size=64), tokens=512, chunk=128)
    listy = decode_chunk_times(
        LegacyListKVCache(MantKVCache(group_size=64)), tokens=512, chunk=128
    )
    r_flat = flat[-1] / flat[0]
    r_list = listy[-1] / listy[0]
    print(f"  decode chunk-cost growth (buffered):      {r_flat:5.2f}x "
          f"(must stay < 2x)")
    print(f"  decode chunk-cost growth (seed list):     {r_list:5.2f}x")
    if r_flat >= 2.0:
        failures.append(f"buffered decode cost grew {r_flat:.2f}x over 512 tokens")

    # Continuous batching: aggregate decode throughput must scale with
    # concurrency for every cache type; the floor is enforced on FP16
    # (pure engine batching, no quantizer noise).
    model, _ = get_model("unit-test")
    for name, factory in CACHE_FACTORIES.items():
        seq_elapsed, seq_stats = run_workload(
            model, factory, make_requests(model.config.vocab_size), max_batch=1
        )
        bat_elapsed, bat_stats = run_workload(
            model, factory, make_requests(model.config.vocab_size), max_batch=8
        )
        speedup = (bat_stats.tokens_generated / bat_elapsed) / (
            seq_stats.tokens_generated / seq_elapsed
        )
        floor = f"(floor {MIN_SERVE_SPEEDUP}x)" if name == "fp16" else ""
        print(f"  serve {name} batch-8 vs sequential:        {speedup:5.2f}x {floor}")
        if name == "fp16" and speedup < MIN_SERVE_SPEEDUP:
            failures.append(
                f"serve fp16 batch-8 speedup {speedup:.2f}x < {MIN_SERVE_SPEEDUP}x"
            )

    # Paged KV cache: no-regression floor vs the contiguous arena (the
    # page-gather/alloc bookkeeping must not cost real throughput), and
    # the prefix cache must actually deduplicate shared prompt pages.
    for name in CACHE_FACTORIES:
        if name == "fp16":
            # Gated: best of 3 so the floor reflects algorithmic cost,
            # not scheduler jitter.  The other types are informational
            # and get a single run.
            ratio = max(throughput_parity(model, name)[2] for _ in range(3))
            print(f"  serve {name} paged vs arena @ batch 8:     {ratio:5.2f}x "
                  f"(floor {MIN_PAGED_VS_ARENA}x)")
            if ratio < MIN_PAGED_VS_ARENA:
                failures.append(
                    f"paged fp16 throughput {ratio:.2f}x arena < {MIN_PAGED_VS_ARENA}x"
                )
        else:
            ratio = throughput_parity(model, name)[2]
            print(f"  serve {name} paged vs arena @ batch 8:     {ratio:5.2f}x ")
    reuse, detail = prefix_reuse(model)
    print(f"  paged prefill-block reuse (shared prefix): {reuse:5.2f}x "
          f"(floor {MIN_PREFIX_REUSE}x; "
          f"{detail['prefill_pages_hit']}/{detail['prefill_pages_total']} "
          "pages shared)")
    if reuse < MIN_PREFIX_REUSE:
        failures.append(
            f"prefix-cache block reuse {reuse:.2f}x < {MIN_PREFIX_REUSE}x"
        )

    # Chunked prefill: the mixed tick must flatten decode latency under
    # long-prompt interleave without costing batch-8 throughput.  Both
    # gates run on FP16 (pure engine behaviour, no quantizer noise) and
    # take the best of 3 so the floors reflect algorithmic cost, not
    # scheduler jitter; the other cache types print informationally.
    for name in CACHE_FACTORIES:
        if name == "fp16":
            imp = max(decode_p95_improvement(model, name)[2] for _ in range(3))
            print(f"  chunked decode-p95 improvement ({name}):    {imp:5.2f}x "
                  f"(floor {MIN_CHUNKED_P95_IMPROVEMENT}x)")
            if imp < MIN_CHUNKED_P95_IMPROVEMENT:
                failures.append(
                    f"chunked decode-p95 improvement {imp:.2f}x < "
                    f"{MIN_CHUNKED_P95_IMPROVEMENT}x"
                )
            ratio = max(throughput_ratio(model, name)[2] for _ in range(3))
            print(f"  chunked vs paged tokens/s @ batch 8 ({name}): {ratio:4.2f}x "
                  f"(floor {MIN_CHUNKED_VS_PAGED}x)")
            if ratio < MIN_CHUNKED_VS_PAGED:
                failures.append(
                    f"chunked batch-8 throughput {ratio:.2f}x paged < "
                    f"{MIN_CHUNKED_VS_PAGED}x"
                )
        else:
            imp = decode_p95_improvement(model, name)[2]
            ratio = throughput_ratio(model, name)[2]
            print(f"  chunked decode-p95 improvement ({name}):   {imp:5.2f}x ")
            print(f"  chunked vs paged tokens/s @ batch 8 ({name}): {ratio:4.2f}x ")

    # Policy scheduling: priority must actually cut urgent TTFT on the
    # saturated backlog (best of 3 — the floor reflects scheduling, not
    # jitter), and fork-based n=4 must share the prefill compute.
    gain = max(high_priority_ttft_gain(model)[2] for _ in range(3))
    print(f"  priority urgent-TTFT p95 gain vs fcfs:     {gain:5.2f}x "
          f"(floor {MIN_PRIORITY_TTFT_GAIN}x)")
    if gain < MIN_PRIORITY_TTFT_GAIN:
        failures.append(
            f"priority urgent-TTFT gain {gain:.2f}x < {MIN_PRIORITY_TTFT_GAIN}x"
        )
    savings = fork_prefill_savings(model)[2]
    print(f"  fork n=4 prefill-token savings vs resubmit:{savings:5.2f}x "
          f"(floor {MIN_FORK_PREFILL_SAVINGS}x)")
    if savings < MIN_FORK_PREFILL_SAVINGS:
        failures.append(
            f"fork n=4 prefill savings {savings:.2f}x < {MIN_FORK_PREFILL_SAVINGS}x"
        )

    # Fault tolerance: the hooks (fault sites + timeout sweep) must be
    # free in the steady state.  Gated on FP16 (pure engine cost), best
    # of 3 so the ceiling reflects the hooks, not scheduler jitter; the
    # other cache types print informationally.
    for name in CACHE_FACTORIES:
        if name == "fp16":
            overhead = min(fault_overhead(model, name)[2] for _ in range(3))
            print(f"  fault-hook steady-state overhead ({name}):  {overhead:5.3f}x "
                  f"(ceiling {MAX_FAULT_OVERHEAD}x)")
            if overhead > MAX_FAULT_OVERHEAD:
                failures.append(
                    f"fault-hook overhead {overhead:.3f}x > {MAX_FAULT_OVERHEAD}x"
                )
        else:
            overhead = fault_overhead(model, name)[2]
            print(f"  fault-hook steady-state overhead ({name}): {overhead:5.3f}x ")

    # Observability: spans + timelines + registry stats, all on by
    # default, must be free in the steady state.  Gated on FP16 (pure
    # engine cost), best of 3 against scheduler jitter; the other cache
    # types print informationally.
    for name in CACHE_FACTORIES:
        if name == "fp16":
            overhead = min(obs_overhead(model, name)[2] for _ in range(3))
            print(f"  observability steady-state overhead ({name}): {overhead:5.3f}x "
                  f"(ceiling {MAX_OBS_OVERHEAD}x)")
            if overhead > MAX_OBS_OVERHEAD:
                failures.append(
                    f"observability overhead {overhead:.3f}x > {MAX_OBS_OVERHEAD}x"
                )
        else:
            overhead = obs_overhead(model, name)[2]
            print(f"  observability steady-state overhead ({name}): {overhead:5.3f}x ")

    # Loadgen/SLO: under the saturated three-class trace the scheduling
    # policies must deliver their urgent-class wins — SLO attainment
    # (priority vs fcfs) and deadline hit-rate (EDF vs fcfs), both as
    # absolute-fraction gaps, best of 3 against wall-clock jitter.
    att_gap = max(urgent_attainment_gain(model)[2] for _ in range(3))
    print(f"  urgent SLO-attainment gap (prio - fcfs):   {att_gap:5.2f} "
          f"(floor {MIN_URGENT_ATTAINMENT_GAIN})")
    if att_gap < MIN_URGENT_ATTAINMENT_GAIN:
        failures.append(
            f"urgent attainment gap {att_gap:.2f} < {MIN_URGENT_ATTAINMENT_GAIN}"
        )
    hit_gap = max(deadline_hit_gain(model)[2] for _ in range(3))
    print(f"  urgent deadline-hit gap (edf - fcfs):      {hit_gap:5.2f} "
          f"(floor {MIN_DEADLINE_HIT_GAIN})")
    if hit_gap < MIN_DEADLINE_HIT_GAIN:
        failures.append(
            f"urgent deadline-hit gap {hit_gap:.2f} < {MIN_DEADLINE_HIT_GAIN}"
        )

    # Fleet recovery: a replica crash near the knee must not lose
    # requests (the hook asserts every record finishes normally) —
    # only headroom, bounded as an attainment gap ceiling and a
    # goodput-ratio floor.  Virtual clock, so single-run deterministic.
    _, _, fgap = fleet_recovery_gap(model)
    print(f"  fleet crash attainment gap (2 replicas):   {fgap['overall']:5.2f} "
          f"(ceiling {MAX_FLEET_RECOVERY_GAP})")
    print(f"  fleet crash goodput ratio vs baseline:     "
          f"{fgap['goodput_ratio']:5.2f} (floor {MIN_FLEET_GOODPUT_RATIO})")
    if fgap["overall"] > MAX_FLEET_RECOVERY_GAP:
        failures.append(
            f"fleet recovery attainment gap {fgap['overall']:.2f} > "
            f"{MAX_FLEET_RECOVERY_GAP}"
        )
    if fgap["goodput_ratio"] < MIN_FLEET_GOODPUT_RATIO:
        failures.append(
            f"fleet crash goodput ratio {fgap['goodput_ratio']:.2f} < "
            f"{MIN_FLEET_GOODPUT_RATIO}"
        )
    return failures


def quick_smoke() -> int:
    """``--quick``: a seconds-scale loadgen + fleet self-check, no sweep.

    Starts with the static invariant lint over ``src`` (strict, no
    baseline — ``repro.lint`` findings of any severity fail the gate),
    then validates the full loadgen contract on the virtual clock
    (bit-for-bit trace reproducibility, replay-identical records,
    sound SLO report) and the fleet chaos contract (two replicas,
    seeded replica crash, replay-identical records and fault log, zero
    lost requests, storage back at baseline) for the arena fp16 engine
    and the mant4 cache — cheap enough for tier-1-adjacent CI runs.
    """
    from repro.lint.cli import main as lint_main

    src_root = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    print("running static invariant lint (repro.lint, strict) ...")
    if lint_main(["--strict", "--no-baseline", src_root]) != 0:
        print("LINT GATE FAILED")
        return 1
    print("lint gate passed")
    model, _ = get_model("unit-test")
    for cache_name in ("fp16", "mant4"):
        try:
            result = loadgen_smoke(model, cache_name)
        except AssertionError as exc:
            print(f"LOADGEN SMOKE FAILED ({cache_name}): {exc}")
            return 1
        print(f"  {cache_name:>6} | {result['requests']} requests in "
              f"{result['duration_s'] * 1e3:6.1f} ms virtual | "
              f"attainment {result['attainment']:6.1%} | goodput "
              f"{result['goodput_tokens_per_s']:7.1f} tok/s | "
              "trace reproducible, replay identical")
    print("loadgen smoke passed")
    print("running fleet smoke (2 replicas, seeded replica crash) ...")
    for cache_name in ("fp16", "mant4"):
        try:
            result = fleet_smoke(model, cache_name)
        except AssertionError as exc:
            print(f"FLEET SMOKE FAILED ({cache_name}): {exc}")
            return 1
        print(f"  {cache_name:>6} | {result['requests']} requests | "
              f"{result['replica_crashes']} crash, "
              f"{result['failovers']} failovers | attainment "
              f"{result['attainment']:6.1%} | chaos replay identical")
    print("fleet smoke passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline")
    parser.add_argument("--check-speedups", action="store_true",
                        help="also verify fast-path speedups vs the seed impls")
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale loadgen/SLO + fleet-chaos smoke "
                             "only (no timings, no sweep)")
    args = parser.parse_args()

    if args.quick:
        print("running loadgen smoke (virtual clock) ...")
        return quick_smoke()

    print("measuring hot-loop timings ...")
    current = measure()
    for name, t in current.items():
        print(f"  {name:>24}: {t * 1e3:8.3f} ms")

    if args.update:
        os.makedirs(os.path.dirname(BASELINE), exist_ok=True)
        with open(BASELINE, "w") as fh:
            json.dump({k: round(v, 6) for k, v in current.items()}, fh, indent=2)
            fh.write("\n")
        print(f"baseline written to {os.path.normpath(BASELINE)}")
        return 0

    if not os.path.exists(BASELINE):
        # A gate that self-bootstraps would approve any regression on a
        # checkout missing the baseline; demand an explicit rebaseline.
        print(f"PERF GATE FAILED: no baseline at {os.path.normpath(BASELINE)} "
              "(run with --update to create one intentionally)")
        return 1

    with open(BASELINE) as fh:
        baseline = json.load(fh)

    failures = []
    for name, t in current.items():
        base = baseline.get(name)
        if base is None:
            print(f"  note: no baseline for {name!r} (run --update)")
            continue
        ratio = t / base
        flag = "FAIL" if ratio > SLOWDOWN_LIMIT else "ok"
        print(f"  {name:>24}: {ratio:5.2f}x baseline  [{flag}]")
        if ratio > SLOWDOWN_LIMIT:
            failures.append(f"{name} slowed down {ratio:.2f}x (> {SLOWDOWN_LIMIT}x)")

    if args.check_speedups:
        print("verifying fast-path speedups vs seed implementations ...")
        failures += check_speedups()

    if failures:
        print("\nPERF GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
