"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper: it
computes the same rows/series the paper reports, prints them, stores
them under ``artifacts/results/`` (the data behind EXPERIMENTS.md), and
wraps the computation in pytest-benchmark so ``pytest benchmarks/
--benchmark-only`` times every experiment.

Models are trained once and cached by :mod:`repro.model.zoo`;
calibration and evaluation rows are cached per session here.
"""

from __future__ import annotations

import functools
import json
import os

import numpy as np

from repro.model.calibrate import calibrate_model
from repro.model.zoo import default_artifacts_dir, get_model

EVAL_TOKENS = 2048
SEQ_LEN = 128

# The stand-in models mirroring the paper's LLaMA/OPT columns.
ACCURACY_MODELS = ("tinyllama-s", "tinyllama-m", "tinyopt-s")

# The paper's group size is 64 on 4096-wide models (1.6% of a row).
# Our stand-ins are 128-192 wide, so the width-scaled equivalent is 32;
# every accuracy bench uses this unless it sweeps group sizes itself.
GROUP = 32


@functools.lru_cache(maxsize=None)
def load(name: str):
    """(model, corpus, calibration, eval_rows) for a zoo model."""
    model, corpus = get_model(name)
    calib = calibrate_model(
        model, corpus, n_batches=3, batch_size=4, seq_len=SEQ_LEN,
        group_size=GROUP,
    )
    rows = corpus.eval_tokens(EVAL_TOKENS, SEQ_LEN)
    return model, corpus, calib, rows


def results_dir() -> str:
    d = os.path.join(default_artifacts_dir(), "results")
    os.makedirs(d, exist_ok=True)
    return d


def save_result(name: str, payload) -> None:
    """Persist one experiment's rows for EXPERIMENTS.md."""

    def default(o):
        if isinstance(o, (np.floating, np.integer)):
            return o.item()
        if isinstance(o, np.ndarray):
            return o.tolist()
        raise TypeError(type(o))

    with open(os.path.join(results_dir(), f"{name}.json"), "w") as f:
        json.dump(payload, f, indent=2, default=default)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
