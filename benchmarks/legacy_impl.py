"""Seed (pre-fast-path) implementations of the MANT hot loops.

These are verbatim-behaviour copies of the library's original
per-candidate-loop selection, per-unique-``a`` mask-loop encode and
list+concatenate KV cache.  They exist only so the benchmark harness
(``bench_micro_codec.py``, ``bench_decode_scaling.py``,
``check_perf.py``) can measure the fast paths against a fixed baseline
inside one process — they are not part of the library API.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import INT_A, MantCodec, MantEncoded
from repro.core.groups import to_groups
from repro.core.mant import MANT_WEIGHT_A_SET, MantGrid
from repro.datatypes.int_type import IntType


def _legacy_nearest_grid_index(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    idx = np.searchsorted(grid, values)
    idx = np.clip(idx, 1, len(grid) - 1)
    left = grid[idx - 1]
    right = grid[idx]
    choose_left = (values - left) <= (right - values)
    return np.where(choose_left, idx - 1, idx)


class LegacyMseSearchSelector:
    """Seed selection: one nearest-point encode per candidate per call."""

    def __init__(self, bits=4, group_size=64, a_candidates=MANT_WEIGHT_A_SET,
                 include_int=True):
        self.bits = bits
        self.group_size = group_size
        self.a_candidates = tuple(float(a) for a in a_candidates)
        self.include_int = include_int
        self._int_type = IntType(bits)

    def _candidate_errors(self, groups, col_weight):
        amax = np.max(np.abs(groups), axis=-1, keepdims=True)
        amax = np.where(amax <= 0, 1.0, amax)
        candidates = list(self.a_candidates)
        if self.include_int:
            candidates.append(INT_A)
        errs = np.empty((len(candidates),) + groups.shape[:-1])
        for k, a in enumerate(candidates):
            if a == INT_A:
                gmax = self._int_type.qmax
                scale = amax / gmax
                q = self._int_type.round_clip(groups / scale)
                recon = q * scale
            else:
                grid = MantGrid(a, self.bits)
                scale = amax / grid.grid_max
                scaled = groups / scale
                gi = _legacy_nearest_grid_index(scaled, grid.grid)
                recon = grid.grid[gi] * scale
            diff = recon - groups
            if col_weight is not None:
                diff = diff * np.sqrt(col_weight)
            errs[k] = np.mean(diff * diff, axis=-1)
        return errs, candidates

    def select(self, w, act_sq_mean=None):
        w = np.asarray(w, dtype=np.float64)
        view = to_groups(w, self.group_size, axis=-1)
        col_weight = None
        if act_sq_mean is not None:
            h = np.asarray(act_sq_mean, dtype=np.float64)
            hview = to_groups(h[None, :], self.group_size, axis=-1)
            col_weight = hview.groups[0]
        errs, candidates = self._candidate_errors(view.groups, col_weight)
        best = np.argmin(errs, axis=0)
        return np.asarray(candidates)[best]


class LegacyMantCodec(MantCodec):
    """Seed encode: per-unique-``a`` Python loop with boolean masks."""

    def encode(self, w, a_per_group) -> MantEncoded:
        w = np.asarray(w, dtype=np.float64)
        view = to_groups(w, self.group_size, axis=-1)
        groups = view.groups
        rows, n_groups, g = groups.shape
        a_per_group = np.asarray(a_per_group, dtype=np.float64)

        sign = np.empty((rows, n_groups, g), dtype=np.int8)
        magnitude = np.empty((rows, n_groups, g), dtype=np.uint8)
        scale = np.empty((rows, n_groups), dtype=np.float64)

        amax = np.max(np.abs(groups), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)

        for a in np.unique(a_per_group):
            mask = a_per_group == a
            vals = groups[mask]
            if a == INT_A:
                gmax = self._int_type.qmax
                s = self._round_scale(amax[mask] / gmax)
                q = self._int_type.round_clip(vals / s[:, None])
                sign[mask] = np.where(q < 0, -1, 1).astype(np.int8)
                magnitude[mask] = np.abs(q).astype(np.uint8)
            else:
                grid = MantGrid(float(a), self.bits)
                s = self._round_scale(amax[mask] / grid.grid_max)
                gi = _legacy_nearest_grid_index(vals / s[:, None], grid.grid)
                L = grid.levels_per_sign
                sign[mask] = np.where(gi >= L, 1, -1).astype(np.int8)
                magnitude[mask] = np.where(gi >= L, gi - L, L - 1 - gi).astype(np.uint8)
            scale[mask] = s
        return MantEncoded(
            sign=sign, magnitude=magnitude, scale=scale,
            a_coeff=a_per_group.copy(), bits=self.bits,
            group_size=self.group_size, original_shape=w.shape, pad=view.pad,
        )


class LegacyListKVCache:
    """Seed MANT KV cache *storage*: Python lists + concatenate per read.

    Quantization arithmetic delegates to a wrapped
    :class:`repro.quant.kvcache.MantKVCache` (so a storage-layout
    comparison isolates the buffer behaviour); reads rebuild the full
    history with ``np.concatenate``/``np.stack`` exactly like the seed,
    which is what made a T-token generation O(T²).
    """

    def __init__(self, inner):
        self._inner = inner   # MantKVCache providing the quantizers
        self._k: list[np.ndarray] = []
        self._v_final: list[np.ndarray] = []
        self._v_staging: list[np.ndarray] = []

    def prefill(self, k, v):
        inner = self._inner
        inner.prefill(k, v)
        self._k = [np.array(inner.keys())]
        seq = np.asarray(v).shape[1]
        staged = inner.staging_fill
        vals = np.array(inner.values())
        self._v_final = [vals[:, : seq - staged]] if seq > staged else []
        self._v_staging = [vals[:, t] for t in range(seq - staged, seq)]

    def append(self, k_t, v_t):
        inner = self._inner
        staging_before = inner.staging_fill
        inner.append(k_t, v_t)
        self._k.append(np.array(inner.keys()[:, -1:, :]))
        if inner.staging_fill == 0 and staging_before == inner.window - 1:
            # Window closed: staged tail becomes one finalized chunk.
            self._v_staging = []
            self._v_final.append(np.array(inner.values()[:, -inner.window :, :]))
        else:
            self._v_staging.append(np.array(inner.values()[:, -1, :]))

    def keys(self):
        return np.concatenate(self._k, axis=1)

    def values(self):
        parts = list(self._v_final)
        if self._v_staging:
            parts.append(np.stack(self._v_staging, axis=1))
        return np.concatenate(parts, axis=1)
