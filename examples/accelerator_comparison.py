"""Accelerator simulation: regenerate the paper's headline HW numbers.

Runs the cycle-approximate simulator over the published LLaMA/OPT
shapes and prints the Fig. 12 (linear layer) and Fig. 13 (sequence
sweep) comparisons for MANT vs Tender / OliVe / ANT* / BitFusion at
equal area.

Run:  python examples/accelerator_comparison.py
"""

import numpy as np

from repro.analysis.reporting import render_series, render_table
from repro.hardware import (
    ACCELERATORS,
    MODEL_SHAPES,
    get_policy,
    simulate_linear_layer,
    simulate_token,
)

geomean = lambda v: float(np.exp(np.mean(np.log(v))))

# ----------------------------------------------------------------------
# Fig. 12: linear layer at sequence length 2048
# ----------------------------------------------------------------------
models = ("llama-7b", "llama-65b", "opt-6.7b", "opt-13b")
speed = {n: [] for n in ACCELERATORS}
energy = {n: [] for n in ACCELERATORS}
rows = []
for model in models:
    shape = MODEL_SHAPES[model]
    res = {
        n: simulate_linear_layer(a, get_policy(n, shape.family), shape, 2048)
        for n, a in ACCELERATORS.items()
    }
    for n in ACCELERATORS:
        s = res[n].cycles / res["MANT"].cycles
        e = res[n].energy.total / res["MANT"].energy.total
        speed[n].append(s)
        energy[n].append(e)
        rows.append([model, n, s, e])
print(render_table(
    ["model", "accelerator", "MANT speedup", "MANT energy reduction"],
    rows, title="Fig. 12 — linear layer (seq 2048, batch 1)",
))
print("\ngeomeans (paper: Tender 1.83/1.39, OliVe 1.96/1.54, "
      "ANT* 2.00/1.57, BitFusion 4.93/4.16):")
for n in ACCELERATORS:
    if n != "MANT":
        print(f"  vs {n:10s} {geomean(speed[n]):.2f}x speed, "
              f"{geomean(energy[n]):.2f}x energy")

# ----------------------------------------------------------------------
# Fig. 13: decode token vs context length (attention takes over)
# ----------------------------------------------------------------------
print()
shape = MODEL_SHAPES["llama-7b"]
seqs = (2048, 8192, 32768, 131072)
for n in ("Tender", "OliVe"):
    series = []
    for s in seqs:
        mant = simulate_token(ACCELERATORS["MANT"], get_policy("MANT", "llama"), shape, s)
        base = simulate_token(ACCELERATORS[n], get_policy(n, "llama"), shape, s)
        series.append(base["total"].cycles / mant["total"].cycles)
    print(render_series(f"Fig. 13 — MANT speedup vs {n} (context 2K-128K)",
                        seqs, series))
print("\nAt 2K the linear layer dominates; at 128K the FP16 KV cache of the")
print("baselines dominates everything — only MANT's 4-bit KV keeps scaling.")
