"""Explore the MANT grid family (paper Fig. 5/6) from the terminal.

Prints, for a sweep of coefficients: the normalised grid, its variance,
the closest classical data type, and an ASCII density sketch showing the
smooth PoT → INT morph.

Run:  python examples/datatype_explorer.py [a ...]
"""

import sys

import numpy as np

from repro.core.mant import MANT_A_MAX, MantGrid, approximate_datatype
from repro.datatypes import fp4_e2m1, int4, nf4, pot4

SWEEP = [0, 5, 10, 17, 25, 40, 60, 90, 125]
if len(sys.argv) > 1:
    SWEEP = [int(a) for a in sys.argv[1:]]

KNOWN = {"pot4": pot4, "fp4": fp4_e2m1, "nf4": nf4, "int4": int4}


def sketch(grid: MantGrid, width: int = 64) -> str:
    """Mark grid positions on a [-1, 1] axis."""
    cells = [" "] * width
    for v in grid.normalized_grid():
        pos = int((v + 1) / 2 * (width - 1))
        cells[pos] = "|"
    return "".join(cells)


def closest_known(grid: MantGrid) -> str:
    best, best_err = "?", np.inf
    mpos = grid.positive_grid / grid.positive_grid[-1]
    for name, dt in KNOWN.items():
        tpos = dt.grid[dt.grid > 0]
        tpos = np.sort(tpos / tpos.max())
        k = min(len(tpos), len(mpos))
        err = float(np.max(np.abs(tpos[-k:] - mpos[-k:])))
        if err < best_err:
            best, best_err = name, err
    return f"{best} (err {best_err:.3f})"


print(f"MANT grid family, a in [0, {MANT_A_MAX}]  (value = ±(a·i + 2^i))\n")
print(f"{'a':>4} {'variance':>9}  {'closest type':<18} grid on [-1, 1]")
for a in SWEEP:
    g = MantGrid(a)
    print(f"{a:4d} {g.normalized_variance():9.4f}  {closest_known(g):<18} {sketch(g)}")

print("\nReverse lookup (paper Fig. 5):")
for name, dt in [("float fp4_e2m1", fp4_e2m1), ("NF4", nf4)]:
    a, err = approximate_datatype(dt)
    print(f"  best a for {name:14s} = {a:g}  (max abs err {err:.3f})")
