"""Fleet demo: N replicas, one engine-shaped surface, survivable faults.

A three-replica :class:`~repro.serve.fleet.FleetRouter` serves greedy
requests over INT4-quantized KV caches while the demo breaks things on
purpose:

1. **Prefix-affinity routing** — cohorts sharing a system prompt land
   on one replica (whose block pool already holds the prefix pages),
   spreading distinct cohorts across the fleet.
2. **Crash failover** — a seeded ``REPLICA_CRASH`` kills a replica
   mid-decode; its in-flight requests fail over to survivors through
   the journal recompute path and every token matches an undisturbed
   fleet bit-for-bit (greedy + deterministic INT4 cache), while the
   dead replica is rebuilt under a new incarnation.
3. **Hedged requests** — a ``REPLICA_STALL`` wedges one replica; after
   the hedge delay the straggling request is duplicated onto a healthy
   replica, the fast copy wins with exact output and the loser is
   cancelled.
4. **Snapshot rotation** — periodic per-replica snapshots with
   keep-last-K disk rotation let a *sampled* (temperature > 0) request
   crashed mid-decode recover RNG-exactly from the last rotation.

Everything runs on a manual clock with the unit-test model, so the
whole demo is seconds-scale and deterministic.

Run:  PYTHONPATH=src python examples/fleet_demo.py
"""

import functools
import os
import tempfile

import numpy as np

from repro.model.zoo import get_model
from repro.quant.kvcache import IntKVCache
from repro.serve import (
    REPLICA_CRASH,
    REPLICA_STALL,
    FaultInjector,
    FleetConfig,
    FleetRouter,
    GenerationRequest,
    SamplingParams,
    ServeConfig,
)

SEED = 11
MAX_TOKENS = 10

print("loading unit-test model ...")
model, _ = get_model("unit-test")
VOCAB = model.config.vocab_size
cache_factory = functools.partial(IntKVCache, bits=4, group_size=16)


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_fleet(fleet_cfg, *, faults=None, clock=None):
    return FleetRouter(
        model, cache_factory, ServeConfig(max_batch_size=4, paged=True),
        fleet_cfg, clock=clock if clock is not None else ManualClock(),
        faults=faults,
    )


def run_to_completion(router, reqs, *, tick_s=0.01, clock=None):
    """Submit everything, step until idle, return {rid: tokens}."""
    for r in reqs:
        router.submit(r)
    while router.has_work():
        router.step()
        if clock is not None:
            clock.advance(tick_s)
    return {r.request_id: router.pop_result(r.request_id).tokens
            for r in reqs}


# ----------------------------------------------------------------------
# 1. Prefix-affinity routing
# ----------------------------------------------------------------------
print("\n== 1. prefix-affinity routing ==")
rng = np.random.default_rng(SEED)
system_prompts = [rng.integers(0, VOCAB, size=16) for _ in range(3)]
reqs = []
for c, sys_prompt in enumerate(system_prompts):
    for i in range(4):
        user = rng.integers(0, VOCAB, size=6)
        reqs.append(GenerationRequest(
            f"cohort{c}-{i}", np.concatenate([sys_prompt, user]),
            max_tokens=MAX_TOKENS))

router = make_fleet(FleetConfig(n_replicas=3, affinity_load_slack=16))
run_to_completion(router, reqs)
fleet = router.stats().summary()["fleet"]
per_replica = {
    name: summary["requests_completed"]
    for name, summary in router.stats().summary()["replicas"].items()
}
print(f"  12 requests in 3 shared-prefix cohorts -> "
      f"{fleet['affinity_hits']} affinity hits, "
      f"{fleet['fallback_routes']} load fallbacks")
print(f"  per-replica completions: {per_replica}")
print("  each cohort decodes over its home replica's cached prefix pages")

# ----------------------------------------------------------------------
# 2. Seeded crash + exact failover
# ----------------------------------------------------------------------
print("\n== 2. replica crash mid-decode, failover to survivors ==")
crash_reqs = [GenerationRequest(f"c{i}", p, max_tokens=MAX_TOKENS)
              for i, p in enumerate(
                  rng.integers(0, VOCAB, size=8) for _ in range(6))]


def crash_run(faults):
    router = make_fleet(FleetConfig(n_replicas=3), faults=faults)
    out = run_to_completion(router, [GenerationRequest(
        r.request_id, r.prompt, max_tokens=r.max_tokens) for r in crash_reqs])
    return router, out


_, undisturbed = crash_run(None)
fi = FaultInjector(seed=SEED)
fi.arm(REPLICA_CRASH, "replica-0", after=3)   # dies on its 4th router tick
router, crashed = crash_run(fi)

assert all(crashed[rid] == undisturbed[rid] for rid in crashed)
fleet = router.stats().summary()["fleet"]
status = router.replica_status()["replica-0"]
print(f"  replica-0 killed mid-decode (seeded, tick 4): "
      f"{fleet['replica_crashes']} crash, {fleet['failovers']} requests "
      "failed over via journal recompute")
print(f"  replica-0 rebuilt as incarnation {status.incarnation}, "
      f"state {status.state}")
print("  every request's tokens identical to the undisturbed fleet "
      "(greedy + INT4 => exact recompute)")

# ----------------------------------------------------------------------
# 3. Hedged requests under a wedged replica
# ----------------------------------------------------------------------
print("\n== 3. hedging: straggler on a wedged replica ==")
clock = ManualClock()
fi = FaultInjector(seed=SEED)
fi.arm(REPLICA_STALL, "replica-0", times=100)   # wedge replica-0 hard
router = make_fleet(FleetConfig(n_replicas=2, hedge_after_s=0.5),
                    faults=fi, clock=clock)

prompt = rng.integers(0, VOCAB, size=8)
reference = make_fleet(FleetConfig(n_replicas=1))
ref_tokens = run_to_completion(
    reference, [GenerationRequest("ref", prompt, max_tokens=MAX_TOKENS)])["ref"]

# The idle fleet routes the request to the wedged replica (stalls are
# invisible to the health model until errors accrue); the hedge layer
# is what rescues it.
router.submit(GenerationRequest("slow", prompt, max_tokens=MAX_TOKENS))
for _ in range(200):
    if not router.has_work():
        break
    router.step()
    clock.advance(0.25)
fleet = router.stats().summary()["fleet"]
tokens = router.pop_result("slow").tokens
assert tokens == ref_tokens
print(f"  hedge_after_s=0.5, wedged replica skipped its ticks -> "
      f"{fleet['hedges_launched']} hedge launched, "
      f"{fleet['hedges_won']} won, {fleet['hedges_cancelled']} loser "
      "cancelled" if fleet["hedges_launched"] else
      "  request routed straight to the healthy replica (no hedge needed)")
print("  winner's tokens exact vs a single-replica reference")

# ----------------------------------------------------------------------
# 4. Snapshot rotation + sampled crash recovery
# ----------------------------------------------------------------------
print("\n== 4. snapshot rotation: sampled request survives a crash ==")
sampled = SamplingParams(temperature=1.0, top_k=8, seed=13)


def sampled_run(snapshot_dir, crash):
    clock = ManualClock()
    cfg = FleetConfig(n_replicas=2, snapshot_interval_s=0.05,
                      snapshot_dir=snapshot_dir, snapshot_keep=2)
    router = make_fleet(cfg, clock=clock)
    router.submit(GenerationRequest("s0", rng_prompt, max_tokens=16,
                                    sampling=sampled))
    for tick in range(400):
        if not router.has_work():
            break
        router.step()
        clock.advance(0.02)
        if crash and tick == 6:
            router.crash_replica(owner)
    return router, router.pop_result("s0").tokens


rng_prompt = np.random.default_rng(SEED + 1).integers(0, VOCAB, size=8)
with tempfile.TemporaryDirectory() as d0, tempfile.TemporaryDirectory() as d1:
    probe = make_fleet(FleetConfig(n_replicas=2))
    probe.submit(GenerationRequest("s0", rng_prompt, max_tokens=16,
                                   sampling=sampled))
    owner = next(name for name, s in probe.replica_status().items()
                 if s.load > 0)
    probe.cancel("s0")

    _, baseline_tokens = sampled_run(d0, crash=False)
    router, recovered_tokens = sampled_run(d1, crash=True)
    snaps = sorted(os.listdir(os.path.join(d1, owner)))
    print(f"  rotation for {owner}: {snaps} (keep-last-2)")

assert recovered_tokens == baseline_tokens
fleet = router.stats().summary()["fleet"]
print(f"  {owner} crashed mid-decode; sampled request restored from the "
      "last rotation snapshot (tokens + RNG state), delta replayed")
print(f"  {fleet['snapshots_written']} snapshots written, "
      f"{fleet['failovers']} failover; recovered tokens identical to the "
      "undisturbed run")

print("\nfleet demo complete: affinity, failover, hedging and snapshot "
      "recovery all verified exact")
