"""Long-context recall with a quantized KV cache (the Tbl. III setup).

Plants key->value facts in a long prompt, then asks the model to recall
them while its KV cache is quantized in real time — FP16 vs INT4 vs
MANT4 caches on the same trained model.

Run:  python examples/generation_with_quantized_kv.py
"""

import functools

from repro.analysis.reporting import render_table
from repro.model import PTQConfig, build_ptq, calibrate_model, get_model
from repro.model.tasks import RecallTask
from repro.quant.kvcache import FP16KVCache, IntKVCache, MantKVCache

print("loading tinyllama-s (trains and caches on first use)...")
model, corpus = get_model("tinyllama-s")
calibration = calibrate_model(model, corpus, n_batches=3, batch_size=4, seq_len=128)

# Weights at MANT W4A8 for every row; only the KV cache changes.
setup = build_ptq(model, PTQConfig(method="mant", w_bits=4, a_bits=8), calibration)

task = RecallTask(vocab_size=model.config.vocab_size,
                  prompt_len=160, n_pairs=4, n_episodes=16)

caches = {
    "FP16": FP16KVCache,
    "INT4": functools.partial(IntKVCache, bits=4, group_size=64),
    "MANT4": functools.partial(MantKVCache, selector=calibration.kv_selector,
                               group_size=64, window=64),
}

rows = []
for name, factory in caches.items():
    f1 = task.evaluate(model, factory, weights=setup.weights,
                       act_quant=setup.act_quant)
    rows.append([f"W4A8 + {name} KV", f1])

print()
print(render_table(["configuration", "recall F1"], rows,
                   title="Key-value recall through the quantized KV cache",
                   ndigits=3))
print("\nShape to expect (paper Tbl. III): MANT4 between INT4 and FP16.")
