"""Real-time KV-cache quantization during decode (paper Sec. V-C, Fig. 8).

Simulates the decode loop explicitly: every generated token appends a
K vector (quantized immediately — spatial) and a V vector (staged at
INT8, re-quantized to MANT4 when the 64-iteration window fills —
temporal).  Prints the staging fill level and the running error of the
effective cache so the two-phase mechanism is visible.

Run:  python examples/kv_cache_streaming.py
"""

import numpy as np

from repro.core.selection import VarianceSelector
from repro.quant.kvcache import IntKVCache, MantKVCache

rng = np.random.default_rng(42)
HEADS, D_HEAD, WINDOW = 4, 64, 64
PREFILL, DECODE = 96, 200

# Calibrate the variance->a map on stand-in calibration groups.
selector = VarianceSelector(group_size=WINDOW).fit(rng.normal(size=(1024, WINDOW)))

mant = MantKVCache(selector=selector, group_size=WINDOW, window=WINDOW)
int4 = IntKVCache(bits=4, group_size=WINDOW)

k0 = rng.normal(size=(HEADS, PREFILL, D_HEAD))
v0 = rng.normal(size=(HEADS, PREFILL, D_HEAD))
# An outlier channel, as the K cache of a real LLM would have.
k0[:, :, 7] *= 12

mant.prefill(k0, v0)
int4.prefill(k0, v0)
k_true = [k0]
v_true = [v0]

print(f"prefill {PREFILL} tokens: staging holds {mant.staging_fill} "
      f"tokens at INT8 (window = {WINDOW})")
print("\ndecode:")
print("  step  staging  K rel-err(MANT)  K rel-err(INT4)  V rel-err(MANT)")
for t in range(DECODE):
    k_t = rng.normal(size=(HEADS, D_HEAD))
    k_t[:, 7] *= 12
    v_t = rng.normal(size=(HEADS, D_HEAD))
    mant.append(k_t, v_t)
    int4.append(k_t, v_t)
    k_true.append(k_t[:, None, :])
    v_true.append(v_t[:, None, :])

    if (t + 1) % 40 == 0:
        kt = np.concatenate(k_true, axis=1)
        vt = np.concatenate(v_true, axis=1)
        rel = lambda a, b: np.mean((a - b) ** 2) / np.mean(b**2)
        print(f"  {t + 1:4d}  {mant.staging_fill:7d}"
              f"  {rel(mant.keys(), kt):15.5f}"
              f"  {rel(int4.keys(), kt):15.5f}"
              f"  {rel(mant.values(), vt):15.5f}")

print("\nThe staging column cycles 0..63: the two-phase window in action.")
print("MANT's adaptive grid absorbs the K outlier channel that stretches INT4.")
