"""End-to-end LLM post-training quantization (the Tbl. II workflow).

Loads a trained stand-in model from the zoo (training on first run,
~2 min), calibrates on held-out data, then compares perplexity across
methods: FP16, INT4, ANT, OliVe, Tender and MANT at several settings —
including the full MANT configuration with the 4-bit KV cache.

Run:  python examples/llm_quantization.py [model]
"""

import sys

from repro.analysis.reporting import render_table
from repro.model import (
    PTQConfig,
    build_ptq,
    calibrate_model,
    get_model,
    perplexity_from_rows,
)

model_name = sys.argv[1] if len(sys.argv) > 1 else "tinyllama-s"
print(f"loading {model_name} (trains and caches on first use)...")
model, corpus = get_model(model_name)

print("calibrating (activation E[x^2] + KV variance ranges)...")
calibration = calibrate_model(model, corpus, n_batches=3, batch_size=4, seq_len=128)
rows = corpus.eval_tokens(2048, 128)

configs = [
    PTQConfig(method="int", w_bits=4, a_bits=8, label="INT4 group weights, A8"),
    PTQConfig(method="ant", w_bits=4, a_bits=4, label="ANT W4A4"),
    PTQConfig(method="olive", w_bits=4, a_bits=4, label="OliVe W4A4"),
    PTQConfig(method="tender", w_bits=4, a_bits=4, label="Tender W4A4"),
    PTQConfig(method="mant", w_bits=4, a_bits=4, label="MANT W4A4"),
    PTQConfig(method="mant", w_bits=4, a_bits=8, label="MANT W4A8"),
    PTQConfig(method="mant", w_bits=4, a_bits=8, kv_method="mant", kv_bits=4,
              attn_act_bits=8, label="MANT W4A8 + KV 8/4"),
]

fp16 = perplexity_from_rows(model, rows)
table = [["FP16", fp16, 0.0, 16.0]]
for cfg in configs:
    setup = build_ptq(model, cfg, calibration)
    ppl = setup.ppl(model, rows)
    table.append([cfg.label, ppl, ppl - fp16, cfg.bits_per_element()])

print()
print(render_table(
    ["configuration", "perplexity", "ppl loss", "weight bits/elem"],
    table, title=f"PTQ comparison on {model_name}", ndigits=3,
))
print("\nShape to expect (paper Tbl. II): MANT W4A4 best of the 4-bit rows;")
print("MANT W4A8 near-lossless; the KV-quantized row only slightly worse.")
