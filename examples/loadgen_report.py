"""Trace-driven load demo: a seeded workload judged against its SLOs.

A three-tenant traffic mix (an ``urgent`` class with priority, a
deadline and a shared system prompt; an interactive ``standard``
class; a throughput-oriented ``bulk`` class) is generated as a
replayable trace, driven through the engine on a deterministic
virtual clock, and scored against a declarative
:class:`~repro.serve.slo.SLOSpec` — per-class TTFT/inter-token/
deadline objectives, attainment and goodput.  Then the saturation
knee: a short binary search for the highest arrival rate the workload
still survives, and the scorecard again just past the knee where FCFS
starts failing the urgent class and :class:`PriorityPolicy` rescues
it.

Everything runs on the tiny unit-test model with a virtual clock
(tick cost charged from a :class:`~repro.serve.loadgen.TickCostModel`)
so the whole report is seconds-scale and bit-for-bit reproducible.

Run:  PYTHONPATH=src python examples/loadgen_report.py
"""

import functools

from repro.model.zoo import get_model
from repro.quant.kvcache import MantKVCache
from repro.serve import (
    ArrivalProcess,
    ClassSLO,
    LengthDist,
    LoadHarness,
    ServeConfig,
    SLOMonitor,
    SLOSpec,
    TrafficClass,
    WorkloadSpec,
    WorkloadTrace,
    evaluate,
    find_knee,
    generate_trace,
)

BATCH = 8
SEED = 7

print("loading unit-test model ...")
model, _ = get_model("unit-test")
cache_factory = functools.partial(MantKVCache, group_size=32, window=32)

# ----------------------------------------------------------------------
# 1. Declare the workload: three tenants, bursty arrivals.
# ----------------------------------------------------------------------
classes = (
    TrafficClass("urgent", weight=1.0,
                 prompt_len=LengthDist.fixed(12),
                 output_len=LengthDist.fixed(8),
                 priority=8, deadline_s=0.12,
                 prefix_tokens=16, prefix_pool=2),
    TrafficClass("standard", weight=2.0,
                 prompt_len=LengthDist.uniform(16, 48),
                 output_len=LengthDist.uniform(8, 16)),
    TrafficClass("bulk", weight=1.0,
                 prompt_len=LengthDist.lognormal(32, 0.6, lo=8, hi=128),
                 output_len=LengthDist.fixed(24)),
)
spec = WorkloadSpec(
    classes=classes,
    arrivals=ArrivalProcess.bursty(rate_low=60.0, rate_high=300.0,
                                   dwell_low_s=0.4, dwell_high_s=0.15),
    n_requests=96, vocab_size=model.config.vocab_size, seed=SEED,
)
trace = generate_trace(spec)
assert generate_trace(spec).to_json() == trace.to_json()  # seeded => bit-for-bit
assert WorkloadTrace.from_json(trace.to_json()).to_json() == trace.to_json()
print(f"\ntrace: {len(trace)} requests over {trace.duration_s:.2f}s "
      f"({trace.offered_rate:.0f} req/s offered, bursty), "
      f"mix {trace.class_counts()}")
print("  same seed regenerates this trace bit-for-bit; "
      "save()/load() round-trips it")

# ----------------------------------------------------------------------
# 2. Declare the objectives and run below saturation.
# ----------------------------------------------------------------------
slo = SLOSpec(classes={
    "urgent": ClassSLO(ttft_p99_s=0.1, deadline_hit_rate=0.8,
                       attainment_target=0.9),
    "standard": ClassSLO(ttft_p99_s=1.5, attainment_target=0.8),
    "bulk": ClassSLO(ttft_p99_s=5.0, attainment_target=0.7),
})


def run(t, policy=None):
    harness = LoadHarness(model, cache_factory,
                          ServeConfig(max_batch_size=BATCH),
                          clock="virtual", policy=policy)
    harness.attach_monitor(SLOMonitor(slo))
    return harness.run(t)


result = run(trace)
report = evaluate(result, slo)
print("\n== scorecard below the knee (virtual clock, mant4 cache) ==")
print(report.render())

mon = result.monitor
print("== live monitor (per-class labeled registries, merged) ==")
for name in sorted(c.name for c in classes):
    print(f"  live {name} attainment during the run: "
          f"{mon.live_attainment(name):.1%}")
for line in mon.to_prometheus().splitlines():
    if line.startswith("repro_slo_requests_"):
        print("  " + line)

# ----------------------------------------------------------------------
# 3. Find the saturation knee for this mix.
# ----------------------------------------------------------------------
print("\n== saturation knee (binary search over offered rate) ==")


def run_at(rate: float):
    s = WorkloadSpec(classes=classes, arrivals=ArrivalProcess.poisson(rate),
                     n_requests=max(24, int(rate * 0.3)),
                     vocab_size=model.config.vocab_size, seed=SEED)
    return evaluate(run(generate_trace(s)), slo)


knee = find_knee(run_at, 50.0, 1200.0, iters=4)
probes = " ".join(f"{p['rate']:.0f}:{'ok' if p['ok'] else 'X'}"
                  for p in knee["probes"])
print(f"  knee ~{knee['knee_rate']:.0f} req/s   probes: {probes}")

# ----------------------------------------------------------------------
# 4. Past the knee, scheduling policy decides who keeps their SLO.
# ----------------------------------------------------------------------
hot_rate = max(2.0 * knee["knee_rate"], 100.0)
hot_spec = WorkloadSpec(classes=classes,
                        arrivals=ArrivalProcess.poisson(hot_rate),
                        n_requests=160,
                        vocab_size=model.config.vocab_size, seed=SEED)
hot = generate_trace(hot_spec)
print(f"\n== past the knee ({hot_rate:.0f} req/s): fcfs vs priority ==")
for policy in ("fcfs", "priority"):
    r = evaluate(run(hot, policy=policy), slo)
    urgent = r.classes["urgent"]
    print(f"  {policy:>8} | urgent attainment {urgent.attainment:6.1%} "
          f"(target {urgent.attainment_target:.0%}) | "
          f"goodput {r.goodput_tokens_per_s:7.1f} tok/s | "
          f"overall {'PASS' if r.ok else 'FAIL'}")
print("  the urgent tenant's SLO survives saturation only because the "
      "scheduler\n  knows about it — same engine, same trace, different "
      "policy.")
