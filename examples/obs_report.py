"""Text dashboard over an exported serving trace.

Renders the Chrome-trace JSON that ``engine.trace.save(path)`` writes
— phase spans, the embedded metrics snapshot and the per-request
timelines — as a terminal report: where tick time goes (phase-time
table), the shape of the latency/size distributions (histogram
sparklines), and what happened to the slowest requests (lifecycle
timelines, fired faults flagged).

Produce a trace first, e.g.::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python examples/obs_report.py \\
        artifacts/results/observability_trace.json

The same file loads graphically at https://ui.perfetto.dev or
``chrome://tracing`` — this report is the no-browser view.
"""

from __future__ import annotations

import argparse
import json

SPARKS = "▁▂▃▄▅▆▇█"

# Render order for the phase table: the tick's phases in execution
# order, nested model spans indented under their parent.
PHASE_ORDER = ["tick", "sweep", "admit", "plan", "pack_prefill",
               "forward", "append", "sample", "deliver", "finish"]
NESTED = {"append": "forward", "deliver": "sample"}


def sparkline(counts) -> str:
    peak = max(counts) if counts and max(counts) > 0 else 1
    return "".join(SPARKS[min(len(SPARKS) - 1,
                              (len(SPARKS) * c) // (peak + 1))]
                   for c in counts)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.1f} µs"


def phase_stats(trace: dict) -> list[dict]:
    """Per-span-name timing rows (times in seconds, execution order)."""
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for ev in trace.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        name = ev["name"]
        totals[name] = totals.get(name, 0.0) + ev.get("dur", 0.0)
        counts[name] = counts.get(name, 0) + 1
    if not totals:
        return []
    tick_total = totals.get("tick", sum(
        t for n, t in totals.items() if n not in NESTED)) or 1.0
    names = [n for n in PHASE_ORDER if n in totals]
    names += sorted(n for n in totals if n not in PHASE_ORDER)
    return [{
        "phase": name,
        "count": counts[name],
        "total_s": totals[name] / 1e6,
        "mean_s": totals[name] / counts[name] / 1e6,
        "pct_of_tick": 100.0 * totals[name] / tick_total,
    } for name in names]


def phase_table(trace: dict) -> list[str]:
    """Total/mean time per span name, as share of total tick time."""
    rows = phase_stats(trace)
    if not rows:
        return ["  (no spans in trace — engine ran with observe=False?)"]
    lines = [f"  {'phase':>14} | {'count':>6} | {'total':>11} | "
             f"{'mean':>11} | % of tick"]
    lines.append("  " + "-" * 64)
    for row in rows:
        name, pct = row["phase"], row["pct_of_tick"]
        label = ("  " + name) if name in NESTED else name
        bar = "#" * int(pct / 5)
        lines.append(
            f"  {label:>14} | {row['count']:6d} | {_fmt_s(row['total_s'])} | "
            f"{_fmt_s(row['mean_s'])} | {pct:5.1f}% {bar}")
    return lines


def metric_sparklines(trace: dict) -> list[str]:
    metrics = trace.get("metrics", {}).get("metrics", {})
    lines = []
    for name, m in metrics.items():
        if m.get("type") != "histogram" or not m.get("count"):
            continue
        counts = m["counts"]
        lines.append(f"  {name:>22} {sparkline(counts)} "
                     f"n={m['count']} mean={m['sum'] / m['count']:.4g}s "
                     f"max={m['max']:.4g}s")
    if not lines:
        return ["  (no non-empty histograms in the metrics snapshot)"]
    # Context line: the counters a dashboard reads first.
    for key in ("tokens_generated", "requests_completed", "retries",
                "preemptions"):
        m = metrics.get(key)
        if m is not None:
            lines.append(f"  {key:>22} = {m['value']}")
    return lines


def timeline_lines(rid: str, events: list[dict]) -> list[str]:
    t0 = events[0]["t"] if events else 0.0
    dur = (events[-1]["t"] - t0) if len(events) > 1 else 0.0
    lines = [f"  {rid}  ({dur * 1e3:.2f} ms, {len(events)} events)"]
    for ev in events:
        detail = {k: v for k, v in ev.items() if k not in ("event", "t")}
        extra = ("  " + " ".join(f"{k}={v}" for k, v in detail.items())
                 if detail else "")
        flag = "  <-- fault" if ev["event"] == "fault" else ""
        lines.append(f"    +{(ev['t'] - t0) * 1e3:9.3f} ms  "
                     f"{ev['event']:<14}{extra}{flag}")
    return lines


def build_report(trace: dict, top: int) -> dict:
    """The whole report as one JSON-serializable dict (``--json``)."""
    spans = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    instants = [e for e in trace.get("traceEvents", []) if e.get("ph") == "i"]
    metrics = trace.get("metrics", {}).get("metrics", {})
    timelines = trace.get("requestTimelines", {})
    ranked = sorted(
        timelines.items(),
        key=lambda kv: (kv[1][-1]["t"] - kv[1][0]["t"]) if len(kv[1]) > 1
        else 0.0,
        reverse=True,
    )
    return {
        "spans": len(spans),
        "instant_events": len(instants),
        "request_timelines": len(timelines),
        "phases": phase_stats(trace),
        "histograms": {
            name: {"count": m["count"], "sum": m["sum"], "max": m["max"],
                   "buckets": m["buckets"], "counts": m["counts"]}
            for name, m in metrics.items()
            if m.get("type") == "histogram" and m.get("count")
        },
        "counters": {
            name: m["value"] for name, m in metrics.items()
            if m.get("type") in ("counter", "gauge")
        },
        "faults": [e.get("args", {}) for e in instants
                   if e["name"] == "fault"],
        "slowest_requests": [{
            "request_id": rid,
            "duration_s": ((events[-1]["t"] - events[0]["t"])
                           if len(events) > 1 else 0.0),
            "events": events,
        } for rid, events in ranked[:top]],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON from engine.trace.save()")
    parser.add_argument("--top", type=int, default=3,
                        help="slowest request timelines to show (default 3)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as machine-readable JSON "
                             "instead of the terminal dashboard")
    args = parser.parse_args()

    with open(args.trace) as fh:
        trace = json.load(fh)

    if args.json:
        print(json.dumps(build_report(trace, args.top), indent=2,
                         sort_keys=True))
        return 0

    spans = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    instants = [e for e in trace.get("traceEvents", []) if e.get("ph") == "i"]
    print(f"trace: {args.trace}")
    print(f"  {len(spans)} spans, {len(instants)} instant events, "
          f"{len(trace.get('requestTimelines', {}))} request timelines")

    print("\n== where tick time goes ==")
    for line in phase_table(trace):
        print(line)

    print("\n== metric distributions ==")
    for line in metric_sparklines(trace):
        print(line)

    faults = [e for e in instants if e["name"] == "fault"]
    if faults:
        print("\n== fired faults ==")
        for ev in faults:
            args_d = ev.get("args", {})
            print("  " + " ".join(f"{k}={v}" for k, v in args_d.items()))

    timelines = trace.get("requestTimelines", {})
    if timelines:
        ranked = sorted(
            timelines.items(),
            key=lambda kv: (kv[1][-1]["t"] - kv[1][0]["t"]) if len(kv[1]) > 1
            else 0.0,
            reverse=True,
        )
        print(f"\n== slowest {min(args.top, len(ranked))} request "
              "timelines ==")
        for rid, events in ranked[:args.top]:
            for line in timeline_lines(rid, events):
                print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
