"""Quickstart: quantize a weight matrix with MANT and verify the math.

Covers the three core ideas in ~60 lines:

1. the MANT grid ``±(a·i + 2^i)`` morphing between data types (Fig. 6),
2. per-group coefficient search + encode/decode (Eq. 4/6),
3. decode-compute fusion: the integer kernel of Eq. 5 matching the
   dequantize-then-matmul reference exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    MantCodec,
    MantGrid,
    MseSearchSelector,
    fused_group_gemm,
    quantize_activations_int8,
    reference_group_gemm,
)
from repro.datatypes import fp4_e2m1, int4, nf4

rng = np.random.default_rng(0)

# ----------------------------------------------------------------------
# 1. One grid, many data types
# ----------------------------------------------------------------------
print("MANT grids (normalised positive side):")
for a, label in [(0, "PoT"), (17, "~float"), (25, "~NormalFloat"), (120, "~INT")]:
    grid = MantGrid(a)
    print(f"  a={a:3d} ({label:13s}): "
          + " ".join(f"{v:.3f}" for v in grid.positive_grid / grid.grid_max))

# ----------------------------------------------------------------------
# 2. Group-wise quantization with per-group coefficient search
# ----------------------------------------------------------------------
w = rng.standard_normal((128, 512))           # (out_features, in_features)
selector = MseSearchSelector(group_size=64)   # Eq. 6 (16-type search)
codec = MantCodec(bits=4, group_size=64)      # Eq. 4

a_per_group = selector.select(w)
encoded = codec.encode(w, a_per_group)
w_hat = codec.decode(encoded)

print(f"\nweights: {w.shape}, groups of 64 along in_features")
print(f"  bits/element incl. metadata: {encoded.bits_per_element():.3f}")
print(f"  MANT-4 reconstruction MSE:   {np.mean((w - w_hat) ** 2):.6f}")
for dt in (int4, fp4_e2m1, nf4):
    print(f"  {dt.name:9s} (tensor-wise) MSE: {dt.mse(w):.6f}")

# ----------------------------------------------------------------------
# 3. Decode-compute fusion (Eq. 5): integer MAC+SAC, no dequantization
# ----------------------------------------------------------------------
x = rng.standard_normal((8, 512))
xq = quantize_activations_int8(x, group_size=64)

y_fused = fused_group_gemm(xq, encoded)       # a·psum1 + psum2, scaled
y_ref = reference_group_gemm(xq, encoded)     # dequantize then matmul

print(f"\nfused INT8xMANT4 GEMM vs dequantized reference:")
print(f"  max |difference| = {np.max(np.abs(y_fused - y_ref)):.2e}  (exact)")
