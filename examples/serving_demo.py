"""Multi-tenant serving demo: concurrent recall requests, one engine.

Eight clients each plant key->value facts in a long prompt (the
Tbl. III decode scenario) and generate a continuation — but instead of
running one at a time, all eight stream through the continuous-batching
engine concurrently over a pooled MANT4-quantized KV cache: tokens
arrive interleaved, finished requests hand their cache slots to queued
ones, and the engine reports throughput / occupancy / queue latency.

The punchline is the determinism guarantee: every client's tokens are
verified identical to what the single-stream decode loop produces —
continuous batching changes latency and throughput, never the output.

Run:  python examples/serving_demo.py
"""

import functools

import numpy as np

from repro.analysis.reporting import render_table
from repro.model import calibrate_model, get_model
from repro.model.tasks import RecallTask, _generate
from repro.quant.kvcache import MantKVCache
from repro.serve import GenerationEngine, GenerationRequest, ServeConfig

N_CLIENTS = 8
MAX_BATCH = 4
MAX_TOKENS = 12

print("loading tinyllama-s (trains and caches on first use)...")
model, corpus = get_model("tinyllama-s")
calibration = calibrate_model(model, corpus, n_batches=3, batch_size=4, seq_len=128)

# One recall episode per client: a long prompt with planted key->value
# pairs, ending on a query key.
task = RecallTask(vocab_size=model.config.vocab_size, prompt_len=160, n_pairs=4)
rng = np.random.default_rng(task.seed)
prompts = [task._build_episode(rng)[0] for _ in range(N_CLIENTS)]

cache_factory = functools.partial(
    MantKVCache, selector=calibration.kv_selector, group_size=64, window=64
)
engine = GenerationEngine(model, cache_factory,
                          ServeConfig(max_batch_size=MAX_BATCH))

requests = [
    GenerationRequest(f"client-{i}", prompt, max_tokens=MAX_TOKENS)
    for i, prompt in enumerate(prompts)
]

print(f"\nserving {N_CLIENTS} concurrent requests "
      f"({MAX_TOKENS} tokens each, max batch {MAX_BATCH}, MANT4 KV cache)...")
arrivals: dict[str, int] = {}
for event in engine.run(requests):
    if event.token is not None:
        arrivals.setdefault(event.request_id, len(arrivals))
print("first-token arrival order: "
      + " ".join(sorted(arrivals, key=arrivals.get)))

print("\nverifying batched output == single-stream output per client...")
rows = []
all_match = True
for i, prompt in enumerate(prompts):
    result = engine.result(f"client-{i}")
    reference = _generate(model, prompt, MAX_TOKENS, cache_factory)
    match = result.tokens == reference
    all_match &= match
    rows.append([
        f"client-{i}",
        " ".join(str(t) for t in result.tokens[:6]) + " ...",
        "yes" if match else "NO",
        result.finish_reason,
        f"{result.queue_latency_s * 1e3:.1f}",
    ])
print(render_table(
    ["request", "tokens (first 6)", "== single-stream", "finish", "queue ms"],
    rows, title="Per-request results"))

st = engine.stats()
print(f"\nengine stats: {st.requests_completed}/{st.requests_submitted} requests, "
      f"{st.tokens_generated} tokens in {st.elapsed_s * 1e3:.0f} ms "
      f"({st.tokens_per_s:.0f} tok/s aggregate)")
print(f"  decode ticks:    {st.decode_ticks}, "
      f"mean batch occupancy {st.mean_batch_occupancy:.2f} of {st.cache_slots} "
      f"lanes (high water {st.cache_slots_high_water})")
print(f"  queue latency:   mean {st.mean_queue_latency_s * 1e3:.1f} ms, "
      f"max {st.max_queue_latency_s * 1e3:.1f} ms")
print(f"\nall outputs identical to single-stream decoding: "
      f"{'yes' if all_match else 'NO'}")

# ----------------------------------------------------------------------
# Same workload over the paged KV cache: every client shares one system
# prompt, so the prefix cache deduplicates the leading pages, admission
# runs on actually-free blocks, and the outputs still match bit for bit.
# ----------------------------------------------------------------------
SYSTEM_LEN = 64
system = np.random.default_rng(7).integers(0, model.config.vocab_size,
                                           size=SYSTEM_LEN)
shared_prompts = [np.concatenate([system, p]) for p in prompts]
paged = GenerationEngine(
    model, cache_factory,
    ServeConfig(max_batch_size=MAX_BATCH, paged=True, block_tokens=64),
    detokenize=lambda toks: " ".join(str(t) for t in toks),
)
paged_results = paged.generate(
    GenerationRequest(f"client-{i}", p, max_tokens=MAX_TOKENS)
    for i, p in enumerate(shared_prompts)
)
pst = paged.stats()
pool = paged.pool
print(f"\npaged engine (block_tokens=64, shared {SYSTEM_LEN}-token system "
      f"prompt):")
print(f"  prefix cache:    {pool.prefill_pages_hit}/{pool.prefill_pages_total} "
      f"prompt pages served from shared blocks "
      f"({pst.prefix_hit_tokens} tokens never re-stored)")
print(f"  pool:            {pool.num_blocks} blocks, high water "
      f"{pst.cache_slots_high_water}, preemptions {pst.preemptions}")
paged_match = all(
    paged_results[f"client-{i}"].tokens
    == _generate(model, p, MAX_TOKENS, cache_factory)
    for i, p in enumerate(shared_prompts)
)
print(f"  paged outputs identical to single-stream decoding: "
      f"{'yes' if paged_match else 'NO'}")

# ----------------------------------------------------------------------
# Chunked prefill: the same shared-prompt workload, but prompts stream
# into the batch in 64-token chunks under a per-tick token budget, so a
# long prompt never stalls the in-flight decoders — and the outputs
# still match the single-stream loop token for token.
# ----------------------------------------------------------------------
chunked = GenerationEngine(
    model, cache_factory,
    ServeConfig(max_batch_size=MAX_BATCH, paged=True, block_tokens=64,
                prefill_chunk_tokens=64, max_tokens_per_tick=128),
)
chunked_results = chunked.generate(
    GenerationRequest(f"client-{i}", p, max_tokens=MAX_TOKENS)
    for i, p in enumerate(shared_prompts)
)
cst = chunked.stats()
print(f"\nchunked engine (prefill_chunk_tokens=64, max_tokens_per_tick=128):")
print(f"  prefill chunks:  {cst.prefill_chunks} mixed-tick chunks across "
      f"{cst.requests_submitted} prompts")
print(f"  latency:         TTFT p95 {cst.ttft_p95_s * 1e3:.1f} ms, "
      f"inter-token p95 {cst.inter_token_p95_s * 1e3:.2f} ms")
chunked_match = all(
    chunked_results[f"client-{i}"].tokens
    == _generate(model, p, MAX_TOKENS, cache_factory)
    for i, p in enumerate(shared_prompts)
)
print(f"  chunked outputs identical to single-stream decoding: "
      f"{'yes' if chunked_match else 'NO'}")
