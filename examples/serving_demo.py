"""Multi-tenant serving demo: concurrent recall requests, one engine.

Eight clients each plant key->value facts in a long prompt (the
Tbl. III decode scenario) and generate a continuation — but instead of
running one at a time, all eight stream through the continuous-batching
engine concurrently over a pooled MANT4-quantized KV cache: tokens
arrive interleaved, finished requests hand their cache slots to queued
ones, and the engine reports throughput / occupancy / queue latency.

The punchline is the determinism guarantee: every client's tokens are
verified identical to what the single-stream decode loop produces —
continuous batching changes latency and throughput, never the output.

The later sections exercise the v2 API — a priority request jumping a
saturated queue, a deadline (EDF) engine, request cancellation through
a `RequestHandle`, and n=4 parallel sampling served from one prefill
via copy-on-write lease forks — and the fault-tolerance machinery: an
injected mid-decode fault quarantined to one request while bystanders
stay bit-identical, per-request timeouts, and drain + snapshot/restore
moving mid-flight work into a fresh engine.

Run:  python examples/serving_demo.py
"""

import functools
import json

import numpy as np

from repro.analysis.reporting import render_table
from repro.model import calibrate_model, get_model
from repro.model.tasks import RecallTask, _generate
from repro.quant.kvcache import MantKVCache
from repro.serve import (
    FORWARD,
    FaultInjector,
    GenerationEngine,
    GenerationRequest,
    SamplingParams,
    ServeConfig,
)

N_CLIENTS = 8
MAX_BATCH = 4
MAX_TOKENS = 12

print("loading tinyllama-s (trains and caches on first use)...")
model, corpus = get_model("tinyllama-s")
calibration = calibrate_model(model, corpus, n_batches=3, batch_size=4, seq_len=128)

# One recall episode per client: a long prompt with planted key->value
# pairs, ending on a query key.
task = RecallTask(vocab_size=model.config.vocab_size, prompt_len=160, n_pairs=4)
rng = np.random.default_rng(task.seed)
prompts = [task._build_episode(rng)[0] for _ in range(N_CLIENTS)]

cache_factory = functools.partial(
    MantKVCache, selector=calibration.kv_selector, group_size=64, window=64
)
engine = GenerationEngine(model, cache_factory,
                          ServeConfig(max_batch_size=MAX_BATCH))

requests = [
    GenerationRequest(f"client-{i}", prompt, max_tokens=MAX_TOKENS)
    for i, prompt in enumerate(prompts)
]

print(f"\nserving {N_CLIENTS} concurrent requests "
      f"({MAX_TOKENS} tokens each, max batch {MAX_BATCH}, MANT4 KV cache)...")
arrivals: dict[str, int] = {}
for event in engine.run(requests):
    if event.token is not None:
        arrivals.setdefault(event.request_id, len(arrivals))
print("first-token arrival order: "
      + " ".join(sorted(arrivals, key=arrivals.get)))

print("\nverifying batched output == single-stream output per client...")
rows = []
all_match = True
for i, prompt in enumerate(prompts):
    result = engine.result(f"client-{i}")
    reference = _generate(model, prompt, MAX_TOKENS, cache_factory)
    match = result.tokens == reference
    all_match &= match
    rows.append([
        f"client-{i}",
        " ".join(str(t) for t in result.tokens[:6]) + " ...",
        "yes" if match else "NO",
        result.finish_reason,
        f"{result.queue_latency_s * 1e3:.1f}",
    ])
print(render_table(
    ["request", "tokens (first 6)", "== single-stream", "finish", "queue ms"],
    rows, title="Per-request results"))

st = engine.stats()
print(f"\nengine stats: {st.requests_completed}/{st.requests_submitted} requests, "
      f"{st.tokens_generated} tokens in {st.elapsed_s * 1e3:.0f} ms "
      f"({st.tokens_per_s:.0f} tok/s aggregate)")
print(f"  decode ticks:    {st.decode_ticks}, "
      f"mean batch occupancy {st.mean_batch_occupancy:.2f} of {st.cache_slots} "
      f"lanes (high water {st.cache_slots_high_water})")
print(f"  queue latency:   mean {st.mean_queue_latency_s * 1e3:.1f} ms, "
      f"max {st.max_queue_latency_s * 1e3:.1f} ms")
print(f"\nall outputs identical to single-stream decoding: "
      f"{'yes' if all_match else 'NO'}")

# ----------------------------------------------------------------------
# Same workload over the paged KV cache: every client shares one system
# prompt, so the prefix cache deduplicates the leading pages, admission
# runs on actually-free blocks, and the outputs still match bit for bit.
# ----------------------------------------------------------------------
SYSTEM_LEN = 64
system = np.random.default_rng(7).integers(0, model.config.vocab_size,
                                           size=SYSTEM_LEN)
shared_prompts = [np.concatenate([system, p]) for p in prompts]
paged = GenerationEngine(
    model, cache_factory,
    ServeConfig.paged(max_batch_size=MAX_BATCH, block_tokens=64),
    detokenize=lambda toks: " ".join(str(t) for t in toks),
)
paged_results = paged.generate(
    GenerationRequest(f"client-{i}", p, max_tokens=MAX_TOKENS)
    for i, p in enumerate(shared_prompts)
)
pst = paged.stats()
pool = paged.pool
print(f"\npaged engine (block_tokens=64, shared {SYSTEM_LEN}-token system "
      f"prompt):")
print(f"  prefix cache:    {pool.prefill_pages_hit}/{pool.prefill_pages_total} "
      f"prompt pages served from shared blocks "
      f"({pst.prefix_hit_tokens} tokens never re-stored)")
print(f"  pool:            {pool.num_blocks} blocks, high water "
      f"{pst.cache_slots_high_water}, preemptions {pst.preemptions}")
paged_match = all(
    paged_results[f"client-{i}"].tokens
    == _generate(model, p, MAX_TOKENS, cache_factory)
    for i, p in enumerate(shared_prompts)
)
print(f"  paged outputs identical to single-stream decoding: "
      f"{'yes' if paged_match else 'NO'}")

# ----------------------------------------------------------------------
# Chunked prefill: the same shared-prompt workload, but prompts stream
# into the batch in 64-token chunks under a per-tick token budget, so a
# long prompt never stalls the in-flight decoders — and the outputs
# still match the single-stream loop token for token.
# ----------------------------------------------------------------------
chunked = GenerationEngine(
    model, cache_factory,
    ServeConfig.chunked(max_batch_size=MAX_BATCH, block_tokens=64),
)
chunked_results = chunked.generate(
    GenerationRequest(f"client-{i}", p, max_tokens=MAX_TOKENS)
    for i, p in enumerate(shared_prompts)
)
cst = chunked.stats()
print(f"\nchunked engine (prefill_chunk_tokens=64, max_tokens_per_tick=128):")
print(f"  prefill chunks:  {cst.prefill_chunks} mixed-tick chunks across "
      f"{cst.requests_submitted} prompts")
print(f"  latency:         TTFT p95 {cst.ttft_p95_s * 1e3:.1f} ms, "
      f"inter-token p95 {cst.inter_token_p95_s * 1e3:.2f} ms")
chunked_match = all(
    chunked_results[f"client-{i}"].tokens
    == _generate(model, p, MAX_TOKENS, cache_factory)
    for i, p in enumerate(shared_prompts)
)
print(f"  chunked outputs identical to single-stream decoding: "
      f"{'yes' if chunked_match else 'NO'}")

# ----------------------------------------------------------------------
# Serving API v2: a priority request jumps a saturated queue, a request
# is cancelled through its handle, a deadline engine runs EDF, and one
# prompt is sampled 4 ways from a single prefill (copy-on-write forks).
# ----------------------------------------------------------------------
print("\n--- serving API v2: policies, lifecycle, parallel sampling ---")

prio = GenerationEngine(
    model, cache_factory,
    ServeConfig.paged(max_batch_size=2, block_tokens=64,
                      scheduler_policy="priority"),
)
first_token_at: dict[str, int] = {}
for i, p in enumerate(shared_prompts[:5]):
    prio.submit(GenerationRequest(f"bg-{i}", p, max_tokens=MAX_TOKENS,
                                  priority=0))
urgent = prio.submit(GenerationRequest("urgent", shared_prompts[5],
                                       max_tokens=MAX_TOKENS, priority=9))
doomed = prio.submit(GenerationRequest("doomed", shared_prompts[6],
                                       max_tokens=MAX_TOKENS))
doomed.cancel()                          # cancelled while still queued
tick = 0
while prio.has_work():
    tick += 1
    for event in prio.step():
        if event.token is not None:
            first_token_at.setdefault(event.request_id, tick)
order = sorted(first_token_at, key=first_token_at.get)
pst2 = prio.stats()
print(f"priority engine ({pst2.scheduler_policy}, 2 lanes, 5 background + "
      f"1 urgent):")
print(f"  first-token order: {' '.join(order)}  "
      f"(urgent submitted last, served #{order.index('urgent') + 1})")
print(f"  cancelled via handle: {doomed!r} -> "
      f"{prio.result('doomed').finish_reason} "
      f"({pst2.requests_cancelled} cancellation)")
print(f"  urgent output still exact: "
      f"{'yes' if urgent.result().tokens == _generate(model, shared_prompts[5], MAX_TOKENS, cache_factory) else 'NO'}")

edf = GenerationEngine(
    model, cache_factory,
    ServeConfig.paged(max_batch_size=2, block_tokens=64,
                      scheduler_policy="deadline"),
)
for i, p in enumerate(shared_prompts[:4]):
    # Later submissions carry tighter deadlines — EDF serves them first.
    edf.submit(GenerationRequest(f"slo-{i}", p, max_tokens=4,
                                 deadline_s=2.0 - 0.4 * i))
edf_first: dict[str, int] = {}
tick = 0
while edf.has_work():
    tick += 1
    for event in edf.step():
        if event.token is not None:
            edf_first.setdefault(event.request_id, tick)
print(f"deadline engine (EDF): service order "
      f"{' '.join(sorted(edf_first, key=edf_first.get))} "
      f"(submission order slo-0..slo-3, deadlines 2.0s -> 0.8s)")

fork = GenerationEngine(
    model, cache_factory,
    ServeConfig.paged(max_batch_size=4, block_tokens=64),
)
nres = fork.generate([GenerationRequest(
    "creative", shared_prompts[7], max_tokens=MAX_TOKENS,
    sampling=SamplingParams(temperature=0.8, seed=42), n=4,
)])["creative"]
fst = fork.stats()
print(f"n=4 parallel sampling (one {shared_prompts[7].size}-token prefill, "
      f"{fork.pool.forks} copy-on-write forks, "
      f"{fst.prefill_tokens} prompt tokens computed):")
for s in nres.samples:
    print(f"  sample {s.index}: {' '.join(str(t) for t in s.tokens[:8])} ... "
          f"({s.finish_reason})")
distinct = len({tuple(s.tokens) for s in nres.samples})
print(f"  distinct continuations: {distinct}/4; "
      f"sample 0 is the classic seed-42 stream (aliased by result.tokens: "
      f"{'yes' if nres.tokens is nres.samples[0].tokens else 'NO'})")
print(f"\nengine stats summary (NaN-free): "
      f"ttft_p95_s={fork.stats().summary()['ttft_p95_s']}")

# ----------------------------------------------------------------------
# Fault tolerance: an injected mid-decode fault fails exactly one
# request (bystanders bit-identical, storage back to baseline), a
# per-request timeout expires mid-queue, and a snapshot taken mid-flight
# restores into a fresh engine that finishes the work.
# ----------------------------------------------------------------------
print("\n--- fault tolerance: quarantine, timeouts, snapshot/restore ---")

injector = FaultInjector(seed=0).arm(FORWARD, "victim", after=4,
                                     transient=False)
chaos = GenerationEngine(
    model, cache_factory,
    ServeConfig.paged(max_batch_size=4, block_tokens=64),
    faults=injector,
)
chaos.submit(GenerationRequest("victim", shared_prompts[0],
                               max_tokens=MAX_TOKENS))
for i in range(1, 4):
    chaos.submit(GenerationRequest(f"bystander-{i}", shared_prompts[i],
                                   max_tokens=MAX_TOKENS))
chaos.generate()
vres = chaos.result("victim")
bystanders_ok = all(
    chaos.result(f"bystander-{i}").tokens
    == _generate(model, shared_prompts[i], MAX_TOKENS, cache_factory)
    for i in range(1, 4)
)
print(f"forward fault injected into 'victim' on its 4th decode step:")
print(f"  victim: finish={vres.finish_reason!r}, error={vres.error!r}, "
      f"{len(vres.tokens)} tokens kept ({chaos.stats().requests_failed} failed)")
print(f"  3 bystanders bit-identical to single-stream: "
      f"{'yes' if bystanders_ok else 'NO'}; pool blocks back to baseline: "
      f"{'yes' if chaos.pool.blocks_in_use == 0 else 'NO'}")


class _ManualClock:
    t = 0.0

    def __call__(self):
        return self.t


clk = _ManualClock()
slow = GenerationEngine(
    model, cache_factory,
    ServeConfig.paged(max_batch_size=2, block_tokens=64,
                      request_timeout_s=10.0),
    clock=clk,
)
slow.submit(GenerationRequest("patient", shared_prompts[0],
                              max_tokens=MAX_TOKENS))
slow.submit(GenerationRequest("hurried", shared_prompts[1],
                              max_tokens=MAX_TOKENS, timeout_s=0.5))
while slow.has_work():
    clk.t += 0.2            # each tick "costs" 200 ms of wall clock
    slow.step()
print(f"timeouts (engine-wide 10s, per-request override 0.5s, "
      f"200 ms/tick clock):")
print(f"  patient: {slow.result('patient').finish_reason!r}   "
      f"hurried: {slow.result('hurried').finish_reason!r} after "
      f"{len(slow.result('hurried').tokens)} tokens "
      f"({slow.stats().requests_timed_out} timed out, storage released)")

live = GenerationEngine(model, cache_factory,
                        ServeConfig.paged(max_batch_size=2, block_tokens=64))
for i in range(4):          # 2 lanes -> 2 decode mid-flight, 2 queued
    live.submit(GenerationRequest(f"job-{i}", shared_prompts[i],
                                  max_tokens=MAX_TOKENS))
for _ in range(4):
    live.step()
snap = json.loads(json.dumps(live.snapshot()))   # wire-format roundtrip
drained = live.drain()      # finish in-flight work, admit nothing new
resumed = GenerationEngine.restore(snap, model, cache_factory)
resumed.generate()
queued_exact = all(
    resumed.result(f"job-{i}").tokens
    == _generate(model, shared_prompts[i], MAX_TOKENS, cache_factory)
    for i in range(2, 4)    # still queued at snapshot -> replay is exact
)
print(f"snapshot after 4 ticks: "
      f"{sum(len(r['samples'][0]['tokens']) for r in snap['requests'])} tokens "
      f"across {len(snap['requests'])} requests "
      f"({len(json.dumps(snap))} bytes of JSON)")
print(f"  original engine drained: {live.stats().requests_completed} "
      f"in-flight finished, queued left for the restored engine")
print(f"  restored engine finished all "
      f"{resumed.stats().requests_completed}/4; queued-at-snapshot outputs "
      f"exact: {'yes' if queued_exact else 'NO'} "
      f"(mid-decode MANT4 replays under the recompute trade)")

# ---------------------------------------------------------------------------
# 8. Observability: traced requests, phase spans, Prometheus export
# ---------------------------------------------------------------------------
# With ServeConfig.observe (the default) every statistic is a registry
# instrument, every tick records phase spans, and every request keeps a
# lifecycle timeline — retrievable live via handle.trace(), serialized
# into GenerationResult.trace, and exportable as Perfetto JSON via
# engine.trace.save(path) (render it with examples/obs_report.py).
traced = GenerationEngine(
    model, cache_factory,
    ServeConfig.chunked(max_batch_size=4, block_tokens=64,
                        prefill_chunk_tokens=64, max_tokens_per_tick=128),
)
handles = [traced.submit(GenerationRequest(f"obs-{i}", shared_prompts[i],
                                           max_tokens=MAX_TOKENS))
           for i in range(4)]
traced.generate()
timeline = handles[0].trace()
forward_spans = traced.trace.spans("forward")
forward_ms = sum((t1 - t0) for _, t0, t1, _, _ in forward_spans) * 1e3
print(f"observability (4 chunked requests, observe=True by default):")
print(f"  obs-0 timeline: {' -> '.join(timeline.names())}")
print(f"  {len(traced.trace.spans('tick'))} ticks traced; "
      f"{len(forward_spans)} forward spans totalling {forward_ms:.1f} ms; "
      f"result.trace carries {len(traced.result('obs-0').trace)} events")
prom = traced.metrics.to_prometheus()
print(f"  metrics registry: {len(traced.metrics)} instruments, "
      f"{len(prom.splitlines())} Prometheus exposition lines, e.g.")
for line in prom.splitlines():
    if line.startswith("repro_serve_tokens_generated"):
        print(f"    {line}")
