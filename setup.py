"""Setup shim for environments without PEP 660 editable-wheel support.

``pip install -e .`` works wherever the ``wheel`` package is available;
offline environments can fall back to ``python setup.py develop``.
Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
