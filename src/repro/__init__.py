"""Reproduction of M-ANT (HPCA 2025): mathematically adaptive numerical type.

The package is organised as one subpackage per subsystem:

``repro.datatypes``
    Numeric grids used by MANT and every baseline (INT, PoT, flint, FP4,
    NF4, MXFP4, abfloat).
``repro.core``
    The paper's primary contribution: the MANT grid (Eq. 2), codec
    (Eq. 4), decode-compute fusion (Eq. 5), the MSE ``a``-search (Eq. 6)
    and the variance-based real-time selector (Eq. 7).
``repro.quant``
    The group-wise quantization framework and the baseline adaptive
    methods (ANT, OliVe, Tender, per-group clustering), plus the
    real-time KV-cache quantization engine.
``repro.model``
    Pure-numpy transformer LM substrate (LLaMA-style and OPT-style),
    training, perplexity evaluation and generation tasks.
``repro.hardware``
    Cycle-approximate systolic-array accelerator simulator with energy,
    area and memory models for MANT and the baseline accelerators.
``repro.analysis``
    Distribution diversity statistics and table/figure reporting helpers.

Quickstart::

    import numpy as np
    from repro import MantQuantizer

    rng = np.random.default_rng(0)
    w = rng.standard_normal((256, 512))
    q = MantQuantizer(group_size=64)
    packed = q.quantize(w)
    w_hat = q.dequantize(packed)
    print(np.abs(w - w_hat).mean())
"""

from repro.core.mant import MantGrid, MANT_WEIGHT_A_SET
from repro.core.codec import MantCodec, MantEncoded
from repro.core.fused import fused_group_gemm, reference_group_gemm
from repro.core.selection import MseSearchSelector, VarianceSelector
from repro.quant.config import QuantConfig, Granularity
from repro.quant.mant_framework import MantQuantizer, MantModelQuantizer
from repro.quant.quantizer import GroupQuantizer, quantize_dequantize

__all__ = [
    "MantGrid",
    "MANT_WEIGHT_A_SET",
    "MantCodec",
    "MantEncoded",
    "fused_group_gemm",
    "reference_group_gemm",
    "MseSearchSelector",
    "VarianceSelector",
    "QuantConfig",
    "Granularity",
    "MantQuantizer",
    "MantModelQuantizer",
    "GroupQuantizer",
    "quantize_dequantize",
]

__version__ = "1.0.0"
