"""Distribution analysis and reporting helpers."""

from repro.analysis.distributions import (
    cdf_curves,
    ks_distance,
    diversity,
    granularity_report,
)
from repro.analysis.reporting import render_table, render_series, fmt
from repro.analysis.features import ArchitectureFeatures, FEATURE_TABLE, feature_rows

__all__ = [
    "cdf_curves",
    "ks_distance",
    "diversity",
    "granularity_report",
    "render_table",
    "render_series",
    "fmt",
    "ArchitectureFeatures",
    "FEATURE_TABLE",
    "feature_rows",
]
