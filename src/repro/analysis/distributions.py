"""Distribution diversity analysis (paper Fig. 3 / Takeaway 1).

Quantifies the paper's key observation: tensors look alike, groups do
not.  ``cdf_curves`` reproduces the Fig. 3 CDF panels; ``diversity``
summarises the spread between units at each granularity with the mean
pairwise Kolmogorov-Smirnov distance of their normalised CDFs.
"""

from __future__ import annotations

import numpy as np

from repro.core.groups import to_groups

__all__ = ["cdf_curves", "ks_distance", "diversity", "granularity_report"]


def _normalize(values: np.ndarray) -> np.ndarray:
    amax = np.max(np.abs(values))
    if amax <= 0:
        return values
    return values / amax


def cdf_curves(units: list[np.ndarray], grid: np.ndarray | None = None):
    """Empirical CDFs of each unit on a shared [-1, 1] grid.

    Each unit (a tensor, channel or group) is normalised to its own
    absmax first, exactly as the paper plots them.
    """
    if grid is None:
        grid = np.linspace(-1, 1, 201)
    curves = np.empty((len(units), grid.size))
    for i, u in enumerate(units):
        v = np.sort(_normalize(np.asarray(u, dtype=np.float64).ravel()))
        curves[i] = np.searchsorted(v, grid, side="right") / v.size
    return grid, curves


def ks_distance(cdf_a: np.ndarray, cdf_b: np.ndarray) -> float:
    """Kolmogorov-Smirnov distance between two CDFs on a shared grid."""
    return float(np.max(np.abs(cdf_a - cdf_b)))


def diversity(units: list[np.ndarray], max_pairs: int = 256, seed: int = 0) -> float:
    """Mean pairwise KS distance across units (higher = more diverse)."""
    _, curves = cdf_curves(units)
    n = len(units)
    if n < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if len(pairs) > max_pairs:
        idx = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[i] for i in idx]
    return float(np.mean([ks_distance(curves[i], curves[j]) for i, j in pairs]))


def granularity_report(
    tensors: dict[str, np.ndarray],
    group_size: int = 64,
    n_units: int = 16,
    seed: int = 0,
) -> dict[str, float]:
    """Diversity at tensor / channel / group level (Fig. 3's panels).

    ``tensors`` maps names to 2-D weight matrices; channels and groups
    are sampled with a stride from one tensor, as the paper does.
    """
    rng = np.random.default_rng(seed)
    names = list(tensors)

    tensor_units = [tensors[n] for n in names[:n_units]]

    first = np.asarray(tensors[names[0]], dtype=np.float64)
    stride = max(1, first.shape[0] // n_units)
    channel_units = [first[i] for i in range(0, stride * n_units, stride)][:n_units]

    view = to_groups(first, group_size, axis=-1)
    flat_groups = view.groups.reshape(-1, view.group_size)
    gstride = max(1, flat_groups.shape[0] // n_units)
    group_units = [flat_groups[i] for i in range(0, gstride * n_units, gstride)][:n_units]

    return {
        "tensor": diversity(tensor_units, seed=rng.integers(1 << 31)),
        "channel": diversity(channel_units, seed=rng.integers(1 << 31)),
        "group": diversity(group_units, seed=rng.integers(1 << 31)),
    }
