"""The qualitative feature matrix of paper Tbl. I.

Encodes each architecture's encode/compute/decode mechanisms and
efficiency ratings so the comparison table can be regenerated (and kept
consistent with what the simulator actually models).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ArchitectureFeatures", "FEATURE_TABLE", "feature_rows"]


@dataclass(frozen=True)
class ArchitectureFeatures:
    name: str
    encode_method: str
    encode_eff: str
    compute_method: str
    compute_bits: str
    compute_eff: str
    decode_method: str
    decode_eff: str
    adaptivity: str


FEATURE_TABLE: tuple[ArchitectureFeatures, ...] = (
    ArchitectureFeatures("INT", "Round", "High", "INT", "4 & 8", "High", "Calculation", "High", "Low"),
    ArchitectureFeatures("OliVe", "Search", "Med.", "INT", "4 & 8", "High", "Decoder", "High", "Med."),
    ArchitectureFeatures("ANT", "Search", "Med.", "INT", "4 & 8", "High", "Decoder", "High", "Med."),
    ArchitectureFeatures("Mokey", "Cluster", "Med.", "Float", "4 & 8", "Med.", "Calculation", "Med.", "Low"),
    ArchitectureFeatures("GOBO", "Cluster", "Low", "Float", "16", "Low", "LUT", "Med.", "High"),
    ArchitectureFeatures("MANT", "Search+Map", "Med./High", "INT", "4 & 8", "High", "Calculation", "High", "High"),
)


def feature_rows() -> list[list[str]]:
    return [
        [
            f.name,
            f.encode_method,
            f.encode_eff,
            f.compute_method,
            f.compute_bits,
            f.compute_eff,
            f.decode_method,
            f.decode_eff,
            f.adaptivity,
        ]
        for f in FEATURE_TABLE
    ]
