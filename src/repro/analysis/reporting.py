"""ASCII table / series rendering for the benchmark harness.

Every bench prints the same rows or series its paper table/figure
reports; these helpers keep the formatting consistent and make the
printed output easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_table", "render_series", "fmt"]


def fmt(value, ndigits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:.3g}"
        return f"{value:.{ndigits}f}"
    return str(value)


def render_table(headers: list[str], rows: list[list], title: str | None = None,
                 ndigits: int = 2) -> str:
    """Render a markdown-ish fixed-width table."""
    cells = [[fmt(c, ndigits) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for row in cells:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(name: str, xs, ys, ndigits: int = 2) -> str:
    """One figure series as ``name: x=y`` pairs."""
    pts = "  ".join(f"{fmt(x, 0)}={fmt(y, ndigits)}" for x, y in zip(xs, ys))
    return f"{name}: {pts}"
