"""MANT core: the paper's primary contribution.

* :mod:`repro.core.mant` — the grid (Eq. 2) and data-type approximation.
* :mod:`repro.core.codec` — group-wise encode/decode (Eq. 4, Fig. 7).
* :mod:`repro.core.fused` — decode-compute fusion (Eq. 5).
* :mod:`repro.core.selection` — MSE search (Eq. 6) and variance mapping (Eq. 7).
* :mod:`repro.core.groups` — group partitioning utilities.
* :mod:`repro.core.metadata` — storage/bit accounting shared with the HW model.
"""

from repro.core.mant import (
    MantGrid,
    MANT_WEIGHT_A_SET,
    MANT_A_MAX,
    approximate_datatype,
    get_mant_grid,
    mant_positive_grid,
)
from repro.core.codec import MantCodec, MantEncoded, GridTables, grid_tables, INT_A
from repro.core.fused import (
    QuantizedActivations,
    quantize_activations_int8,
    combined_weight_terms,
    fused_group_gemm,
    fused_group_gemm_two_psum,
    reference_group_gemm,
    integer_partial_sums,
)
from repro.core.selection import (
    MseSearchSelector,
    VarianceSelector,
    GroupStats,
    group_stats,
)
from repro.core.groups import GroupView, to_groups, from_groups, num_groups
from repro.core.metadata import StorageFormat, MANT4_G64, INT8_G64, FP16_FORMAT
from repro.core.packing import pack_mant, unpack_mant, packed_nbytes

__all__ = [
    "MantGrid",
    "MANT_WEIGHT_A_SET",
    "MANT_A_MAX",
    "approximate_datatype",
    "get_mant_grid",
    "mant_positive_grid",
    "MantCodec",
    "MantEncoded",
    "GridTables",
    "grid_tables",
    "INT_A",
    "QuantizedActivations",
    "quantize_activations_int8",
    "combined_weight_terms",
    "fused_group_gemm",
    "fused_group_gemm_two_psum",
    "reference_group_gemm",
    "integer_partial_sums",
    "MseSearchSelector",
    "VarianceSelector",
    "GroupStats",
    "group_stats",
    "GroupView",
    "to_groups",
    "from_groups",
    "num_groups",
    "StorageFormat",
    "MANT4_G64",
    "INT8_G64",
    "FP16_FORMAT",
    "pack_mant",
    "unpack_mant",
    "packed_nbytes",
]
