"""Group-wise MANT encoding and decoding (paper Eq. 4 / Fig. 7).

:class:`MantCodec` turns a 2-D weight matrix ``(out_features,
in_features)`` into a :class:`MantEncoded` container holding, per group
of ``group_size`` elements along the input dimension:

* the sign-magnitude codes (what the 4-bit memory words hold),
* the FP16 scaling factor ``s_W = max|W_group| / max(grid_a)``,
* the 8-bit coefficient ``a`` (or the INT sentinel).

The encode path is the expensive nearest-point search the paper runs
*offline* for weights; the decode path is cheap and is what the fused
kernel in :mod:`repro.core.fused` folds into the GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.groups import to_groups, from_groups
from repro.core.mant import MantGrid, MANT_A_MAX
from repro.datatypes.int_type import IntType

__all__ = ["MantCodec", "MantEncoded", "INT_A"]

# Sentinel stored in the per-group ``a`` array for groups that chose the
# plain INT option (the 16th data type of Sec. V-A).  Encoded in
# hardware as a reserved value of the 8-bit ``a`` field.
INT_A = -1


@dataclass
class MantEncoded:
    """Encoded weight tensor: codes + per-group metadata.

    ``sign``/``magnitude`` have the grouped shape ``(rows, n_groups,
    group_size)``; ``scale``/``a_coeff`` have ``(rows, n_groups)``.
    """

    sign: np.ndarray          # int8, ±1
    magnitude: np.ndarray     # uint8, 0 .. 2^(bits-1)-1
    scale: np.ndarray         # float (fp16-rounded), per group
    a_coeff: np.ndarray       # float, per group; INT_A marks INT groups
    bits: int
    group_size: int
    original_shape: tuple
    pad: int

    @property
    def rows(self) -> int:
        return self.sign.shape[0]

    @property
    def n_groups(self) -> int:
        return self.sign.shape[1]

    def metadata_bits_per_element(self) -> float:
        """Storage overhead of (scale, a) amortised over the group."""
        return (16 + 8) / self.group_size

    def bits_per_element(self) -> float:
        return self.bits + self.metadata_bits_per_element()


class MantCodec:
    """Encoder/decoder for group-wise MANT weights.

    Parameters
    ----------
    bits:
        Code width (4 in the paper; 2 and 3 also supported).
    group_size:
        Elements per group along the input (accumulation) dimension.
    fp16_scales:
        Round scales to IEEE fp16, matching the paper's 16-bit scaling
        factors.  Disable for exact-arithmetic unit tests.
    """

    def __init__(self, bits: int = 4, group_size: int = 64, fp16_scales: bool = True):
        if bits not in (2, 3, 4):
            raise ValueError(f"MANT codes must be 2-4 bits, got {bits}")
        self.bits = bits
        self.group_size = group_size
        self.fp16_scales = fp16_scales
        self._grids: dict[float, MantGrid] = {}
        self._int_type = IntType(bits)

    # ------------------------------------------------------------------
    def grid(self, a: float) -> MantGrid:
        """Memoised :class:`MantGrid` for coefficient ``a``."""
        key = float(a)
        if key not in self._grids:
            self._grids[key] = MantGrid(key, self.bits)
        return self._grids[key]

    def _round_scale(self, scale: np.ndarray) -> np.ndarray:
        if self.fp16_scales:
            return scale.astype(np.float16).astype(np.float64)
        return scale

    # ------------------------------------------------------------------
    def encode(self, w: np.ndarray, a_per_group: np.ndarray) -> MantEncoded:
        """Encode ``w`` with the given per-group coefficients.

        ``a_per_group`` has shape ``(rows, n_groups)`` and may contain
        :data:`INT_A` entries for groups quantized with plain INT.
        Coefficient selection itself lives in
        :mod:`repro.core.selection`; this method only applies it.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"MantCodec.encode expects 2-D weights, got {w.shape}")
        view = to_groups(w, self.group_size, axis=-1)
        groups = view.groups  # (rows, n_groups, g)
        rows, n_groups, g = groups.shape
        a_per_group = np.asarray(a_per_group, dtype=np.float64)
        if a_per_group.shape != (rows, n_groups):
            raise ValueError(
                f"a_per_group shape {a_per_group.shape} != {(rows, n_groups)}"
            )

        sign = np.empty((rows, n_groups, g), dtype=np.int8)
        magnitude = np.empty((rows, n_groups, g), dtype=np.uint8)
        scale = np.empty((rows, n_groups), dtype=np.float64)

        amax = np.max(np.abs(groups), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)

        # Process groups bucketed by coefficient so each grid's search
        # runs vectorised over every group that selected it.
        for a in np.unique(a_per_group):
            mask = a_per_group == a
            vals = groups[mask]                      # (k, g)
            if a == INT_A:
                gmax = self._int_type.qmax
                s = self._round_scale(amax[mask] / gmax)
                q = self._int_type.round_clip(vals / s[:, None])
                sign[mask] = np.where(q < 0, -1, 1).astype(np.int8)
                magnitude[mask] = np.abs(q).astype(np.uint8)
            else:
                grid = self.grid(a)
                s = self._round_scale(amax[mask] / grid.grid_max)
                sg, mg = grid.encode_sign_magnitude(vals / s[:, None])
                sign[mask] = sg
                magnitude[mask] = mg
            scale[mask] = s

        return MantEncoded(
            sign=sign,
            magnitude=magnitude,
            scale=scale,
            a_coeff=a_per_group.copy(),
            bits=self.bits,
            group_size=self.group_size,
            original_shape=w.shape,
            pad=view.pad,
        )

    # ------------------------------------------------------------------
    def decode(self, enc: MantEncoded) -> np.ndarray:
        """Dequantize back to float, undoing grouping and padding."""
        mag = enc.magnitude.astype(np.float64)
        sgn = enc.sign.astype(np.float64)
        a = enc.a_coeff[..., None]
        # MANT groups: ±(a·i + 2^i); INT groups: ±i.
        mant_vals = sgn * (a * mag + 2.0**mag)
        int_vals = sgn * mag
        vals = np.where(a == INT_A, int_vals, mant_vals)
        vals = vals * enc.scale[..., None]
        view = to_groups(np.zeros(enc.original_shape), self.group_size, axis=-1)
        return from_groups(view, vals)

    # ------------------------------------------------------------------
    def qdq(self, w: np.ndarray, a_per_group: np.ndarray) -> np.ndarray:
        """Encode-then-decode (fake quantization)."""
        return self.decode(self.encode(w, a_per_group))
