"""Group-wise MANT encoding and decoding (paper Eq. 4 / Fig. 7).

:class:`MantCodec` turns a 2-D weight matrix ``(out_features,
in_features)`` into a :class:`MantEncoded` container holding, per group
of ``group_size`` elements along the input dimension:

* the sign-magnitude codes (what the 4-bit memory words hold),
* the FP16 scaling factor ``s_W = max|W_group| / max(grid_a)``,
* the 8-bit coefficient ``a`` (or the INT sentinel).

Encoding works in the *normalized* domain: each group is divided by its
absmax and snapped against the selected grid's precomputed
decision-boundary LUT (one comparator ladder per grid, shared
process-wide).  That makes nearest-point search a single
``searchsorted`` — and, because coefficient selection (in
:mod:`repro.core.selection`) scores candidates against the same
boundary tables, the winning candidate's codes can be reused verbatim
via :meth:`MantCodec.from_codes` without a final re-quantization pass.

Trade-offs vs the seed implementation (all produce valid nearest-point
codes; reconstruction differs only on boundary-adjacent values):

* With ``fp16_scales=True`` decode multiplies by the fp16-rounded
  scale while codes were chosen under the exact absmax, so the ~0.04%
  of elements whose nearest level differs between the two scales land
  on a marginally suboptimal code (+4e-6 relative MSE measured on
  gaussian weights).  Choosing codes under the rounded scale would
  require a per-candidate normalization domain and break the fused
  search.
* INT groups break ties toward the lower level (the comparator-ladder
  rule, same as the MANT grids) where the seed used ``np.rint``'s
  round-half-to-even; values exactly on a ``.5`` quotient — which INT8
  re-staged data can realistically produce — code to an equal-error
  neighbouring level.
* Values within ~1 ulp of a decision boundary can flip to the adjacent
  level in either direction, because the normalized-domain comparison
  (``v/amax`` vs ``boundary/grid_max``) rounds differently than the
  seed's scaled-domain comparison.

The decode path is cheap and is what the fused kernel in
:mod:`repro.core.fused` folds into the GEMM.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.groups import GroupView, to_groups, from_groups
from repro.core.mant import MANT_WEIGHT_A_SET, get_mant_grid
from repro.datatypes.base import grid_boundaries
from repro.datatypes.int_type import IntType

__all__ = ["MantCodec", "MantEncoded", "GridTables", "grid_tables", "INT_A"]

# Sentinel stored in the per-group ``a`` array for groups that chose the
# plain INT option (the 16th data type of Sec. V-A).  Encoded in
# hardware as a reserved value of the 8-bit ``a`` field.
INT_A = -1


@dataclass(frozen=True)
class GridTables:
    """Immutable lookup tables for one grid: the LUT codec's ROM image.

    ``grid_norm`` is the grid scaled to max magnitude 1 and
    ``boundaries_norm`` its decision midpoints, so encoding a group is
    ``searchsorted(boundaries_norm, values / absmax)``.  ``sign`` /
    ``magnitude`` map a grid index straight to the stored sign-magnitude
    code.
    """

    a: float
    bits: int
    grid: np.ndarray            # representable values, ascending
    grid_norm: np.ndarray       # grid / grid_max
    boundaries_norm: np.ndarray  # decision midpoints of grid_norm
    sign: np.ndarray            # int8 ±1 per grid index
    magnitude: np.ndarray       # uint8 magnitude per grid index
    grid_max: float


@lru_cache(maxsize=None)
def grid_tables(a: float, bits: int) -> GridTables:
    """Process-wide memoised :class:`GridTables` for coefficient ``a``.

    ``a == INT_A`` yields the plain symmetric INT grid; anything else a
    MANT grid from :func:`repro.core.mant.get_mant_grid`.
    """
    if a == INT_A:
        itype = IntType(bits)
        grid = itype.grid
        gmax = float(itype.qmax)
        sign = np.where(grid < 0, -1, 1).astype(np.int8)
        magnitude = np.abs(grid).astype(np.uint8)
    else:
        g = get_mant_grid(float(a), bits)
        grid = g.grid
        gmax = g.grid_max
        L = g.levels_per_sign
        idx = np.arange(grid.size)
        sign = np.where(idx >= L, 1, -1).astype(np.int8)
        magnitude = np.where(idx >= L, idx - L, L - 1 - idx).astype(np.uint8)
    grid_norm = grid / gmax
    return GridTables(
        a=float(a),
        bits=bits,
        grid=grid,
        grid_norm=grid_norm,
        boundaries_norm=grid_boundaries(grid_norm),
        sign=sign,
        magnitude=magnitude,
        grid_max=gmax,
    )


@dataclass(frozen=True)
class _StackedTables:
    """Merged lookup tables for a set of grids.

    ``merged_boundaries`` is the sorted union of every grid's normalized
    decision boundaries.  A value's insertion position ``p`` in that
    ladder (one ``searchsorted`` for the whole tensor, regardless of how
    many grids are mixed) determines its code in *every* grid at once:
    ``code_table[u, p]`` is the grid index, ``pos_sign``/``pos_magnitude``
    the sign-magnitude code, for grid ``u``.  ``grid_sign`` /
    ``grid_magnitude`` map per-grid *indices* (rather than merged
    positions) to codes, padded to a common width, for rebuilding an
    encoding from stored indices.
    """

    ladder: "_MergedLadder"
    code_table: np.ndarray         # (n_grids, B+1) intp
    pos_sign: np.ndarray           # (n_grids, B+1) int8
    pos_magnitude: np.ndarray      # (n_grids, B+1) uint8
    grid_sign: np.ndarray          # (n_grids, max_levels) int8
    grid_magnitude: np.ndarray     # (n_grids, max_levels) uint8
    grid_max: np.ndarray           # (n_grids,) float64
    max_levels: int

    @property
    def n_grids(self) -> int:
        return self.grid_max.size


# The paper's 16-type search space: 15 coefficients + INT (the same set
# for every supported bit width).
_CANONICAL_CANDIDATES = tuple(float(a) for a in MANT_WEIGHT_A_SET) + (float(INT_A),)


# The stacked tables and ladders below are keyed by coefficient tuples.
# Encode calls carry data-dependent *subsets* of the searched set
# (whatever the groups of one tensor selected), so subset keys could
# churn without bound over a long generation; any subset of the
# canonical 16-type set is therefore served by one shared canonical
# table (counting positions in a finer merged ladder yields
# bit-identical codes), and the fallback caches for exotic coefficient
# sets are LRU-bounded.
_TABLE_CACHE_SIZE = 64


@lru_cache(maxsize=_TABLE_CACHE_SIZE)
def _stacked_tables(a_tuple: tuple, bits: int) -> _StackedTables:
    tables = [grid_tables(a, bits) for a in a_tuple]
    ladder = _merged_ladder(a_tuple, bits)
    merged = ladder.boundaries
    n, B = len(tables), merged.size
    lmax = max(t.grid.size for t in tables)
    code_table = np.zeros((n, B + 1), dtype=np.intp)
    pos_sign = np.empty((n, B + 1), dtype=np.int8)
    pos_magnitude = np.empty((n, B + 1), dtype=np.uint8)
    grid_sign = np.empty((n, lmax), dtype=np.int8)
    grid_magnitude = np.empty((n, lmax), dtype=np.uint8)
    gmax = np.empty(n)
    for u, t in enumerate(tables):
        k = t.grid.size
        # A value at merged position p satisfies merged[p-1] < v, so its
        # code in grid u counts the u-boundaries <= merged[p-1].
        code_table[u, 1:] = np.searchsorted(t.boundaries_norm, merged, side="right")
        pos_sign[u] = t.sign[code_table[u]]
        pos_magnitude[u] = t.magnitude[code_table[u]]
        # Index-level LUTs padded by repeating the top level.
        grid_sign[u, :k] = t.sign
        grid_sign[u, k:] = t.sign[-1]
        grid_magnitude[u, :k] = t.magnitude
        grid_magnitude[u, k:] = t.magnitude[-1]
        gmax[u] = t.grid_max
    return _StackedTables(
        ladder=ladder,
        code_table=code_table,
        pos_sign=pos_sign,
        pos_magnitude=pos_magnitude,
        grid_sign=grid_sign,
        grid_magnitude=grid_magnitude,
        grid_max=gmax,
        max_levels=lmax,
    )


@dataclass(frozen=True)
class _MergedLadder:
    """Merged decision boundaries of several grids + a bucket LUT.

    ``positions`` computes, for normalized values in ``[-1, 1]``, the
    count of merged boundaries strictly below each value — the quantity
    every per-grid code derives from.  Instead of a binary search per
    element, the range is pre-split into ``n_buckets`` uniform buckets;
    buckets that no boundary touches (with a one-bucket safety margin
    for float rounding at the edges) resolve by a single LUT load, and
    only values in the few straddling buckets fall back to an exact
    ``searchsorted``.  Bit-identical to the plain binary search.
    """

    boundaries: np.ndarray   # (B,) merged normalized boundaries
    bucket_pos: np.ndarray   # (n_buckets,) position, or -1 if ambiguous
    n_buckets: int

    def positions(self, values: np.ndarray) -> np.ndarray:
        """Merged-ladder position (#boundaries < v) per value, exact."""
        flat = values.ravel()
        half = self.n_buckets / 2.0
        idx = ((flat + 1.0) * half).astype(np.intp)
        np.minimum(idx, self.n_buckets - 1, out=idx)
        pos = self.bucket_pos.take(idx)
        ambiguous = pos < 0
        if ambiguous.any():
            pos[ambiguous] = np.searchsorted(
                self.boundaries, flat[ambiguous], side="left"
            )
        return pos.reshape(values.shape)


_LADDER_BUCKETS = 8192


@lru_cache(maxsize=_TABLE_CACHE_SIZE)
def _merged_ladder(a_tuple: tuple, bits: int) -> _MergedLadder:
    merged = np.unique(
        np.concatenate([grid_tables(a, bits).boundaries_norm for a in a_tuple])
    )
    k = _LADDER_BUCKETS
    width = 2.0 / k
    edges = -1.0 + np.arange(k + 1) * width
    # A bucket is unambiguous when the boundary count is identical across
    # its margin-extended interval; the margin absorbs 1-ulp bucket
    # misassignment at the edges, keeping the LUT path exact.
    lo = np.searchsorted(merged, edges[:-1] - width, side="left")
    hi = np.searchsorted(merged, edges[1:] + width, side="right")
    return _MergedLadder(
        boundaries=merged,
        bucket_pos=np.where(lo == hi, lo, -1),
        n_buckets=k,
    )


def _group_absmax(groups: np.ndarray) -> np.ndarray:
    """Per-group absmax with all-zero groups mapped to scale base 1."""
    amax = np.maximum(groups.max(axis=-1), -groups.min(axis=-1))
    return np.where(amax <= 0, 1.0, amax)


@dataclass(frozen=True)
class MantEncoded:
    """Encoded weight tensor: codes + per-group metadata.

    ``sign``/``magnitude`` have the grouped shape ``(rows, n_groups,
    group_size)``; ``scale``/``a_coeff`` have ``(rows, n_groups)``.

    Immutable — fields cannot be rebound and the arrays are
    defensively copied and frozen on construction (caller-owned inputs
    stay writable; view-backed inputs cannot leak mutations through
    their base), so derived data (the fused kernel's precombined
    weight terms) can be cached against the encoding without
    staleness.  To alter codes, build a new encoding (e.g. via
    :meth:`MantCodec.from_codes`).
    """

    sign: np.ndarray          # int8, ±1
    magnitude: np.ndarray     # uint8, 0 .. 2^(bits-1)-1
    scale: np.ndarray         # float (fp16-rounded), per group
    a_coeff: np.ndarray       # float, per group; INT_A marks INT groups
    bits: int
    group_size: int
    original_shape: tuple
    pad: int

    def __post_init__(self):
        for name in ("sign", "magnitude", "scale", "a_coeff"):
            arr = getattr(self, name)
            if arr.base is not None or arr.flags.writeable:
                # Copy rather than freeze in place: freezing the
                # caller's array would be action at a distance, and a
                # view's data stays writable through its base anyway.
                arr = arr.copy()
                arr.flags.writeable = False
                object.__setattr__(self, name, arr)

    @property
    def rows(self) -> int:
        return self.sign.shape[0]

    @property
    def n_groups(self) -> int:
        return self.sign.shape[1]

    def metadata_bits_per_element(self) -> float:
        """Storage overhead of (scale, a) amortised over the group."""
        return (16 + 8) / self.group_size

    def bits_per_element(self) -> float:
        return self.bits + self.metadata_bits_per_element()


class MantCodec:
    """Encoder/decoder for group-wise MANT weights.

    Parameters
    ----------
    bits:
        Code width (4 in the paper; 2 and 3 also supported).
    group_size:
        Elements per group along the input (accumulation) dimension.
    fp16_scales:
        Round scales to IEEE fp16, matching the paper's 16-bit scaling
        factors.  Disable for exact-arithmetic unit tests.
    """

    def __init__(self, bits: int = 4, group_size: int = 64, fp16_scales: bool = True):
        if bits not in (2, 3, 4):
            raise ValueError(f"MANT codes must be 2-4 bits, got {bits}")
        self.bits = bits
        self.group_size = group_size
        self.fp16_scales = fp16_scales
        self._int_type = IntType(bits)

    # ------------------------------------------------------------------
    def grid(self, a: float):
        """Process-wide memoised :class:`MantGrid` for coefficient ``a``."""
        return get_mant_grid(float(a), self.bits)

    def tables(self, a: float) -> GridTables:
        """Process-wide memoised lookup tables for coefficient ``a``."""
        return grid_tables(float(a), self.bits)

    def _round_scale(self, scale: np.ndarray) -> np.ndarray:
        if self.fp16_scales:
            return scale.astype(np.float16).astype(np.float64)
        return scale

    # ------------------------------------------------------------------
    def _resolve_grids(self, a_per_group: np.ndarray):
        """Map per-group coefficients to stacked-table grid ids.

        Coefficient sets inside the canonical 16-type search space share
        that one cached table (code counts are identical under the finer
        merged ladder); only exotic sets build their own, LRU-bounded.
        """
        uniq, inv = np.unique(a_per_group.ravel(), return_inverse=True)
        canon = _CANONICAL_CANDIDATES
        if uniq.size > 1 and set(uniq.tolist()) <= set(canon):
            # Mixed canonical coefficients: share the one canonical
            # table rather than minting a cache entry per subset.
            st = _stacked_tables(canon, self.bits)
            index = {a: i for i, a in enumerate(canon)}
            remap = np.asarray([index[a] for a in uniq.tolist()], dtype=np.intp)
            gid = remap[inv].reshape(a_per_group.shape)
        else:
            # Single coefficient (key space = distinct a values, small)
            # or an exotic set: per-set tables, LRU-bounded.
            st = _stacked_tables(tuple(float(a) for a in uniq), self.bits)
            gid = inv.reshape(a_per_group.shape).astype(np.intp)
        return st, gid

    @staticmethod
    def _flat_gather(table_rows: np.ndarray, row_sel, col_idx: np.ndarray):
        """``table_rows[row_sel[..., None], col_idx]`` via one flat take.

        Flattening the 2-D gather into ``row·width + col`` indices lets
        numpy run a single contiguous ``take`` instead of a broadcast
        advanced-indexing pass — the hot gather of the encode path.
        """
        if table_rows.shape[0] == 1:
            return table_rows[0].take(col_idx)
        lin = col_idx + (row_sel * table_rows.shape[1])[..., None]
        return table_rows.ravel().take(lin)

    # ------------------------------------------------------------------
    def encode(self, w: np.ndarray, a_per_group: np.ndarray) -> MantEncoded:
        """Encode ``w`` with the given per-group coefficients.

        ``a_per_group`` has shape ``(rows, n_groups)`` and may contain
        :data:`INT_A` entries for groups quantized with plain INT.
        Coefficient selection itself lives in
        :mod:`repro.core.selection`; this method only applies it.
        """
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"MantCodec.encode expects 2-D weights, got {w.shape}")
        view = to_groups(w, self.group_size, axis=-1)
        groups = view.groups  # (rows, n_groups, g)
        rows, n_groups, g = groups.shape
        a_per_group = np.asarray(a_per_group, dtype=np.float64)
        if a_per_group.shape != (rows, n_groups):
            raise ValueError(
                f"a_per_group shape {a_per_group.shape} != {(rows, n_groups)}"
            )

        st, gid = self._resolve_grids(a_per_group)
        amax = _group_absmax(groups)
        vnorm = groups / amax[..., None]
        # One bucketized lookup against the merged boundary ladder
        # locates every value in every selected grid simultaneously; the
        # per-group grid choice is then two LUT gathers — no Python loop
        # over coefficient buckets.
        pos = st.ladder.positions(vnorm)
        sign = self._flat_gather(st.pos_sign, gid, pos)
        magnitude = self._flat_gather(st.pos_magnitude, gid, pos)
        scale = self._round_scale(amax / st.grid_max[gid])
        # Freshly allocated here — freeze now so MantEncoded skips its
        # defensive copy (reserved for caller-supplied arrays).
        for arr in (sign, magnitude, scale):
            arr.flags.writeable = False

        return MantEncoded(
            sign=sign,
            magnitude=magnitude,
            scale=scale,
            a_coeff=a_per_group,  # __post_init__ copies and freezes
            bits=self.bits,
            group_size=self.group_size,
            original_shape=w.shape,
            pad=view.pad,
        )

    # ------------------------------------------------------------------
    def from_codes(
        self,
        codes: np.ndarray,
        a_per_group: np.ndarray,
        amax: np.ndarray,
        original_shape: tuple,
        pad: int = 0,
    ) -> MantEncoded:
        """Build a :class:`MantEncoded` from precomputed grid indices.

        ``codes`` holds per-element indices into each group's grid
        (shape ``(rows, n_groups, group_size)``), ``amax`` the per-group
        absmax with zero groups already replaced by 1 — exactly what the
        fused select+encode search in
        :meth:`repro.core.selection.MseSearchSelector.select_and_encode`
        produces.  No nearest-point search happens here; the codes are
        only gathered through the sign/magnitude LUTs, so the result is
        bit-identical to :meth:`encode` with the same coefficients.
        """
        a_per_group = np.asarray(a_per_group, dtype=np.float64)
        st, gid = self._resolve_grids(a_per_group)
        sign = self._flat_gather(st.grid_sign, gid, codes)
        magnitude = self._flat_gather(st.grid_magnitude, gid, codes)
        scale = self._round_scale(amax / st.grid_max[gid])
        # Freshly allocated here — freeze now so MantEncoded skips its
        # defensive copy (reserved for caller-supplied arrays).
        for arr in (sign, magnitude, scale):
            arr.flags.writeable = False
        return MantEncoded(
            sign=sign,
            magnitude=magnitude,
            scale=scale,
            a_coeff=a_per_group,  # __post_init__ copies and freezes
            bits=self.bits,
            group_size=self.group_size,
            original_shape=tuple(original_shape),
            pad=pad,
        )

    # ------------------------------------------------------------------
    def decode(self, enc: MantEncoded) -> np.ndarray:
        """Dequantize back to float, undoing grouping and padding."""
        mag = enc.magnitude.astype(np.float64)
        sgn = enc.sign.astype(np.float64)
        a = enc.a_coeff[..., None]
        # MANT groups: ±(a·i + 2^i); INT groups: ±i.
        mant_vals = sgn * (a * mag + 2.0**mag)
        int_vals = sgn * mag
        vals = np.where(a == INT_A, int_vals, mant_vals)
        vals = vals * enc.scale[..., None]
        # Rebuild the group view metadata directly — encode only accepts
        # 2-D weights grouped along the last axis, so no throwaway
        # allocation is needed to recover shape/pad.
        view = GroupView(
            groups=vals,
            original_shape=tuple(enc.original_shape),
            axis=len(enc.original_shape) - 1,
            pad=enc.pad,
        )
        return from_groups(view)

    # ------------------------------------------------------------------
    def qdq(self, w: np.ndarray, a_per_group: np.ndarray) -> np.ndarray:
        """Encode-then-decode (fake quantization)."""
        return self.decode(self.encode(w, a_per_group))
