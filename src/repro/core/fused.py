"""Decode-compute fusion (paper Eq. 5).

The whole point of MANT's grid being affine in ``(i, 2^i)`` is that a
dot product against integer activations splits into two *integer*
partial sums::

    X · W_grid = a · Σ x·(±i)      (psum1 — multiply-accumulate)
              +     Σ (x·±1) << i  (psum2 — shift-accumulate)

so no per-element dequantization happens before the MAC array.  This
module implements that kernel with numpy integer arithmetic (bit-exact
with what the MAC+SAC PE computes) and a float reference path
(dequantize-then-matmul) used to validate it.

Conventions
-----------
Activations ``X`` are group-quantized INT8 along the accumulation axis
``K``; weights are a :class:`~repro.core.codec.MantEncoded` with groups
along the same axis.  The activation and weight group sizes must match
so each (activation-group x weight-group) product shares one combined
scale ``s_X · s_W``, which is exactly the condition the systolic array
exploits to defer scaling until after accumulation (Sec. VI-E).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codec import MantEncoded, INT_A
from repro.core.groups import to_groups
from repro.datatypes.int_type import IntType

__all__ = [
    "QuantizedActivations",
    "quantize_activations_int8",
    "combined_weight_terms",
    "fused_group_gemm",
    "fused_group_gemm_two_psum",
    "reference_group_gemm",
    "integer_partial_sums",
]


@dataclass
class QuantizedActivations:
    """Group-wise INT8 activations: codes + per-group scales.

    ``codes`` has grouped shape ``(m, n_groups, group_size)`` (int64 to
    keep numpy accumulation exact); ``scale`` is ``(m, n_groups)``.
    """

    codes: np.ndarray
    scale: np.ndarray
    group_size: int
    original_shape: tuple
    pad: int

    def dequantize(self) -> np.ndarray:
        from repro.core.groups import GroupView, from_groups

        vals = self.codes.astype(np.float64) * self.scale[..., None]
        view = GroupView(
            groups=vals,
            original_shape=self.original_shape,
            axis=len(self.original_shape) - 1,
            pad=self.pad,
        )
        return from_groups(view)


def quantize_activations_int8(
    x: np.ndarray, group_size: int = 64, bits: int = 8, fp16_scales: bool = True
) -> QuantizedActivations:
    """Group-wise symmetric INT quantization of activations (Eq. 4).

    The scale uses the group absmax over ``max(INT8) = 127``; the
    hardware derives the max with the streaming comparator of Sec. VI-C.
    """
    x = np.asarray(x, dtype=np.float64)
    itype = IntType(bits)
    view = to_groups(x, group_size, axis=-1)
    groups = view.groups
    amax = np.max(np.abs(groups), axis=-1)
    amax = np.where(amax <= 0, 1.0, amax)
    scale = amax / itype.qmax
    if fp16_scales:
        scale = scale.astype(np.float16).astype(np.float64)
    codes = itype.round_clip(groups / scale[..., None]).astype(np.int64)
    return QuantizedActivations(
        codes=codes,
        scale=scale,
        group_size=group_size,
        original_shape=x.shape,
        pad=view.pad,
    )


# 2^i for every uint8 magnitude, so the precombine gathers instead of
# computing a float pow per element.
_POW2 = 2.0 ** np.arange(256)


def _check_compatible(xq: QuantizedActivations, enc: MantEncoded) -> None:
    if xq.group_size != enc.group_size:
        raise ValueError(
            f"activation group {xq.group_size} != weight group {enc.group_size}"
        )
    if xq.codes.shape[1:] != enc.sign.shape[1:]:
        raise ValueError(
            f"grouped K mismatch: activations {xq.codes.shape[1:]}, "
            f"weights {enc.sign.shape[1:]}"
        )


def integer_partial_sums(xq: QuantizedActivations, enc: MantEncoded):
    """The two integer partial sums of Eq. 5, before any scaling.

    Returns ``(psum1, psum2)`` with shape ``(m, rows, n_groups)`` where
    ``psum1[m, n, G] = Σ_g x[m,G,g] · (±i)[n,G,g]`` (the MAC lane) and
    ``psum2[m, n, G] = Σ_g (x·±1)[m,G,g] << i[n,G,g]`` (the SAC lane).
    All arithmetic is int64 and exact.
    """
    _check_compatible(xq, enc)
    x = xq.codes  # (m, G, g) int64
    w_signed_mag = enc.sign.astype(np.int64) * enc.magnitude.astype(np.int64)
    w_signed_pow = enc.sign.astype(np.int64) * (
        np.int64(1) << enc.magnitude.astype(np.int64)
    )
    psum1 = np.einsum("mGg,nGg->mnG", x, w_signed_mag)
    psum2 = np.einsum("mGg,nGg->mnG", x, w_signed_pow)
    return psum1, psum2


def combined_weight_terms(enc: MantEncoded) -> np.ndarray:
    """Per-element combined integer terms ``±(a·i + 2^i)`` (``±i`` for INT).

    Folding the coefficient into the weight terms collapses the MAC and
    SAC einsums of Eq. 5 into a single contraction: ``a·Σx·(±i) +
    Σx·(±2^i) = Σ x·(a·(±i) + (±2^i))``.  Every entry is an exact
    integer-valued float64 (``a ≤ 128``, ``i ≤ 7``), so the contraction
    stays bit-exact with the two-lane integer path while halving the
    einsum work.  The result is cached against the encoding — safe
    because :class:`MantEncoded` is immutable (frozen fields, read-only
    arrays) — so repeated GEMMs against the same encoding (e.g. every
    decode step) pay the precombine once.
    """
    cached = getattr(enc, "_combined_terms", None)
    if cached is not None:
        return cached
    mag = enc.magnitude.astype(np.float64)
    sgn = enc.sign.astype(np.float64)
    a = enc.a_coeff[..., None]
    pow2 = _POW2.take(enc.magnitude)  # LUT beats a float pow per element
    terms = sgn * np.where(a == INT_A, mag, a * mag + pow2)
    object.__setattr__(enc, "_combined_terms", terms)  # frozen dataclass
    return terms


def fused_group_gemm(xq: QuantizedActivations, enc: MantEncoded) -> np.ndarray:
    """Compute ``X_hat @ W_hat.T`` without dequantizing the weights.

    Implements Eq. 5 with the coefficient precombined into the weight
    terms (:func:`combined_weight_terms`), so the whole integer compute
    is one einsum followed by the per-group scale contraction.
    Bit-exact with :func:`fused_group_gemm_two_psum`, the MAC+SAC
    two-lane formulation the PE array actually implements.  Output
    shape ``(m, rows)``.
    """
    _check_compatible(xq, enc)
    terms = combined_weight_terms(enc)
    psum = np.einsum("mGg,nGg->mnG", xq.codes.astype(np.float64), terms)
    scale = xq.scale[:, None, :] * enc.scale[None, :, :]
    return np.einsum("mnG,mnG->mn", psum, scale)


def fused_group_gemm_two_psum(xq: QuantizedActivations, enc: MantEncoded) -> np.ndarray:
    """Eq. 5 as the hardware computes it: separate MAC and SAC lanes.

    Kept as the validated integer reference for
    :func:`fused_group_gemm`'s single-einsum formulation — per group,
    ``(a·psum1 + psum2) · s_X · s_W`` for MANT groups and plain
    ``psum1 · s_X · s_W`` for INT groups (the INT option uses only the
    MAC lane).
    """
    psum1, psum2 = integer_partial_sums(xq, enc)
    a = enc.a_coeff[None, :, :]                      # (1, n, G)
    is_int = a == INT_A
    mac_coeff = np.where(is_int, 1.0, a)
    sac_coeff = np.where(is_int, 0.0, 1.0)
    combined = mac_coeff * psum1 + sac_coeff * psum2
    scale = xq.scale[:, None, :] * enc.scale[None, :, :]
    return np.einsum("mnG,mnG->mn", combined, scale)


def reference_group_gemm(xq: QuantizedActivations, enc: MantEncoded) -> np.ndarray:
    """Dequantize-then-matmul reference for validating the fused path."""
    from repro.core.codec import MantCodec

    codec = MantCodec(bits=enc.bits, group_size=enc.group_size)
    w_hat = codec.decode(enc)
    x_hat = xq.dequantize()
    return x_hat @ w_hat.T
