"""Group partitioning utilities.

Group-wise quantization treats ``group_size`` contiguous elements along
one axis (the accumulation / inner dimension) as one unit with shared
metadata.  These helpers reshape arbitrary tensors into a canonical
``(..., n_groups, group_size)`` view and back, zero-padding the tail
group when the axis length is not divisible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GroupView", "to_groups", "from_groups", "num_groups"]


def num_groups(length: int, group_size: int) -> int:
    """Number of groups covering ``length`` elements (ceil division)."""
    return -(-length // group_size)


@dataclass
class GroupView:
    """A grouped reshape of a tensor plus the bookkeeping to undo it."""

    groups: np.ndarray        # (..., n_groups, group_size)
    original_shape: tuple
    axis: int
    pad: int                  # zeros appended to fill the tail group

    @property
    def n_groups(self) -> int:
        return self.groups.shape[-2]

    @property
    def group_size(self) -> int:
        return self.groups.shape[-1]


def to_groups(x: np.ndarray, group_size: int, axis: int = -1) -> GroupView:
    """Reshape ``x`` so ``axis`` splits into ``(n_groups, group_size)``.

    The grouped axis is moved to the end, so the result is always
    ``(..., n_groups, group_size)`` regardless of ``axis``.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    x = np.asarray(x)
    axis = axis % x.ndim
    moved = np.moveaxis(x, axis, -1)
    length = moved.shape[-1]
    pad = (-length) % group_size
    if pad:
        pad_width = [(0, 0)] * (moved.ndim - 1) + [(0, pad)]
        moved = np.pad(moved, pad_width)
    grouped = moved.reshape(*moved.shape[:-1], (length + pad) // group_size, group_size)
    return GroupView(groups=grouped, original_shape=x.shape, axis=axis, pad=pad)


def from_groups(view: GroupView, groups: np.ndarray | None = None) -> np.ndarray:
    """Undo :func:`to_groups`, optionally substituting modified groups."""
    g = view.groups if groups is None else groups
    flat = g.reshape(*g.shape[:-2], g.shape[-2] * g.shape[-1])
    if view.pad:
        flat = flat[..., : flat.shape[-1] - view.pad]
    moved = np.moveaxis(flat, -1, view.axis)
    return moved.reshape(view.original_shape)
