"""The MANT grid: ``value(i) = ±(a·i + 2^i)`` (paper Eq. 2).

A :class:`MantGrid` is a concrete data type for one coefficient ``a``;
sweeping ``a`` morphs the grid smoothly between PoT (``a = 0``),
float-like (``a ≈ 17``), NormalFloat-like (``a ≈ 25``) and near-uniform
INT (``a → 128``), which is the paper's Fig. 6.  The grid is
sign-magnitude: codes are a sign bit plus a magnitude index
``i ∈ [0, 2^(bits-1) - 1]``, and there is *no exact zero* — the
nearest-to-zero codes are ±(a·0 + 2^0) = ±1 before scaling.

``MANT_WEIGHT_A_SET`` is the paper's search space for weights and KV
cache (Sec. V-A): 15 coefficients plus the plain-INT option.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.datatypes.base import GridDataType

__all__ = [
    "MantGrid",
    "MANT_WEIGHT_A_SET",
    "MANT_A_MAX",
    "approximate_datatype",
    "get_mant_grid",
    "mant_positive_grid",
]

# Paper Sec. V-A: the 15 searched coefficients.  The 16th option is
# plain INT4, handled by the framework as ``a = None`` (INT_A sentinel).
MANT_WEIGHT_A_SET = (0, 5, 10, 17, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120)

# Paper Sec. IV-A: "we constrain the data range of a within 128,
# allowing 8-bit encoding for a".
MANT_A_MAX = 128


def mant_positive_grid(a: float, bits: int = 4) -> np.ndarray:
    """Positive half of the MANT grid: ``a·i + 2^i`` for each magnitude.

    Strictly increasing in ``i`` for any ``a >= 0`` because both terms
    are non-decreasing and ``2^i`` is strictly increasing.
    """
    if a < 0 or a > MANT_A_MAX:
        raise ValueError(f"coefficient a={a} outside [0, {MANT_A_MAX}]")
    imax = 2 ** (bits - 1) - 1
    i = np.arange(0, imax + 1, dtype=np.float64)
    return a * i + 2.0**i


class MantGrid(GridDataType):
    """MANT data type for a fixed coefficient ``a`` (Eq. 2).

    The grid layout is ``[-pos reversed, +pos]`` so grid index ``g``
    maps to sign-magnitude codes as::

        g <  L: sign = -1, magnitude = L - 1 - g
        g >= L: sign = +1, magnitude = g - L

    with ``L = 2^(bits-1)`` positive levels.
    """

    def __init__(self, a: float, bits: int = 4):
        pos = mant_positive_grid(a, bits)
        grid = np.concatenate([-pos[::-1], pos])
        super().__init__(name=f"mant{bits}[a={a:g}]", bits=bits, grid=grid)
        self.a = float(a)
        self.levels_per_sign = 2 ** (bits - 1)
        self.positive_grid = pos

    # ------------------------------------------------------------------
    # Sign-magnitude codec (what the hardware stores and computes on)
    # ------------------------------------------------------------------
    def encode_sign_magnitude(self, scaled: np.ndarray):
        """Encode scaled values to ``(sign, magnitude)`` arrays.

        ``sign`` is ±1 (int8) and ``magnitude`` the index ``i`` (uint8).
        Equivalent to :meth:`encode` followed by index arithmetic, and
        the representation Eq. 5's fused kernel consumes.
        """
        gi = self.encode(scaled)
        L = self.levels_per_sign
        sign = np.where(gi >= L, 1, -1).astype(np.int8)
        magnitude = np.where(gi >= L, gi - L, L - 1 - gi).astype(np.uint8)
        return sign, magnitude

    def decode_sign_magnitude(self, sign: np.ndarray, magnitude: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode_sign_magnitude` (pre-scaling values)."""
        mag = np.asarray(magnitude, dtype=np.float64)
        return np.asarray(sign, dtype=np.float64) * (self.a * mag + 2.0**mag)

    # ------------------------------------------------------------------
    # Distribution statistics (used by the variance selector, Fig. 6)
    # ------------------------------------------------------------------
    def normalized_variance(self) -> float:
        """Variance of the max-normalised grid under uniform code usage.

        Monotonically increasing in ``a``: PoT grids concentrate mass
        near zero (low variance), INT-like grids spread it uniformly
        (high variance).  This is the theoretical anchor for the
        variance→``a`` mapping of Sec. V-C.
        """
        g = self.normalized_grid()
        return float(np.mean(g * g) - np.mean(g) ** 2)


@lru_cache(maxsize=None)
def get_mant_grid(a: float, bits: int = 4) -> MantGrid:
    """Process-wide memoised :class:`MantGrid`.

    Grids (and their lazily built decision-boundary LUTs) are immutable,
    so every codec, selector and cache in the process shares one
    instance per ``(a, bits)`` instead of rebuilding the tables.
    """
    return MantGrid(float(a), bits)


def approximate_datatype(
    target: GridDataType,
    candidates=None,
    bits: int = 4,
) -> tuple[float, float]:
    """Find the ``a`` whose grid best approximates ``target`` (Fig. 5).

    Both grids are normalised to max magnitude 1 and compared point-wise
    on the positive side (the paper's ``argmin_a |i/7 - (ai + 2^i)/(7a + 2^7)|``
    generalised to all levels).  Returns ``(best_a, max_abs_error)``.
    """
    if candidates is None:
        candidates = np.arange(0, MANT_A_MAX + 1)
    tpos = target.grid[target.grid > 0]
    tpos = np.sort(tpos / tpos.max())
    best_a, best_err = 0.0, np.inf
    for a in candidates:
        mant = get_mant_grid(float(a), bits)
        mpos = mant.positive_grid / mant.positive_grid[-1]
        k = min(len(tpos), len(mpos))
        # Compare the top-k levels (largest magnitudes aligned).
        err = float(np.max(np.abs(tpos[-k:] - mpos[-k:])))
        if err < best_err:
            best_a, best_err = float(a), err
    return best_a, best_err
