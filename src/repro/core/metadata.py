"""Storage accounting for quantized tensors.

The accelerator's memory model needs exact bit counts: group-wise
quantization pays ``16 + 8`` metadata bits per group (FP16 scale + 8-bit
coefficient) on top of the element codes.  These helpers centralise that
arithmetic so accuracy experiments (effective bits per element) and the
hardware simulator (DRAM bytes) agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.groups import num_groups

__all__ = ["StorageFormat", "MANT4_G64", "INT8_G64", "FP16_FORMAT", "KV_MANT4_G64"]

SCALE_BITS = 16   # FP16 scaling factor per group (Sec. III-A)
A_BITS = 8        # 8-bit encoding of the coefficient a (Sec. IV-A)


@dataclass(frozen=True)
class StorageFormat:
    """Bit layout of one quantized tensor format.

    ``group_size = 0`` means tensor-/channel-wise (metadata amortised to
    ~0 for large tensors, modelled as exactly 0 extra bits).
    """

    name: str
    element_bits: int
    group_size: int = 0
    scale_bits: int = SCALE_BITS
    coeff_bits: int = 0

    def bits_per_element(self) -> float:
        if self.group_size <= 0:
            return float(self.element_bits)
        return self.element_bits + (self.scale_bits + self.coeff_bits) / self.group_size

    def tensor_bits(self, n_elements: int, inner_dim: int | None = None) -> int:
        """Total bits to store ``n_elements`` grouped along ``inner_dim``.

        When ``inner_dim`` is given the tail-group padding of each inner
        row is accounted exactly; otherwise groups are assumed full.
        """
        if self.group_size <= 0:
            return n_elements * self.element_bits
        meta = self.scale_bits + self.coeff_bits
        if inner_dim is None:
            groups = num_groups(n_elements, self.group_size)
        else:
            rows = n_elements // inner_dim
            groups = rows * num_groups(inner_dim, self.group_size)
        return n_elements * self.element_bits + groups * meta

    def tensor_bytes(self, n_elements: int, inner_dim: int | None = None) -> float:
        return self.tensor_bits(n_elements, inner_dim) / 8.0


MANT4_G64 = StorageFormat("mant4-g64", element_bits=4, group_size=64, coeff_bits=A_BITS)
INT8_G64 = StorageFormat("int8-g64", element_bits=8, group_size=64)
KV_MANT4_G64 = MANT4_G64
FP16_FORMAT = StorageFormat("fp16", element_bits=16)
