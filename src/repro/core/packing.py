"""Bit-level packing of MANT-encoded tensors.

:class:`~repro.core.codec.MantEncoded` keeps codes as convenient numpy
arrays; this module serialises them into the actual memory image the
accelerator (and a storage format) would hold:

* 4-bit codes packed two-per-byte, sign-magnitude nibbles
  (``sign << 3 | magnitude``),
* per-group metadata: FP16 scale (2 bytes) + 8-bit coefficient
  (``0xFF`` encodes the INT option),
* a fixed little header with shapes so :func:`unpack_mant` can restore
  the :class:`MantEncoded` bit-exactly.

The byte counts produced here are *asserted against* the analytic
:mod:`repro.core.metadata` accounting in the tests, which keeps the
hardware memory model honest.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.codec import INT_A, MantEncoded

__all__ = ["pack_mant", "unpack_mant", "packed_nbytes"]

_MAGIC = b"MANT"
_INT_CODE = 0xFF
_HEADER = struct.Struct("<4sBBHIIII")  # magic, version, bits, group, rows, n_groups, orig0, orig1


def _nibbles(sign: np.ndarray, magnitude: np.ndarray) -> np.ndarray:
    """Sign-magnitude nibble per element: bit3 = sign, bits0-2 = |i|."""
    sign_bit = (sign < 0).astype(np.uint8) << 3
    return sign_bit | magnitude.astype(np.uint8)


def packed_nbytes(enc: MantEncoded) -> int:
    """Exact byte size :func:`pack_mant` will produce."""
    n_codes = enc.sign.size
    code_bytes = (n_codes + 1) // 2
    meta_bytes = enc.rows * enc.n_groups * 3  # fp16 scale + a byte
    return _HEADER.size + code_bytes + meta_bytes


def pack_mant(enc: MantEncoded) -> bytes:
    """Serialise an encoded weight tensor to its memory image."""
    if enc.bits != 4:
        raise ValueError("packing implemented for the paper's 4-bit codes")
    header = _HEADER.pack(
        _MAGIC, 1, enc.bits, enc.group_size,
        enc.rows, enc.n_groups,
        enc.original_shape[0], enc.original_shape[1],
    )
    nib = _nibbles(enc.sign, enc.magnitude).ravel()
    if nib.size % 2:
        nib = np.concatenate([nib, np.zeros(1, dtype=np.uint8)])
    codes = (nib[0::2] | (nib[1::2] << 4)).tobytes()

    scales = enc.scale.astype(np.float16).tobytes()
    a = enc.a_coeff.ravel()
    a_bytes = np.where(a == INT_A, _INT_CODE, a).astype(np.uint8).tobytes()
    return header + codes + scales + a_bytes


def unpack_mant(blob: bytes) -> MantEncoded:
    """Inverse of :func:`pack_mant` (bit-exact round trip)."""
    magic, version, bits, group, rows, n_groups, o0, o1 = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError("not a packed MANT tensor")
    if version != 1:
        raise ValueError(f"unsupported pack version {version}")
    off = _HEADER.size

    n_codes = rows * n_groups * group
    code_bytes = (n_codes + 1) // 2
    raw = np.frombuffer(blob, dtype=np.uint8, count=code_bytes, offset=off)
    off += code_bytes
    nib = np.empty(code_bytes * 2, dtype=np.uint8)
    nib[0::2] = raw & 0x0F
    nib[1::2] = raw >> 4
    nib = nib[:n_codes].reshape(rows, n_groups, group)
    sign = np.where(nib & 0x08, -1, 1).astype(np.int8)
    magnitude = (nib & 0x07).astype(np.uint8)

    n_meta = rows * n_groups
    scale = np.frombuffer(blob, dtype=np.float16, count=n_meta, offset=off)
    scale = scale.astype(np.float64).reshape(rows, n_groups)
    off += n_meta * 2
    a_raw = np.frombuffer(blob, dtype=np.uint8, count=n_meta, offset=off)
    a = np.where(a_raw == _INT_CODE, float(INT_A), a_raw.astype(np.float64))
    a = a.reshape(rows, n_groups)

    pad = n_groups * group - o1 if n_groups * group >= o1 else 0
    return MantEncoded(
        sign=sign,
        magnitude=magnitude,
        scale=scale,
        a_coeff=a,
        bits=bits,
        group_size=group,
        original_shape=(o0, o1),
        pad=pad,
    )
