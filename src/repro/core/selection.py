"""Coefficient selection: offline MSE search and real-time variance mapping.

Two selectors, matching the paper's two deployment regimes:

* :class:`MseSearchSelector` — weights, offline (Sec. V-A, Eq. 6).
  Searches the 16-type set (15 coefficients + INT) per group, minimising
  output-weighted quantization MSE against calibration activation
  statistics.  The full ``argmin_a ||X·Ŵ_a − X·W||²`` is approximated
  per group with a diagonal Hessian: each weight column ``j`` is
  weighted by ``E[x_j²]`` from calibration, which decouples groups and
  keeps the search O(groups × types).

* :class:`VarianceSelector` — KV cache, real time (Sec. V-C, Eq. 7).
  Maps a group's normalised variance to a coefficient through ranges
  calibrated offline: sample calibration groups, find each group's
  MSE-optimal ``a``, record the mean variance per ``a``, and cut ranges
  at the midpoints.  At run time only ``Σx``, ``Σx²`` and ``max|x|`` are
  needed — all computable streaming, which is what the RQU provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codec import MantCodec, INT_A
from repro.core.groups import to_groups
from repro.core.mant import MANT_WEIGHT_A_SET, MantGrid
from repro.datatypes.int_type import IntType

__all__ = ["MseSearchSelector", "VarianceSelector", "GroupStats", "group_stats"]


@dataclass
class GroupStats:
    """Streaming statistics of one group: what the RQU accumulates."""

    n: int
    total: float        # Σ x_i
    total_sq: float     # Σ x_i²
    abs_max: float      # max |x_i|

    @property
    def variance(self) -> float:
        """Population variance (paper Eq. 7)."""
        mean = self.total / self.n
        return self.total_sq / self.n - mean * mean

    @property
    def normalized_variance(self) -> float:
        """Variance after scaling the group so max|x| = 1 (Sec. V-C)."""
        if self.abs_max <= 0:
            return 0.0
        return self.variance / (self.abs_max * self.abs_max)


def group_stats(values: np.ndarray) -> GroupStats:
    """Compute :class:`GroupStats` for a 1-D group in one pass."""
    v = np.asarray(values, dtype=np.float64)
    return GroupStats(
        n=v.size,
        total=float(v.sum()),
        total_sq=float((v * v).sum()),
        abs_max=float(np.max(np.abs(v))) if v.size else 0.0,
    )


class MseSearchSelector:
    """Offline per-group coefficient search (Eq. 6, diagonal surrogate).

    Parameters
    ----------
    bits, group_size:
        Code width and group length (paper: 4 and 64).
    a_candidates:
        Coefficients to search; the INT option is always included.
    include_int:
        Whether plain INT participates (the paper's 16th type).
    """

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 64,
        a_candidates=MANT_WEIGHT_A_SET,
        include_int: bool = True,
    ):
        self.bits = bits
        self.group_size = group_size
        self.a_candidates = tuple(float(a) for a in a_candidates)
        self.include_int = include_int
        self._codec = MantCodec(bits=bits, group_size=group_size, fp16_scales=False)
        self._int_type = IntType(bits)

    # ------------------------------------------------------------------
    def _candidate_errors(
        self, groups: np.ndarray, col_weight: np.ndarray | None
    ) -> tuple[np.ndarray, list[float]]:
        """Weighted MSE of every candidate for every group.

        ``groups``: (..., n_groups, g); ``col_weight``: broadcastable
        per-element importance (E[x²] of the matching input channels) or
        None for unweighted.
        Returns ``(errors, candidate_list)`` with errors shaped
        ``(len(candidates), ..., n_groups)``.
        """
        amax = np.max(np.abs(groups), axis=-1, keepdims=True)
        amax = np.where(amax <= 0, 1.0, amax)
        candidates: list[float] = list(self.a_candidates)
        if self.include_int:
            candidates.append(INT_A)
        errs = np.empty((len(candidates),) + groups.shape[:-1])
        for k, a in enumerate(candidates):
            if a == INT_A:
                gmax = self._int_type.qmax
                scale = amax / gmax
                q = self._int_type.round_clip(groups / scale)
                recon = q * scale
            else:
                grid = MantGrid(a, self.bits)
                scale = amax / grid.grid_max
                scaled = groups / scale
                recon = grid.decode(grid.encode(scaled)) * scale
            diff = recon - groups
            if col_weight is not None:
                diff = diff * np.sqrt(col_weight)
            errs[k] = np.mean(diff * diff, axis=-1)
        return errs, candidates

    # ------------------------------------------------------------------
    def select(
        self, w: np.ndarray, act_sq_mean: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-group coefficients for a 2-D weight ``(rows, in_features)``.

        ``act_sq_mean`` is the calibration statistic ``E[x_j²]`` per
        input channel (length ``in_features``); when given, the search
        minimises the output-error surrogate instead of raw weight MSE.
        Returns an ``(rows, n_groups)`` array ready for
        :meth:`MantCodec.encode`.
        """
        w = np.asarray(w, dtype=np.float64)
        view = to_groups(w, self.group_size, axis=-1)
        col_weight = None
        if act_sq_mean is not None:
            h = np.asarray(act_sq_mean, dtype=np.float64)
            if h.shape != (w.shape[-1],):
                raise ValueError(
                    f"act_sq_mean shape {h.shape} != ({w.shape[-1]},)"
                )
            hview = to_groups(h[None, :], self.group_size, axis=-1)
            col_weight = hview.groups[0]  # (n_groups, g), broadcasts over rows
        errs, candidates = self._candidate_errors(view.groups, col_weight)
        best = np.argmin(errs, axis=0)
        lut = np.asarray(candidates)
        return lut[best]

    def select_and_encode(self, w: np.ndarray, act_sq_mean: np.ndarray | None = None):
        """Convenience: search then encode, returning ``MantEncoded``."""
        a = self.select(w, act_sq_mean)
        return self._codec.encode(w, a)


class VarianceSelector:
    """Real-time coefficient selection from streaming variance (Sec. V-C).

    ``fit`` calibrates the variance ranges; ``select`` is O(log T) per
    group at run time and consumes only streaming statistics.
    An unfitted selector falls back to the theoretical grid variances of
    :meth:`MantGrid.normalized_variance`, which preserve the monotone
    variance↔``a`` relationship without calibration data.
    """

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 64,
        a_candidates=MANT_WEIGHT_A_SET,
        include_int: bool = True,
    ):
        self.bits = bits
        self.group_size = group_size
        self.a_candidates = tuple(float(a) for a in a_candidates)
        self.include_int = include_int
        self._sorted_a: np.ndarray
        self._thresholds: np.ndarray
        self._init_theoretical()

    # ------------------------------------------------------------------
    def _init_theoretical(self) -> None:
        """Default ranges from uniform-usage grid variances (Fig. 6)."""
        pairs = [
            (MantGrid(a, self.bits).normalized_variance(), a)
            for a in self.a_candidates
        ]
        if self.include_int:
            itype = IntType(self.bits)
            g = itype.grid / itype.qmax
            pairs.append((float(np.mean(g * g) - np.mean(g) ** 2), INT_A))
        pairs.sort()
        variances = np.asarray([p[0] for p in pairs])
        self._sorted_a = np.asarray([p[1] for p in pairs])
        self._thresholds = 0.5 * (variances[:-1] + variances[1:])

    # ------------------------------------------------------------------
    def fit(self, calibration_groups: np.ndarray) -> "VarianceSelector":
        """Calibrate variance ranges from sample groups (Sec. V-C).

        ``calibration_groups``: array of shape ``(n_samples, group_size)``
        drawn from K/V tensors on the calibration set.  For each sample
        we find the MSE-optimal coefficient, then define each
        coefficient's range around the mean variance of the groups that
        chose it, cutting at midpoints (the paper's ``a=40 ↦ [0.104,
        0.118]`` construction).
        """
        groups = np.asarray(calibration_groups, dtype=np.float64)
        if groups.ndim != 2:
            raise ValueError("calibration_groups must be (n_samples, group_size)")
        searcher = MseSearchSelector(
            bits=self.bits,
            group_size=groups.shape[1],
            a_candidates=self.a_candidates,
            include_int=self.include_int,
        )
        errs, candidates = searcher._candidate_errors(groups[:, None, :], None)
        best = np.argmin(errs[:, :, 0], axis=0)  # (n_samples,)

        amax = np.max(np.abs(groups), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)
        norm = groups / amax[:, None]
        variances = norm.var(axis=-1)

        pairs = []
        for k, a in enumerate(candidates):
            mask = best == k
            if not np.any(mask):
                continue
            pairs.append((float(variances[mask].mean()), float(a)))
        if len(pairs) < 2:
            # Degenerate calibration (e.g. constant data): keep defaults.
            return self
        pairs.sort()
        var_means = np.asarray([p[0] for p in pairs])
        self._sorted_a = np.asarray([p[1] for p in pairs])
        self._thresholds = 0.5 * (var_means[:-1] + var_means[1:])
        return self

    # ------------------------------------------------------------------
    def select(self, stats: GroupStats) -> float:
        """Coefficient for one group from its streaming statistics."""
        return self.select_from_variance(stats.normalized_variance)

    def select_from_variance(self, normalized_variance) -> float:
        idx = np.searchsorted(self._thresholds, normalized_variance)
        return float(np.asarray(self._sorted_a)[idx])

    def select_batch(self, groups: np.ndarray) -> np.ndarray:
        """Vectorised selection for ``(..., group_size)`` groups."""
        g = np.asarray(groups, dtype=np.float64)
        amax = np.max(np.abs(g), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)
        norm_var = g.var(axis=-1) / (amax * amax)
        idx = np.searchsorted(self._thresholds, norm_var)
        return np.asarray(self._sorted_a)[idx]
