"""Coefficient selection: offline MSE search and real-time variance mapping.

Two selectors, matching the paper's two deployment regimes:

* :class:`MseSearchSelector` — weights, offline (Sec. V-A, Eq. 6).
  Searches the 16-type set (15 coefficients + INT) per group, minimising
  output-weighted quantization MSE against calibration activation
  statistics.  The full ``argmin_a ||X·Ŵ_a − X·W||²`` is approximated
  per group with a diagonal Hessian: each weight column ``j`` is
  weighted by ``E[x_j²]`` from calibration, which decouples groups and
  keeps the search O(groups × types).

  The search itself runs against a *combined decision-boundary table*:
  the normalized boundaries of every candidate grid are merged into one
  sorted array, so a single ``searchsorted`` per element locates the
  value in every candidate's grid at once, and per-candidate codes and
  reconstructions fall out of two tiny LUT gathers.  Because the codes
  are produced during the search, :meth:`MseSearchSelector.select_and_encode`
  hands the winning candidate's codes straight to
  :meth:`repro.core.codec.MantCodec.from_codes` — no re-quantization
  pass after selection.

* :class:`VarianceSelector` — KV cache, real time (Sec. V-C, Eq. 7).
  Maps a group's normalised variance to a coefficient through ranges
  calibrated offline: sample calibration groups, find each group's
  MSE-optimal ``a``, record the mean variance per ``a``, and cut ranges
  at the midpoints.  At run time only ``Σx``, ``Σx²`` and ``max|x|`` are
  needed — all computable streaming, which is what the RQU provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.codec import (
    MantCodec,
    MantEncoded,
    INT_A,
    grid_tables,
    _group_absmax,
    _stacked_tables,
)
from repro.core.groups import to_groups
from repro.core.mant import MANT_WEIGHT_A_SET, get_mant_grid
from repro.datatypes.int_type import IntType

__all__ = ["MseSearchSelector", "VarianceSelector", "GroupStats", "group_stats"]

# Cap on the per-chunk position-histogram allocation in
# MseSearchSelector._search: each chunk materialises two
# (chunk_groups, n_bins) float64 histograms, where n_bins is the merged
# boundary-ladder size (~200 for the canonical candidate set), so the
# chunk length is chosen as _SEARCH_CHUNK_BINS // n_bins groups.
_SEARCH_CHUNK_BINS = 1 << 19


@dataclass
class GroupStats:
    """Streaming statistics of one group: what the RQU accumulates."""

    n: int
    total: float        # Σ x_i
    total_sq: float     # Σ x_i²
    abs_max: float      # max |x_i|

    @property
    def variance(self) -> float:
        """Population variance (paper Eq. 7).

        Clipped at 0: the ``E[x²] − E[x]²`` form can go slightly
        negative from floating-point cancellation on near-constant
        groups.
        """
        mean = self.total / self.n
        return max(0.0, self.total_sq / self.n - mean * mean)

    @property
    def normalized_variance(self) -> float:
        """Variance after scaling the group so max|x| = 1 (Sec. V-C)."""
        if self.abs_max <= 0:
            return 0.0
        return self.variance / (self.abs_max * self.abs_max)


def group_stats(values: np.ndarray) -> GroupStats:
    """Compute :class:`GroupStats` for a 1-D group in one pass."""
    v = np.asarray(values, dtype=np.float64)
    return GroupStats(
        n=v.size,
        total=float(v.sum()),
        total_sq=float((v * v).sum()),
        abs_max=float(np.max(np.abs(v))) if v.size else 0.0,
    )


@dataclass(frozen=True)
class _CandidateTables:
    """Merged decision boundaries of a whole candidate set.

    ``merged_boundaries`` is the sorted union of every candidate's
    normalized boundaries.  For a value with insertion position ``p``
    (``searchsorted(merged_boundaries, v, side='left')``),
    ``code_table[c, p]`` is that value's grid index in candidate ``c``
    and ``recon_table[c, p]`` the matching normalized reconstruction —
    position in the merged ladder determines the code in *every* grid
    simultaneously, which is what collapses the 16-pass search into one.
    ``recon_sq_table`` is the elementwise square, precomputed for the
    sufficient-statistics error expansion (see
    :meth:`MseSearchSelector._search`).
    """

    candidates: tuple
    ladder: object                 # _MergedLadder over all candidates
    code_table: np.ndarray         # (n_candidates, B+1) intp
    recon_table: np.ndarray        # (n_candidates, B+1) float64
    recon_sq_table: np.ndarray     # (n_candidates, B+1) float64


@lru_cache(maxsize=None)
def _candidate_tables(candidates: tuple, bits: int) -> _CandidateTables:
    # The merged ladder and per-candidate code tables are the codec's
    # (one construction of the position→code invariant, shared with
    # encode/from_codes); this only adds the reconstruction tables the
    # error expansion contracts against.
    key = tuple(float(a) for a in candidates)
    st = _stacked_tables(key, bits)
    recon_table = np.stack(
        [
            grid_tables(a, bits).grid_norm[st.code_table[c]]
            for c, a in enumerate(key)
        ]
    )
    return _CandidateTables(
        candidates=key,
        ladder=st.ladder,
        code_table=st.code_table,
        recon_table=recon_table,
        recon_sq_table=recon_table * recon_table,
    )


class MseSearchSelector:
    """Offline per-group coefficient search (Eq. 6, diagonal surrogate).

    Parameters
    ----------
    bits, group_size:
        Code width and group length (paper: 4 and 64).
    a_candidates:
        Coefficients to search; the INT option is always included.
    include_int:
        Whether plain INT participates (the paper's 16th type).
    """

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 64,
        a_candidates=MANT_WEIGHT_A_SET,
        include_int: bool = True,
    ):
        self.bits = bits
        self.group_size = group_size
        self.a_candidates = tuple(float(a) for a in a_candidates)
        self.include_int = include_int
        self._codec = MantCodec(bits=bits, group_size=group_size, fp16_scales=False)
        self._int_type = IntType(bits)

    # ------------------------------------------------------------------
    def _all_candidates(self) -> tuple:
        if self.include_int:
            return self.a_candidates + (float(INT_A),)
        return self.a_candidates

    def _search(self, groups: np.ndarray, col_weight: np.ndarray | None):
        """Vectorised candidate sweep over ``(..., n_groups, g)`` groups.

        One ``searchsorted`` against the merged boundary ladder places
        every (normalized) element in every candidate grid at once.  The
        weighted MSE then expands into sufficient statistics::

            Σ w·(r − v)² = Σ w·r² − 2·Σ w·r·v + Σ w·v²

        where the reconstruction ``r`` only depends on the merged
        position, so the per-group sums reduce to two position
        histograms (``Σw`` and ``Σw·v`` per position) contracted with
        the precomputed ``r`` / ``r²`` tables — a (groups × positions) @
        (positions × candidates) matmul instead of 16 full
        quantize-reconstruct passes.

        Returns ``(errs, candidates, pos, amax)`` where ``errs`` has
        shape ``(n_candidates, ..., n_groups)``, ``pos`` the per-element
        merged-boundary positions (reusable to recover any candidate's
        codes without re-quantizing) and ``amax`` the per-group absmax.
        """
        candidates = list(self._all_candidates())
        tab = _candidate_tables(tuple(candidates), self.bits)
        n_cand = len(candidates)

        amax = _group_absmax(groups)
        vnorm = groups / amax[..., None]
        pos = tab.ladder.positions(vnorm)

        g = groups.shape[-1]
        m = groups.size // g
        n_bins = tab.ladder.boundaries.size + 1
        flat_vn = vnorm.reshape(m, g)
        flat_pos = pos.reshape(m, g)
        flat_w = None
        if col_weight is not None:
            flat_w = np.broadcast_to(col_weight, groups.shape).reshape(m, g)
            const = (flat_w * flat_vn * flat_vn).sum(axis=-1)
        else:
            const = (flat_vn * flat_vn).sum(axis=-1)

        errs = np.empty((n_cand, m))
        block = max(1, _SEARCH_CHUNK_BINS // n_bins)
        for s in range(0, m, block):
            e = min(m, s + block)
            keys = (flat_pos[s:e] + np.arange(e - s)[:, None] * n_bins).ravel()
            if flat_w is None:
                hist_w = np.bincount(keys, minlength=(e - s) * n_bins)
                hist_wv = np.bincount(
                    keys, weights=flat_vn[s:e].ravel(), minlength=(e - s) * n_bins
                )
            else:
                wchunk = flat_w[s:e].ravel()
                hist_w = np.bincount(
                    keys, weights=wchunk, minlength=(e - s) * n_bins
                )
                hist_wv = np.bincount(
                    keys,
                    weights=wchunk * flat_vn[s:e].ravel(),
                    minlength=(e - s) * n_bins,
                )
            hist_w = hist_w.reshape(e - s, n_bins)
            hist_wv = hist_wv.reshape(e - s, n_bins)
            # (chunk, n_cand): Σw·r² − 2·Σw·v·r per candidate.
            quad = hist_w @ tab.recon_sq_table.T - 2.0 * (hist_wv @ tab.recon_table.T)
            errs[:, s:e] = quad.T + const[s:e]
        errs *= (amax.reshape(m) ** 2 / g)[None, :]
        return errs.reshape((n_cand,) + groups.shape[:-1]), candidates, pos, amax

    def _candidate_errors(
        self, groups: np.ndarray, col_weight: np.ndarray | None
    ) -> tuple[np.ndarray, list[float]]:
        """Weighted MSE of every candidate for every group.

        ``groups``: (..., n_groups, g); ``col_weight``: broadcastable
        per-element importance (E[x²] of the matching input channels) or
        None for unweighted.
        Returns ``(errors, candidate_list)`` with errors shaped
        ``(len(candidates), ..., n_groups)``.
        """
        errs, candidates, _, _ = self._search(groups, col_weight)
        return errs, candidates

    # ------------------------------------------------------------------
    def _col_weight(self, w: np.ndarray, act_sq_mean: np.ndarray | None):
        if act_sq_mean is None:
            return None
        h = np.asarray(act_sq_mean, dtype=np.float64)
        if h.shape != (w.shape[-1],):
            raise ValueError(f"act_sq_mean shape {h.shape} != ({w.shape[-1]},)")
        hview = to_groups(h[None, :], self.group_size, axis=-1)
        return hview.groups[0]  # (n_groups, g), broadcasts over rows

    def select(
        self, w: np.ndarray, act_sq_mean: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-group coefficients for a 2-D weight ``(rows, in_features)``.

        ``act_sq_mean`` is the calibration statistic ``E[x_j²]`` per
        input channel (length ``in_features``); when given, the search
        minimises the output-error surrogate instead of raw weight MSE.
        Returns an ``(rows, n_groups)`` array ready for
        :meth:`MantCodec.encode`.
        """
        w = np.asarray(w, dtype=np.float64)
        view = to_groups(w, self.group_size, axis=-1)
        errs, candidates, _, _ = self._search(
            view.groups, self._col_weight(w, act_sq_mean)
        )
        best = np.argmin(errs, axis=0)
        lut = np.asarray(candidates)
        return lut[best]

    def select_and_encode(
        self,
        w: np.ndarray,
        act_sq_mean: np.ndarray | None = None,
        codec: MantCodec | None = None,
    ) -> MantEncoded:
        """Fused search + encode: one pass instead of 16 + 1.

        The candidate sweep already locates every element in the merged
        boundary ladder; the winning candidate's codes are recovered by
        a table gather and handed to :meth:`MantCodec.from_codes`, so
        the weights are never nearest-point-searched a 17th time.
        Bit-identical to ``codec.encode(w, self.select(w, act_sq_mean))``.
        """
        codec = self._codec if codec is None else codec
        if codec.bits != self.bits or codec.group_size != self.group_size:
            raise ValueError(
                f"codec (bits={codec.bits}, group={codec.group_size}) does not "
                f"match selector (bits={self.bits}, group={self.group_size})"
            )
        w = np.asarray(w, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError(f"select_and_encode expects 2-D weights, got {w.shape}")
        view = to_groups(w, self.group_size, axis=-1)
        errs, candidates, pos, amax = self._search(
            view.groups, self._col_weight(w, act_sq_mean)
        )
        best = np.argmin(errs, axis=0)                    # (rows, n_groups)
        a = np.asarray(candidates)[best]
        tab = _candidate_tables(tuple(candidates), self.bits)
        # (rows, n_groups, g): the winning grid's codes, recovered from
        # the merged positions the search already computed.
        codes = MantCodec._flat_gather(tab.code_table, best, pos)
        return codec.from_codes(codes, a, amax, w.shape, view.pad)


class VarianceSelector:
    """Real-time coefficient selection from streaming variance (Sec. V-C).

    ``fit`` calibrates the variance ranges; ``select`` is O(log T) per
    group at run time and consumes only streaming statistics.
    An unfitted selector falls back to the theoretical grid variances of
    :meth:`MantGrid.normalized_variance`, which preserve the monotone
    variance↔``a`` relationship without calibration data.
    """

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 64,
        a_candidates=MANT_WEIGHT_A_SET,
        include_int: bool = True,
    ):
        self.bits = bits
        self.group_size = group_size
        self.a_candidates = tuple(float(a) for a in a_candidates)
        self.include_int = include_int
        self._sorted_a: np.ndarray
        self._thresholds: np.ndarray
        self._init_theoretical()

    # ------------------------------------------------------------------
    def _init_theoretical(self) -> None:
        """Default ranges from uniform-usage grid variances (Fig. 6)."""
        pairs = [
            (get_mant_grid(a, self.bits).normalized_variance(), a)
            for a in self.a_candidates
        ]
        if self.include_int:
            itype = IntType(self.bits)
            g = itype.grid / itype.qmax
            pairs.append((float(np.mean(g * g) - np.mean(g) ** 2), INT_A))
        pairs.sort()
        variances = np.asarray([p[0] for p in pairs])
        self._sorted_a = np.asarray([p[1] for p in pairs])
        self._thresholds = 0.5 * (variances[:-1] + variances[1:])

    # ------------------------------------------------------------------
    def fit(self, calibration_groups: np.ndarray) -> "VarianceSelector":
        """Calibrate variance ranges from sample groups (Sec. V-C).

        ``calibration_groups``: array of shape ``(n_samples, group_size)``
        drawn from K/V tensors on the calibration set.  For each sample
        we find the MSE-optimal coefficient, then define each
        coefficient's range around the mean variance of the groups that
        chose it, cutting at midpoints (the paper's ``a=40 ↦ [0.104,
        0.118]`` construction).
        """
        groups = np.asarray(calibration_groups, dtype=np.float64)
        if groups.ndim != 2:
            raise ValueError("calibration_groups must be (n_samples, group_size)")
        searcher = MseSearchSelector(
            bits=self.bits,
            group_size=groups.shape[1],
            a_candidates=self.a_candidates,
            include_int=self.include_int,
        )
        errs, candidates = searcher._candidate_errors(groups[:, None, :], None)
        best = np.argmin(errs[:, :, 0], axis=0)  # (n_samples,)

        amax = np.max(np.abs(groups), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)
        norm = groups / amax[:, None]
        variances = norm.var(axis=-1)

        pairs = []
        for k, a in enumerate(candidates):
            mask = best == k
            if not np.any(mask):
                continue
            pairs.append((float(variances[mask].mean()), float(a)))
        if len(pairs) < 2:
            # Degenerate calibration (e.g. constant data): keep defaults.
            return self
        pairs.sort()
        var_means = np.asarray([p[0] for p in pairs])
        self._sorted_a = np.asarray([p[1] for p in pairs])
        self._thresholds = 0.5 * (var_means[:-1] + var_means[1:])
        return self

    # ------------------------------------------------------------------
    def select(self, stats: GroupStats) -> float:
        """Coefficient for one group from its streaming statistics."""
        return self.select_from_variance(stats.normalized_variance)

    def select_from_variance(self, normalized_variance) -> float:
        return float(self.select_from_variances(normalized_variance))

    def select_from_variances(self, normalized_variances) -> np.ndarray:
        """Vectorised range lookup: normalized variances → coefficients.

        The public entry point for callers that already hold streaming
        statistics (e.g. the KV cache's window accumulators): one
        ``searchsorted`` against the calibrated thresholds, any input
        shape.
        """
        nv = np.asarray(normalized_variances, dtype=np.float64)
        idx = np.searchsorted(self._thresholds, nv)
        return self._sorted_a[idx]

    def select_batch(self, groups: np.ndarray) -> np.ndarray:
        """Vectorised selection for ``(..., group_size)`` groups."""
        g = np.asarray(groups, dtype=np.float64)
        amax = np.max(np.abs(g), axis=-1)
        amax = np.where(amax <= 0, 1.0, amax)
        norm_var = g.var(axis=-1) / (amax * amax)
        return self.select_from_variances(norm_var)

    def same_policy(self, other) -> bool:
        """True when both selectors decide identically on every input.

        The decision is fully determined by the sorted coefficient array
        and its variance thresholds, so distinct instances (e.g. one per
        pooled KV cache) compare equal if those match — which is what
        lets the caches' fused batch append share one selection call.
        """
        return self is other or (
            isinstance(other, VarianceSelector)
            and np.array_equal(self._sorted_a, other._sorted_a)
            and np.array_equal(self._thresholds, other._thresholds)
        )
