"""Numeric data types used by MANT and every baseline method.

All types share the :class:`~repro.datatypes.base.GridDataType` interface:
a sorted grid of representable values with absmax scaling, nearest-point
``encode`` and table ``decode``.  Singletons for the common widths are
exported here (``int4``, ``pot4``, ``flint4``, ``fp4_e2m1``, ``nf4``).
"""

from repro.datatypes.base import GridDataType, nearest_grid_index, absmax_scale
from repro.datatypes.int_type import IntType, int2, int4, int8, round_to_int
from repro.datatypes.pot import PotType, pot4, pot4_with_zero
from repro.datatypes.flint import FlintType, flint4, flint_positive_grid
from repro.datatypes.floats import FloatType, fp4_e2m1, fp8_e4m3, float_grid, cast_fp16
from repro.datatypes.normalfloat import NormalFloatType, nf4, nf_positive_half
from repro.datatypes.mxfp import mxfp4_qdq, e8m0_scale, MXFP_GROUP_SIZE
from repro.datatypes.abfloat import AbfloatType, OutlierVictimCodec

__all__ = [
    "GridDataType",
    "nearest_grid_index",
    "absmax_scale",
    "IntType",
    "int2",
    "int4",
    "int8",
    "round_to_int",
    "PotType",
    "pot4",
    "pot4_with_zero",
    "FlintType",
    "flint4",
    "flint_positive_grid",
    "FloatType",
    "fp4_e2m1",
    "fp8_e4m3",
    "float_grid",
    "cast_fp16",
    "NormalFloatType",
    "nf4",
    "nf_positive_half",
    "mxfp4_qdq",
    "e8m0_scale",
    "MXFP_GROUP_SIZE",
    "AbfloatType",
    "OutlierVictimCodec",
]
