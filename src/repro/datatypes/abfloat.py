"""OliVe's ``abfloat`` and the outlier-victim pairing scheme (ISCA'23).

OliVe observes that outliers matter but are sparse: it sacrifices the
*victim* — the neighbour of an outlier — to free up its code space, so an
outlier can be stored with double width in ``abfloat`` (adaptive-biased
float).  abfloat is an exponent-biased minifloat whose bias shifts the
representable binades up to where outliers live: an outlier was, by
definition, larger than the normal grid's max.

Reconstruction notes (DESIGN.md §7): OliVe's exact code tables are not
published; we implement abfloat as an E5M2-style 8-bit float whose bias
is chosen per tensor/channel so its smallest normal sits just above the
normal-value grid max — the property OliVe's accuracy rests on.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import GridDataType, nearest_grid_index
from repro.datatypes.floats import float_grid

__all__ = ["AbfloatType", "OutlierVictimCodec"]


class AbfloatType(GridDataType):
    """8-bit adaptive-biased float covering magnitudes in [lo, lo * 2^span].

    ``lo`` anchors the smallest normal binade (just above the inlier
    grid's max); the exponent field spans ``2^exp_bits`` binades upward
    from there.
    """

    def __init__(self, lo: float, exp_bits: int = 5, man_bits: int = 2):
        if lo <= 0:
            raise ValueError("abfloat anchor must be positive")
        base = float_grid(exp_bits, man_bits)
        base = base[base > 0]
        pos = base / base[0] * lo  # shift the biased range so min == lo
        grid = np.concatenate([-pos[::-1], pos])
        bits = 1 + exp_bits + man_bits
        super().__init__(name=f"abfloat{bits}", bits=bits, grid=grid)
        self.lo = float(lo)


class OutlierVictimCodec:
    """OliVe's outlier-victim pair encoding over a 1-D block of values.

    Values are processed in adjacent (even, odd) pairs.  If a value's
    magnitude exceeds ``threshold`` it is an *outlier*: it is encoded in
    abfloat using its own slot plus its pair neighbour's slot, and the
    neighbour (the *victim*) is decoded as exactly zero.  If both
    elements of a pair exceed the threshold only the larger becomes an
    outlier — the other saturates to the normal grid max, as in OliVe.

    Parameters
    ----------
    normal_type:
        The inlier data type (OliVe uses 4-bit flint or int).
    outlier_sigma:
        Threshold in standard deviations; OliVe's paper prunes the
        victim for values beyond a few sigma.
    """

    def __init__(self, normal_type: GridDataType, outlier_sigma: float = 3.5):
        self.normal_type = normal_type
        self.outlier_sigma = float(outlier_sigma)

    # ------------------------------------------------------------------
    def _threshold(self, x: np.ndarray) -> float:
        return self.outlier_sigma * float(np.std(x)) + 1e-12

    def qdq(self, x: np.ndarray) -> np.ndarray:
        """Fake-quantize a 1-D block (a channel or group) with OVP.

        The inlier scale is computed from the *non-outlier* values, which
        is the point of the scheme: outliers no longer stretch the scale.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1:
            raise ValueError("OutlierVictimCodec operates on 1-D blocks")
        n = x.size
        out = np.empty_like(x)

        thr = self._threshold(x)
        is_outlier = np.abs(x) > thr

        # Pair arbitration: within each (2i, 2i+1) pair at most one
        # outlier survives; the other saturates to the inlier max.
        even = np.arange(0, n - 1, 2)
        both = is_outlier[even] & is_outlier[even + 1]
        if np.any(both):
            left_bigger = np.abs(x[even]) >= np.abs(x[even + 1])
            lose_right = even[both & left_bigger] + 1
            lose_left = even[both & ~left_bigger]
            is_outlier[lose_right] = False
            is_outlier[lose_left] = False
        if n % 2 == 1:
            # The last element has no pair partner to sacrifice.
            is_outlier[n - 1] = False

        inliers = ~is_outlier
        # Victims: pair partners of outliers, forced to zero.
        victims = np.zeros(n, dtype=bool)
        out_idx = np.flatnonzero(is_outlier)
        partner = out_idx ^ 1  # 2i <-> 2i+1
        victims[partner[partner < n]] = True
        inliers &= ~victims

        inlier_vals = x[inliers]
        if inlier_vals.size == 0:
            inlier_scale = 1.0
        else:
            inlier_scale = float(
                np.max(np.abs(inlier_vals)) / self.normal_type.grid_max
            )
            if inlier_scale <= 0:
                inlier_scale = 1.0
        out[inliers] = self.normal_type.qdq(x[inliers], inlier_scale)
        out[victims] = 0.0

        if np.any(is_outlier):
            lo = self.normal_type.grid_max * inlier_scale
            ab = AbfloatType(lo=max(lo, 1e-12))
            vals = x[is_outlier]
            idx = nearest_grid_index(vals, ab.grid)
            out[is_outlier] = ab.grid[idx]

        # Saturated not-quite-outliers (losers of pair arbitration) were
        # quantized with the inlier grid above via the `inliers` mask.
        return out
