"""Grid-based numeric data types.

Every quantization data type in this reproduction — INT, PoT, flint,
FP4, NF4, MXFP4, abfloat and MANT itself — is ultimately a finite set of
representable values (a *grid*) plus a scaling convention.  This module
provides the shared machinery: nearest-grid-point encoding, decoding, and
symmetric absmax scaling.

Grids are stored unscaled.  A tensor ``x`` is quantized by computing a
scale ``s = max|x| / max|grid|`` and snapping ``x / s`` to the nearest
grid value (the ``argmin`` in the paper's Eq. 4).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GridDataType", "nearest_grid_index", "grid_boundaries", "absmax_scale"]

# Guards against division by zero when a tensor (or group) is all zeros.
_EPS = 1e-12


def grid_boundaries(grid: np.ndarray) -> np.ndarray:
    """Decision boundaries of a sorted grid: the midpoints between levels.

    A value belongs to grid cell ``k`` iff it lies strictly above
    boundary ``k-1`` and at or below boundary ``k``, so nearest-point
    encoding reduces to one ``searchsorted`` against this table — the
    precomputed comparator ladder an ANT-style LUT codec burns into
    hardware.
    """
    return 0.5 * (grid[:-1] + grid[1:])


def nearest_grid_index(
    values: np.ndarray, grid: np.ndarray, boundaries: np.ndarray | None = None
) -> np.ndarray:
    """Return the index of the nearest grid point for each value.

    ``grid`` must be sorted ascending.  Ties round toward the lower grid
    point, matching how a hardware comparator tree with ``<=`` breaks
    ties.  Runs in O(n log g) via a single binary search against the
    decision-boundary table — no clip or where fixups; pass a
    precomputed ``boundaries`` (from :func:`grid_boundaries`) to skip
    recomputing the table.
    """
    if boundaries is None:
        boundaries = grid_boundaries(grid)
    # side='left' counts boundaries strictly below each value, so a value
    # exactly on a boundary keeps the lower cell (ties go left).
    return np.searchsorted(boundaries, values, side="left")


def absmax_scale(x: np.ndarray, grid_max: float, axis=None) -> np.ndarray:
    """Symmetric absmax scale: ``max|x| / grid_max`` along ``axis``.

    Returns an array broadcastable against ``x``; zero-max slices get a
    scale of 1 so that encoding maps them to the grid's nearest-to-zero
    point without dividing by zero.
    """
    amax = np.max(np.abs(x), axis=axis, keepdims=axis is not None)
    amax = np.where(amax < _EPS, grid_max, amax)
    return amax / grid_max


class GridDataType:
    """A finite, sorted set of representable values with absmax scaling.

    Parameters
    ----------
    name:
        Human-readable identifier (``"int4"``, ``"nf4"``, ...).
    bits:
        Storage bits per element.  Informational — some types (e.g. the
        per-group-clustered "ideal" type) have grids smaller than
        ``2**bits``.
    grid:
        1-D array of representable values.  Deduplicated and sorted on
        construction.
    """

    def __init__(self, name: str, bits: int, grid: np.ndarray):
        grid = np.unique(np.asarray(grid, dtype=np.float64))
        if grid.size < 2:
            raise ValueError(f"grid for {name!r} needs >= 2 points, got {grid.size}")
        self.name = name
        self.bits = int(bits)
        self.grid = grid
        self._boundaries: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def grid_max(self) -> float:
        """Largest representable magnitude (used for absmax scaling)."""
        return float(np.max(np.abs(self.grid)))

    @property
    def boundaries(self) -> np.ndarray:
        """Decision-boundary LUT (grid midpoints), computed once."""
        if self._boundaries is None:
            self._boundaries = grid_boundaries(self.grid)
        return self._boundaries

    @property
    def num_levels(self) -> int:
        return int(self.grid.size)

    @property
    def has_zero(self) -> bool:
        return bool(np.any(self.grid == 0.0))

    def normalized_grid(self) -> np.ndarray:
        """Grid scaled so that the maximum magnitude is 1 (paper Fig. 6)."""
        return self.grid / self.grid_max

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def encode(self, scaled: np.ndarray) -> np.ndarray:
        """Snap already-scaled values to grid indices (paper's argmin)."""
        return nearest_grid_index(
            np.asarray(scaled, dtype=np.float64), self.grid, self.boundaries
        )

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Map grid indices back to their representable values."""
        return self.grid[np.asarray(codes, dtype=np.intp)]

    def scale_for(self, x: np.ndarray, axis=None) -> np.ndarray:
        return absmax_scale(np.asarray(x, dtype=np.float64), self.grid_max, axis=axis)

    def quantize(self, x: np.ndarray, scale: np.ndarray | None = None):
        """Quantize ``x``; returns ``(codes, scale)``.

        When ``scale`` is None a single tensor-wise absmax scale is used.
        Group-wise scaling is handled one level up by the quantizers in
        :mod:`repro.quant`, which call this per group or pass per-group
        scales.
        """
        x = np.asarray(x, dtype=np.float64)
        if scale is None:
            scale = self.scale_for(x)
        codes = self.encode(x / scale)
        return codes, scale

    def dequantize(self, codes: np.ndarray, scale: np.ndarray) -> np.ndarray:
        return self.decode(codes) * scale

    def qdq(self, x: np.ndarray, scale: np.ndarray | None = None) -> np.ndarray:
        """Quantize-dequantize (fake quantization) in one call."""
        codes, scale = self.quantize(x, scale)
        return self.dequantize(codes, scale)

    # ------------------------------------------------------------------
    # Error metrics
    # ------------------------------------------------------------------
    def mse(self, x: np.ndarray, scale: np.ndarray | None = None) -> float:
        """Mean squared quantization error of ``x`` under this type."""
        err = self.qdq(x, scale) - np.asarray(x, dtype=np.float64)
        return float(np.mean(err * err))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, bits={self.bits}, levels={self.num_levels})"
