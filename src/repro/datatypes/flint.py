"""ANT's ``flint`` data type (float-int hybrid).

Reconstructed from the ANT paper (MICRO'22): flint spends its bits on a
variable-length exponent — small magnitudes get integer-like density
(long mantissa, short exponent), large magnitudes get float-like dynamic
range (long exponent, short mantissa).  The published flint4 positive
sequence is integer-spaced near zero and has one mantissa bit per octave
in its float region:

    0, 1, 2, 3, 4, 6, 8, 12, 16, ...   (truncated to the bit budget)

For 4 bits (sign + 3 magnitude bits → 8 positive levels) that yields
``{0, 1, 2, 3, 4, 6, 8, 12}``.  This is the approximation documented in
DESIGN.md §7: the exact RTL code assignment of ANT is not public, but the
*grid* — which is all that accuracy experiments observe — follows the
paper's "int head, float tail" construction.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import GridDataType

__all__ = ["FlintType", "flint4", "flint_positive_grid"]


def flint_positive_grid(levels: int) -> np.ndarray:
    """First ``levels`` non-negative flint values: int head + E*M1 tail.

    Head: 0, 1, 2, 3 (pure integers).  Tail: per octave ``2^e`` and
    ``1.5 * 2^e`` (one mantissa bit), i.e. 4, 6, 8, 12, 16, 24, ...
    """
    if levels < 2:
        raise ValueError("flint needs at least 2 positive levels")
    values = [0.0, 1.0, 2.0, 3.0]
    e = 2
    while len(values) < levels:
        values.append(float(2**e))
        if len(values) < levels:
            values.append(1.5 * 2**e)
        e += 1
    return np.asarray(values[:levels], dtype=np.float64)


class FlintType(GridDataType):
    """n-bit flint: sign-magnitude with ``2^(n-1)`` positive levels."""

    def __init__(self, bits: int):
        pos = flint_positive_grid(2 ** (bits - 1))
        grid = np.concatenate([-pos[::-1], pos])
        super().__init__(name=f"flint{bits}", bits=bits, grid=grid)


flint4 = FlintType(4)
