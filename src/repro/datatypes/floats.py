"""Low-bit IEEE-like float grids (FP4 E2M1, FP8 variants, FP16 casting).

``fp4_e2m1`` is the 4-bit float the paper's Fig. 5 shows MANT matching at
``a = 17`` and the element type of MXFP4.  Subnormals are included, so
the positive sequence is ``0, 0.5, 1, 1.5, 2, 3, 4, 6``.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import GridDataType

__all__ = ["FloatType", "fp4_e2m1", "fp8_e4m3", "float_grid", "cast_fp16"]


def float_grid(exp_bits: int, man_bits: int, bias: int | None = None) -> np.ndarray:
    """All non-negative values of a sign/exp/mantissa minifloat.

    No inf/NaN encodings — the top exponent is a normal binade, the
    convention of FP4 E2M1 and FP8 E4M3 used in DNN quantization.
    """
    if bias is None:
        bias = 2 ** (exp_bits - 1) - 1
    values = [0.0]
    n_man = 2**man_bits
    for e in range(2**exp_bits):
        for m in range(n_man):
            if e == 0:
                # Subnormal: (m / 2^M) * 2^(1 - bias)
                v = (m / n_man) * 2.0 ** (1 - bias)
            else:
                v = (1.0 + m / n_man) * 2.0 ** (e - bias)
            values.append(v)
    return np.unique(np.asarray(values, dtype=np.float64))


class FloatType(GridDataType):
    """Sign + exp_bits + man_bits minifloat grid."""

    def __init__(self, exp_bits: int, man_bits: int, bias: int | None = None):
        pos = float_grid(exp_bits, man_bits, bias)
        grid = np.concatenate([-pos[::-1], pos])
        bits = 1 + exp_bits + man_bits
        super().__init__(name=f"fp{bits}_e{exp_bits}m{man_bits}", bits=bits, grid=grid)
        self.exp_bits = exp_bits
        self.man_bits = man_bits


def cast_fp16(x: np.ndarray) -> np.ndarray:
    """Round-trip through IEEE binary16, the paper's full-precision type."""
    return np.asarray(x).astype(np.float16).astype(np.float64)


fp4_e2m1 = FloatType(2, 1)
fp8_e4m3 = FloatType(4, 3)
