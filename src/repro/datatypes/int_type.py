"""Symmetric integer data types (INT2/INT4/INT8).

The paper's baseline data type and the format MANT uses for activations.
Symmetric signed integers: an ``n``-bit INT covers ``[-(2^(n-1)-1),
2^(n-1)-1]`` (the ``-2^(n-1)`` code is unused, matching the paper's
"sign-magnitude representation of INT4 ... covers the range [-7, 7]").
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import GridDataType

__all__ = ["IntType", "int2", "int4", "int8", "round_to_int"]


class IntType(GridDataType):
    """Symmetric n-bit integer grid {-(2^(n-1)-1), ..., 2^(n-1)-1}."""

    def __init__(self, bits: int):
        if bits < 2 or bits > 16:
            raise ValueError(f"unsupported INT bit width: {bits}")
        qmax = 2 ** (bits - 1) - 1
        grid = np.arange(-qmax, qmax + 1, dtype=np.float64)
        super().__init__(name=f"int{bits}", bits=bits, grid=grid)
        self.qmax = qmax

    def encode(self, scaled: np.ndarray) -> np.ndarray:
        # Rounding is cheaper than binary search for a uniform grid and
        # matches the hardware ``round`` unit (paper Tbl. I: Encode=Round).
        scaled = np.asarray(scaled, dtype=np.float64)
        q = np.clip(np.rint(scaled), -self.qmax, self.qmax)
        return (q + self.qmax).astype(np.intp)

    def round_clip(self, scaled: np.ndarray) -> np.ndarray:
        """Round-and-saturate to raw integer values (not grid indices)."""
        return np.clip(np.rint(np.asarray(scaled, dtype=np.float64)), -self.qmax, self.qmax)


def round_to_int(x: np.ndarray, bits: int, scale: np.ndarray) -> np.ndarray:
    """Eq. 1 / Eq. 4: ``round(x / s)`` saturated to the n-bit range."""
    qmax = 2 ** (bits - 1) - 1
    return np.clip(np.rint(np.asarray(x, dtype=np.float64) / scale), -qmax, qmax)


int2 = IntType(2)
int4 = IntType(4)
int8 = IntType(8)
