"""Microscaling float (MXFP4) — FP4 elements with an E8M0 shared scale.

MXFP (OCP Microscaling, Rouhani et al. 2023) groups 32 elements under a
shared *power-of-two* scale stored as an 8-bit exponent (E8M0).  The
element type here is FP4 E2M1.  The restriction of the scale to powers
of two is what the paper's Tbl. V blames for MXFP4's higher perplexity:
up to sqrt(2)x of avoidable clipping/rounding error versus a full FP16
scale.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.floats import fp4_e2m1

__all__ = ["mxfp4_qdq", "e8m0_scale", "MXFP_GROUP_SIZE"]

MXFP_GROUP_SIZE = 32


def e8m0_scale(amax: np.ndarray, grid_max: float) -> np.ndarray:
    """Quantize the ideal absmax scale to a power of two (E8M0).

    The OCP spec takes ``floor(log2(amax)) - floor(log2(grid_max))`` so
    that the largest element never overflows after scaling; we clamp the
    exponent to the E8M0 range [-127, 127].
    """
    amax = np.where(amax <= 0, 1.0, amax)
    exp = np.floor(np.log2(amax)) - np.floor(np.log2(grid_max))
    exp = np.clip(exp, -127, 127)
    return 2.0**exp


def mxfp4_qdq(x: np.ndarray, group_size: int = MXFP_GROUP_SIZE) -> np.ndarray:
    """Fake-quantize the last axis of ``x`` with MXFP4 (E8M0 scale + FP4).

    The last axis length must be divisible by ``group_size`` (pad at the
    caller if needed, as the quantizers in :mod:`repro.quant` do).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] % group_size:
        raise ValueError(
            f"last axis {x.shape[-1]} not divisible by MXFP group size {group_size}"
        )
    g = x.reshape(*x.shape[:-1], x.shape[-1] // group_size, group_size)
    amax = np.max(np.abs(g), axis=-1, keepdims=True)
    scale = e8m0_scale(amax, fp4_e2m1.grid_max)
    out = fp4_e2m1.qdq(g, scale)
    return out.reshape(x.shape)
