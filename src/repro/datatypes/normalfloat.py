"""NormalFloat (NF4) from QLoRA (Dettmers et al., 2023).

NF4's 16 levels are quantiles of a standard Gaussian, normalised to
[-1, 1], with an exact zero.  Following the QLoRA construction, the
positive and negative halves are built from ``2^(b-1) + 1`` and
``2^(b-1)`` quantile points respectively so that zero appears exactly
once, giving an asymmetric 16-point grid.

The paper's Eq. 3 gives the positive half as ``Φ⁻¹(i·(1-ε)·0.5/7 + 0.5)``
for ``i ∈ [0, 7]``; we implement the full two-sided QLoRA recipe, which
reduces to that formula on the positive side.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.datatypes.base import GridDataType

__all__ = ["NormalFloatType", "nf4", "nf_positive_half"]

# QLoRA's offset: quantiles are taken in [1-delta, delta] rather than
# (0, 1) so that Phi^-1 stays finite.  QLoRA uses (1/2)(1/32 + 1/30).
_DELTA = 0.5 * (1 / 32 + 1 / 30)


def nf_positive_half(levels: int) -> np.ndarray:
    """``levels`` Gaussian-quantile points spanning [0, 1] (paper Eq. 3)."""
    probs = np.linspace(0.5, 1.0 - _DELTA, levels)
    q = norm.ppf(probs)
    return q / q[-1]


class NormalFloatType(GridDataType):
    """b-bit NormalFloat: Gaussian-quantile grid normalised to [-1, 1]."""

    def __init__(self, bits: int = 4):
        n = 2**bits
        pos = nf_positive_half(n // 2 + 1)           # includes 0 and 1
        neg_src = norm.ppf(np.linspace(_DELTA, 0.5, n // 2))
        neg = neg_src / np.abs(neg_src[0])           # spans [-1, 0)
        grid = np.unique(np.concatenate([neg, pos]))
        super().__init__(name=f"nf{bits}", bits=bits, grid=grid)


nf4 = NormalFloatType(4)
