"""Power-of-two (PoT) data type.

The logarithmic type ANT selects for Laplace-distributed tensors and the
limit case of MANT at ``a = 0``: the positive grid is ``{2^0, ..., 2^(2^(b-1)-1)}``
mirrored to negative values.  Like MANT, PoT in this formulation has no
exact zero — the nearest-to-zero codes are ±1 (pre-scaling) — which
matches Eq. 2 of the paper evaluated at ``a = 0``.

A conventional PoT with zero (as in logarithmic CNN quantization) is also
provided for the ANT baseline, where the all-zeros code is reserved for 0.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import GridDataType

__all__ = ["PotType", "pot4", "pot4_with_zero"]


class PotType(GridDataType):
    """n-bit sign-magnitude power-of-two grid ±{2^0 .. 2^(2^(n-1)-1)}."""

    def __init__(self, bits: int, with_zero: bool = False):
        imax = 2 ** (bits - 1) - 1
        pos = 2.0 ** np.arange(0, imax + 1)
        if with_zero:
            # Sacrifice the largest exponent for an exact zero, the
            # convention used by ANT's PoT variant.
            pos = np.concatenate([[0.0], 2.0 ** np.arange(0, imax)])
        grid = np.concatenate([-pos[::-1], pos])
        name = f"pot{bits}z" if with_zero else f"pot{bits}"
        super().__init__(name=name, bits=bits, grid=grid)
        self.with_zero = with_zero


pot4 = PotType(4)
pot4_with_zero = PotType(4, with_zero=True)
