"""Cycle-approximate accelerator simulator (the paper's HW evaluation)."""

from repro.hardware.pe import PEArray
from repro.hardware.rqu import RQUModel, DIVIDER_CYCLES
from repro.hardware.systolic import GemmShape, GemmTiming, systolic_gemm_cycles
from repro.hardware.memory import MemorySystem, TrafficLedger, fmt_for_bits
from repro.hardware.energy import EnergyModel, EnergyBreakdown, DEFAULT_ENERGY
from repro.hardware.area import AreaModel, ACCELERATOR_AREAS, area_table
from repro.hardware.accelerator import Accelerator, LayerResult, OperandSpec
from repro.hardware.workloads import (
    LLMShape,
    MODEL_SHAPES,
    linear_layer_gemms,
    attention_gemms,
)
from repro.hardware.workloads import decode_linear_gemms
from repro.hardware.configs import (
    PrecisionPolicy,
    ACCELERATORS,
    POLICIES,
    GROUPWISE_ACCELERATORS,
    GROUPWISE_POLICIES,
    get_accelerator,
    get_policy,
)
from repro.hardware.simulator import (
    simulate_linear_layer,
    simulate_attention_layer,
    simulate_token,
    speedup_and_energy,
    SimPoint,
)
from repro.hardware.report import ModelReport, model_report, memory_footprint_bytes

__all__ = [
    "PEArray",
    "RQUModel",
    "DIVIDER_CYCLES",
    "GemmShape",
    "GemmTiming",
    "systolic_gemm_cycles",
    "MemorySystem",
    "TrafficLedger",
    "fmt_for_bits",
    "EnergyModel",
    "EnergyBreakdown",
    "DEFAULT_ENERGY",
    "AreaModel",
    "ACCELERATOR_AREAS",
    "area_table",
    "Accelerator",
    "LayerResult",
    "OperandSpec",
    "LLMShape",
    "MODEL_SHAPES",
    "linear_layer_gemms",
    "attention_gemms",
    "decode_linear_gemms",
    "PrecisionPolicy",
    "ACCELERATORS",
    "POLICIES",
    "GROUPWISE_ACCELERATORS",
    "GROUPWISE_POLICIES",
    "get_accelerator",
    "get_policy",
    "simulate_linear_layer",
    "simulate_attention_layer",
    "simulate_token",
    "speedup_and_energy",
    "SimPoint",
    "ModelReport",
    "model_report",
    "memory_footprint_bytes",
]
