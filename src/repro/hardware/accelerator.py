"""Accelerator model: timing + energy + traffic for one GEMM or layer.

Combines the PE-array capability, the systolic timing, the memory
roofline and the energy constants into :meth:`Accelerator.run_gemm`,
the primitive every experiment builds on.  Latency per GEMM is
``max(compute, DRAM)`` plus non-hidden quantization overhead — the
standard double-buffered roofline the paper's simulator also assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil

from repro.hardware.area import ACCELERATOR_AREAS, AreaModel
from repro.hardware.energy import DEFAULT_ENERGY, EnergyBreakdown, EnergyModel
from repro.hardware.memory import MemorySystem, TrafficLedger, fmt_for_bits
from repro.hardware.pe import PEArray
from repro.hardware.rqu import RQUModel
from repro.hardware.systolic import GemmShape, systolic_gemm_cycles

__all__ = ["Accelerator", "LayerResult", "OperandSpec"]


@dataclass(frozen=True)
class OperandSpec:
    """Precision + format of one GEMM's operands."""

    a_bits: int = 8
    w_bits: int = 4
    group_size: int = 64
    w_coeff_bits: int = 0        # 8 for MANT/ANT group metadata
    out_bits: int = 16           # accumulator output written back
    output_quantized: bool = False


@dataclass
class LayerResult:
    """Aggregated cycles / energy / traffic for one or more GEMMs."""

    cycles: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    traffic: TrafficLedger = field(default_factory=TrafficLedger)
    macs: float = 0.0

    def __add__(self, other: "LayerResult") -> "LayerResult":
        return LayerResult(
            cycles=self.cycles + other.cycles,
            energy=self.energy + other.energy,
            traffic=self.traffic + other.traffic,
            macs=self.macs + other.macs,
        )

    def latency_s(self, freq_ghz: float = 1.0) -> float:
        return self.cycles * 1e-9 / freq_ghz


@dataclass(frozen=True)
class Accelerator:
    """One evaluated design (MANT or a baseline) at equal area.

    ``decoder_per_weight``/``sac_per_mac`` express the method-specific
    core-energy adders: adaptive-type baselines decode every weight
    (ANT/OliVe decoders), MANT runs its shift-accumulate lane instead.
    ``fused_quant`` marks designs whose group-scale pipeline overlaps
    with GEMM (MANT); unfused designs expose vector-unit passes
    (Sec. VII-D).
    """

    name: str
    array: PEArray = field(default_factory=lambda: PEArray("array"))
    memory: MemorySystem = field(default_factory=MemorySystem)
    energy_model: EnergyModel = DEFAULT_ENERGY
    rqu: RQUModel = field(default_factory=RQUModel)
    area_key: str = "MANT"
    uses_decoder: bool = False
    uses_sac: bool = False
    fused_quant: bool = True

    @property
    def area(self) -> AreaModel:
        return ACCELERATOR_AREAS[self.area_key]

    # ------------------------------------------------------------------
    def run_gemm(self, shape: GemmShape, op: OperandSpec,
                 weights_resident: bool = False) -> LayerResult:
        """Simulate one GEMM.

        ``weights_resident`` skips the weight DRAM fetch (already
        on-chip from a previous tile), used when a layer's working set
        fits the 512 KB buffer.
        """
        timing = systolic_gemm_cycles(
            shape,
            self.array,
            op.a_bits,
            op.w_bits,
            rqu=self.rqu,
            output_quantized=op.output_quantized,
            group_size=op.group_size,
            fused_quant=self.fused_quant,
        )

        # ---------------- traffic ----------------
        w_fmt = fmt_for_bits(op.w_bits, op.group_size, op.w_coeff_bits)
        a_fmt = fmt_for_bits(op.a_bits, op.group_size)
        w_bytes = 0.0 if weights_resident else w_fmt.tensor_bytes(
            shape.k * shape.n, inner_dim=shape.k
        )
        a_bytes = a_fmt.tensor_bytes(shape.m * shape.k, inner_dim=shape.k)
        o_bytes = shape.m * shape.n * op.out_bits / 8
        traffic = TrafficLedger(
            weight_bytes=0.0 if shape.kv else w_bytes,
            kv_bytes=w_bytes if shape.kv else 0.0,
            act_bytes=a_bytes,
            out_bytes=o_bytes,
        )

        # ---------------- latency ----------------
        compute_cycles = timing.compute_cycles + timing.fill_drain_cycles
        mem_cycles = self.memory.dram_cycles(traffic.dram_bytes)
        cycles = max(compute_cycles, mem_cycles) + timing.quant_overhead_cycles

        # ---------------- energy ----------------
        em = self.energy_model
        macs = shape.macs
        core = macs * em.mac_pj(op.a_bits, op.w_bits)
        if self.uses_sac:
            core += macs * em.sac_pj
        if self.uses_decoder:
            core += shape.k * shape.n * em.decoder_pj
        if op.output_quantized:
            core += shape.m * shape.n * em.rqu_op_pj

        rows, _cols = self.array.dims(op.a_bits, op.w_bits)
        tiles_k = ceil(shape.k / rows)
        tiles_n = ceil(shape.n / self.array.cols)
        # Weight-stationary reuse: weights enter SRAM once, activations
        # re-stream per output-column tile, partial sums per K tile.
        buffer_bytes = (
            w_bytes
            + a_bytes * tiles_n
            + o_bytes * tiles_k
        )
        energy = EnergyBreakdown(
            core=core,
            buffer=buffer_bytes * em.sram_pj_per_byte,
            dram=traffic.dram_bytes * em.dram_pj_per_byte,
            static=cycles * em.static_pj_per_cycle(
                self.area.total_mm2, self.memory.freq_ghz
            ),
        )
        return LayerResult(cycles=cycles, energy=energy, traffic=traffic, macs=macs)

    # ------------------------------------------------------------------
    def run_gemms(self, shapes_ops) -> LayerResult:
        """Sum :meth:`run_gemm` over ``(shape, op)`` pairs."""
        total = LayerResult()
        for shape, op in shapes_ops:
            total = total + self.run_gemm(shape, op)
        return total
