"""Area model (paper Tbl. IV).

Component areas come from the paper's Design Compiler synthesis at TSMC
28 nm (we cannot re-synthesize offline — DESIGN.md §7); this module does
the composition bookkeeping: counts × unit area + shared buffers and
vector units.  The paper's equal-area comparison methodology falls out:
every accelerator's core lands near 0.3 mm² with the PE counts of
Tbl. IV.

All areas in mm² unless suffixed ``_um2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AreaModel", "ACCELERATOR_AREAS", "area_table"]

# Unit areas from Tbl. IV (µm²).
PE_8BIT_UM2 = 281.75          # MANT 8-bit MAC+SAC PE
RQU_UM2 = 416.63              # MANT real-time quantization unit
OLIVE_PE_UM2 = 79.57          # OliVe 4-bit PE
OLIVE_DEC4_UM2 = 48.51        # OliVe 4-bit decoder
OLIVE_DEC8_UM2 = 73.25        # OliVe 8-bit decoder
ANT_PE_UM2 = 79.57            # ANT 4-bit PE
ANT_DEC_UM2 = 4.9             # ANT decoder
TENDER_PE_UM2 = 77.28         # Tender 4-bit PE

BUFFER_MM2 = 4.2              # 512 KB multi-bank buffer (CACTI)
VECTOR_UNITS_MM2 = 0.069      # 64 vector units
ACCUM_UNITS_MM2 = 0.016       # 32 accumulation units


@dataclass(frozen=True)
class AreaModel:
    """One accelerator's core composition."""

    name: str
    components: tuple[tuple[str, float, int], ...]  # (label, um2, count)
    buffer_mm2: float = BUFFER_MM2
    vector_mm2: float = VECTOR_UNITS_MM2
    accum_mm2: float = ACCUM_UNITS_MM2

    @property
    def core_mm2(self) -> float:
        return sum(um2 * count for _, um2, count in self.components) / 1e6

    @property
    def total_mm2(self) -> float:
        return self.core_mm2 + self.buffer_mm2 + self.vector_mm2 + self.accum_mm2

    def breakdown(self) -> dict[str, float]:
        out = {
            f"{label} x{count}": um2 * count / 1e6
            for label, um2, count in self.components
        }
        out["buffer"] = self.buffer_mm2
        out["vector units"] = self.vector_mm2
        out["accumulation units"] = self.accum_mm2
        return out


ACCELERATOR_AREAS: dict[str, AreaModel] = {
    "MANT": AreaModel(
        "MANT",
        components=(
            ("8-bit PE (281.75um2)", PE_8BIT_UM2, 1024),
            ("RQU (416.63um2)", RQU_UM2, 32),
        ),
    ),
    "OliVe": AreaModel(
        "OliVe",
        components=(
            ("4-bit PE (79.57um2)", OLIVE_PE_UM2, 4096),
            ("4-bit decoder (48.51um2)", OLIVE_DEC4_UM2, 128),
            ("8-bit decoder (73.25um2)", OLIVE_DEC8_UM2, 64),
        ),
    ),
    "ANT": AreaModel(
        "ANT",
        components=(
            ("4-bit PE (79.57um2)", ANT_PE_UM2, 4096),
            ("decoder (4.9um2)", ANT_DEC_UM2, 128),
        ),
    ),
    "Tender": AreaModel(
        "Tender",
        components=(("4-bit PE (77.28um2)", TENDER_PE_UM2, 4096),),
    ),
    # BitFusion shares the ANT-style 4-bit fusion fabric; the paper's
    # table lists the three adaptive baselines, BitFusion is modelled at
    # the same PE budget for the equal-area comparison.
    "BitFusion": AreaModel(
        "BitFusion",
        components=(("4-bit PE (79.57um2)", ANT_PE_UM2, 4096),),
    ),
}


def area_table() -> list[dict[str, object]]:
    """Rows reproducing Tbl. IV (name, core mm², total mm²)."""
    rows = []
    for name, model in ACCELERATOR_AREAS.items():
        rows.append(
            {
                "architecture": name,
                "core_mm2": round(model.core_mm2, 3),
                "total_mm2": round(model.total_mm2, 3),
                "breakdown": model.breakdown(),
            }
        )
    return rows
