"""Evaluated accelerator configurations and precision policies.

The five designs of the paper's evaluation (Sec. VII-A), normalised to
equal area / bandwidth / frequency, plus the group-wise ANT/INT
variants of the Sec. VII-D comparison.

**Precision policies.**  The paper aligns perplexity before comparing
performance: OliVe and Tender run 4/8 mixed precision, ANT* runs plain
INT8, BitFusion 8/16 — each method uses wider weights for the fraction
of layers its 4-bit accuracy cannot carry.  The mixed fractions below
are this reproduction's PPL-matching calibration (derived from the
Tbl. II accuracy gaps; OPT models need more 8-bit in the baselines,
matching their larger W4A4 blow-ups).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import Accelerator
from repro.hardware.memory import MemorySystem
from repro.hardware.pe import PEArray

__all__ = [
    "PrecisionPolicy",
    "ACCELERATORS",
    "POLICIES",
    "GROUPWISE_ACCELERATORS",
    "GROUPWISE_POLICIES",
    "get_accelerator",
    "get_policy",
]


@dataclass(frozen=True)
class PrecisionPolicy:
    """How one design quantizes a model's layers.

    ``weight_mix`` gives (weight_bits, fraction_of_layers); activation
    width follows the layer's weight width for the W4A4/W8A8 baselines
    (``act_follows_weights``), or is fixed (MANT's INT8, BitFusion's
    FP16 activations).
    """

    name: str
    weight_mix: tuple[tuple[int, float], ...]
    act_bits: int = 8
    act_follows_weights: bool = False
    kv_bits: int = 16
    attn_act_bits: int = 16
    group_size: int = 0           # 0 = tensor/channel-wise formats
    w_coeff_bits: int = 0
    output_quantized: bool = False

    def mix(self) -> tuple[tuple[int, float], ...]:
        total = sum(f for _, f in self.weight_mix)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weight mix of {self.name} sums to {total}")
        return self.weight_mix

    def act_bits_for(self, w_bits: int) -> int:
        return w_bits if self.act_follows_weights else self.act_bits


_SHARED_MEM = MemorySystem()


def _accel(name: str, area_key: str, uses_decoder: bool, uses_sac: bool,
           fused_quant: bool) -> Accelerator:
    return Accelerator(
        name=name,
        array=PEArray(name=name),
        memory=_SHARED_MEM,
        area_key=area_key,
        uses_decoder=uses_decoder,
        uses_sac=uses_sac,
        fused_quant=fused_quant,
    )


ACCELERATORS: dict[str, Accelerator] = {
    "MANT": _accel("MANT", "MANT", uses_decoder=False, uses_sac=True, fused_quant=True),
    "Tender": _accel("Tender", "Tender", uses_decoder=False, uses_sac=False, fused_quant=True),
    "OliVe": _accel("OliVe", "OliVe", uses_decoder=True, uses_sac=False, fused_quant=True),
    "ANT*": _accel("ANT*", "ANT", uses_decoder=True, uses_sac=False, fused_quant=True),
    "BitFusion": _accel("BitFusion", "BitFusion", uses_decoder=False, uses_sac=False, fused_quant=True),
}


def _mant_policy() -> PrecisionPolicy:
    return PrecisionPolicy(
        name="MANT",
        weight_mix=((4, 1.0),),
        act_bits=8,
        kv_bits=4,
        attn_act_bits=8,
        group_size=64,
        w_coeff_bits=8,
        output_quantized=True,
    )


POLICIES: dict[str, dict[str, PrecisionPolicy]] = {
    "MANT": {
        "llama": _mant_policy(),
        "opt": _mant_policy(),
    },
    "Tender": {
        "llama": PrecisionPolicy("Tender", ((4, 0.15), (8, 0.85)), act_follows_weights=True),
        "opt": PrecisionPolicy("Tender", ((4, 0.25), (8, 0.75)), act_follows_weights=True),
    },
    "OliVe": {
        "llama": PrecisionPolicy("OliVe", ((4, 0.08), (8, 0.92)), act_follows_weights=True),
        "opt": PrecisionPolicy("OliVe", ((4, 0.05), (8, 0.95)), act_follows_weights=True),
    },
    "ANT*": {
        "llama": PrecisionPolicy("ANT*", ((8, 1.0),), act_bits=8),
        "opt": PrecisionPolicy("ANT*", ((8, 1.0),), act_bits=8),
    },
    "BitFusion": {
        "llama": PrecisionPolicy("BitFusion", ((8, 0.70), (16, 0.30)), act_bits=16),
        "opt": PrecisionPolicy("BitFusion", ((8, 0.65), (16, 0.35)), act_bits=16),
    },
}


# ----------------------------------------------------------------------
# Sec. VII-D group-wise comparison (Fig. 14): everyone at group size 64.
# ANT gains per-group weight types (decoder + metadata) but still needs
# 4/8 mixing to reach MANT's PPL and pays unfused scale handling; INT
# needs even more 8-bit layers.  Both now quantize the KV cache with
# group-wise INT4 (the paper extends them so the comparison isolates
# the data type).
# ----------------------------------------------------------------------
GROUPWISE_ACCELERATORS: dict[str, Accelerator] = {
    "MANT": ACCELERATORS["MANT"],
    "ANT-g64": _accel("ANT-g64", "ANT", uses_decoder=True, uses_sac=False, fused_quant=False),
    "INT-g64": _accel("INT-g64", "Tender", uses_decoder=False, uses_sac=False, fused_quant=False),
}

GROUPWISE_POLICIES: dict[str, dict[str, PrecisionPolicy]] = {
    "MANT": POLICIES["MANT"],
    "ANT-g64": {
        fam: PrecisionPolicy(
            "ANT-g64",
            ((4, 0.40), (8, 0.60)),
            act_bits=8,
            kv_bits=4,
            attn_act_bits=8,
            group_size=64,
            w_coeff_bits=8,
            output_quantized=True,
        )
        for fam in ("llama", "opt")
    },
    "INT-g64": {
        fam: PrecisionPolicy(
            "INT-g64",
            ((4, 0.30), (8, 0.70)),
            act_bits=8,
            kv_bits=4,
            attn_act_bits=8,
            group_size=64,
            w_coeff_bits=0,
            output_quantized=True,
        )
        for fam in ("llama", "opt")
    },
}


def get_accelerator(name: str, groupwise: bool = False) -> Accelerator:
    table = GROUPWISE_ACCELERATORS if groupwise else ACCELERATORS
    return table[name]


def get_policy(name: str, family: str, groupwise: bool = False) -> PrecisionPolicy:
    table = GROUPWISE_POLICIES if groupwise else POLICIES
    return table[name][family]
