"""Per-operation energy model (28 nm, Horowitz-style constants).

The paper synthesizes at TSMC 28 nm and reports relative energy between
accelerators; we model energy with per-op constants derived from the
widely used Horowitz ISSCC'14 numbers (45 nm) scaled to 28 nm (~0.6x
capacitive scaling), the same modelling level as the DNNWeaver-based
simulator the paper uses.  Absolute joules are not the reproduction
target — the core/buffer/DRAM/static *breakdown* and the ratios between
accelerators are (Fig. 12/13/14).

All constants in picojoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyModel", "EnergyBreakdown", "DEFAULT_ENERGY"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy constants; see module docstring for provenance."""

    # 8-bit x 8-bit integer multiply-accumulate; other widths scale with
    # the bit product (multiplier energy is ~linear in bit area).
    mac_8x8_pj: float = 0.20
    # Shift-accumulate lane of the MANT PE (barrel shift + add).
    sac_pj: float = 0.04
    # Per-weight decode of ANT/OliVe-style type decoders.
    decoder_pj: float = 0.01
    # FP16 comparator / accumulator step in the RQU.
    rqu_op_pj: float = 0.05
    # On-chip SRAM access per byte (512 KB-class multi-bank buffer).
    sram_pj_per_byte: float = 0.6
    # Off-chip DRAM access per byte (LPDDR-class).
    dram_pj_per_byte: float = 20.0
    # Static (leakage + clock) power density, mW per mm^2.
    static_mw_per_mm2: float = 60.0

    def mac_pj(self, a_bits: int, w_bits: int) -> float:
        """MAC energy scaled by the bit product relative to 8x8."""
        return self.mac_8x8_pj * (a_bits * w_bits) / 64.0

    def static_pj_per_cycle(self, area_mm2: float, freq_ghz: float) -> float:
        """Static energy burned per cycle by ``area_mm2`` of logic."""
        watts = self.static_mw_per_mm2 * area_mm2 * 1e-3
        seconds_per_cycle = 1e-9 / freq_ghz
        return watts * seconds_per_cycle * 1e12


DEFAULT_ENERGY = EnergyModel()


@dataclass
class EnergyBreakdown:
    """Energy accounting in the paper's four Fig. 12 categories (pJ)."""

    core: float = 0.0
    buffer: float = 0.0
    dram: float = 0.0
    static: float = 0.0

    @property
    def total(self) -> float:
        return self.core + self.buffer + self.dram + self.static

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            core=self.core + other.core,
            buffer=self.buffer + other.buffer,
            dram=self.dram + other.dram,
            static=self.static + other.static,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            core=self.core * factor,
            buffer=self.buffer * factor,
            dram=self.dram * factor,
            static=self.static * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "core": self.core,
            "buffer": self.buffer,
            "dram": self.dram,
            "static": self.static,
            "total": self.total,
        }
