"""Memory system model: DRAM roofline + on-chip buffer traffic.

The decode stage of LLM inference is memory-bound (paper Sec. II-A), so
the DRAM model is what decides long-sequence results: bytes moved per
tensor follow the *storage formats* of :mod:`repro.core.metadata`, which
is the same accounting the accuracy side uses — 4-bit MANT weights
really ship 4.375 bits/element including group metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metadata import StorageFormat

__all__ = ["MemorySystem", "TrafficLedger", "fmt_for_bits"]


def fmt_for_bits(bits: int, group_size: int = 64, coeff_bits: int = 0,
                 name: str | None = None) -> StorageFormat:
    """Storage format helper: FP16 is scale-free, low-bit pays metadata."""
    if bits >= 16:
        return StorageFormat(name or "fp16", element_bits=16)
    return StorageFormat(
        name or f"q{bits}-g{group_size}",
        element_bits=bits,
        group_size=group_size,
        coeff_bits=coeff_bits,
    )


@dataclass
class TrafficLedger:
    """Bytes moved, split by tensor role (weights / acts / KV / output)."""

    weight_bytes: float = 0.0
    act_bytes: float = 0.0
    kv_bytes: float = 0.0
    out_bytes: float = 0.0

    @property
    def dram_bytes(self) -> float:
        return self.weight_bytes + self.act_bytes + self.kv_bytes + self.out_bytes

    def __add__(self, other: "TrafficLedger") -> "TrafficLedger":
        return TrafficLedger(
            weight_bytes=self.weight_bytes + other.weight_bytes,
            act_bytes=self.act_bytes + other.act_bytes,
            kv_bytes=self.kv_bytes + other.kv_bytes,
            out_bytes=self.out_bytes + other.out_bytes,
        )


@dataclass(frozen=True)
class MemorySystem:
    """Bandwidth + buffer parameters shared by all accelerators.

    The paper configures "the same memory bandwidth, on-chip buffer
    size, and frequency across all accelerators" (Sec. VII-A).
    """

    dram_gb_per_s: float = 256.0
    freq_ghz: float = 1.0
    sram_bytes: int = 512 * 1024

    @property
    def bytes_per_cycle(self) -> float:
        return self.dram_gb_per_s / self.freq_ghz  # GB/s over Gcycle/s

    def dram_cycles(self, n_bytes: float) -> float:
        return n_bytes / self.bytes_per_cycle

    def fits_on_chip(self, n_bytes: float) -> bool:
        return n_bytes <= self.sram_bytes
