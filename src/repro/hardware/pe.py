"""Processing-element and array capability model.

Every evaluated accelerator is normalised to the same silicon budget
(paper Tbl. IV): MANT fields 1024 8-bit PEs, the baselines 4096 4-bit
fusion-style PEs — both 65536 bit-products per cycle.  Mixed precision
follows BitFusion composition: an ``a x w`` multiply consumes
``(a*w) / (pe_bits^2)`` PEs, so throughput in MACs/cycle is::

    macs_per_cycle(a, w) = capacity_bitproducts / (a * w)

The systolic organisation keeps 32 output columns (the paper's
32-column weight-stationary array with per-column RQUs); the effective
row count (accumulation dimension fed per cycle) scales with precision,
reproducing the 32x32 / 64x32 / 128x32 configurations of Sec. VI-B.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PEArray"]


@dataclass(frozen=True)
class PEArray:
    """Capability of one accelerator's compute array."""

    name: str
    capacity_bitproducts: int = 65536   # = 1024 x 8x8 = 4096 x 4x4
    cols: int = 32
    min_bits: int = 2                   # narrowest supported operand

    def _clamp(self, bits: int) -> int:
        return max(bits, self.min_bits)

    def macs_per_cycle(self, a_bits: int, w_bits: int) -> int:
        """Throughput for an ``a_bits x w_bits`` GEMM."""
        a = self._clamp(a_bits)
        w = self._clamp(w_bits)
        return max(1, self.capacity_bitproducts // (a * w))

    def dims(self, a_bits: int, w_bits: int) -> tuple[int, int]:
        """(rows, cols) of the effective systolic array (Sec. VI-B)."""
        rows = max(1, self.macs_per_cycle(a_bits, w_bits) // self.cols)
        return rows, self.cols
