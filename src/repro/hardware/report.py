"""Full-model simulation reports: tokens/s, per-layer breakdowns.

Aggregates :mod:`repro.hardware.simulator` results into the numbers a
deployment study needs — end-to-end decode throughput at a context
length, memory-footprint budgets, and a per-component table — for any
(accelerator, policy, model) triple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metadata import StorageFormat
from repro.hardware.accelerator import Accelerator
from repro.hardware.configs import PrecisionPolicy
from repro.hardware.memory import fmt_for_bits
from repro.hardware.simulator import simulate_token
from repro.hardware.workloads import LLMShape

__all__ = ["ModelReport", "model_report", "memory_footprint_bytes"]


def memory_footprint_bytes(shape: LLMShape, policy: PrecisionPolicy,
                           context_len: int) -> dict[str, float]:
    """Weights + KV cache resident bytes under a policy's formats."""
    weight_elems = shape.layer_weight_elements() * shape.n_layers
    w_bytes = 0.0
    for bits, frac in policy.mix():
        fmt = fmt_for_bits(bits, policy.group_size or 64, policy.w_coeff_bits)
        w_bytes += frac * fmt.tensor_bytes(weight_elems, inner_dim=shape.d_model)
    kv_elems = 2 * context_len * shape.d_model * shape.n_layers
    kv_fmt: StorageFormat = fmt_for_bits(
        policy.kv_bits, policy.group_size or 64,
        policy.w_coeff_bits if policy.kv_bits < 16 else 0,
    )
    kv_bytes = kv_fmt.tensor_bytes(kv_elems, inner_dim=shape.d_model)
    return {"weights": w_bytes, "kv_cache": kv_bytes, "total": w_bytes + kv_bytes}


@dataclass
class ModelReport:
    """End-to-end decode characterisation of one design on one model."""

    accel: str
    model: str
    context_len: int
    token_latency_s: float
    tokens_per_s: float
    linear_fraction: float
    attention_fraction: float
    energy_per_token_mj: float
    dram_gb_per_token: float
    weight_bytes: float
    kv_bytes: float

    def rows(self) -> list:
        return [
            self.accel,
            self.model,
            self.context_len,
            self.tokens_per_s,
            self.linear_fraction,
            self.attention_fraction,
            self.energy_per_token_mj,
            self.weight_bytes / 1e9,
            self.kv_bytes / 1e9,
        ]


def model_report(
    accel: Accelerator,
    policy: PrecisionPolicy,
    shape: LLMShape,
    context_len: int,
) -> ModelReport:
    """Simulate one decode token and fold in the footprint budget."""
    parts = simulate_token(accel, policy, shape, context_len)
    total = parts["total"]
    latency = total.latency_s(accel.memory.freq_ghz)
    footprint = memory_footprint_bytes(shape, policy, context_len)
    return ModelReport(
        accel=accel.name,
        model=shape.name,
        context_len=context_len,
        token_latency_s=latency,
        tokens_per_s=1.0 / latency,
        linear_fraction=parts["linear"].cycles / total.cycles,
        attention_fraction=parts["attention"].cycles / total.cycles,
        energy_per_token_mj=total.energy.total * 1e-9,
        dram_gb_per_token=total.traffic.dram_bytes / 1e9,
        weight_bytes=footprint["weights"],
        kv_bytes=footprint["kv_cache"],
    )
