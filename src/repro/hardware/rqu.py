"""Real-time quantization unit (RQU) cycle model (paper Sec. VI-C).

32 RQUs sit under the systolic array's output columns.  Each is an FP16
comparator plus two FP16 accumulators, supporting two dataflows:

* **spatial** — maxima travel left-to-right across the 32 columns,
  pipelined with the array's output streaming: after a 32-cycle prime
  the last RQU emits one group maximum per cycle.  A group of 64
  elements spread over two column passes needs two comparison rounds.
* **temporal** — each RQU tracks one output column across decode
  iterations (the V-cache case), retaining max / Σv / Σv² in its
  registers; zero added latency per iteration, one finalisation pass
  when a window closes.

The quantization *division* (scale = max / grid_max, then per-element
divide) uses a 12-cycle non-pipelined divider (Sec. VI-E); its
visibility depends on how many K-dimension tiles the surrounding GEMM
has to hide it behind.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RQUModel", "DIVIDER_CYCLES"]

DIVIDER_CYCLES = 12


@dataclass(frozen=True)
class RQUModel:
    """Cycle accounting for the RQU bank."""

    n_units: int = 32
    pipeline_prime: int = 32     # columns the first maximum crosses

    def spatial_cycles(self, m_rows: int, n_cols: int, group_size: int) -> int:
        """Extra cycles to reduce maxima for an (m, n) output tile.

        Fully pipelined with the array's column-staggered output: only
        the prime latency plus one extra pass per additional
        ``n_units``-wide slice of the group is exposed.
        """
        rounds = max(1, group_size // self.n_units)
        return self.pipeline_prime + rounds * max(m_rows, 1)

    def temporal_cycles_per_iteration(self) -> int:
        """Streaming accumulate: hidden behind the array output."""
        return 0

    def finalize_window_cycles(self, channels: int) -> int:
        """Variance + selection when a V window closes.

        One pass over the RQU registers: variance from (Σv, Σv²) and a
        range lookup for ``a`` — ``channels / n_units`` vector steps
        plus the divider.
        """
        return -(-channels // self.n_units) + DIVIDER_CYCLES

    def division_overhead(self, k_tiles: int) -> int:
        """Non-hidden part of the scale division (Sec. VI-E).

        The divider hides behind K-dimension tile iterations; with 12+
        iterations it vanishes, with fewer the remainder is exposed.
        """
        return max(0, DIVIDER_CYCLES - k_tiles)
