"""End-to-end layer simulation: the engine behind Fig. 12/13/14.

``simulate_linear_layer`` and ``simulate_attention_layer`` evaluate one
Transformer layer of a given model on a given accelerator+policy;
mixed-precision policies are handled by simulating the layer set at
each weight width and blending by the policy's layer fractions (layers
are homogeneous within a width class, so the blend is exact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import Accelerator, LayerResult, OperandSpec
from repro.hardware.configs import PrecisionPolicy
from repro.hardware.workloads import (
    LLMShape,
    attention_gemms,
    decode_linear_gemms,
    linear_layer_gemms,
)

__all__ = [
    "simulate_linear_layer",
    "simulate_attention_layer",
    "simulate_token",
    "speedup_and_energy",
    "SimPoint",
]


def _weight_spec(policy: PrecisionPolicy, w_bits: int) -> OperandSpec:
    return OperandSpec(
        a_bits=policy.act_bits_for(w_bits),
        w_bits=w_bits,
        group_size=policy.group_size or 64,
        w_coeff_bits=policy.w_coeff_bits,
        out_bits=16,
        output_quantized=policy.output_quantized,
    )


def simulate_linear_layer(
    accel: Accelerator,
    policy: PrecisionPolicy,
    shape: LLMShape,
    seq_len: int = 2048,
    decode: bool = False,
) -> LayerResult:
    """One Transformer layer's linear projections (no attention)."""
    gemms = decode_linear_gemms(shape) if decode else linear_layer_gemms(shape, seq_len)
    total = LayerResult()
    for w_bits, frac in policy.mix():
        op = _weight_spec(policy, w_bits)
        res = accel.run_gemms((g, op) for g in gemms)
        total = total + _scale(res, frac)
    return total


def simulate_attention_layer(
    accel: Accelerator,
    policy: PrecisionPolicy,
    shape: LLMShape,
    context_len: int,
    decode: bool = True,
) -> LayerResult:
    """The attention GEMMs against the (possibly quantized) KV cache.

    Baselines keep KV at FP16 and compute attention at 16 bit (the
    paper's setup); MANT runs INT8 activations against 4-bit MANT KV.
    """
    gemms = attention_gemms(shape, context_len, decode=decode)
    op = OperandSpec(
        a_bits=policy.attn_act_bits,
        w_bits=policy.kv_bits,
        group_size=policy.group_size or 64,
        w_coeff_bits=policy.w_coeff_bits if policy.kv_bits < 16 else 0,
        out_bits=16,
        output_quantized=policy.output_quantized and policy.kv_bits < 16,
    )
    return accel.run_gemms((g, op) for g in gemms)


def simulate_token(
    accel: Accelerator,
    policy: PrecisionPolicy,
    shape: LLMShape,
    context_len: int,
) -> dict[str, LayerResult]:
    """One decode token through all layers: linear + attention split."""
    linear = simulate_linear_layer(accel, policy, shape, decode=True)
    attn = simulate_attention_layer(accel, policy, shape, context_len, decode=True)
    n = shape.n_layers
    return {
        "linear": _scale(linear, n),
        "attention": _scale(attn, n),
        "total": _scale(linear, n) + _scale(attn, n),
    }


def _scale(res: LayerResult, factor: float) -> LayerResult:
    return LayerResult(
        cycles=res.cycles * factor,
        energy=res.energy.scaled(factor),
        traffic=_scale_traffic(res.traffic, factor),
        macs=res.macs * factor,
    )


def _scale_traffic(t, factor):
    from repro.hardware.memory import TrafficLedger

    return TrafficLedger(
        weight_bytes=t.weight_bytes * factor,
        act_bytes=t.act_bytes * factor,
        kv_bytes=t.kv_bytes * factor,
        out_bytes=t.out_bytes * factor,
    )


@dataclass
class SimPoint:
    """One (accelerator, workload) evaluation for reporting."""

    accel: str
    workload: str
    result: LayerResult

    def speedup_vs(self, other: "SimPoint") -> float:
        return other.result.cycles / self.result.cycles

    def energy_vs(self, other: "SimPoint") -> float:
        return other.result.energy.total / self.result.energy.total


def speedup_and_energy(results: dict[str, LayerResult], baseline: str) -> dict[str, dict[str, float]]:
    """Normalise a result set: speedup and energy vs ``baseline``."""
    base = results[baseline]
    out = {}
    for name, res in results.items():
        out[name] = {
            "speedup": base.cycles / res.cycles,
            "norm_energy": res.energy.total / base.energy.total,
            "cycles": res.cycles,
            "energy_pj": res.energy.total,
            "core": res.energy.core / base.energy.total,
            "buffer": res.energy.buffer / base.energy.total,
            "dram": res.energy.dram / base.energy.total,
            "static": res.energy.static / base.energy.total,
        }
    return out
