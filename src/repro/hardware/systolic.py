"""Weight-stationary systolic GEMM timing (paper Sec. VI-B/E, Fig. 11).

The model is tile-level, matching the paper's DNNWeaver-style
simulator: an ``M x K x N`` GEMM is tiled into ``(rows x cols)`` weight
tiles; each tile streams ``M`` activation rows plus a fill/drain bubble.
The quantization pipeline (scale products, maxima, division) overlaps
with tile compute; only the modelled non-hidden residue is added.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.hardware.pe import PEArray
from repro.hardware.rqu import RQUModel

__all__ = ["GemmShape", "GemmTiming", "systolic_gemm_cycles"]


@dataclass(frozen=True)
class GemmShape:
    """One GEMM: (M x K) activations against (K x N) weights.

    ``kv`` marks the weight-side operand as KV cache (attention GEMMs),
    which routes it to the KV storage format in the traffic model.
    """

    m: int
    k: int
    n: int
    kv: bool = False

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


@dataclass
class GemmTiming:
    """Cycle breakdown of one GEMM on one array configuration."""

    compute_cycles: float
    fill_drain_cycles: float
    quant_overhead_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.fill_drain_cycles + self.quant_overhead_cycles


def systolic_gemm_cycles(
    shape: GemmShape,
    array: PEArray,
    a_bits: int,
    w_bits: int,
    rqu: RQUModel | None = None,
    output_quantized: bool = False,
    group_size: int = 64,
    fused_quant: bool = True,
) -> GemmTiming:
    """Cycle count for ``shape`` at the given operand widths.

    ``output_quantized`` adds the real-time output quantization path
    (maxima + scale division); ``fused_quant=False`` models baselines
    that recompute per-group scales in the vector units instead of the
    RQU pipeline (the paper's Sec. VII-D group-wise comparison), which
    exposes one vector pass per output group.
    """
    rows, cols = array.dims(a_bits, w_bits)
    tiles_k = ceil(shape.k / rows)
    tiles_n = ceil(shape.n / cols)

    compute = tiles_k * tiles_n * shape.m
    # Weight tiles are double-buffered (loaded while the previous tile
    # computes), so consecutive tiles overlap: one pipeline fill at the
    # start plus a one-cycle bubble per tile switch.
    fill_drain = (rows + cols) + tiles_k * tiles_n

    quant = 0.0
    if output_quantized:
        r = rqu or RQUModel()
        if fused_quant:
            # Pipeline prime + non-hidden divider residue (Fig. 11).
            quant += r.spatial_cycles(min(shape.m, 1), cols, group_size)
            quant += r.division_overhead(tiles_k) * tiles_n
        else:
            # Unfused: a vector-unit pass over every output group plus
            # the full divider per group column.
            out_groups = ceil(shape.m * shape.n / group_size)
            quant += out_groups / r.n_units * 2
            quant += (r.division_overhead(0)) * tiles_n
    return GemmTiming(
        compute_cycles=float(compute),
        fill_drain_cycles=float(fill_drain),
        quant_overhead_cycles=float(quant),
    )
