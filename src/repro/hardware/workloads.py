"""LLM layer workloads: the GEMM shapes the paper evaluates.

Model shapes follow the published LLaMA-1/2 and OPT configurations; a
Transformer layer contributes the four attention projections and the
FFN projections (SwiGLU: gate/up/down for LLaMA; two-matrix ReLU FFN
for OPT), plus the two attention GEMMs whose weight-side operand is the
KV cache.

``linear_layer_gemms`` models the paper's Fig. 12 setting (sequence
2048, batch 1, prefill-style M = 2048); ``attention_gemms`` and
``decode_*`` model the decode stage at a given context length
(Fig. 13's 2K-128K sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.systolic import GemmShape

__all__ = ["LLMShape", "MODEL_SHAPES", "linear_layer_gemms", "attention_gemms"]


@dataclass(frozen=True)
class LLMShape:
    """Published architecture dimensions of one evaluated LLM."""

    name: str
    d_model: int
    n_heads: int
    d_ff: int
    n_layers: int
    family: str           # "llama" | "opt"

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    def linear_weights(self) -> list[tuple[str, int, int]]:
        """(name, K=in_features, N=out_features) of one layer's linears."""
        d, f = self.d_model, self.d_ff
        gemms = [("wq", d, d), ("wk", d, d), ("wv", d, d), ("wo", d, d)]
        if self.family == "llama":
            gemms += [("wgate", d, f), ("wup", d, f), ("wdown", f, d)]
        else:
            gemms += [("w1", d, f), ("w2", f, d)]
        return gemms

    def layer_weight_elements(self) -> int:
        return sum(k * n for _, k, n in self.linear_weights())


MODEL_SHAPES: dict[str, LLMShape] = {
    "llama-7b": LLMShape("llama-7b", 4096, 32, 11008, 32, "llama"),
    "llama-13b": LLMShape("llama-13b", 5120, 40, 13824, 40, "llama"),
    "llama-30b": LLMShape("llama-30b", 6656, 52, 17920, 60, "llama"),
    "llama-65b": LLMShape("llama-65b", 8192, 64, 22016, 80, "llama"),
    "opt-6.7b": LLMShape("opt-6.7b", 4096, 32, 16384, 32, "opt"),
    "opt-13b": LLMShape("opt-13b", 5120, 40, 20480, 40, "opt"),
}


def linear_layer_gemms(shape: LLMShape, seq_len: int = 2048) -> list[GemmShape]:
    """Prefill-style linear-layer GEMMs of one Transformer layer."""
    return [GemmShape(m=seq_len, k=k, n=n) for _, k, n in shape.linear_weights()]


def decode_linear_gemms(shape: LLMShape) -> list[GemmShape]:
    """Decode-stage (M = 1) linear GEMVs of one layer."""
    return [GemmShape(m=1, k=k, n=n) for _, k, n in shape.linear_weights()]


def attention_gemms(shape: LLMShape, context_len: int, decode: bool = True) -> list[GemmShape]:
    """Attention-layer GEMMs: QKᵀ and probs·V against the KV cache.

    In decode mode each of the H heads runs a (1 x d_head x S) and a
    (1 x S x d_head) GEMV; aggregated across heads that is
    ``(1, d_model, S)`` + ``(1, S, d_model)`` worth of MACs and a KV
    operand of ``2 * S * d_model`` elements, which is how we shape it
    (per-head tiling detail does not change tile counts at these sizes).
    """
    m = 1 if decode else context_len
    return [
        GemmShape(m=m, k=shape.d_model, n=context_len, kv=True),   # Q Kt
        GemmShape(m=m, k=context_len, n=shape.d_model, kv=True),   # P V
    ]
