"""repro.lint — AST-based static enforcement of the standing invariants.

The repo's determinism ladder (bit-exact quantized serving under
batching, paging, chunking, faults and fleet failover) rests on coding
contracts that used to be enforced only by the runtime suites *after*
a violation shipped.  This package checks them at diff time::

    PYTHONPATH=src python -m repro.lint src          # the whole tree
    python -m repro.lint --list-rules                # rule ids + contracts
    python -m repro.lint serve_patch.py other.py     # pre-commit diff mode

Rules (see :mod:`repro.lint.rules` and the ROADMAP "Static invariant
lint" section for the full contract text):

* ``clock-discipline`` — no wall-clock reads in ``repro.serve``
  outside the injectable clock seams.
* ``rng-discipline`` — no global-state ``random.*`` /
  ``np.random.*`` anywhere in ``repro``; seeded ``default_rng`` only.
* ``set-iteration-order`` — no iterating bare sets in the serve
  scheduling/routing files.
* ``finish-release-pairing`` — every ``FINISH_*``-emitting function
  in ``engine.py``/``fleet.py`` releases storage (or documents who
  does).
* ``window-alignment`` — no literal ``block_tokens=`` /
  ``prefill_chunk_tokens=`` outside the validated config path.
* ``frozen-config`` — ``serve/config.py`` dataclasses are frozen and
  validate in ``__post_init__``.
* ``export-consistency`` — ``__all__`` matches the module's real
  bindings and re-exports.
* ``mutable-default`` / ``bare-except`` — generic safety.

Suppress a finding on its line (or the comment-only line above it)
with ``# lint: allow[rule-id] reason`` — the reason is mandatory and
unused annotations are themselves flagged.  Pre-existing findings can
be grandfathered in ``artifacts/lint_baseline.json`` (kept empty on
the shipped tree); new findings always fail.
"""

from repro.lint.core import (
    BAD_SUPPRESSION,
    ERROR,
    PARSE_ERROR,
    RULES,
    UNUSED_SUPPRESSION,
    WARN,
    FileContext,
    Finding,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.lint import rules as _rules  # noqa: F401  (populates RULES)

__all__ = [
    "BAD_SUPPRESSION",
    "ERROR",
    "PARSE_ERROR",
    "RULES",
    "UNUSED_SUPPRESSION",
    "WARN",
    "FileContext",
    "Finding",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
