"""Grandfathered-findings baseline.

The baseline file (``artifacts/lint_baseline.json`` by convention)
holds findings that predate a rule and are temporarily tolerated:
runs subtract baseline entries by ``(rule, module-path, message)`` —
line-free, so unrelated edits don't resurrect old debt — while any
*new* finding still fails the gate.  ``--write-baseline`` regenerates
it; the shipped tree keeps it empty (``findings: []``), which is the
state every PR should return it to.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = "artifacts/lint_baseline.json"


def load_baseline(path: str) -> Counter:
    """Load a baseline file into a multiset of finding keys."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}")
    return Counter(
        (e["rule"], e["path"], e["message"]) for e in data["findings"])


def apply_baseline(findings: list[Finding],
                   baseline: Counter) -> tuple[list[Finding], int]:
    """Split findings into (new, n_grandfathered) against the baseline."""
    budget = Counter(baseline)
    fresh: list[Finding] = []
    matched = 0
    for f in findings:
        key = f.baseline_key()
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(f)
    return fresh, matched


def write_baseline(path: str, findings: list[Finding]) -> None:
    entries = sorted(
        ({"rule": rule, "path": mod, "message": message}
         for rule, mod, message in (f.baseline_key() for f in findings)),
        key=lambda e: (e["path"], e["rule"], e["message"]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": BASELINE_VERSION, "findings": entries},
                  fh, indent=2)
        fh.write("\n")
