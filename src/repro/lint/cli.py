"""``python -m repro.lint`` — the command-line front end.

Usage::

    python -m repro.lint [paths ...]        # default: src (else .)
    python -m repro.lint --list-rules
    python -m repro.lint --format json src
    python -m repro.lint --select clock-discipline,rng-discipline src
    python -m repro.lint --write-baseline src
    python -m repro.lint file1.py file2.py  # pre-commit / diff mode

Exit codes: 0 clean (warnings allowed unless ``--strict``), 1 findings,
2 usage error.  Passing explicit file paths lints just those files —
the fast pre-commit path for a diff (``git diff --name-only -- '*.py'
| xargs python -m repro.lint``); there is deliberately no ``--fix``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.lint import rules as _rules  # noqa: F401  (populates the registry)
from repro.lint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.core import (
    ERROR,
    FRAMEWORK_IDS,
    RULES,
    WARN,
    lint_paths,
)
from repro.lint.report import render_json, render_text


def _parse_rule_ids(spec: str) -> list[str]:
    ids = [s.strip() for s in spec.split(",") if s.strip()]
    unknown = [i for i in ids if i not in RULES]
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(unknown)} "
              f"(see --list-rules)", file=sys.stderr)
        raise SystemExit(2)
    return ids


def _list_rules() -> str:
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id}  [{rule.severity}]")
        lines.append(f"    {rule.invariant}")
    lines.append("framework checks (always on):")
    for fid, doc in FRAMEWORK_IDS.items():
        lines.append(f"{fid}")
        lines.append(f"    {doc}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter for the repro tree.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: src if present, else .)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--baseline", metavar="PATH",
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="warnings fail the gate too")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule id + invariant and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0

    if args.select and args.ignore:
        print("error: --select and --ignore are mutually exclusive",
              file=sys.stderr)
        return 2
    selected = None
    if args.select:
        selected = [RULES[i] for i in _parse_rule_ids(args.select)]
    elif args.ignore:
        dropped = set(_parse_rule_ids(args.ignore))
        selected = [r for i, r in RULES.items() if i not in dropped]

    paths = args.paths or (["src"] if os.path.isdir("src") else ["."])
    try:
        findings = lint_paths(paths, selected)
    except FileNotFoundError as exc:
        print(f"error: no such file or directory: {exc.args[0]}",
              file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = (DEFAULT_BASELINE
                         if os.path.exists(DEFAULT_BASELINE) else None)
    elif args.no_baseline:
        baseline_path = None
    if (args.baseline is not None and not args.write_baseline
            and not os.path.exists(args.baseline)):
        print(f"error: baseline file not found: {args.baseline}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(target, findings)
        print(f"baseline with {len(findings)} finding(s) written to {target}")
        return 0

    grandfathered = 0
    if baseline_path is not None:
        findings, grandfathered = apply_baseline(
            findings, load_baseline(baseline_path))

    render = render_json if args.format == "json" else render_text
    print(render(findings, grandfathered))

    errors = sum(f.severity == ERROR for f in findings)
    warnings = sum(f.severity == WARN for f in findings)
    if errors or (args.strict and warnings):
        return 1
    return 0
