"""repro.lint core: findings, the rule registry, suppressions, the runner.

The linter is one AST pass per file: every registered :class:`Rule`
inspects a parsed :class:`FileContext` and yields :class:`Finding`s
with ``file:line:col`` anchors and a severity (:data:`ERROR` fails the
gate, :data:`WARN` is advisory unless ``--strict``).  Findings can be
silenced two ways:

* **Per-line suppressions** — ``# lint: allow[rule-id] reason`` on the
  offending line, or on a comment-only line directly above it.  The
  reason is mandatory (an allow without one is itself a finding), so
  every intended exception documents the contract it bends.  A
  suppression that silences nothing is flagged ``unused-suppression``
  so stale annotations cannot accumulate.
* **A JSON baseline** (:mod:`repro.lint.baseline`) grandfathering
  pre-existing findings by ``(rule, path, message)`` — new findings
  still fail while old debt is paid down incrementally.

Rules scope themselves by *module path*: the portion of the file path
from the ``repro`` package root on (``repro/serve/engine.py``), so the
same rule logic runs identically over ``src/repro/...`` checkouts,
installed trees and test fixtures with virtual paths.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field

ERROR = "error"
WARN = "warn"
SEVERITIES = (ERROR, WARN)

# Framework-level finding ids (always active, not part of the registry).
PARSE_ERROR = "parse-error"
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"
FRAMEWORK_IDS = {
    PARSE_ERROR: "the file must parse: a syntax error hides every other check",
    BAD_SUPPRESSION: "a lint suppression must name rule ids and give a reason",
    UNUSED_SUPPRESSION: "a suppression that silences nothing is stale and must go",
}

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\[([^\]]*)\]\s*(.*)$")


def module_path(path: str) -> str:
    """Normalize ``path`` to its ``repro/...`` suffix (posix separators).

    Files outside a ``repro`` package keep their full normalized path,
    so package-scoped rules simply never match them.
    """
    norm = path.replace(os.sep, "/")
    segs = [s for s in norm.split("/") if s not in ("", ".")]
    for i, seg in enumerate(segs):
        if seg == "repro" and i + 1 < len(segs):
            return "/".join(segs[i:])
    return "/".join(segs) if segs else norm


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a source location."""

    rule: str
    severity: str
    path: str           # the path as given (display / editor-clickable)
    line: int
    col: int
    message: str
    module: str = ""    # repro/...-relative path (stable across checkouts)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"[{self.rule}] {self.severity}: {self.message}")

    def baseline_key(self) -> tuple[str, str, str]:
        # Deliberately line/column-free: grandfathered findings survive
        # unrelated edits shifting them around the file.
        return (self.rule, self.module or self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "module": self.module,
        }


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` (kebab-case), ``severity``, ``invariant``
    (the one-line contract shown by ``--list-rules`` and documented in
    ROADMAP.md) and implement :meth:`check`, yielding findings for one
    parsed file.
    """

    id: str = ""
    severity: str = ERROR
    invariant: str = ""

    def check(self, ctx: "FileContext"):
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node, message: str,
                severity: str | None = None) -> Finding:
        return Finding(
            self.id, severity or self.severity, ctx.path,
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1,
            message, module=ctx.module_path,
        )


RULES: dict[str, Rule] = {}


def register(cls):
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"rule {rule.id}: bad severity {rule.severity!r}")
    RULES[rule.id] = rule
    return cls


class FileContext:
    """One parsed file handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path.replace(os.sep, "/")
        self.module_path = module_path(path)
        self.filename = self.module_path.rsplit("/", 1)[-1]
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree

    def in_package(self, *suffix: str) -> bool:
        """True if the file lives under ``repro/<suffix...>/``."""
        return self.module_path.startswith("/".join(("repro",) + suffix) + "/")

    def is_module(self, *suffix: str) -> bool:
        """True if the file *is* ``repro/<suffix...>`` exactly."""
        return self.module_path == "/".join(("repro",) + suffix)


@dataclass
class Suppression:
    """One parsed ``# lint: allow[ids] reason`` annotation."""

    comment_line: int            # line the comment sits on
    target_line: int             # line whose findings it silences
    ids: frozenset[str]
    reason: str
    used: bool = field(default=False, compare=False)


def _comment_tokens(source: str):
    """Yield ``(lineno, col, text)`` for every real comment token.

    Tokenizing (rather than regex over raw lines) keeps string literals
    and docstrings that merely *mention* the allow syntax from being
    parsed as suppressions.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError):
        return


def parse_suppressions(source: str, lines: list[str], path: str,
                       mod: str) -> tuple[list[Suppression], list[Finding]]:
    """Extract suppressions; malformed ones come back as findings.

    An annotation on a code line applies to that line; on a
    comment-only line it applies to the next non-blank line (so long
    statements stay readable).
    """
    sups: list[Suppression] = []
    malformed: list[Finding] = []
    for lineno, col, text in _comment_tokens(source):
        m = _ALLOW_RE.match(text)
        if m is None:
            continue
        ids = frozenset(s.strip() for s in m.group(1).split(",") if s.strip())
        reason = m.group(2).strip()
        if not ids or not reason:
            malformed.append(Finding(
                BAD_SUPPRESSION, ERROR, path, lineno, col + 1,
                "malformed suppression: use `# lint: allow[rule-id] reason` "
                "(the reason is mandatory — it documents the contract "
                "exception)", module=mod))
            continue
        target = lineno
        if not lines[lineno - 1][:col].strip():
            # Comment-only line: applies to the next line that is
            # neither blank nor a continuation of the comment block.
            for j in range(lineno, len(lines)):
                stripped = lines[j].strip()
                if stripped and not stripped.startswith("#"):
                    target = j + 1
                    break
        sups.append(Suppression(lineno, target, ids, reason))
    return sups, malformed


def lint_source(source: str, path: str,
                rules: list[Rule] | None = None) -> list[Finding]:
    """Lint one source string under a (possibly virtual) ``path``.

    Runs the given ``rules`` (default: the full registry), applies
    per-line suppressions, and reports malformed/unused annotations.
    Unused-suppression checking only runs with the full registry — a
    ``--select`` subset cannot know what the other rules would flag.
    """
    selected = list(RULES.values()) if rules is None else list(rules)
    full_registry = rules is None or len(selected) == len(RULES)
    mod = module_path(path)
    norm = path.replace(os.sep, "/")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(PARSE_ERROR, ERROR, norm, exc.lineno or 1,
                        exc.offset or 1, f"syntax error: {exc.msg}",
                        module=mod)]
    ctx = FileContext(path, source, tree)
    raw: list[Finding] = []
    for rule in selected:
        raw.extend(rule.check(ctx))
    sups, findings = parse_suppressions(source, ctx.lines, ctx.path, mod)
    for f in raw:
        hit = next((s for s in sups
                    if s.target_line == f.line and f.rule in s.ids), None)
        if hit is not None:
            hit.used = True
        else:
            findings.append(f)
    if full_registry:
        for s in sups:
            if not s.used:
                findings.append(Finding(
                    UNUSED_SUPPRESSION, WARN, ctx.path, s.comment_line, 1,
                    f"suppression for [{', '.join(sorted(s.ids))}] matches "
                    "no finding on its line — remove the stale annotation",
                    module=mod))
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str, rules: list[Rule] | None = None) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path, rules)


def iter_python_files(paths):
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d != "__pycache__" and not d.startswith("."))
                out.extend(os.path.join(root, f)
                           for f in sorted(files) if f.endswith(".py"))
        elif os.path.exists(path):
            out.append(path)
        else:
            raise FileNotFoundError(path)
    return out


def lint_paths(paths, rules: list[Rule] | None = None) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, rules))
    return findings
