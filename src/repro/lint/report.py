"""Finding reporters: ``file:line:col`` text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.lint.core import ERROR, WARN, Finding


def _counts(findings: list[Finding]) -> tuple[int, int]:
    errors = sum(f.severity == ERROR for f in findings)
    warnings = sum(f.severity == WARN for f in findings)
    return errors, warnings


def render_text(findings: list[Finding], grandfathered: int = 0) -> str:
    """One ``path:line:col: [rule] severity: message`` line per finding."""
    lines = [f.render() for f in findings]
    errors, warnings = _counts(findings)
    if findings:
        lines.append("")
    summary = f"{errors} error(s), {warnings} warning(s)"
    if grandfathered:
        summary += f" ({grandfathered} grandfathered by baseline)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: list[Finding], grandfathered: int = 0) -> str:
    errors, warnings = _counts(findings)
    return json.dumps(
        {
            "findings": [f.to_dict() for f in findings],
            "errors": errors,
            "warnings": warnings,
            "grandfathered": grandfathered,
        },
        indent=2,
    )
