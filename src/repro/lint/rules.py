"""The repo-specific invariant rules.

Each rule statically encodes one of ROADMAP.md's standing invariants
(plus two generic safety rules), so contract violations are caught at
diff time instead of by the runtime suites after a violation ships:

===================== ========================================================
rule id               invariant
===================== ========================================================
clock-discipline      no wall-clock reads in ``repro.serve`` outside the
                      injectable clock seams (determinism ladder / chaos
                      ``clock_skew`` accounting / virtual-clock replay)
rng-discipline        no global-state RNG anywhere in ``repro``: all
                      randomness flows through seeded ``default_rng`` /
                      ``Sampler`` streams (sampling invariance)
set-iteration-order   no iterating bare sets in the serve scheduling/routing
                      files where order is token-visible
finish-release-pairing a function in ``engine.py``/``fleet.py`` that emits a
                      ``FINISH_*`` reason must also release storage
                      (resource-hygiene invariant)
window-alignment      no literal ``block_tokens=``/``prefill_chunk_tokens=``
                      outside the validated config path (MANT V-window
                      alignment constraints)
frozen-config         dataclasses in ``serve/config.py`` are frozen and
                      validate in ``__post_init__``
export-consistency    ``__all__`` matches the module's actual bindings (and,
                      in ``__init__.py``, its re-exports)
mutable-default       no mutable default arguments
bare-except           no bare ``except:`` handlers
===================== ========================================================
"""

from __future__ import annotations

import ast
import re

from repro.lint.core import ERROR, WARN, Rule, register

__all__ = [
    "BareExcept",
    "ClockDiscipline",
    "ExportConsistency",
    "FinishReleasePairing",
    "FrozenConfig",
    "MutableDefault",
    "RngDiscipline",
    "SetIterationOrder",
    "WindowAlignment",
]


def _dotted(node) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _own_nodes(func):
    """Walk a function's body without descending into nested defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_FUNC_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)


# ----------------------------------------------------------------------
# clock-discipline
# ----------------------------------------------------------------------
_CLOCK_CALLS = {
    "time.time", "time.monotonic", "time.perf_counter",
    "time.time_ns", "time.monotonic_ns", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
}


@register
class ClockDiscipline(Rule):
    id = "clock-discipline"
    severity = ERROR
    invariant = ("repro.serve reads time only through the injectable clock "
                 "seams (engine clock=, TickTracer clock=, LoadHarness clock "
                 "mode); a direct wall-clock call bypasses chaos clock_skew "
                 "accounting and breaks virtual-clock replay determinism")

    def check(self, ctx):
        if not ctx.in_package("serve"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in _CLOCK_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"direct wall-clock read {name}() in repro.serve — "
                        "take the time from the injectable clock seam "
                        "(engine/tracer/harness clock) so fault clock_skew "
                        "and virtual-clock replay stay deterministic; "
                        "passing the function as an injectable default is "
                        "fine, calling it here is not")


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}
_PY_RANDOM_OK = {"Random"}


@register
class RngDiscipline(Rule):
    id = "rng-discipline"
    severity = ERROR
    invariant = ("all randomness flows through seeded np.random.default_rng "
                 "/ Generator / Sampler streams; global-state random.* and "
                 "np.random.* calls break sampling invariance (per-request "
                 "streams derived from (seed, sample_index))")

    def _flag_call(self, ctx, node, name):
        return self.finding(
            ctx, node,
            f"global-state RNG call {name}() — draw from a seeded "
            "np.random.default_rng(seed) / Sampler stream instead, so "
            "results are invariant to batch composition and replayable")

    def check(self, ctx):
        if not ctx.module_path.startswith("repro/"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (len(parts) == 2 and parts[0] == "random"
                        and parts[1] not in _PY_RANDOM_OK):
                    yield self._flag_call(ctx, node, name)
                elif (len(parts) == 3 and parts[0] in ("np", "numpy")
                        and parts[1] == "random"):
                    if parts[2] not in _NP_RANDOM_OK:
                        yield self._flag_call(ctx, node, name)
                    elif (parts[2] == "default_rng"
                            and not node.args and not node.keywords):
                        yield self.finding(
                            ctx, node,
                            f"{name}() without a seed draws OS entropy — "
                            "every Generator must be constructed from an "
                            "explicit seed for replay determinism")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    bad = [a.name for a in node.names
                           if a.name not in _PY_RANDOM_OK and a.name != "*"]
                    if bad:
                        yield self.finding(
                            ctx, node,
                            f"importing global-state RNG helpers from "
                            f"`random` ({', '.join(bad)}) — use a seeded "
                            "np.random.default_rng / random.Random instance")
                elif node.module == "numpy.random":
                    bad = [a.name for a in node.names
                           if a.name not in _NP_RANDOM_OK and a.name != "*"]
                    if bad:
                        yield self.finding(
                            ctx, node,
                            f"importing global-state helpers from "
                            f"numpy.random ({', '.join(bad)}) — only seeded "
                            "Generator construction is allowed")


# ----------------------------------------------------------------------
# set-iteration-order
# ----------------------------------------------------------------------
_ORDER_SENSITIVE_FILES = {
    "repro/serve/engine.py", "repro/serve/scheduler.py",
    "repro/serve/fleet.py", "repro/serve/policy.py",
    "repro/serve/paging.py",
}


@register
class SetIterationOrder(Rule):
    id = "set-iteration-order"
    severity = ERROR
    invariant = ("serve scheduling/routing paths never iterate bare sets: "
                 "set order varies across processes (hash randomization), "
                 "and any order-dependent scheduling decision becomes "
                 "token-visible — iterate lists or sorted(...) views")

    def _is_set_expr(self, expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            return _dotted(expr.func) in ("set", "frozenset")
        return False

    def check(self, ctx):
        if ctx.module_path not in _ORDER_SENSITIVE_FILES:
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        ctx, it,
                        "iterating a set in a scheduling/routing path — "
                        "set order is not stable across runs; iterate a "
                        "list or sorted(...) so any order-dependent "
                        "decision stays deterministic")


# ----------------------------------------------------------------------
# finish-release-pairing
# ----------------------------------------------------------------------
_FINISH_NAME = re.compile(r"^FINISH_[A-Z_]+$")
_RELEASE_CALLS = {"_release_storage", "_retire"}
_STORAGE_FILES = {"repro/serve/engine.py", "repro/serve/fleet.py"}


@register
class FinishReleasePairing(Rule):
    id = "finish-release-pairing"
    severity = ERROR
    invariant = ("in engine.py/fleet.py, a function that emits a FINISH_* "
                 "reason (finish_reason assignment or finish TokenEvent) "
                 "must also call _release_storage()/_retire(): every finish "
                 "path returns pool/arena storage to baseline (resource-"
                 "hygiene invariant); deferred-release paths carry an "
                 "explicit allow annotation naming who releases instead")

    def check(self, ctx):
        if ctx.module_path not in _STORAGE_FILES:
            return
        for func in ast.walk(ctx.tree):
            if not isinstance(func, _FUNC_DEFS):
                continue
            emissions: list = []
            releases = False
            for node in _own_nodes(func):
                if isinstance(node, ast.Assign):
                    if (isinstance(node.value, ast.Name)
                            and _FINISH_NAME.match(node.value.id)):
                        emissions.append(node)
                elif isinstance(node, ast.Call):
                    name = _dotted(node.func)
                    if (name is not None
                            and name.rsplit(".", 1)[-1] in _RELEASE_CALLS):
                        releases = True
                    for arg in [*node.args,
                                *(kw.value for kw in node.keywords)]:
                        if (isinstance(arg, ast.Name)
                                and _FINISH_NAME.match(arg.id)):
                            emissions.append(node)
            if emissions and not releases:
                first = min(emissions, key=lambda n: n.lineno)
                yield self.finding(
                    ctx, first,
                    f"{func.name}() emits a FINISH_* reason but never calls "
                    "_release_storage()/_retire() — every finish path must "
                    "release the sequence's storage; if release is "
                    "deliberately deferred (e.g. to the tick's retire "
                    "phase), annotate the emission with an allow naming "
                    "the releasing path")


# ----------------------------------------------------------------------
# window-alignment
# ----------------------------------------------------------------------
_ALIGNED_KWARGS = {"block_tokens", "prefill_chunk_tokens"}


@register
class WindowAlignment(Rule):
    id = "window-alignment"
    severity = WARN
    invariant = ("block_tokens / prefill_chunk_tokens must be multiples of "
                 "the MANT V window (validate_chunk_compat); literal values "
                 "outside the validated ServeConfig path dodge the "
                 "cross-field alignment checks")

    def check(self, ctx):
        if not ctx.module_path.startswith("repro/"):
            return
        if ctx.is_module("serve", "config.py"):
            return            # the validated knob surface itself
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if (kw.arg in _ALIGNED_KWARGS
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, int)
                        and not isinstance(kw.value.value, bool)):
                    yield self.finding(
                        ctx, kw.value,
                        f"literal {kw.arg}={kw.value.value} outside the "
                        "validated config path — thread the value through "
                        "ServeConfig so validate_chunk_compat can check "
                        "MANT V-window / page alignment")


# ----------------------------------------------------------------------
# frozen-config
# ----------------------------------------------------------------------
@register
class FrozenConfig(Rule):
    id = "frozen-config"
    severity = ERROR
    invariant = ("every dataclass in serve/config.py is "
                 "@dataclass(frozen=True) with a __post_init__ validator: "
                 "configs are immutable knob surfaces that fail at "
                 "construction, never mid-tick")

    def _dataclass_decorator(self, cls):
        for dec in cls.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = _dotted(target)
            if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
                return dec
        return None

    def check(self, ctx):
        if not ctx.is_module("serve", "config.py"):
            return
        for cls in ctx.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            dec = self._dataclass_decorator(cls)
            if dec is None:
                continue
            frozen = (isinstance(dec, ast.Call) and any(
                kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
                and kw.value.value is True for kw in dec.keywords))
            if not frozen:
                yield self.finding(
                    ctx, cls,
                    f"dataclass {cls.name} must be @dataclass(frozen=True) "
                    "— serve configs are immutable; mutation after "
                    "construction skips cross-field validation")
            if not any(isinstance(n, _FUNC_DEFS) and n.name == "__post_init__"
                       for n in cls.body):
                yield self.finding(
                    ctx, cls,
                    f"dataclass {cls.name} has no __post_init__ — serve "
                    "configs validate every field at construction so an "
                    "invalid knob can never reach the engine")


# ----------------------------------------------------------------------
# export-consistency
# ----------------------------------------------------------------------
@register
class ExportConsistency(Rule):
    id = "export-consistency"
    severity = ERROR
    invariant = ("__all__ and the module's real bindings agree: every "
                 "listed name is bound, and (in __init__.py) every "
                 "top-level re-export is listed — the public API surface "
                 "cannot drift silently")

    def _literal_all(self, tree):
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets
                           if isinstance(t, ast.Name)]
                if "__all__" in targets:
                    if isinstance(node.value, (ast.List, ast.Tuple)) and all(
                            isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                            for e in node.value.elts):
                        return node, [e.value for e in node.value.elts]
                    return node, None     # dynamic __all__: skip the file
        return None, None

    def _bound_names(self, tree):
        bound: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Import):
                for a in node.names:
                    bound.add(a.asname or a.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for a in node.names:
                    if a.name != "*":
                        bound.add(a.asname or a.name)
            elif isinstance(node, _FUNC_DEFS + (ast.ClassDef,)):
                bound.add(node.name)
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        bound.add(t.id)
                    elif isinstance(t, (ast.Tuple, ast.List)):
                        bound.update(e.id for e in t.elts
                                     if isinstance(e, ast.Name))
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
        return bound

    def check(self, ctx):
        node, names = self._literal_all(ctx.tree)
        if node is None or names is None:
            return
        bound = self._bound_names(ctx.tree)
        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.finding(
                    ctx, node, f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name not in bound:
                yield self.finding(
                    ctx, node,
                    f"__all__ lists {name!r} but the module neither "
                    "defines nor imports it — the export is a lie")
        if ctx.filename != "__init__.py":
            return
        listed = set(names)
        for stmt in ctx.tree.body:
            if (not isinstance(stmt, ast.ImportFrom)
                    or stmt.module == "__future__"):
                continue
            for a in stmt.names:
                exported = a.asname or a.name
                if (a.name != "*" and not exported.startswith("_")
                        and exported not in listed):
                    yield self.finding(
                        ctx, stmt,
                        f"{exported!r} is imported at package top level "
                        "but missing from __all__ — add it or rename it "
                        "with a leading underscore")


# ----------------------------------------------------------------------
# generic safety rules
# ----------------------------------------------------------------------
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "Counter", "OrderedDict"}


@register
class MutableDefault(Rule):
    id = "mutable-default"
    severity = ERROR
    invariant = ("no mutable default arguments: the default is evaluated "
                 "once and shared across calls, leaking state between "
                 "requests")

    def _is_mutable(self, expr) -> bool:
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            name = _dotted(expr.func)
            return (name is not None
                    and name.rsplit(".", 1)[-1] in _MUTABLE_CTORS)
        return False

    def check(self, ctx):
        for func in ast.walk(ctx.tree):
            if not isinstance(func, _FUNC_DEFS + (ast.Lambda,)):
                continue
            defaults = [*func.args.defaults,
                        *(d for d in func.args.kw_defaults if d is not None)]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(func, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in {label}() is "
                        "evaluated once and shared across calls — default "
                        "to None and construct inside the function")


@register
class BareExcept(Rule):
    id = "bare-except"
    severity = WARN
    invariant = ("no bare `except:` — it swallows SystemExit and "
                 "KeyboardInterrupt; catch Exception or narrower")

    def check(self, ctx):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare `except:` also catches SystemExit/"
                    "KeyboardInterrupt — catch Exception (or narrower)")
