"""Pure-numpy transformer LM substrate (the paper's LLaMA/OPT stand-in)."""

from repro.model.transformer import ModelConfig, TransformerLM, init_params, param_count
from repro.model.corpus import HmmCorpus, InductionCorpus, MixedCorpus
from repro.model.train import Adam, train_lm, TrainReport
from repro.model.perplexity import perplexity_from_rows, evaluate_ppl
from repro.model.outliers import inject_outliers, outlier_channel_stats
from repro.model.quantized import (
    PTQConfig,
    PTQSetup,
    build_ptq,
    mant_kv_prefill_qdq,
    int_kv_prefill_qdq,
)
from repro.model.calibrate import calibrate_model
from repro.model.tasks import RecallTask, ContinuationTask, token_f1, bleu
from repro.model.zoo import MODEL_ZOO, ZooEntry, get_model, get_corpus

__all__ = [
    "ModelConfig",
    "TransformerLM",
    "init_params",
    "param_count",
    "HmmCorpus",
    "InductionCorpus",
    "MixedCorpus",
    "Adam",
    "train_lm",
    "TrainReport",
    "perplexity_from_rows",
    "evaluate_ppl",
    "inject_outliers",
    "outlier_channel_stats",
    "PTQConfig",
    "PTQSetup",
    "build_ptq",
    "mant_kv_prefill_qdq",
    "int_kv_prefill_qdq",
    "calibrate_model",
    "RecallTask",
    "ContinuationTask",
    "token_f1",
    "bleu",
    "MODEL_ZOO",
    "ZooEntry",
    "get_model",
    "get_corpus",
]
