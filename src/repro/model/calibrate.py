"""Calibration pass over a model (the paper's Pile-subset stage).

Runs a handful of batches through the FP16 model collecting:

* per-channel ``E[x²]`` of every linear input — feeds the weight MSE
  search (Eq. 6 surrogate);
* sampled K-cache groups (along ``d_head``) and V-cache groups (along
  the sequence) — fit the variance→``a`` ranges of Sec. V-C.
"""

from __future__ import annotations

import numpy as np

from repro.model.corpus import MixedCorpus
from repro.model.transformer import TransformerLM
from repro.quant.calibration import CalibrationResult, KVGroupSampler, RunningActStats

__all__ = ["calibrate_model"]


def calibrate_model(
    model: TransformerLM,
    corpus: MixedCorpus,
    n_batches: int = 4,
    batch_size: int = 4,
    seq_len: int = 128,
    group_size: int = 64,
    kv_bits: int = 4,
    seed: int = 4242,
) -> CalibrationResult:
    """Collect activation and KV statistics from calibration batches."""
    stats: dict[str, RunningActStats] = {}
    k_sampler = KVGroupSampler(group_size=min(group_size, model.config.d_head), seed=seed)
    v_sampler = KVGroupSampler(group_size=group_size, seed=seed + 1)
    n_tokens = 0

    def act_hook(name: str, x: np.ndarray) -> np.ndarray:
        st = stats.get(name)
        if st is None:
            st = stats[name] = RunningActStats(x.shape[-1])
        st.update(x)
        return x

    def kv_hook(layer: int, q: np.ndarray, k: np.ndarray, v: np.ndarray):
        # K groups along d_head; V groups along the sequence (its inner
        # dimension) — exactly the axes the real-time engine quantizes.
        k_sampler.update(k.reshape(-1, k.shape[-1]), axis=-1)
        v_per_channel = np.moveaxis(v, -2, -1)  # (B, H, d_head, T)
        v_sampler.update(v_per_channel.reshape(-1, v.shape[-2]), axis=-1)
        return q, k, v

    for ids, _targets in corpus.batches(n_batches, batch_size, seq_len, seed=seed):
        model.forward_logits(ids, act_quant=act_hook, kv_quant=kv_hook)
        n_tokens += ids.size

    act_sq_means = {name: st.mean_sq for name, st in stats.items()}
    # The hook fires once per input *site*; projections sharing an input
    # (wq/wk/wv, wgate/wup) share the statistic.
    for name in model.config.linear_names():
        if name in act_sq_means:
            continue
        source = (
            name.replace("attn.wk", "attn.wq")
            .replace("attn.wv", "attn.wq")
            .replace("ffn.wup", "ffn.wgate")
        )
        if source in act_sq_means:
            act_sq_means[name] = act_sq_means[source]

    # Fit one selector from the union of K and V groups; group sizes may
    # differ (d_head vs window), so fit on the V groups (the harder,
    # temporal case) and fall back to K groups if V is too small.
    groups = v_sampler.groups()
    if groups.shape[0] < 16:
        groups = k_sampler.groups()
    from repro.core.selection import VarianceSelector

    selector = VarianceSelector(bits=kv_bits, group_size=group_size)
    if groups.shape[0] >= 16:
        selector.fit(groups)
    return CalibrationResult(
        act_sq_means=act_sq_means, kv_selector=selector, n_tokens=n_tokens
    )
