"""Synthetic corpora: the Wikitext / Pile / TriviaQA stand-ins.

Two generative processes, mixed for training (DESIGN.md §2):

* :class:`HmmCorpus` — a hidden-Markov "language": topical hidden
  states, each emitting from a sparse, state-specific distribution over
  the vocabulary.  Gives the LM real structure to learn, so perplexity
  is a meaningful metric with a nontrivial floor (the HMM's entropy
  rate), and degradations from quantization show up exactly as they do
  on Wikitext.
* :class:`InductionCorpus` — sequences of planted key→value bigrams
  that repeat, training the induction-head behaviour long-context
  recall tasks need.  The recall evaluation in
  :mod:`repro.model.tasks` plants *unseen* pairs, so solving it
  requires attending through the (quantized) KV cache rather than
  memorisation.

Token space layout (vocab ≥ 64): ``0`` = BOS/PAD, ``1`` = QUERY
separator, ``[2, 2+n_keys)`` = key tokens, rest = ordinary vocabulary
shared by the HMM and as value tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HmmCorpus", "InductionCorpus", "MixedCorpus", "TOKEN_BOS", "TOKEN_QUERY", "KEY_BASE"]

TOKEN_BOS = 0
TOKEN_QUERY = 1
KEY_BASE = 2


class HmmCorpus:
    """Sparse HMM over the ordinary-vocabulary region."""

    def __init__(
        self,
        vocab_size: int = 256,
        n_states: int = 12,
        emissions_per_state: int = 24,
        self_loop: float = 0.6,
        n_keys: int = 16,
        seed: int = 1234,
    ):
        self.vocab_size = vocab_size
        self.n_states = n_states
        rng = np.random.default_rng(seed)
        lo = KEY_BASE + n_keys
        self.token_lo = lo

        # Sparse transition matrix: heavy self-loop + a few neighbours.
        trans = rng.dirichlet(np.ones(n_states) * 0.3, size=n_states)
        trans = (1 - self_loop) * trans + self_loop * np.eye(n_states)
        self.trans = trans / trans.sum(axis=1, keepdims=True)

        # Each state emits from its own sparse slice of the vocabulary.
        self.emit_tokens = np.empty((n_states, emissions_per_state), dtype=np.int64)
        self.emit_probs = np.empty((n_states, emissions_per_state))
        usable = np.arange(lo, vocab_size)
        for s in range(n_states):
            toks = rng.choice(usable, size=emissions_per_state, replace=False)
            probs = rng.dirichlet(np.ones(emissions_per_state) * 0.5)
            self.emit_tokens[s] = toks
            self.emit_probs[s] = probs

    def sample(self, n_tokens: int, rng: np.random.Generator) -> np.ndarray:
        """One token stream of length ``n_tokens``."""
        out = np.empty(n_tokens, dtype=np.int64)
        state = int(rng.integers(self.n_states))
        for t in range(n_tokens):
            out[t] = rng.choice(self.emit_tokens[state], p=self.emit_probs[state])
            state = rng.choice(self.n_states, p=self.trans[state])
        return out

    def entropy_rate_bound(self) -> float:
        """Mean per-state emission entropy (nats): a PPL floor estimate."""
        ent = -np.sum(self.emit_probs * np.log(self.emit_probs + 1e-12), axis=1)
        return float(np.mean(ent))


class InductionCorpus:
    """Repeated key→value bigrams embedded in random filler.

    Each sequence plants ``n_pairs`` (key, value) pairs; every key
    occurrence is followed by its value, and keys repeat 2-4 times, so
    predicting the value after a repeated key is the learnable skill.
    """

    def __init__(self, vocab_size: int = 256, n_keys: int = 16, seed: int = 99):
        self.vocab_size = vocab_size
        self.n_keys = n_keys
        self.value_lo = KEY_BASE + n_keys
        self._seed = seed

    def sample(self, n_tokens: int, rng: np.random.Generator, n_pairs: int = 4) -> np.ndarray:
        keys = rng.choice(self.n_keys, size=n_pairs, replace=False) + KEY_BASE
        values = rng.integers(self.value_lo, self.vocab_size, size=n_pairs)
        out = []
        while len(out) < n_tokens:
            if rng.random() < 0.4 and n_pairs:
                j = int(rng.integers(n_pairs))
                out += [int(keys[j]), int(values[j])]
            else:
                out.append(int(rng.integers(self.value_lo, self.vocab_size)))
        return np.asarray(out[:n_tokens], dtype=np.int64)


@dataclass
class MixedCorpus:
    """Training mix: mostly HMM language plus induction sequences."""

    hmm: HmmCorpus
    induction: InductionCorpus
    induction_frac: float = 0.4

    def batches(
        self,
        n_steps: int,
        batch_size: int,
        seq_len: int,
        seed: int = 0,
    ):
        """Yield ``(ids, targets)`` int arrays of shape (B, T)."""
        rng = np.random.default_rng(seed)
        for _ in range(n_steps):
            rows = []
            for _ in range(batch_size):
                if rng.random() < self.induction_frac:
                    seq = self.induction.sample(seq_len + 1, rng)
                else:
                    seq = self.hmm.sample(seq_len + 1, rng)
                rows.append(seq)
            block = np.stack(rows)
            yield block[:, :-1], block[:, 1:]

    def eval_tokens(self, n_tokens: int, seq_len: int, seed: int = 777) -> np.ndarray:
        """Held-out HMM evaluation set, shaped ``(n_rows, seq_len+1)``."""
        rng = np.random.default_rng(seed)
        rows = n_tokens // seq_len
        return np.stack([self.hmm.sample(seq_len + 1, rng) for _ in range(rows)])
