"""Functional neural-network layers with manual backprop (pure numpy).

Each op comes as a ``*_fwd`` returning ``(output, cache)`` and a
``*_bwd`` consuming ``(grad_output, cache)``.  Shapes follow the
(batch, time, feature) convention; weights are stored ``(out_features,
in_features)`` like ``torch.nn.Linear``, which is also the layout the
quantizers expect (groups along ``in_features``, the accumulation dim).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear_fwd", "linear_bwd",
    "embedding_fwd", "embedding_bwd",
    "rmsnorm_fwd", "rmsnorm_bwd",
    "layernorm_fwd", "layernorm_bwd",
    "rope_tables", "rope_fwd", "rope_bwd", "apply_rope", "apply_rope_at",
    "apply_rope_ragged",
    "silu_fwd", "silu_bwd",
    "relu_fwd", "relu_bwd",
    "causal_attention_fwd", "causal_attention_bwd", "cached_attention_fwd",
    "softmax", "cross_entropy_fwd", "cross_entropy_bwd",
]


# ----------------------------------------------------------------------
# Linear / embedding
# ----------------------------------------------------------------------
def linear_fwd(x: np.ndarray, w: np.ndarray):
    """``y = x @ w.T`` for ``x (..., in)`` and ``w (out, in)``."""
    return x @ w.T, (x, w)


def linear_bwd(dy: np.ndarray, cache):
    x, w = cache
    dx = dy @ w
    dw = dy.reshape(-1, dy.shape[-1]).T @ x.reshape(-1, x.shape[-1])
    return dx, dw


def embedding_fwd(ids: np.ndarray, table: np.ndarray):
    return table[ids], (ids, table.shape)


def embedding_bwd(dy: np.ndarray, cache):
    ids, shape = cache
    dtable = np.zeros(shape)
    np.add.at(dtable, ids.ravel(), dy.reshape(-1, dy.shape[-1]))
    return dtable


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------
def rmsnorm_fwd(x: np.ndarray, gain: np.ndarray, eps: float = 1e-6):
    """LLaMA-style RMSNorm: ``y = gain * x / rms(x)``."""
    ms = np.mean(x * x, axis=-1, keepdims=True)
    r = 1.0 / np.sqrt(ms + eps)
    xhat = x * r
    return xhat * gain, (x, xhat, r, gain)


def rmsnorm_bwd(dy: np.ndarray, cache):
    x, xhat, r, gain = cache
    dgain = np.sum(dy * xhat, axis=tuple(range(dy.ndim - 1)))
    dxhat = dy * gain
    # d/dx of x * (mean(x^2)+eps)^(-1/2):
    #   dx = r * (dxhat - xhat * mean(dxhat * xhat))
    dx = r * (dxhat - xhat * np.mean(dxhat * xhat, axis=-1, keepdims=True))
    return dx, dgain


def layernorm_fwd(x: np.ndarray, gain: np.ndarray, bias: np.ndarray, eps: float = 1e-5):
    """OPT-style LayerNorm with learned gain and bias."""
    mu = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    r = 1.0 / np.sqrt(var + eps)
    xhat = (x - mu) * r
    return xhat * gain + bias, (xhat, r, gain)


def layernorm_bwd(dy: np.ndarray, cache):
    xhat, r, gain = cache
    d = xhat.shape[-1]
    reduce_axes = tuple(range(dy.ndim - 1))
    dgain = np.sum(dy * xhat, axis=reduce_axes)
    dbias = np.sum(dy, axis=reduce_axes)
    dxhat = dy * gain
    dx = (
        dxhat
        - np.mean(dxhat, axis=-1, keepdims=True)
        - xhat * np.mean(dxhat * xhat, axis=-1, keepdims=True)
    ) * r
    return dx, dgain, dbias


# ----------------------------------------------------------------------
# Rotary position embeddings (half-split convention, as in LLaMA)
# ----------------------------------------------------------------------
def rope_tables(d_head: int, max_seq: int, base: float = 10000.0):
    """Precompute (cos, sin) of shape ``(max_seq, d_head // 2)``."""
    half = d_head // 2
    inv_freq = base ** (-np.arange(0, half) / half)
    angles = np.arange(max_seq)[:, None] * inv_freq[None, :]
    return np.cos(angles), np.sin(angles)


def apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray, offset: int = 0):
    """Rotate ``x (..., T, d_head)`` pairs ``(x1, x2) = split-half``.

    Constant within each rotation pair, so scaling both halves of a pair
    by the same factor commutes with RoPE — the property the
    outlier-injection pass in :mod:`repro.model.outliers` relies on.
    """
    t = x.shape[-2]
    c = cos[offset : offset + t]
    s = sin[offset : offset + t]
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * c - x2 * s, x1 * s + x2 * c], axis=-1)


def apply_rope_at(x: np.ndarray, cos: np.ndarray, sin: np.ndarray, positions: np.ndarray):
    """Rotate single-token ``x (B, H, 1, d_head)`` at absolute ``positions (B,)``.

    The batched-decode counterpart of :func:`apply_rope`: each sequence
    in the batch sits at its own position, so the rotation row is
    gathered per sequence instead of sliced from a common offset.
    Elementwise ops match :func:`apply_rope` exactly, so a batch row
    equals the single-stream rotation at the same position.
    """
    positions = np.asarray(positions)
    c = cos[positions][:, None, None, :]        # (B, 1, 1, half)
    s = sin[positions][:, None, None, :]
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * c - x2 * s, x1 * s + x2 * c], axis=-1)


def apply_rope_ragged(x: np.ndarray, cos: np.ndarray, sin: np.ndarray,
                      positions: np.ndarray):
    """Rotate ``x (..., T, d_head)`` where token ``j`` sits at ``positions[j]``.

    The mixed prefill+decode tick packs segments of many sequences along
    the T axis, so positions are arbitrary per token instead of one
    contiguous ``offset`` run.  The rotation rows are gathered from the
    tables and the elementwise ops match :func:`apply_rope` exactly, so
    each packed token equals its single-sequence rotation bit for bit.
    """
    positions = np.asarray(positions)
    c = cos[positions]                          # (T, half)
    s = sin[positions]
    half = x.shape[-1] // 2
    x1, x2 = x[..., :half], x[..., half:]
    return np.concatenate([x1 * c - x2 * s, x1 * s + x2 * c], axis=-1)


def rope_fwd(x: np.ndarray, cos: np.ndarray, sin: np.ndarray, offset: int = 0):
    return apply_rope(x, cos, sin, offset), (cos, sin, offset, x.shape[-2])


def rope_bwd(dy: np.ndarray, cache):
    cos, sin, offset, t = cache
    # Rotation is orthogonal: the gradient rotates by the inverse angle.
    c = cos[offset : offset + t]
    s = sin[offset : offset + t]
    half = dy.shape[-1] // 2
    d1, d2 = dy[..., :half], dy[..., half:]
    return np.concatenate([d1 * c + d2 * s, -d1 * s + d2 * c], axis=-1)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def silu_fwd(x: np.ndarray):
    sig = 1.0 / (1.0 + np.exp(-x))
    return x * sig, (x, sig)


def silu_bwd(dy: np.ndarray, cache):
    x, sig = cache
    return dy * (sig + x * sig * (1.0 - sig))


def relu_fwd(x: np.ndarray):
    return np.maximum(x, 0.0), (x > 0)


def relu_bwd(dy: np.ndarray, cache):
    return dy * cache


# ----------------------------------------------------------------------
# Attention core
# ----------------------------------------------------------------------
def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    z = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(z)
    return e / np.sum(e, axis=axis, keepdims=True)


def causal_attention_fwd(q: np.ndarray, k: np.ndarray, v: np.ndarray):
    """Scaled dot-product attention with a causal mask.

    ``q, k, v``: ``(B, H, T, d_head)``.  Returns output and the cache
    needed for the backward pass (attention probabilities are kept).
    """
    d_head = q.shape[-1]
    t = q.shape[-2]
    scores = q @ np.swapaxes(k, -1, -2) / np.sqrt(d_head)
    mask = np.triu(np.full((t, t), -np.inf), k=1)
    scores = scores + mask
    probs = softmax(scores, axis=-1)
    out = probs @ v
    return out, (q, k, v, probs)


def cached_attention_fwd(q: np.ndarray, keys: np.ndarray, values: np.ndarray,
                         offset: int = 0) -> np.ndarray:
    """Attention of ``q (H, t, d_head)`` against cached ``(H, S, d_head)``.

    Query ``j`` sits at absolute position ``offset + j`` and attends to
    cache entries at positions ``<= offset + j``.  This is the decode
    path both the single-stream and the batched generation loops share,
    which is what makes batched greedy decoding token-for-token
    identical to the one-sequence loop.

    ``keys``/``values`` may also be paged views over non-contiguous
    KV-cache pages (anything exposing ``gather()``, see
    :class:`repro.serve.paging.PagedView`); they are materialized here
    — duck-typed so this model layer needs no serving import — and the
    attention math below runs on the gathered array, making paged
    logits bit-identical to the contiguous-cache path.
    """
    if hasattr(keys, "gather"):
        keys = keys.gather()
    if hasattr(values, "gather"):
        values = values.gather()
    d_head = q.shape[-1]
    t = q.shape[-2]
    s = keys.shape[-2]
    scores = q @ np.swapaxes(keys, -1, -2) / np.sqrt(d_head)
    qpos = offset + np.arange(t)[:, None]
    kpos = np.arange(s)[None, :]
    scores = np.where(kpos <= qpos, scores, -np.inf)
    probs = softmax(scores, axis=-1)
    return probs @ values


def causal_attention_bwd(dout: np.ndarray, cache):
    q, k, v, probs = cache
    d_head = q.shape[-1]
    dv = np.swapaxes(probs, -1, -2) @ dout
    dprobs = dout @ np.swapaxes(v, -1, -2)
    dscores = probs * (dprobs - np.sum(dprobs * probs, axis=-1, keepdims=True))
    dscores = dscores / np.sqrt(d_head)
    dq = dscores @ k
    dk = np.swapaxes(dscores, -1, -2) @ q
    return dq, dk, dv


# ----------------------------------------------------------------------
# Loss
# ----------------------------------------------------------------------
def cross_entropy_fwd(logits: np.ndarray, targets: np.ndarray):
    """Mean token NLL. ``logits (B, T, V)``, ``targets (B, T)`` int."""
    z = logits - np.max(logits, axis=-1, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(z), axis=-1))
    b, t = targets.shape
    picked = z[np.arange(b)[:, None], np.arange(t)[None, :], targets]
    nll = logsumexp - picked
    loss = float(np.mean(nll))
    return loss, (z, targets)


def cross_entropy_bwd(cache):
    z, targets = cache
    b, t, _ = z.shape
    probs = np.exp(z) / np.sum(np.exp(z), axis=-1, keepdims=True)
    probs[np.arange(b)[:, None], np.arange(t)[None, :], targets] -= 1.0
    return probs / (b * t)
