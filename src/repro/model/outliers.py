"""Function-preserving outlier-channel injection.

Real LLMs develop a few channels whose magnitudes dwarf the rest; they
are what breaks coarse-grained low-bit quantization (the paper's W4A4
blow-ups for ANT/OliVe) and what makes the K/V caches hard.  Tiny
models trained on synthetic data develop this only mildly, so we
replicate it *exactly function-preservingly* by rescaling weight pairs:

* **V/O pair** — scale output channel ``j`` of ``W_V`` by ``s_j`` and
  input channel ``j`` of ``W_O`` by ``1/s_j``.  Attention mixes value
  vectors with scalar weights, so the layer output is bit-identical in
  exact arithmetic, while the V cache and the O-projection's input
  activations now carry genuine outlier channels.
* **Q/K pair** — scale output channel ``j`` of ``W_K`` by ``s_j`` and
  the matching channel of ``W_Q`` by ``1/s_j``.  RoPE commutes with the
  scaling provided ``s`` is constant on each rotation pair ``(c, c +
  d_head/2)``, which the channel picker enforces; the QKᵀ scores are
  then unchanged while the K cache gets outliers.

This gives quantization experiments LLM-like tensor statistics without
touching the FP16 model's behaviour (DESIGN.md §2).
"""

from __future__ import annotations

import numpy as np

from repro.model.transformer import ModelConfig

__all__ = ["inject_outliers", "inject_group_scale_diversity", "outlier_channel_stats"]


def _pick_pair_channels(rng, n_heads: int, d_head: int, n_channels: int) -> np.ndarray:
    """Channel indices closed under the RoPE pairing (c, c + d_head/2).

    Outlier channels are drawn from ONE head's leading rotation pairs:
    in a real LLM (d_model 4096+) outliers are sparse relative to the
    64-element group, so at tiny widths the scale-faithful emulation
    keeps them contiguous — a single quantization group absorbs them
    while the rest stay clean.
    """
    half = d_head // 2
    head = int(rng.integers(n_heads))
    base = head * d_head
    n = min(n_channels, half)
    idx = []
    for c in range(n):
        idx += [base + c, base + c + half]
    return np.asarray(sorted(idx))


def inject_outliers(
    params: dict[str, np.ndarray],
    config: ModelConfig,
    scale: float = 8.0,
    frac: float = 0.05,
    seed: int = 7,
    targets: str = "vo+qk",
) -> dict[str, np.ndarray]:
    """Return a copy of ``params`` with outlier channels injected.

    ``frac`` is the fraction of channels scaled by ``scale``.  The
    returned model computes the same function as the input model up to
    floating-point rounding.
    """
    rng = np.random.default_rng(seed)
    out = {k: v.copy() for k, v in params.items()}
    d = config.d_model
    n_pairs = max(1, int(frac * d / 2))

    for i in range(config.n_layers):
        pre = f"layers.{i}."
        if "vo" in targets:
            idx = _pick_pair_channels(rng, config.n_heads, config.d_head, n_pairs)
            out[pre + "attn.wv"][idx, :] *= scale
            out[pre + "attn.wo"][:, idx] /= scale
        if "qk" in targets:
            idx = _pick_pair_channels(rng, config.n_heads, config.d_head, n_pairs)
            out[pre + "attn.wk"][idx, :] *= scale
            out[pre + "attn.wq"][idx, :] /= scale
    return out


def inject_group_scale_diversity(
    params: dict[str, np.ndarray],
    config: ModelConfig,
    sigma: float = 1.2,
    seed: int = 21,
) -> dict[str, np.ndarray]:
    """Inject heavy-tailed per-input-channel scale diversity.

    Real LLM weight matrices have strong scale structure along the
    input dimension (the quantization axis): some groups of 64 span
    orders of magnitude more range than others, which is what makes
    group-wise and adaptive quantization matter (paper Fig. 1-3).
    Tiny models trained on synthetic data end up nearly i.i.d., so we
    add the structure *function-preservingly*: in a pre-norm block the
    normalised hidden state feeds only that block's projections, so
    scaling the norm gain (and bias) per channel by ``d`` while
    dividing the matching weight columns by ``d`` leaves every layer
    output bit-identical in exact arithmetic.

    The scale vector ``d`` mirrors published LLM channel-scale
    measurements (LLM.int8 / SmoothQuant): log-normal per-channel
    scales with ``sigma`` ≈ 0.6 (a ~5x absmax/typical spread inside a
    64-group) plus one fixed large outlier channel per normalisation
    site (x16, the "outlier channel" phenomenon).  Tensor- and
    channel-wise quantization lose most of their resolution to the
    spread and the outlier; group-wise methods localise both — exactly
    the regime the paper's motivation studies.
    """
    rng = np.random.default_rng(seed)
    out = {k: v.copy() for k, v in params.items()}

    def make_scales() -> np.ndarray:
        d = np.exp(rng.normal(0.0, sigma, size=config.d_model))
        # Sparse outlier channels, contiguous so that (like a real
        # 4096-wide model) only ~one group in many contains them.
        n_out = max(2, config.d_model // 64)
        start = int(rng.integers(config.d_model - n_out))
        d[start : start + n_out] *= 16.0
        return d

    def scale_block(norm_prefix: str, weight_names: list[str]) -> None:
        d = make_scales()
        out[norm_prefix + ".g"] *= d
        if norm_prefix + ".b" in out:
            out[norm_prefix + ".b"] *= d
        for wname in weight_names:
            out[wname] /= d[None, :]

    for i in range(config.n_layers):
        pre = f"layers.{i}."
        scale_block(pre + "norm1", [pre + "attn.wq", pre + "attn.wk", pre + "attn.wv"])
        if config.arch == "llama":
            scale_block(pre + "norm2", [pre + "ffn.wgate", pre + "ffn.wup"])
        else:
            scale_block(pre + "norm2", [pre + "ffn.w1"])
    return out


def outlier_channel_stats(x: np.ndarray, axis: int = -1) -> dict[str, float]:
    """Max-to-median channel magnitude ratio — an outlier severity gauge."""
    moved = np.moveaxis(np.asarray(x, dtype=np.float64), axis, -1)
    ch_max = np.max(np.abs(moved.reshape(-1, moved.shape[-1])), axis=0)
    med = float(np.median(ch_max))
    return {
        "max_channel": float(ch_max.max()),
        "median_channel": med,
        "max_over_median": float(ch_max.max() / (med + 1e-12)),
    }
