"""Perplexity evaluation (the Wikitext metric of the paper's tables)."""

from __future__ import annotations

import numpy as np

from repro.model.transformer import TransformerLM

__all__ = ["evaluate_ppl", "perplexity_from_rows"]


def perplexity_from_rows(
    model: TransformerLM,
    rows: np.ndarray,
    weights: dict[str, np.ndarray] | None = None,
    act_quant=None,
    kv_quant=None,
    batch_size: int = 8,
) -> float:
    """Teacher-forced perplexity over ``rows`` of shape (N, T+1).

    ``rows[:, :-1]`` feeds the model, ``rows[:, 1:]`` are targets; NLL
    is averaged over every predicted token and exponentiated.
    """
    total_nll = 0.0
    total_tokens = 0
    for start in range(0, rows.shape[0], batch_size):
        block = rows[start : start + batch_size]
        ids, targets = block[:, :-1], block[:, 1:]
        logits = model.forward_logits(
            ids, weights=weights, act_quant=act_quant, kv_quant=kv_quant
        )
        z = logits - np.max(logits, axis=-1, keepdims=True)
        logsumexp = np.log(np.sum(np.exp(z), axis=-1))
        b, t = targets.shape
        picked = z[np.arange(b)[:, None], np.arange(t)[None, :], targets]
        total_nll += float(np.sum(logsumexp - picked))
        total_tokens += b * t
    return float(np.exp(total_nll / total_tokens))


# Backwards-friendly alias used throughout the benches.
evaluate_ppl = perplexity_from_rows
