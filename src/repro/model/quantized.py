"""PTQ harness: bind quantization methods to the transformer's hooks.

This module encodes the paper's evaluation setup (Sec. VII-A):

* **MANT** — group-wise everywhere: weights 4-bit MANT (MSE-searched
  per group), activations group-wise INT8 (or INT4 in the W4A4 row),
  KV cache 4-bit MANT with variance selection.
* **ANT** — channel-wise adaptive weights, *tensor-wise* adaptive
  activations (ANT has no real-time type selection).  8-bit ANT is the
  non-adaptive "ANT*" INT8 configuration.
* **OliVe** — channel-wise outlier-victim weights, tensor-wise OVP
  activations.
* **Tender** — per-channel-chunk decomposition with 2^k scales for
  both weights and activations.
* **INT / NF / FP / MXFP / cluster** — plain data-type paths at a
  configurable granularity (Fig. 1/2, Tbl. V).

None of the baselines quantize the attention layer (the paper keeps
them FP16 there); only MANT configs carry a KV spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.groups import to_groups, from_groups
from repro.core.selection import VarianceSelector
from repro.datatypes.int_type import IntType
from repro.datatypes.mxfp import mxfp4_qdq
from repro.model.transformer import TransformerLM
from repro.quant.ant import AntQuantizer
from repro.quant.clustering import PerGroupClusterQuantizer
from repro.quant.config import Granularity
from repro.quant.mant_framework import MantModelQuantizer
from repro.quant.olive import OliveQuantizer
from repro.quant.quantizer import GroupQuantizer
from repro.quant.tender import TenderQuantizer
from repro.quant.calibration import CalibrationResult

__all__ = ["PTQConfig", "PTQSetup", "build_ptq", "mant_kv_prefill_qdq", "int_kv_prefill_qdq"]


@dataclass(frozen=True)
class PTQConfig:
    """One row of the paper's accuracy tables.

    ``w_granularity``/``a_granularity`` default to each method's paper
    setting when None.  ``kv_method`` of ``"fp16"`` leaves the
    attention layer unquantized (all baselines); ``"mant"``/``"int"``
    enable 4-bit KV with 8-bit attention activations (Tbl. II last row,
    Tbl. III).
    """

    method: str = "mant"
    w_bits: int = 4
    a_bits: int = 8
    group_size: int = 64
    w_granularity: Granularity | None = None
    a_granularity: Granularity | None = None
    kv_method: str = "fp16"
    kv_bits: int = 4
    attn_act_bits: int = 16
    label: str | None = None

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        kv = "" if self.kv_method == "fp16" else f"+KV{self.kv_method}{self.kv_bits}"
        return f"{self.method}-W{self.w_bits}A{self.a_bits}{kv}"


@dataclass
class PTQSetup:
    """Ready-to-run quantized model: weights + hooks for the forward."""

    config: PTQConfig
    weights: dict[str, np.ndarray]
    act_quant: object | None
    kv_quant: object | None
    artifacts: dict = field(default_factory=dict)

    def ppl(self, model: TransformerLM, rows: np.ndarray, batch_size: int = 8) -> float:
        from repro.model.perplexity import perplexity_from_rows

        return perplexity_from_rows(
            model,
            rows,
            weights=self.weights,
            act_quant=self.act_quant,
            kv_quant=self.kv_quant,
            batch_size=batch_size,
        )


# ----------------------------------------------------------------------
# Weight quantization per method
# ----------------------------------------------------------------------
def _quantize_weights(model: TransformerLM, cfg: PTQConfig,
                      calibration: CalibrationResult | None, artifacts: dict):
    params = model.params
    names = set(model.config.linear_names())
    out = dict(params)
    if cfg.method == "fp16" or cfg.w_bits >= 16:
        return out

    gran = cfg.w_granularity
    if cfg.method == "mant":
        mq = MantModelQuantizer(bits=cfg.w_bits, group_size=cfg.group_size)
        stats = calibration.act_sq_means if calibration else None
        quantized = mq.quantize_weights(
            {n: params[n] for n in names}, act_sq_means=stats
        )
        out.update(quantized)
        artifacts["mant_weights"] = mq
        return out

    for n in names:
        w = params[n]
        if cfg.method == "ant":
            q = AntQuantizer(
                bits=cfg.w_bits,
                granularity=gran or Granularity.CHANNEL,
                group_size=cfg.group_size,
            ).qdq(w, axis=-1)
        elif cfg.method == "olive":
            q = OliveQuantizer(
                bits=cfg.w_bits,
                granularity=gran or Granularity.CHANNEL,
                group_size=cfg.group_size,
            ).qdq(w, axis=-1)
        elif cfg.method == "tender":
            q = TenderQuantizer(bits=cfg.w_bits).qdq(w, axis=-1)
        elif cfg.method == "int":
            q = GroupQuantizer(
                IntType(cfg.w_bits), gran or Granularity.GROUP, cfg.group_size
            ).qdq(w, axis=-1)
        elif cfg.method == "cluster":
            q = PerGroupClusterQuantizer(
                bits=cfg.w_bits, group_size=cfg.group_size
            ).qdq(w, axis=-1)
        elif cfg.method == "mxfp":
            q = mxfp4_qdq(_pad_to_multiple(w, 32), 32)[..., : w.shape[-1]]
        elif cfg.method in ("nf", "fp", "pot", "flint"):
            from repro.quant.quantizer import _dtype_for
            from repro.quant.config import QuantConfig

            dt = _dtype_for(QuantConfig(bits=cfg.w_bits, method=cfg.method,
                                        group_size=cfg.group_size))
            q = GroupQuantizer(dt, gran or Granularity.GROUP, cfg.group_size).qdq(w, axis=-1)
        else:
            raise ValueError(f"unknown weight method {cfg.method!r}")
        out[n] = q
    return out


def _pad_to_multiple(x: np.ndarray, m: int) -> np.ndarray:
    pad = (-x.shape[-1]) % m
    if not pad:
        return x
    width = [(0, 0)] * (x.ndim - 1) + [(0, pad)]
    return np.pad(x, width)


# ----------------------------------------------------------------------
# Activation quantization per method
# ----------------------------------------------------------------------
def _make_act_quant(cfg: PTQConfig):
    if cfg.method == "fp16" or cfg.a_bits >= 16:
        return None
    if cfg.method == "mant" or cfg.method == "int" or cfg.method == "cluster":
        # MANT framework: activations are plain group-wise INT (Sec. V-B).
        gq = GroupQuantizer(
            IntType(cfg.a_bits), cfg.a_granularity or Granularity.GROUP, cfg.group_size
        )
        return lambda name, x: gq.qdq(x, axis=-1)
    if cfg.method == "ant":
        aq = AntQuantizer(
            bits=cfg.a_bits,
            granularity=cfg.a_granularity or Granularity.TENSOR,
            group_size=cfg.group_size,
            per_unit_type=False,
        )
        return lambda name, x: aq.qdq(x, axis=-1)
    if cfg.method == "olive":
        oq = OliveQuantizer(
            bits=cfg.a_bits,
            granularity=cfg.a_granularity or Granularity.TENSOR,
            group_size=cfg.group_size,
        )
        return lambda name, x: oq.qdq(x, axis=-1)
    if cfg.method == "tender":
        tq = TenderQuantizer(bits=cfg.a_bits)
        return lambda name, x: tq.qdq(x, axis=-1)
    if cfg.method in ("mxfp",):
        return lambda name, x: mxfp4_qdq(_pad_to_multiple(x, 32), 32)[..., : x.shape[-1]]
    if cfg.method in ("nf", "fp", "pot", "flint"):
        gq = GroupQuantizer(
            IntType(cfg.a_bits), cfg.a_granularity or Granularity.GROUP, cfg.group_size
        )
        return lambda name, x: gq.qdq(x, axis=-1)
    raise ValueError(f"unknown activation method {cfg.method!r}")


# ----------------------------------------------------------------------
# Prefill-style KV quantization (Tbl. II attention rows)
# ----------------------------------------------------------------------
def mant_kv_prefill_qdq(
    k: np.ndarray,
    v: np.ndarray,
    selector: VarianceSelector,
    bits: int = 4,
    group_size: int = 64,
    window: int | None = None,
):
    """Vectorised prefill-stage MANT KV quantization.

    K groups run along ``d_head`` (spatial); V groups along the
    sequence in ``window``-sized chunks, with the tail kept at INT8
    using channel scales — matching :class:`MantKVCache` semantics on
    ``(B, H, T, d_head)`` tensors.
    """
    from repro.core.codec import MantCodec

    window = window or group_size
    b, h, t, dh = k.shape

    gk = min(group_size, dh)
    codec_k = MantCodec(bits, gk)
    flat_k = k.reshape(-1, dh)
    a_k = selector.select_batch(to_groups(flat_k, gk, axis=-1).groups)
    k_q = codec_k.qdq(flat_k, a_k).reshape(k.shape)

    full = (t // window) * window
    v_q = np.empty_like(v)
    if full:
        body = v[:, :, :full, :].reshape(b, h, full // window, window, dh)
        per_channel = np.moveaxis(body, 3, -1)          # (b,h,W,dh,window)
        flat_v = per_channel.reshape(-1, window)
        codec_v = MantCodec(bits, window)
        a_v = selector.select_batch(flat_v)
        out = codec_v.qdq(flat_v, a_v[:, None])
        v_q[:, :, :full, :] = np.moveaxis(
            out.reshape(b, h, full // window, dh, window), -1, 3
        ).reshape(b, h, full, dh)
    if full < t:
        tail = v[:, :, full:, :]
        itype = IntType(8)
        ch_max = np.max(np.abs(v), axis=2, keepdims=True)   # prefill channel scales
        ch_max = np.where(ch_max <= 0, 1.0, ch_max)
        scale = ch_max / itype.qmax
        v_q[:, :, full:, :] = itype.round_clip(tail / scale) * scale
    return k_q, v_q


def int_kv_prefill_qdq(k: np.ndarray, v: np.ndarray, bits: int = 4, group_size: int = 64):
    """Baseline INT KV: per-token groups along ``d_head`` for both."""
    def q(x):
        g = min(group_size, x.shape[-1])
        itype = IntType(bits)
        view = to_groups(x, g, axis=-1)
        amax = np.max(np.abs(view.groups), axis=-1, keepdims=True)
        amax = np.where(amax <= 0, itype.qmax, amax)
        scale = amax / itype.qmax
        return from_groups(view, itype.round_clip(view.groups / scale) * scale)

    return q(k), q(v)


def _make_kv_quant(cfg: PTQConfig, selector: VarianceSelector | None):
    if cfg.kv_method == "fp16":
        return None
    q_quant = None
    if cfg.attn_act_bits < 16:
        gq = GroupQuantizer(IntType(cfg.attn_act_bits), Granularity.GROUP, cfg.group_size)
        q_quant = lambda x: gq.qdq(x, axis=-1)

    if cfg.kv_method == "mant":
        sel = selector or VarianceSelector(bits=cfg.kv_bits, group_size=cfg.group_size)

        def hook(layer, qh, kh, vh):
            k_q, v_q = mant_kv_prefill_qdq(
                kh, vh, sel, bits=cfg.kv_bits, group_size=cfg.group_size
            )
            return (q_quant(qh) if q_quant else qh), k_q, v_q

        return hook
    if cfg.kv_method == "int":

        def hook(layer, qh, kh, vh):
            k_q, v_q = int_kv_prefill_qdq(kh, vh, bits=cfg.kv_bits,
                                          group_size=cfg.group_size)
            return (q_quant(qh) if q_quant else qh), k_q, v_q

        return hook
    raise ValueError(f"unknown KV method {cfg.kv_method!r}")


# ----------------------------------------------------------------------
def build_ptq(
    model: TransformerLM,
    cfg: PTQConfig,
    calibration: CalibrationResult | None = None,
) -> PTQSetup:
    """Assemble quantized weights and hooks for one table row."""
    artifacts: dict = {}
    weights = _quantize_weights(model, cfg, calibration, artifacts)
    act_quant = _make_act_quant(cfg)
    selector = calibration.kv_selector if calibration else None
    kv_quant = _make_kv_quant(cfg, selector)
    return PTQSetup(
        config=cfg,
        weights=weights,
        act_quant=act_quant,
        kv_quant=kv_quant,
        artifacts=artifacts,
    )
