"""Generation-task evaluation: the TruthfulQA / TriviaQA stand-ins.

Two tasks exercise the decode-stage KV cache exactly where quantization
hurts (Tbl. III):

* :class:`RecallTask` (TriviaQA substitute) — unseen key→value pairs
  are planted in a long prompt; after a query token the model must
  produce the right value by attending through the quantized cache.
  Scored with token F1 (single-token answers make F1 == accuracy;
  multi-query episodes make it a proper set overlap).
* :class:`ContinuationTask` (TruthfulQA substitute) — the quantized
  model continues held-out HMM prompts; scored with a BLEU-style
  n-gram overlap against the FP16 model's continuation, measuring
  generation drift caused by quantization alone.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.model.corpus import HmmCorpus, KEY_BASE
from repro.model.transformer import TransformerLM
from repro.sampling import Sampler

__all__ = ["RecallTask", "ContinuationTask", "token_f1", "bleu"]


def token_f1(predicted: list[int], reference: list[int]) -> float:
    """Multiset token F1, the squad-style metric used for TriviaQA."""
    if not predicted or not reference:
        return float(predicted == reference)
    common = Counter(predicted) & Counter(reference)
    n_common = sum(common.values())
    if n_common == 0:
        return 0.0
    precision = n_common / len(predicted)
    recall = n_common / len(reference)
    return 2 * precision * recall / (precision + recall)


def bleu(candidate: list[int], reference: list[int], max_n: int = 4) -> float:
    """Sentence BLEU with uniform n-gram weights and brevity penalty."""
    if not candidate or not reference:
        return 0.0
    log_precisions = []
    for n in range(1, max_n + 1):
        cand_ngrams = Counter(
            tuple(candidate[i : i + n]) for i in range(len(candidate) - n + 1)
        )
        ref_ngrams = Counter(
            tuple(reference[i : i + n]) for i in range(len(reference) - n + 1)
        )
        overlap = sum((cand_ngrams & ref_ngrams).values())
        total = max(sum(cand_ngrams.values()), 1)
        # Laplace-ish smoothing keeps zero-overlap orders finite.
        log_precisions.append(np.log((overlap + 0.1) / (total + 0.1)))
    bp = min(1.0, np.exp(1 - len(reference) / max(len(candidate), 1)))
    return float(bp * np.exp(np.mean(log_precisions)))


def _generate(model: TransformerLM, prompt: np.ndarray, n_tokens: int,
              cache_factory, weights=None, act_quant=None,
              sampler: Sampler | None = None) -> list[int]:
    """Single-stream generation with per-layer KV caches.

    The default :class:`~repro.sampling.Sampler` is greedy, the
    deterministic policy all accuracy tables use.
    """
    sampler = sampler or Sampler()
    caches = [cache_factory() for _ in range(model.config.n_layers)]
    logits = model.prefill(prompt, caches, weights=weights, act_quant=act_quant)
    out = []
    pos = len(prompt)
    token = sampler.sample(logits)
    for _ in range(n_tokens):
        out.append(token)
        logits = model.decode_step(token, caches, pos, weights=weights, act_quant=act_quant)
        token = sampler.sample(logits)
        pos += 1
    return out


@dataclass
class RecallTask:
    """Key-value recall through the decode-stage KV cache."""

    vocab_size: int = 256
    n_keys: int = 16
    prompt_len: int = 192
    n_pairs: int = 6
    n_episodes: int = 24
    seed: int = 2024

    def _build_episode(self, rng: np.random.Generator):
        value_lo = KEY_BASE + self.n_keys
        keys = rng.choice(self.n_keys, size=self.n_pairs, replace=False) + KEY_BASE
        values = rng.integers(value_lo, self.vocab_size, size=self.n_pairs)
        body_len = self.prompt_len - 1
        tokens = rng.integers(value_lo, self.vocab_size, size=body_len)
        # Plant every pair twice at disjoint even-aligned slots so no
        # pair is ever truncated or overwritten.
        n_slots = body_len // 2
        needed = 2 * self.n_pairs
        if n_slots < needed:
            raise ValueError("prompt too short for the requested pairs")
        slots = rng.choice(n_slots, size=needed, replace=False) * 2
        for p in range(self.n_pairs):
            for slot in slots[2 * p : 2 * p + 2]:
                tokens[slot] = keys[p]
                tokens[slot + 1] = values[p]
        j = int(rng.integers(self.n_pairs))
        prompt = np.concatenate([tokens, [keys[j]]]).astype(np.int64)
        return prompt, int(values[j])

    def evaluate(self, model: TransformerLM, cache_factory,
                 weights=None, act_quant=None) -> float:
        """Mean token F1 of the answers over all episodes."""
        rng = np.random.default_rng(self.seed)
        scores = []
        for _ in range(self.n_episodes):
            prompt, answer = self._build_episode(rng)
            pred = _generate(model, prompt, 1, cache_factory,
                             weights=weights, act_quant=act_quant)
            scores.append(token_f1(pred, [answer]))
        return float(np.mean(scores))


@dataclass
class ContinuationTask:
    """Generation-drift BLEU against the FP16 model's continuation."""

    hmm: HmmCorpus
    prompt_len: int = 96
    gen_len: int = 32
    n_episodes: int = 12
    seed: int = 31337

    def references(self, model: TransformerLM, cache_factory) -> list[list[int]]:
        """FP16 continuations (the comparison anchor)."""
        rng = np.random.default_rng(self.seed)
        refs = []
        for _ in range(self.n_episodes):
            prompt = self.hmm.sample(self.prompt_len, rng)
            refs.append(_generate(model, prompt, self.gen_len, cache_factory))
        return refs

    def evaluate(self, model: TransformerLM, cache_factory,
                 references: list[list[int]],
                 weights=None, act_quant=None) -> float:
        """Mean BLEU of quantized continuations vs the references."""
        rng = np.random.default_rng(self.seed)
        scores = []
        for ref in references:
            prompt = self.hmm.sample(self.prompt_len, rng)
            cand = _generate(model, prompt, self.gen_len, cache_factory,
                             weights=weights, act_quant=act_quant)
            scores.append(bleu(cand, ref))
        return float(np.mean(scores))
