"""Adam training loop for the numpy transformer LMs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model.transformer import TransformerLM

__all__ = ["AdamState", "Adam", "train_lm", "TrainReport"]


@dataclass
class AdamState:
    m: dict[str, np.ndarray]
    v: dict[str, np.ndarray]
    t: int = 0


class Adam:
    """Standard Adam with bias correction and global-norm clipping."""

    def __init__(self, params: dict[str, np.ndarray], lr: float = 3e-3,
                 betas=(0.9, 0.95), eps: float = 1e-8, clip: float = 1.0):
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.clip = clip
        self.state = AdamState(
            m={k: np.zeros_like(p) for k, p in params.items()},
            v={k: np.zeros_like(p) for k, p in params.items()},
        )

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray],
             lr_scale: float = 1.0) -> None:
        gnorm = np.sqrt(sum(float(np.sum(g * g)) for g in grads.values()))
        scale = min(1.0, self.clip / (gnorm + 1e-12))
        st = self.state
        st.t += 1
        bc1 = 1 - self.b1**st.t
        bc2 = 1 - self.b2**st.t
        for k, p in params.items():
            g = grads[k] * scale
            st.m[k] = self.b1 * st.m[k] + (1 - self.b1) * g
            st.v[k] = self.b2 * st.v[k] + (1 - self.b2) * g * g
            mhat = st.m[k] / bc1
            vhat = st.v[k] / bc2
            p -= self.lr * lr_scale * mhat / (np.sqrt(vhat) + self.eps)


@dataclass
class TrainReport:
    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed_final(self, k: int = 20) -> float:
        tail = self.losses[-k:]
        return float(np.mean(tail)) if tail else float("nan")


def train_lm(
    model: TransformerLM,
    batches,
    lr: float = 3e-3,
    warmup: int = 50,
    log_every: int = 0,
) -> TrainReport:
    """Train in place over an iterable of ``(ids, targets)`` batches.

    Cosine decay after linear warmup; returns the loss trace.
    """
    opt = Adam(model.params, lr=lr)
    report = TrainReport()
    batch_list = batches if isinstance(batches, list) else None
    total = len(batch_list) if batch_list is not None else None
    for step, (ids, targets) in enumerate(batches):
        loss, grads = model.loss_and_grads(ids, targets)
        if warmup and step < warmup:
            lr_scale = (step + 1) / warmup
        elif total:
            progress = (step - warmup) / max(total - warmup, 1)
            lr_scale = 0.5 * (1 + np.cos(np.pi * min(progress, 1.0)))
        else:
            lr_scale = 1.0
        opt.step(model.params, grads, lr_scale)
        report.losses.append(loss)
        if log_every and step % log_every == 0:
            print(f"step {step:5d}  loss {loss:.4f}")
    return report
