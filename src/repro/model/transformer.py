"""Tiny transformer language models in pure numpy.

Two architecture families mirror the paper's model zoo:

* ``"llama"`` — RMSNorm, rotary position embeddings, SwiGLU FFN,
  pre-norm, tied embeddings (LLaMA-1/2 structure).
* ``"opt"`` — LayerNorm (gain+bias), learned absolute position
  embeddings, ReLU FFN, pre-norm, tied embeddings (OPT structure).

The training path (:func:`loss_and_grads`) does a full manual backward
pass; the inference path (:func:`forward_logits`, :func:`decode_step`,
and the continuous-batching :func:`decode_step_batch`) accepts the
quantization hooks the accuracy experiments plug in:

``weights``
    Substituted (fake-quantized) weight dict.
``act_quant(name, x)``
    Applied to the *input* of every linear projection — this is where
    group-wise INT8/INT4 activation quantization happens.
``kv_cache_factory()``
    Builds one :class:`repro.quant.kvcache.KVCache` per layer for
    generation; prefill-style evaluation uses ``kv_quant`` instead.

Caches may store tokens contiguously or in non-contiguous pages
(:mod:`repro.serve.paging`): ``keys()``/``values()`` results flow
straight into :func:`repro.model.layers.cached_attention_fwd`, which
gathers paged views before the attention math, so every generation
path here is storage-layout agnostic and bit-identical across
backends.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.model import layers as L

# Shared no-op context for untraced cache writes: generation methods
# accept an optional ``trace`` span factory (the serving engine's tick
# tracer) and must cost nothing when it is absent.
_NULL_CTX = nullcontext()

__all__ = ["ModelConfig", "MixedSegment", "TransformerLM", "init_params",
           "param_count"]


class MixedSegment:
    """One sequence's slice of a mixed prefill+decode forward.

    ``kind`` selects the KV-cache write path:

    * ``DECODE`` — one already-sampled token appended at ``offset``
      (the continuous-batching decode row; ``ids`` has length 1);
    * ``CHUNK`` — a window-aligned slice of a prompt prefill written at
      ``offset`` via :meth:`~repro.quant.kvcache.KVCache.prefill_chunk`;
    * ``CHUNK_FINAL`` — the prompt's last chunk (may be ragged); its
      last-position logits seed the sequence's first sampled token.
    """

    DECODE = "decode"
    CHUNK = "chunk"
    CHUNK_FINAL = "chunk_final"

    __slots__ = ("ids", "caches", "offset", "kind")

    def __init__(self, ids, caches: list, offset: int, kind: str):
        ids = np.asarray(ids, dtype=np.int64)
        if ids.ndim != 1 or ids.size == 0:
            raise ValueError(f"segment ids must be non-empty 1-D, got {ids.shape}")
        if kind not in (self.DECODE, self.CHUNK, self.CHUNK_FINAL):
            raise ValueError(f"unknown segment kind {kind!r}")
        if kind == self.DECODE and ids.size != 1:
            raise ValueError("decode segments carry exactly one token")
        self.ids = ids
        self.caches = caches
        self.offset = int(offset)
        self.kind = kind

    @property
    def wants_logits(self) -> bool:
        return self.kind != self.CHUNK


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyperparameters."""

    vocab_size: int = 256
    d_model: int = 128
    n_heads: int = 4
    n_layers: int = 2
    d_ff: int = 256
    max_seq: int = 512
    arch: str = "llama"          # "llama" | "opt"
    rope_base: float = 10000.0
    seed: int = 0

    def __post_init__(self):
        if self.d_model % self.n_heads:
            raise ValueError("d_model must divide by n_heads")
        if self.arch not in ("llama", "opt"):
            raise ValueError(f"unknown arch {self.arch!r}")
        if self.arch == "llama" and (self.d_model // self.n_heads) % 2:
            raise ValueError("RoPE needs an even head dimension")

    @property
    def d_head(self) -> int:
        return self.d_model // self.n_heads

    def linear_names(self) -> list[str]:
        """Names of every projection weight, in forward order."""
        names = []
        for i in range(self.n_layers):
            p = f"layers.{i}."
            names += [p + "attn.wq", p + "attn.wk", p + "attn.wv", p + "attn.wo"]
            if self.arch == "llama":
                names += [p + "ffn.wgate", p + "ffn.wup", p + "ffn.wdown"]
            else:
                names += [p + "ffn.w1", p + "ffn.w2"]
        return names


def init_params(config: ModelConfig) -> dict[str, np.ndarray]:
    """Scaled-Gaussian initialisation; deterministic given the seed."""
    rng = np.random.default_rng(config.seed)
    d, f = config.d_model, config.d_ff
    params: dict[str, np.ndarray] = {}

    def w(shape, fan_in):
        return rng.standard_normal(shape) * (1.0 / np.sqrt(fan_in))

    params["embed"] = rng.standard_normal((config.vocab_size, d)) * 0.02
    if config.arch == "opt":
        params["pos_embed"] = rng.standard_normal((config.max_seq, d)) * 0.02
    for i in range(config.n_layers):
        p = f"layers.{i}."
        for name in ("attn.wq", "attn.wk", "attn.wv"):
            params[p + name] = w((d, d), d)
        # Residual-branch outputs scaled down for depth stability.
        params[p + "attn.wo"] = w((d, d), d) / np.sqrt(2 * config.n_layers)
        if config.arch == "llama":
            params[p + "ffn.wgate"] = w((f, d), d)
            params[p + "ffn.wup"] = w((f, d), d)
            params[p + "ffn.wdown"] = w((d, f), f) / np.sqrt(2 * config.n_layers)
            params[p + "norm1.g"] = np.ones(d)
            params[p + "norm2.g"] = np.ones(d)
        else:
            params[p + "ffn.w1"] = w((f, d), d)
            params[p + "ffn.w2"] = w((d, f), f) / np.sqrt(2 * config.n_layers)
            params[p + "norm1.g"] = np.ones(d)
            params[p + "norm1.b"] = np.zeros(d)
            params[p + "norm2.g"] = np.ones(d)
            params[p + "norm2.b"] = np.zeros(d)
    if config.arch == "llama":
        params["norm_f.g"] = np.ones(d)
    else:
        params["norm_f.g"] = np.ones(d)
        params["norm_f.b"] = np.zeros(d)
    return params


def param_count(params: dict[str, np.ndarray]) -> int:
    return int(sum(p.size for p in params.values()))


def _split_heads(x: np.ndarray, n_heads: int) -> np.ndarray:
    b, t, d = x.shape
    return x.reshape(b, t, n_heads, d // n_heads).transpose(0, 2, 1, 3)


def _merge_heads(x: np.ndarray) -> np.ndarray:
    b, h, t, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)


class TransformerLM:
    """Stateless model wrapper: params dict in, logits/grads out."""

    def __init__(self, config: ModelConfig, params: dict[str, np.ndarray] | None = None):
        self.config = config
        self.params = params if params is not None else init_params(config)
        if config.arch == "llama":
            self._cos, self._sin = L.rope_tables(
                config.d_head, config.max_seq, config.rope_base
            )
        else:
            self._cos = self._sin = None

    # ==================================================================
    # Normalisation helpers (arch-dependent)
    # ==================================================================
    def _norm_fwd(self, x, params, prefix):
        if self.config.arch == "llama":
            return L.rmsnorm_fwd(x, params[prefix + ".g"])
        return L.layernorm_fwd(x, params[prefix + ".g"], params[prefix + ".b"])

    # ==================================================================
    # Inference forward (with quantization hooks)
    # ==================================================================
    def forward_logits(
        self,
        ids: np.ndarray,
        weights: dict[str, np.ndarray] | None = None,
        act_quant=None,
        kv_quant=None,
    ) -> np.ndarray:
        """Teacher-forced full-sequence logits ``(B, T, V)``.

        ``kv_quant(layer_idx, q, k, v) -> (q, k, v)`` intercepts the
        per-layer attention operands ``(B, H, T, d_head)`` —
        prefill-style KV cache quantization plus the 8-bit attention
        activation path (what the Wikitext rows of Tbl. II measure).
        """
        cfg = self.config
        p = self.params if weights is None else weights
        ids = np.atleast_2d(ids)
        x, _ = L.embedding_fwd(ids, p["embed"])
        if cfg.arch == "opt":
            x = x + p["pos_embed"][: ids.shape[1]]

        def q(name, val):
            return val if act_quant is None else act_quant(name, val)

        for i in range(cfg.n_layers):
            pre = f"layers.{i}."
            h, _ = self._norm_fwd(x, p, pre + "norm1")
            h_in = q(pre + "attn.wq", h)
            qp, _ = L.linear_fwd(h_in, p[pre + "attn.wq"])
            kp, _ = L.linear_fwd(h_in, p[pre + "attn.wk"])
            vp, _ = L.linear_fwd(h_in, p[pre + "attn.wv"])
            qh = _split_heads(qp, cfg.n_heads)
            kh = _split_heads(kp, cfg.n_heads)
            vh = _split_heads(vp, cfg.n_heads)
            if cfg.arch == "llama":
                qh = L.apply_rope(qh, self._cos, self._sin)
                kh = L.apply_rope(kh, self._cos, self._sin)
            if kv_quant is not None:
                qh, kh, vh = kv_quant(i, qh, kh, vh)
            att, _ = L.causal_attention_fwd(qh, kh, vh)
            att = _merge_heads(att)
            o, _ = L.linear_fwd(q(pre + "attn.wo", att), p[pre + "attn.wo"])
            x = x + o

            h2, _ = self._norm_fwd(x, p, pre + "norm2")
            if cfg.arch == "llama":
                h2q = q(pre + "ffn.wgate", h2)
                g, _ = L.linear_fwd(h2q, p[pre + "ffn.wgate"])
                u, _ = L.linear_fwd(h2q, p[pre + "ffn.wup"])
                act, _ = L.silu_fwd(g)
                ff_in = q(pre + "ffn.wdown", act * u)
                ff, _ = L.linear_fwd(ff_in, p[pre + "ffn.wdown"])
            else:
                h2q = q(pre + "ffn.w1", h2)
                a1, _ = L.linear_fwd(h2q, p[pre + "ffn.w1"])
                act, _ = L.relu_fwd(a1)
                ff_in = q(pre + "ffn.w2", act)
                ff, _ = L.linear_fwd(ff_in, p[pre + "ffn.w2"])
            x = x + ff

        xf, _ = self._norm_fwd(x, p, "norm_f")
        logits = xf @ p["embed"].T
        return logits

    # ==================================================================
    # Generation with per-layer KV caches
    # ==================================================================
    def prefill(self, ids: np.ndarray, caches: list, weights=None, act_quant=None) -> np.ndarray:
        """Run the prompt, filling one KVCache per layer.

        ``ids``: 1-D prompt.  Returns logits of the last position (V,).
        Caches receive per-head tensors shaped ``(H, T, d_head)`` —
        batch size 1 is assumed for generation, as in the paper's
        single-batch decode scenario.
        """
        x = self._run_tokens(ids[None, :], caches, offset=0, weights=weights, act_quant=act_quant)
        return x[0, -1]

    def decode_step(self, token: int, caches: list, pos: int, weights=None, act_quant=None) -> np.ndarray:
        """One decode iteration: append to caches, return logits (V,)."""
        ids = np.asarray([[token]])
        x = self._run_tokens(ids, caches, offset=pos, weights=weights, act_quant=act_quant)
        return x[0, -1]

    def decode_step_batch(
        self,
        tokens,
        caches_per_seq: list[list],
        positions,
        weights=None,
        act_quant=None,
        trace=None,
    ) -> np.ndarray:
        """One fused decode step for ``B`` independent sequences.

        ``tokens``: length-``B`` ints (the token each sequence feeds in);
        ``caches_per_seq``: per-sequence lists of per-layer KV caches;
        ``positions``: length-``B`` absolute positions of those tokens.
        Returns logits ``(B, V)``.  ``trace``, when given, is a span
        factory (``trace("append")`` returns a context manager) and the
        per-layer cache writes are timed under ``append`` spans — the
        serving engine's tick tracer plugs in here.

        The dense projections and FFN run batched ``(B, 1, d)`` — one
        pass through the layer stack instead of ``B`` — while attention
        walks each sequence's own cache at its own position (sequence
        lengths are ragged under continuous batching).  Every
        per-sequence op has the same operand shapes as
        :meth:`decode_step` (numpy matmul applies the ``(1, d)``
        kernels per batch row), so row ``b`` of the result is
        bit-identical to the single-stream step — the invariant the
        serving engine's greedy-equivalence guarantee rests on.
        """
        cfg = self.config
        p = self.params if weights is None else weights
        bsz = len(tokens)
        if not (bsz == len(caches_per_seq) == len(positions)):
            raise ValueError("tokens, caches_per_seq and positions must align")
        positions = np.asarray(positions, dtype=np.int64)
        ids = np.asarray(tokens, dtype=np.int64).reshape(bsz, 1)
        x, _ = L.embedding_fwd(ids, p["embed"])               # (B, 1, d)
        if cfg.arch == "opt":
            x = x + p["pos_embed"][positions][:, None, :]

        def q(name, val):
            # Activation quantization is applied per sequence: tensor- or
            # channel-granularity scales computed over the whole batch
            # would couple sequences and break the per-row bit-identity
            # with the single-stream step (which quantizes (1, 1, d)).
            if act_quant is None:
                return val
            return np.concatenate(
                [act_quant(name, val[b : b + 1]) for b in range(bsz)]
            )

        for i in range(cfg.n_layers):
            pre = f"layers.{i}."
            h, _ = self._norm_fwd(x, p, pre + "norm1")
            h_in = q(pre + "attn.wq", h)
            qp, _ = L.linear_fwd(h_in, p[pre + "attn.wq"])
            kp, _ = L.linear_fwd(h_in, p[pre + "attn.wk"])
            vp, _ = L.linear_fwd(h_in, p[pre + "attn.wv"])
            qh = _split_heads(qp, cfg.n_heads)                # (B, H, 1, dh)
            kh = _split_heads(kp, cfg.n_heads)
            vh = _split_heads(vp, cfg.n_heads)
            if cfg.arch == "llama":
                qh = L.apply_rope_at(qh, self._cos, self._sin, positions)
                kh = L.apply_rope_at(kh, self._cos, self._sin, positions)
            layer_caches = [caches_per_seq[b][i] for b in range(bsz)]
            # Fused when the caches' configs allow, one quantization call
            # for the whole batch — bit-identical to per-cache appends;
            # append_batch itself falls back to the loop on mixed setups.
            with _NULL_CTX if trace is None else trace("append"):
                type(layer_caches[0]).append_batch(
                    layer_caches, kh[:, :, 0, :], vh[:, :, 0, :]
                )
            att_rows = []
            for b, cache in enumerate(layer_caches):
                att_rows.append(
                    L.cached_attention_fwd(
                        qh[b], cache.keys(), cache.values(), offset=int(positions[b])
                    )
                )
            att = _merge_heads(np.stack(att_rows))            # (B, 1, d)
            o, _ = L.linear_fwd(q(pre + "attn.wo", att), p[pre + "attn.wo"])
            x = x + o

            h2, _ = self._norm_fwd(x, p, pre + "norm2")
            if cfg.arch == "llama":
                h2q = q(pre + "ffn.wgate", h2)
                g, _ = L.linear_fwd(h2q, p[pre + "ffn.wgate"])
                u, _ = L.linear_fwd(h2q, p[pre + "ffn.wup"])
                act, _ = L.silu_fwd(g)
                ff, _ = L.linear_fwd(q(pre + "ffn.wdown", act * u), p[pre + "ffn.wdown"])
            else:
                h2q = q(pre + "ffn.w1", h2)
                a1, _ = L.linear_fwd(h2q, p[pre + "ffn.w1"])
                act, _ = L.relu_fwd(a1)
                ff, _ = L.linear_fwd(q(pre + "ffn.w2", act), p[pre + "ffn.w2"])
            x = x + ff

        xf, _ = self._norm_fwd(x, p, "norm_f")
        return (xf @ p["embed"].T)[:, -1]                     # (B, V)

    def prefill_chunk(self, ids, caches, offset=0, final=False,
                      weights=None, act_quant=None):
        """Run one window-aligned prompt chunk at ``offset`` into ``caches``.

        The single-sequence face of :meth:`forward_mixed`: chunk tokens
        attend to everything already in the caches plus themselves
        (causally), and the caches extend via
        :meth:`~repro.quant.kvcache.KVCache.prefill_chunk`, so feeding a
        prompt chunk by chunk (``final=True`` on the last call) leaves
        the caches bit-identical to one :meth:`prefill`.  Returns the
        chunk's last-position logits ``(V,)`` when ``final``, else
        ``None``.
        """
        kind = MixedSegment.CHUNK_FINAL if final else MixedSegment.CHUNK
        return self.forward_mixed(
            [MixedSegment(ids, caches, offset, kind)],
            weights=weights, act_quant=act_quant,
        )[0]

    def forward_mixed(self, segments, weights=None, act_quant=None,
                      trace=None):
        """One fused forward over decode rows *and* prefill chunks.

        ``segments`` is a list of :class:`MixedSegment`s — any mix of
        single-token decode rows and multi-token prompt chunks, each
        with its own per-layer caches and absolute ``offset``.  All
        segments are packed along one time axis so every dense op (the
        projections, the FFN, the norms — all position-independent per
        token) runs once for the whole tick, while RoPE gathers each
        token's own rotation row and attention walks each segment's own
        cache at its ragged position through the
        :func:`~repro.model.layers.cached_attention_fwd` seam.  Decode
        rows fuse their cache appends through ``append_batch`` exactly
        like :meth:`decode_step_batch`; chunk segments extend their
        caches with ``prefill_chunk``.

        Returns one entry per segment: last-position logits ``(V,)``
        for decode rows and final chunks, ``None`` for non-final chunks
        (their logits are never sampled, so the vocabulary projection
        skips them entirely).

        Numerics: per-token cache quantization is exactly the
        single-sequence math (group-wise ops are row-independent), but
        the packed GEMMs may differ from the per-sequence ones by float
        rounding in the last ulp — BLAS kernels are not bitwise
        invariant to row count — so mixed-tick output is guaranteed
        token-identical (quantization grids absorb ulp noise), not
        logits-bitwise-identical, to the unpacked paths.  ``act_quant``
        is applied per segment, matching :meth:`decode_step_batch` for
        decode rows; chunked prefill applies it per chunk, which is
        exact for the per-token group-wise quantizers serving uses.
        """
        cfg = self.config
        p = self.params if weights is None else weights
        if not segments:
            return []
        spans = []                                   # packed [start, end) per segment
        start = 0
        for seg in segments:
            spans.append((start, start + seg.ids.size))
            start += seg.ids.size
        ids_packed = np.concatenate([seg.ids for seg in segments])[None, :]
        positions = np.concatenate(
            [seg.offset + np.arange(seg.ids.size, dtype=np.int64) for seg in segments]
        )
        x, _ = L.embedding_fwd(ids_packed, p["embed"])        # (1, T, d)
        if cfg.arch == "opt":
            x = x + p["pos_embed"][positions][None, :, :]

        decode_idx = [i for i, seg in enumerate(segments)
                      if seg.kind == MixedSegment.DECODE]
        decode_starts = np.asarray([spans[i][0] for i in decode_idx], dtype=np.int64)

        def q(name, val):
            # Per segment, like decode_step_batch's per-sequence rule:
            # batch-wide scales would couple sequences.
            if act_quant is None:
                return val
            return np.concatenate(
                [act_quant(name, val[:, s:e]) for s, e in spans], axis=1
            )

        for i in range(cfg.n_layers):
            pre = f"layers.{i}."
            h, _ = self._norm_fwd(x, p, pre + "norm1")
            h_in = q(pre + "attn.wq", h)
            qp, _ = L.linear_fwd(h_in, p[pre + "attn.wq"])
            kp, _ = L.linear_fwd(h_in, p[pre + "attn.wk"])
            vp, _ = L.linear_fwd(h_in, p[pre + "attn.wv"])
            qh = _split_heads(qp, cfg.n_heads)[0]             # (H, T, dh)
            kh = _split_heads(kp, cfg.n_heads)[0]
            vh = _split_heads(vp, cfg.n_heads)[0]
            if cfg.arch == "llama":
                qh = L.apply_rope_ragged(qh, self._cos, self._sin, positions)
                kh = L.apply_rope_ragged(kh, self._cos, self._sin, positions)
            # Cache writes: decode rows fuse one append_batch across the
            # tick (same as decode_step_batch), chunks extend per segment.
            with _NULL_CTX if trace is None else trace("append"):
                if decode_idx:
                    layer_caches = [segments[j].caches[i] for j in decode_idx]
                    type(layer_caches[0]).append_batch(
                        layer_caches,
                        kh[:, decode_starts, :].transpose(1, 0, 2),
                        vh[:, decode_starts, :].transpose(1, 0, 2),
                    )
                for seg, (s, e) in zip(segments, spans):
                    if seg.kind != MixedSegment.DECODE:
                        seg.caches[i].prefill_chunk(
                            kh[:, s:e, :], vh[:, s:e, :],
                            final=seg.kind == MixedSegment.CHUNK_FINAL,
                        )
            att_rows = []
            for seg, (s, e) in zip(segments, spans):
                cache = seg.caches[i]
                att_rows.append(
                    L.cached_attention_fwd(
                        qh[:, s:e, :], cache.keys(), cache.values(),
                        offset=seg.offset,
                    )
                )
            att = _merge_heads(np.concatenate(att_rows, axis=1)[None])  # (1, T, d)
            o, _ = L.linear_fwd(q(pre + "attn.wo", att), p[pre + "attn.wo"])
            x = x + o

            h2, _ = self._norm_fwd(x, p, pre + "norm2")
            if cfg.arch == "llama":
                h2q = q(pre + "ffn.wgate", h2)
                g, _ = L.linear_fwd(h2q, p[pre + "ffn.wgate"])
                u, _ = L.linear_fwd(h2q, p[pre + "ffn.wup"])
                act, _ = L.silu_fwd(g)
                ff, _ = L.linear_fwd(q(pre + "ffn.wdown", act * u), p[pre + "ffn.wdown"])
            else:
                h2q = q(pre + "ffn.w1", h2)
                a1, _ = L.linear_fwd(h2q, p[pre + "ffn.w1"])
                act, _ = L.relu_fwd(a1)
                ff, _ = L.linear_fwd(q(pre + "ffn.w2", act), p[pre + "ffn.w2"])
            x = x + ff

        xf, _ = self._norm_fwd(x, p, "norm_f")
        # Vocabulary projection only for rows something will sample.
        need = [j for j, seg in enumerate(segments) if seg.wants_logits]
        rows = xf[0, [spans[j][1] - 1 for j in need]]         # (n, d)
        logits = rows @ p["embed"].T
        out: list = [None] * len(segments)
        for r, j in enumerate(need):
            out[j] = logits[r]
        return out

    def _run_tokens(self, ids, caches, offset, weights=None, act_quant=None):
        cfg = self.config
        p = self.params if weights is None else weights
        t = ids.shape[1]
        x, _ = L.embedding_fwd(ids, p["embed"])
        if cfg.arch == "opt":
            x = x + p["pos_embed"][offset : offset + t]

        def q(name, val):
            return val if act_quant is None else act_quant(name, val)

        for i in range(cfg.n_layers):
            pre = f"layers.{i}."
            h, _ = self._norm_fwd(x, p, pre + "norm1")
            h_in = q(pre + "attn.wq", h)
            qp, _ = L.linear_fwd(h_in, p[pre + "attn.wq"])
            kp, _ = L.linear_fwd(h_in, p[pre + "attn.wk"])
            vp, _ = L.linear_fwd(h_in, p[pre + "attn.wv"])
            qh = _split_heads(qp, cfg.n_heads)[0]   # (H, t, dh)
            kh = _split_heads(kp, cfg.n_heads)[0]
            vh = _split_heads(vp, cfg.n_heads)[0]
            if cfg.arch == "llama":
                qh = L.apply_rope(qh, self._cos, self._sin, offset=offset)
                kh = L.apply_rope(kh, self._cos, self._sin, offset=offset)
            cache = caches[i]
            if offset == 0:
                cache.prefill(kh, vh)
            else:
                for j in range(t):
                    cache.append(kh[:, j, :], vh[:, j, :])
            att = L.cached_attention_fwd(qh, cache.keys(), cache.values(),
                                         offset=offset)      # (H, t, dh)
            att = _merge_heads(att[None])
            o, _ = L.linear_fwd(q(pre + "attn.wo", att), p[pre + "attn.wo"])
            x = x + o

            h2, _ = self._norm_fwd(x, p, pre + "norm2")
            if cfg.arch == "llama":
                h2q = q(pre + "ffn.wgate", h2)
                g, _ = L.linear_fwd(h2q, p[pre + "ffn.wgate"])
                u, _ = L.linear_fwd(h2q, p[pre + "ffn.wup"])
                act, _ = L.silu_fwd(g)
                ff, _ = L.linear_fwd(q(pre + "ffn.wdown", act * u), p[pre + "ffn.wdown"])
            else:
                h2q = q(pre + "ffn.w1", h2)
                a1, _ = L.linear_fwd(h2q, p[pre + "ffn.w1"])
                act, _ = L.relu_fwd(a1)
                ff, _ = L.linear_fwd(q(pre + "ffn.w2", act), p[pre + "ffn.w2"])
            x = x + ff

        xf, _ = self._norm_fwd(x, p, "norm_f")
        return xf @ p["embed"].T

    # ==================================================================
    # Training: loss + full gradients
    # ==================================================================
    def loss_and_grads(self, ids: np.ndarray, targets: np.ndarray):
        """Mean next-token NLL and gradients for every parameter."""
        cfg = self.config
        p = self.params
        grads = {k: np.zeros_like(v) for k, v in p.items()}
        tapes = []

        x, emb_cache = L.embedding_fwd(ids, p["embed"])
        if cfg.arch == "opt":
            x = x + p["pos_embed"][: ids.shape[1]]

        for i in range(cfg.n_layers):
            pre = f"layers.{i}."
            tape: dict = {}
            h, tape["n1"] = self._norm_fwd(x, p, pre + "norm1")
            qp, tape["wq"] = L.linear_fwd(h, p[pre + "attn.wq"])
            kp, tape["wk"] = L.linear_fwd(h, p[pre + "attn.wk"])
            vp, tape["wv"] = L.linear_fwd(h, p[pre + "attn.wv"])
            qh = _split_heads(qp, cfg.n_heads)
            kh = _split_heads(kp, cfg.n_heads)
            vh = _split_heads(vp, cfg.n_heads)
            if cfg.arch == "llama":
                qh, tape["rope_q"] = L.rope_fwd(qh, self._cos, self._sin)
                kh, tape["rope_k"] = L.rope_fwd(kh, self._cos, self._sin)
            att, tape["attn"] = L.causal_attention_fwd(qh, kh, vh)
            att_m = _merge_heads(att)
            o, tape["wo"] = L.linear_fwd(att_m, p[pre + "attn.wo"])
            x = x + o

            h2, tape["n2"] = self._norm_fwd(x, p, pre + "norm2")
            if cfg.arch == "llama":
                g, tape["wgate"] = L.linear_fwd(h2, p[pre + "ffn.wgate"])
                u, tape["wup"] = L.linear_fwd(h2, p[pre + "ffn.wup"])
                act, tape["silu"] = L.silu_fwd(g)
                gated = act * u
                tape["gate_mul"] = (act, u)
                ff, tape["wdown"] = L.linear_fwd(gated, p[pre + "ffn.wdown"])
            else:
                a1, tape["w1"] = L.linear_fwd(h2, p[pre + "ffn.w1"])
                act, tape["relu"] = L.relu_fwd(a1)
                ff, tape["w2"] = L.linear_fwd(act, p[pre + "ffn.w2"])
            x = x + ff
            tapes.append(tape)

        xf, nf_cache = self._norm_fwd(x, p, "norm_f")
        logits = xf @ p["embed"].T
        loss, ce_cache = L.cross_entropy_fwd(logits, targets)

        # ----------------------------- backward -----------------------
        dlogits = L.cross_entropy_bwd(ce_cache)
        dxf = dlogits @ p["embed"]
        grads["embed"] += dlogits.reshape(-1, dlogits.shape[-1]).T @ xf.reshape(
            -1, xf.shape[-1]
        )
        if cfg.arch == "llama":
            dx, dg = L.rmsnorm_bwd(dxf, nf_cache)
            grads["norm_f.g"] += dg
        else:
            dx, dg, db = L.layernorm_bwd(dxf, nf_cache)
            grads["norm_f.g"] += dg
            grads["norm_f.b"] += db

        for i in reversed(range(cfg.n_layers)):
            pre = f"layers.{i}."
            tape = tapes[i]
            # FFN branch
            if cfg.arch == "llama":
                dgated, dwdown = L.linear_bwd(dx, tape["wdown"])
                grads[pre + "ffn.wdown"] += dwdown
                act, u = tape["gate_mul"]
                dact = dgated * u
                du = dgated * act
                dg_ = L.silu_bwd(dact, tape["silu"])
                dh2a, dwgate = L.linear_bwd(dg_, tape["wgate"])
                dh2b, dwup = L.linear_bwd(du, tape["wup"])
                grads[pre + "ffn.wgate"] += dwgate
                grads[pre + "ffn.wup"] += dwup
                dh2 = dh2a + dh2b
                dxn, dgain = L.rmsnorm_bwd(dh2, tape["n2"])
                grads[pre + "norm2.g"] += dgain
            else:
                dact, dw2 = L.linear_bwd(dx, tape["w2"])
                grads[pre + "ffn.w2"] += dw2
                da1 = L.relu_bwd(dact, tape["relu"])
                dh2, dw1 = L.linear_bwd(da1, tape["w1"])
                grads[pre + "ffn.w1"] += dw1
                dxn, dgain, dbias = L.layernorm_bwd(dh2, tape["n2"])
                grads[pre + "norm2.g"] += dgain
                grads[pre + "norm2.b"] += dbias
            dx = dx + dxn

            # Attention branch
            datt_m, dwo = L.linear_bwd(dx, tape["wo"])
            grads[pre + "attn.wo"] += dwo
            b, t, _ = datt_m.shape
            datt = _split_heads(datt_m, cfg.n_heads)
            dqh, dkh, dvh = L.causal_attention_bwd(datt, tape["attn"])
            if cfg.arch == "llama":
                dqh = L.rope_bwd(dqh, tape["rope_q"])
                dkh = L.rope_bwd(dkh, tape["rope_k"])
            dqp = _merge_heads(dqh)
            dkp = _merge_heads(dkh)
            dvp = _merge_heads(dvh)
            dh_q, dwq = L.linear_bwd(dqp, tape["wq"])
            dh_k, dwk = L.linear_bwd(dkp, tape["wk"])
            dh_v, dwv = L.linear_bwd(dvp, tape["wv"])
            grads[pre + "attn.wq"] += dwq
            grads[pre + "attn.wk"] += dwk
            grads[pre + "attn.wv"] += dwv
            dh = dh_q + dh_k + dh_v
            if cfg.arch == "llama":
                dxn, dgain = L.rmsnorm_bwd(dh, tape["n1"])
                grads[pre + "norm1.g"] += dgain
            else:
                dxn, dgain, dbias = L.layernorm_bwd(dh, tape["n1"])
                grads[pre + "norm1.g"] += dgain
                grads[pre + "norm1.b"] += dbias
            dx = dx + dxn

        if cfg.arch == "opt":
            grads["pos_embed"][: ids.shape[1]] += dx.sum(axis=0)
        grads["embed"] += L.embedding_bwd(dx, emb_cache)
        return loss, grads
