"""Model zoo: the reproduction's LLaMA/OPT stand-in family.

Three tiny models cover both architectures and two sizes, mirroring the
columns of the paper's Tbl. II.  ``get_model`` trains on first use and
caches parameters under ``artifacts/`` so every bench sees identical
weights; training is deterministic given the seeds.

After training, function-preserving outlier channels are injected
(:mod:`repro.model.outliers`) so quantization sees LLM-like statistics;
``get_model(..., outliers=False)`` returns the pristine weights.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.model.corpus import HmmCorpus, InductionCorpus, MixedCorpus
from repro.model.outliers import inject_group_scale_diversity, inject_outliers
from repro.model.train import train_lm
from repro.model.transformer import ModelConfig, TransformerLM

__all__ = ["ZooEntry", "MODEL_ZOO", "get_model", "get_corpus", "default_artifacts_dir"]


@dataclass(frozen=True)
class ZooEntry:
    """Architecture plus training recipe for one zoo model."""

    name: str
    config: ModelConfig
    steps: int = 800
    batch_size: int = 8
    seq_len: int = 128
    lr: float = 3e-3
    outlier_scale: float = 16.0
    outlier_frac: float = 0.05
    diversity_sigma: float = 0.6


_VOCAB = 256

MODEL_ZOO: dict[str, ZooEntry] = {
    "tinyllama-s": ZooEntry(
        name="tinyllama-s",
        config=ModelConfig(
            vocab_size=_VOCAB, d_model=128, n_heads=4, n_layers=2, d_ff=256,
            max_seq=512, arch="llama", seed=11,
        ),
    ),
    "tinyllama-m": ZooEntry(
        name="tinyllama-m",
        config=ModelConfig(
            vocab_size=_VOCAB, d_model=160, n_heads=4, n_layers=3, d_ff=320,
            max_seq=512, arch="llama", seed=12,
        ),
        steps=500,
    ),
    "tinyopt-s": ZooEntry(
        name="tinyopt-s",
        config=ModelConfig(
            vocab_size=_VOCAB, d_model=128, n_heads=4, n_layers=2, d_ff=512,
            max_seq=512, arch="opt", seed=13,
        ),
    ),
    # A barely-trained configuration for fast unit tests.
    "unit-test": ZooEntry(
        name="unit-test",
        config=ModelConfig(
            vocab_size=_VOCAB, d_model=64, n_heads=2, n_layers=2, d_ff=128,
            max_seq=512, arch="llama", seed=14,
        ),
        steps=30,
        batch_size=4,
        seq_len=64,
    ),
}


def default_artifacts_dir() -> str:
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return env
    return os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "artifacts")


def get_corpus(vocab_size: int = _VOCAB) -> MixedCorpus:
    """The shared synthetic corpus (HMM language + induction mix)."""
    return MixedCorpus(
        hmm=HmmCorpus(vocab_size=vocab_size),
        induction=InductionCorpus(vocab_size=vocab_size),
    )


def get_model(
    name: str,
    artifacts_dir: str | None = None,
    retrain: bool = False,
    outliers: bool = True,
    verbose: bool = False,
) -> tuple[TransformerLM, MixedCorpus]:
    """Load (training + caching on first use) a zoo model."""
    if name not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; have {sorted(MODEL_ZOO)}")
    entry = MODEL_ZOO[name]
    corpus = get_corpus(entry.config.vocab_size)
    adir = artifacts_dir or default_artifacts_dir()
    os.makedirs(adir, exist_ok=True)
    path = os.path.join(adir, f"{name}.npz")

    model = TransformerLM(entry.config)
    if os.path.exists(path) and not retrain:
        data = np.load(path)
        model.params = {k: data[k] for k in data.files}
    else:
        batches = list(
            corpus.batches(entry.steps, entry.batch_size, entry.seq_len,
                           seed=entry.config.seed)
        )
        report = train_lm(model, batches, lr=entry.lr,
                          log_every=200 if verbose else 0)
        if verbose:
            print(f"{name}: final loss {report.smoothed_final():.4f}")
        np.savez(path, **model.params)

    if outliers:
        injected = inject_outliers(
            model.params,
            entry.config,
            scale=entry.outlier_scale,
            frac=entry.outlier_frac,
            seed=entry.config.seed,
        )
        injected = inject_group_scale_diversity(
            injected, entry.config, sigma=entry.diversity_sigma,
            seed=entry.config.seed + 100,
        )
        model = TransformerLM(entry.config, injected)
    return model, corpus
