"""Group-wise quantization framework: MANT plus every baseline method."""

from repro.quant.config import QuantConfig, KVCacheConfig, Granularity, WEIGHT_ONLY_FP16_ACT
from repro.quant.quantizer import GroupQuantizer, quantize_dequantize, qdq_with_config
from repro.quant.mant_framework import MantQuantizer, MantModelQuantizer, QuantizedWeight
from repro.quant.ant import AntQuantizer, select_ant_type, ANT_TYPE_SET
from repro.quant.olive import OliveQuantizer
from repro.quant.tender import TenderQuantizer
from repro.quant.clustering import PerGroupClusterQuantizer, kmeans_1d
from repro.quant.kvcache import (
    KVCache,
    FP16KVCache,
    IntKVCache,
    MantKVCache,
    make_kv_cache,
)
from repro.quant.calibration import RunningActStats, KVGroupSampler, CalibrationResult

__all__ = [
    "QuantConfig",
    "KVCacheConfig",
    "Granularity",
    "WEIGHT_ONLY_FP16_ACT",
    "GroupQuantizer",
    "quantize_dequantize",
    "qdq_with_config",
    "MantQuantizer",
    "MantModelQuantizer",
    "QuantizedWeight",
    "AntQuantizer",
    "select_ant_type",
    "ANT_TYPE_SET",
    "OliveQuantizer",
    "TenderQuantizer",
    "PerGroupClusterQuantizer",
    "kmeans_1d",
    "KVCache",
    "FP16KVCache",
    "IntKVCache",
    "MantKVCache",
    "make_kv_cache",
    "RunningActStats",
    "KVGroupSampler",
    "CalibrationResult",
]
