"""The ANT baseline (MICRO'22): adaptive selection among fixed types.

ANT picks, per quantization unit, the best of a small discrete set of
data types — INT (uniform), PoT (Laplace), flint (Gaussian) — by
quantization MSE.  Framework rules reproduced from the paper:

* Weights: type selected per unit (tensor / channel / group) offline.
* Activations: ANT has no real-time type selection, so under group
  quantization it picks ONE type per tensor (from calibration) and only
  the scaling factor is per group (Sec. VII-D).  This is exactly why
  group-wise ANT underperforms even plain INT at small group sizes
  (paper Tbl. V).
* 8-bit mode ("ANT*"): no adaptive selection, plain INT8.
"""

from __future__ import annotations

import numpy as np

from repro.core.groups import to_groups, from_groups
from repro.datatypes import flint4, pot4_with_zero
from repro.datatypes.base import GridDataType
from repro.datatypes.int_type import IntType
from repro.quant.config import Granularity

__all__ = ["AntQuantizer", "ANT_TYPE_SET", "select_ant_type"]


def _ant_types(bits: int) -> tuple[GridDataType, ...]:
    if bits == 4:
        return (IntType(4), flint4, pot4_with_zero)
    # ANT's adaptive benefit is a 4-bit story; 8-bit falls back to INT
    # (the paper's ANT* configuration).
    return (IntType(bits),)


ANT_TYPE_SET = _ant_types(4)


def select_ant_type(values: np.ndarray, bits: int = 4) -> GridDataType:
    """MSE-optimal member of the ANT type set for a block of values."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    best, best_err = None, np.inf
    for dt in _ant_types(bits):
        err = dt.mse(flat)
        if err < best_err:
            best, best_err = dt, err
    return best


class AntQuantizer:
    """ANT fake quantization at tensor/channel/group granularity.

    ``per_unit_type`` controls whether the data type adapts at the same
    granularity as the scale (True, ANT's weight path) or is fixed per
    tensor (False, ANT's activation path under group quantization).
    """

    def __init__(
        self,
        bits: int = 4,
        granularity: Granularity = Granularity.TENSOR,
        group_size: int = 64,
        per_unit_type: bool = True,
        fp16_scales: bool = True,
    ):
        self.bits = bits
        self.granularity = granularity
        self.group_size = group_size
        self.per_unit_type = per_unit_type
        self.fp16_scales = fp16_scales

    def _round_scale(self, scale):
        if self.fp16_scales:
            return np.asarray(scale).astype(np.float16).astype(np.float64)
        return scale

    # ------------------------------------------------------------------
    def _qdq_block(self, block: np.ndarray, dtype: GridDataType) -> np.ndarray:
        amax = float(np.max(np.abs(block))) if block.size else 0.0
        if amax <= 0:
            return np.zeros_like(block)
        scale = self._round_scale(amax / dtype.grid_max)
        return dtype.qdq(block, scale)

    def _qdq_grouped(self, groups: np.ndarray, dtype: GridDataType) -> np.ndarray:
        amax = np.max(np.abs(groups), axis=-1, keepdims=True)
        amax = np.where(amax <= 0, dtype.grid_max, amax)
        scale = self._round_scale(amax / dtype.grid_max)
        return dtype.qdq(groups, scale)

    # ------------------------------------------------------------------
    def qdq(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fake-quantize ``x`` with ANT's selection rules."""
        x = np.asarray(x, dtype=np.float64)
        if self.bits >= 8:
            # ANT* path: coarse INT8, group/channel scale only.
            from repro.quant.quantizer import GroupQuantizer

            return GroupQuantizer(
                IntType(self.bits), self.granularity, self.group_size,
                fp16_scales=self.fp16_scales,
            ).qdq(x, axis=axis)

        if self.granularity is Granularity.TENSOR:
            return self._qdq_block(x, select_ant_type(x, self.bits))

        if self.granularity is Granularity.CHANNEL:
            moved = np.moveaxis(x, axis, -1)
            flat = moved.reshape(-1, moved.shape[-1])
            out = np.empty_like(flat)
            for i, row in enumerate(flat):
                out[i] = self._qdq_block(row, select_ant_type(row, self.bits))
            return np.moveaxis(out.reshape(moved.shape), -1, axis)

        view = to_groups(x, self.group_size, axis=axis)
        groups = view.groups.reshape(-1, view.group_size)
        if not self.per_unit_type:
            # Activation path: one type for the whole tensor, scales per
            # group.
            dtype = select_ant_type(x, self.bits)
            out = self._qdq_grouped(groups, dtype)
            return from_groups(view, out.reshape(view.groups.shape))

        # Weight path: per-group type selection, vectorised by
        # evaluating each candidate on all groups and taking the argmin.
        candidates = _ant_types(self.bits)
        recons = np.empty((len(candidates),) + groups.shape)
        errs = np.empty((len(candidates), groups.shape[0]))
        for k, dt in enumerate(candidates):
            recons[k] = self._qdq_grouped(groups, dt)
            diff = recons[k] - groups
            errs[k] = np.mean(diff * diff, axis=-1)
        best = np.argmin(errs, axis=0)
        out = recons[best, np.arange(groups.shape[0])]
        return from_groups(view, out.reshape(view.groups.shape))

    def type_histogram(self, x: np.ndarray, axis: int = -1) -> dict[str, float]:
        """Fraction of groups selecting each ANT type (for analysis)."""
        x = np.asarray(x, dtype=np.float64)
        view = to_groups(x, self.group_size, axis=axis)
        groups = view.groups.reshape(-1, view.group_size)
        candidates = _ant_types(self.bits)
        errs = np.empty((len(candidates), groups.shape[0]))
        for k, dt in enumerate(candidates):
            diff = self._qdq_grouped(groups, dt) - groups
            errs[k] = np.mean(diff * diff, axis=-1)
        best = np.argmin(errs, axis=0)
        return {
            dt.name: float(np.mean(best == k)) for k, dt in enumerate(candidates)
        }
