"""Calibration statistic containers (paper Sec. V, Pile calibration set).

Model-agnostic running statistics; the model-side collection loop lives
in :mod:`repro.model.calibrate`.  Two statistics drive MANT:

* per-channel ``E[x²]`` of each linear layer's input — the diagonal
  surrogate in the weight MSE search (Eq. 6);
* sampled K/V groups — fit the variance→``a`` ranges (Sec. V-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.selection import VarianceSelector

__all__ = ["RunningActStats", "KVGroupSampler", "CalibrationResult"]


class RunningActStats:
    """Running mean of squared activations per channel."""

    def __init__(self, n_channels: int):
        self.n_channels = n_channels
        self._sum_sq = np.zeros(n_channels)
        self._count = 0

    def update(self, x: np.ndarray) -> None:
        """Accumulate a batch ``(..., n_channels)``."""
        x = np.asarray(x, dtype=np.float64)
        flat = x.reshape(-1, x.shape[-1])
        if flat.shape[-1] != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} channels, got {flat.shape[-1]}"
            )
        self._sum_sq += np.sum(flat * flat, axis=0)
        self._count += flat.shape[0]

    @property
    def mean_sq(self) -> np.ndarray:
        if self._count == 0:
            return np.ones(self.n_channels)
        return self._sum_sq / self._count


class KVGroupSampler:
    """Reservoir of K/V groups for fitting the variance selector."""

    def __init__(self, group_size: int = 64, capacity: int = 4096, seed: int = 0):
        self.group_size = group_size
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._samples: list[np.ndarray] = []
        self._seen = 0

    def update(self, tensor: np.ndarray, axis: int = -1) -> None:
        """Sample groups from one K or V tensor along ``axis``."""
        from repro.core.groups import to_groups

        x = np.asarray(tensor, dtype=np.float64)
        g = min(self.group_size, x.shape[axis])
        groups = to_groups(x, g, axis=axis).groups.reshape(-1, g)
        for row in groups:
            self._seen += 1
            if len(self._samples) < self.capacity:
                self._samples.append(row.copy())
            else:
                # Reservoir sampling keeps a uniform subsample.
                j = int(self._rng.integers(0, self._seen))
                if j < self.capacity:
                    self._samples[j] = row.copy()

    def groups(self) -> np.ndarray:
        if not self._samples:
            return np.empty((0, self.group_size))
        return np.stack(self._samples)

    def fit_selector(self, bits: int = 4) -> VarianceSelector:
        g = self.groups()
        selector = VarianceSelector(bits=bits, group_size=g.shape[1] if g.size else self.group_size)
        if g.shape[0] >= 16:
            selector.fit(g)
        return selector


@dataclass
class CalibrationResult:
    """Everything the MANT framework needs from a calibration pass."""

    act_sq_means: dict[str, np.ndarray] = field(default_factory=dict)
    kv_selector: VarianceSelector | None = None
    n_tokens: int = 0
