"""Per-group clustering quantization — the paper's "Ideal" baseline.

GOBO and Mokey quantize by clustering values and storing centroid
codebooks.  Adapted to group quantization (Sec. III-A), each group of 64
values gets its own K-means codebook with ``2^bits`` centroids: maximal
adaptivity, but the codebook costs ``2^bits × 8`` extra bits per group
(which is why the paper calls 4-bit clustering "effectively 6-bit").

The solver is a vectorised 1-D Lloyd's algorithm with quantile
initialisation, run simultaneously over all groups.  1-D K-means with
sorted data converges in a handful of iterations; quantile init makes it
deterministic, which tests rely on.
"""

from __future__ import annotations

import numpy as np

from repro.core.groups import to_groups, from_groups

__all__ = ["kmeans_1d", "PerGroupClusterQuantizer"]


def kmeans_1d(groups: np.ndarray, k: int, iters: int = 12) -> tuple[np.ndarray, np.ndarray]:
    """Batched 1-D Lloyd's algorithm.

    Parameters
    ----------
    groups:
        ``(n_groups, group_size)`` values.
    k:
        Centroids per group.
    iters:
        Lloyd iterations (1-D with quantile init converges fast).

    Returns
    -------
    centroids:
        ``(n_groups, k)`` sorted centroids.
    assignment:
        ``(n_groups, group_size)`` centroid index per value.
    """
    groups = np.asarray(groups, dtype=np.float64)
    n, g = groups.shape
    qs = np.linspace(0, 1, k)
    centroids = np.quantile(groups, qs, axis=1).T  # (n, k)

    for _ in range(iters):
        # Assign by nearest boundary: boundaries are centroid midpoints.
        bounds = 0.5 * (centroids[:, 1:] + centroids[:, :-1])  # (n, k-1)
        idx = np.sum(groups[:, :, None] > bounds[:, None, :], axis=-1)  # (n, g)
        # Update: mean of members; empty clusters keep their centroid.
        one_hot = idx[:, :, None] == np.arange(k)[None, None, :]
        counts = one_hot.sum(axis=1)
        sums = np.einsum("ng,ngk->nk", groups, one_hot)
        new_centroids = np.where(counts > 0, sums / np.maximum(counts, 1), centroids)
        new_centroids = np.sort(new_centroids, axis=1)
        if np.allclose(new_centroids, centroids, rtol=0, atol=1e-12):
            centroids = new_centroids
            break
        centroids = new_centroids

    bounds = 0.5 * (centroids[:, 1:] + centroids[:, :-1])
    idx = np.sum(groups[:, :, None] > bounds[:, None, :], axis=-1)
    return centroids, idx


class PerGroupClusterQuantizer:
    """The accuracy-optimal (and storage-expensive) adaptive method.

    ``chunk`` bounds the number of groups clustered per batch to cap the
    ``n × g × k`` intermediate.
    """

    def __init__(self, bits: int = 4, group_size: int = 64, iters: int = 12,
                 chunk: int = 8192):
        self.bits = bits
        self.k = 2**bits
        self.group_size = group_size
        self.iters = iters
        self.chunk = chunk

    def qdq(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Replace every value with its group's nearest centroid."""
        x = np.asarray(x, dtype=np.float64)
        view = to_groups(x, self.group_size, axis=axis)
        flat = view.groups.reshape(-1, view.group_size)
        out = np.empty_like(flat)
        for start in range(0, flat.shape[0], self.chunk):
            block = flat[start : start + self.chunk]
            centroids, idx = kmeans_1d(block, self.k, self.iters)
            out[start : start + self.chunk] = np.take_along_axis(
                centroids, idx, axis=1
            )
        return from_groups(view, out.reshape(view.groups.shape))

    def codebook_bits_per_element(self) -> float:
        """Metadata overhead: k centroids × 8 bits, amortised (Sec. III-B)."""
        return (self.k * 8) / self.group_size
