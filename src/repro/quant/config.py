"""Quantization configuration shared across methods.

A :class:`QuantConfig` names *how* a tensor is quantized — bit width,
granularity, group size and method — without binding to a specific
tensor.  The per-method quantizers consume it, and the hardware
simulator reads the same object to derive storage formats, so accuracy
and performance experiments cannot drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.metadata import StorageFormat, A_BITS, SCALE_BITS

__all__ = ["Granularity", "QuantConfig", "KVCacheConfig", "WEIGHT_ONLY_FP16_ACT"]


class Granularity(enum.Enum):
    """Scope of one scaling factor (and data-type choice)."""

    TENSOR = "tensor"
    CHANNEL = "channel"
    GROUP = "group"


@dataclass(frozen=True)
class QuantConfig:
    """Configuration of one quantized tensor role (weight/act/KV).

    ``method`` selects the algorithm: ``"int"``, ``"mant"``, ``"ant"``,
    ``"olive"``, ``"tender"``, ``"cluster"`` (per-group k-means ideal),
    ``"nf"``, ``"fp"``, ``"mxfp"`` or ``"fp16"`` (no quantization).
    """

    bits: int = 4
    granularity: Granularity = Granularity.GROUP
    group_size: int = 64
    method: str = "mant"
    symmetric: bool = True

    def __post_init__(self):
        if self.bits not in (2, 3, 4, 8, 16):
            raise ValueError(f"unsupported bit width {self.bits}")
        if self.granularity is Granularity.GROUP and self.group_size < 1:
            raise ValueError("group quantization needs group_size >= 1")

    @property
    def is_fp16(self) -> bool:
        return self.method == "fp16" or self.bits == 16

    def storage_format(self) -> StorageFormat:
        """Bit layout this config implies (for the memory model)."""
        if self.is_fp16:
            return StorageFormat("fp16", element_bits=16)
        coeff = A_BITS if self.method in ("mant", "ant") else 0
        if self.method == "cluster":
            # Per-group codebook: 2^bits centroids at 8 bits each
            # (Sec. III-B: "a 16-entry codebook with 8 bits per entry
            # requires 128 bits per group").
            coeff = (2**self.bits) * 8
        gsize = self.group_size if self.granularity is Granularity.GROUP else 0
        scale_bits = 8 if self.method == "mxfp" else SCALE_BITS
        return StorageFormat(
            f"{self.method}{self.bits}-g{gsize}",
            element_bits=self.bits,
            group_size=gsize,
            scale_bits=scale_bits,
            coeff_bits=coeff,
        )

    def bits_per_element(self) -> float:
        return self.storage_format().bits_per_element()


@dataclass(frozen=True)
class KVCacheConfig:
    """KV-cache quantization: method + the real-time machinery knobs.

    ``window`` is the V-cache process window (Sec. V-C two-phase
    scheme); the paper sets it equal to the group size.
    """

    key: QuantConfig = field(default_factory=lambda: QuantConfig(bits=4, method="mant"))
    value: QuantConfig = field(default_factory=lambda: QuantConfig(bits=4, method="mant"))
    window: int = 64

    @property
    def is_fp16(self) -> bool:
        return self.key.is_fp16 and self.value.is_fp16


WEIGHT_ONLY_FP16_ACT = QuantConfig(bits=16, method="fp16")
