"""Real-time KV-cache quantization (paper Sec. V-C, Fig. 8).

The K and V caches are quantized along their *inner* (matrix-product)
dimensions so scaling factors can be pulled out of the accumulation:

* **K cache — spatial.**  QKᵀ contracts over ``d_head``, and a decode
  step produces a complete K vector per head, so each new vector is
  quantized to 4-bit MANT immediately, groups along ``d_head``.
* **V cache — temporal.**  softmax(·)·V contracts over the sequence, so
  a V group spans ``window`` *decode iterations* of one channel.  The
  two-phase scheme stages incoming vectors in INT8 (channel scales fixed
  at prefill), accumulates Σv, Σv² and max per channel streaming, and
  re-quantizes the staged window to 4-bit MANT once full — picking ``a``
  from the accumulated variance (Eq. 7).

All caches here are *fake-quantized*: they store dequantized float
values of exactly the precision the hardware would see, which is what
accuracy experiments need.  The cycle-level behaviour of the same scheme
is modelled in :mod:`repro.hardware.rqu`.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import MantCodec, INT_A
from repro.core.groups import to_groups, from_groups
from repro.core.selection import VarianceSelector
from repro.datatypes.int_type import IntType
from repro.quant.config import KVCacheConfig, QuantConfig

__all__ = [
    "KVCache",
    "FP16KVCache",
    "IntKVCache",
    "MantKVCache",
    "make_kv_cache",
]


class KVCache:
    """Interface the attention layer drives.

    Shapes: ``prefill`` takes ``(n_heads, seq, d_head)``; ``append``
    takes one token's ``(n_heads, d_head)``.  ``keys()``/``values()``
    return the effective (quantization-degraded) cache contents.
    """

    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        raise NotImplementedError

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        raise NotImplementedError

    def keys(self) -> np.ndarray:
        raise NotImplementedError

    def values(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def seq_len(self) -> int:
        raise NotImplementedError


class FP16KVCache(KVCache):
    """No quantization — the baselines' 16-bit attention path."""

    def __init__(self):
        self._k: list[np.ndarray] = []
        self._v: list[np.ndarray] = []

    def prefill(self, k, v):
        self._k = [np.asarray(k, dtype=np.float64)]
        self._v = [np.asarray(v, dtype=np.float64)]

    def append(self, k_t, v_t):
        self._k.append(np.asarray(k_t, dtype=np.float64)[:, None, :])
        self._v.append(np.asarray(v_t, dtype=np.float64)[:, None, :])

    def keys(self):
        return np.concatenate(self._k, axis=1) if self._k else np.empty((0, 0, 0))

    def values(self):
        return np.concatenate(self._v, axis=1) if self._v else np.empty((0, 0, 0))

    @property
    def seq_len(self):
        return sum(x.shape[1] for x in self._k)


def _int_qdq_lastaxis(x: np.ndarray, bits: int, group_size: int) -> np.ndarray:
    """Group-wise symmetric INT fake-quant along the last axis."""
    itype = IntType(bits)
    view = to_groups(x, group_size, axis=-1)
    amax = np.max(np.abs(view.groups), axis=-1, keepdims=True)
    amax = np.where(amax <= 0, itype.qmax, amax)
    scale = (amax / itype.qmax).astype(np.float16).astype(np.float64)
    q = itype.round_clip(view.groups / scale)
    return from_groups(view, q * scale)


class IntKVCache(KVCache):
    """Baseline INT-quantized cache: per-token groups along ``d_head``.

    The straightforward real-time scheme an INT accelerator would use —
    no temporal windows, no type adaptation.  Used for Tbl. III's
    "INT4" row.
    """

    def __init__(self, bits: int = 4, group_size: int = 64):
        self.bits = bits
        self.group_size = group_size
        self._k: list[np.ndarray] = []
        self._v: list[np.ndarray] = []

    def _q(self, x: np.ndarray) -> np.ndarray:
        g = min(self.group_size, x.shape[-1])
        return _int_qdq_lastaxis(x, self.bits, g)

    def prefill(self, k, v):
        self._k = [self._q(np.asarray(k, dtype=np.float64))]
        self._v = [self._q(np.asarray(v, dtype=np.float64))]

    def append(self, k_t, v_t):
        self._k.append(self._q(np.asarray(k_t, dtype=np.float64))[:, None, :])
        self._v.append(self._q(np.asarray(v_t, dtype=np.float64))[:, None, :])

    def keys(self):
        return np.concatenate(self._k, axis=1)

    def values(self):
        return np.concatenate(self._v, axis=1)

    @property
    def seq_len(self):
        return sum(x.shape[1] for x in self._k)


class MantKVCache(KVCache):
    """MANT real-time KV cache: spatial K + two-phase temporal V.

    Parameters
    ----------
    selector:
        Fitted :class:`VarianceSelector` (falls back to its theoretical
        ranges when unfitted).
    bits, group_size:
        MANT code width and group length (4 / 64 in the paper).
    window:
        V-cache process window; the paper sets it to the group size.
    """

    def __init__(
        self,
        selector: VarianceSelector | None = None,
        bits: int = 4,
        group_size: int = 64,
        window: int | None = None,
        staging_bits: int = 8,
    ):
        self.bits = bits
        self.group_size = group_size
        self.window = window or group_size
        self.staging_bits = staging_bits
        self.selector = selector or VarianceSelector(bits=bits, group_size=group_size)
        self._codec = MantCodec(bits=bits, group_size=group_size)
        # K state: list of fake-quantized chunks (heads, t, d_head).
        self._k: list[np.ndarray] = []
        # V state: finalized MANT windows + INT8 staging.
        self._v_final: list[np.ndarray] = []
        self._v_staging: list[np.ndarray] = []   # each (heads, d_head)
        # Streaming accumulators over the current window, per channel.
        self._acc_sum: np.ndarray | None = None      # (heads, d_head)
        self._acc_sqsum: np.ndarray | None = None
        self._acc_max: np.ndarray | None = None
        # Channel-wise INT8 staging scales, fixed at prefill (Fig. 8).
        self._stage_scale: np.ndarray | None = None  # (heads, d_head)
        self._int8 = IntType(staging_bits)

    # ------------------------------------------------------------------
    # Shared: variance-selected MANT fake-quant along the last axis
    # ------------------------------------------------------------------
    def _mant_qdq_lastaxis(self, x: np.ndarray) -> np.ndarray:
        g = min(self.group_size, x.shape[-1])
        codec = self._codec if g == self.group_size else MantCodec(self.bits, g)
        flat = x.reshape(-1, x.shape[-1])
        a = self.selector.select_batch(to_groups(flat, g, axis=-1).groups)
        return codec.qdq(flat, a).reshape(x.shape)

    # ------------------------------------------------------------------
    # K cache — spatial quantization
    # ------------------------------------------------------------------
    def _quantize_k(self, k: np.ndarray) -> np.ndarray:
        return self._mant_qdq_lastaxis(k)

    # ------------------------------------------------------------------
    # V cache — temporal two-phase quantization
    # ------------------------------------------------------------------
    def _reset_window(self, heads: int, d_head: int) -> None:
        self._acc_sum = np.zeros((heads, d_head))
        self._acc_sqsum = np.zeros((heads, d_head))
        self._acc_max = np.zeros((heads, d_head))

    def _finalize_window(self) -> None:
        """Phase 2 of Fig. 8: staged INT8 window → 4-bit MANT."""
        staged = np.stack(self._v_staging, axis=1)   # (heads, window, d_head)
        heads, t, d_head = staged.shape
        # Group = one channel across the window (the V inner dimension).
        per_channel = np.moveaxis(staged, 1, -1)     # (heads, d_head, t)
        n = float(t)
        mean = self._acc_sum / n
        var = self._acc_sqsum / n - mean * mean
        amax = np.where(self._acc_max <= 0, 1.0, self._acc_max)
        norm_var = np.clip(var, 0.0, None) / (amax * amax)
        a_sel = np.asarray(self.selector._sorted_a)[
            np.searchsorted(self.selector._thresholds, norm_var)
        ]                                             # (heads, d_head)
        codec = self._codec if t == self.group_size else MantCodec(self.bits, t)
        flat = per_channel.reshape(-1, t)
        out = codec.qdq(flat, a_sel.reshape(-1, 1))
        final = np.moveaxis(out.reshape(heads, d_head, t), -1, 1)
        self._v_final.append(final)
        self._v_staging = []
        self._reset_window(heads, d_head)

    # ------------------------------------------------------------------
    def prefill(self, k, v):
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        heads, seq, d_head = v.shape
        self._k = [self._quantize_k(k)]

        # Channel scales for the decode-stage INT8 staging (Fig. 8).
        ch_max = np.max(np.abs(v), axis=1)            # (heads, d_head)
        ch_max = np.where(ch_max <= 0, 1.0, ch_max)
        self._stage_scale = (ch_max / self._int8.qmax).astype(np.float16).astype(np.float64)

        # Prefill V: full windows quantize straight to MANT (both inner
        # dimension data are available), remainder enters staging.
        full = (seq // self.window) * self.window
        self._v_final = []
        self._v_staging = []
        self._reset_window(heads, d_head)
        if full:
            body = v[:, :full, :]
            windows = body.reshape(heads, full // self.window, self.window, d_head)
            per_channel = np.moveaxis(windows, 2, -1)  # (heads, W, d_head, window)
            flat = per_channel.reshape(-1, self.window)
            a = self.selector.select_batch(flat)
            codec = (
                self._codec
                if self.window == self.group_size
                else MantCodec(self.bits, self.window)
            )
            out = codec.qdq(flat, a[:, None])
            body_q = np.moveaxis(
                out.reshape(heads, full // self.window, d_head, self.window), -1, 2
            ).reshape(heads, full, d_head)
            self._v_final.append(body_q)
        for t in range(full, seq):
            self._stage_append(v[:, t, :])

    def _stage_append(self, v_t: np.ndarray) -> None:
        q = self._int8.round_clip(v_t / self._stage_scale)
        self._v_staging.append(q * self._stage_scale)
        self._acc_sum += v_t
        self._acc_sqsum += v_t * v_t
        self._acc_max = np.maximum(self._acc_max, np.abs(v_t))
        if len(self._v_staging) == self.window:
            self._finalize_window()

    def append(self, k_t, v_t):
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        if self._stage_scale is None:
            # Decode without prefill: bootstrap scales from this vector.
            heads, d_head = v_t.shape
            ch_max = np.where(np.abs(v_t) <= 0, 1.0, np.abs(v_t))
            self._stage_scale = ch_max / self._int8.qmax
            self._reset_window(heads, d_head)
        self._k.append(self._quantize_k(k_t)[:, None, :])
        self._stage_append(v_t)

    # ------------------------------------------------------------------
    def keys(self):
        return np.concatenate(self._k, axis=1)

    def values(self):
        parts = list(self._v_final)
        if self._v_staging:
            parts.append(np.stack(self._v_staging, axis=1))
        return np.concatenate(parts, axis=1)

    @property
    def seq_len(self):
        n = sum(x.shape[1] for x in self._k)
        return n

    @property
    def staging_fill(self) -> int:
        """Tokens currently held at INT8 (for tests/analysis)."""
        return len(self._v_staging)


def make_kv_cache(config: KVCacheConfig, selector: VarianceSelector | None = None) -> KVCache:
    """Instantiate the cache implementation a config describes."""
    if config.is_fp16:
        return FP16KVCache()
    if config.key.method == "mant":
        return MantKVCache(
            selector=selector,
            bits=config.key.bits,
            group_size=config.key.group_size,
            window=config.window,
        )
    if config.key.method == "int":
        return IntKVCache(bits=config.key.bits, group_size=config.key.group_size)
    raise ValueError(f"no KV cache implementation for method {config.key.method!r}")
