"""Real-time KV-cache quantization (paper Sec. V-C, Fig. 8).

The K and V caches are quantized along their *inner* (matrix-product)
dimensions so scaling factors can be pulled out of the accumulation:

* **K cache — spatial.**  QKᵀ contracts over ``d_head``, and a decode
  step produces a complete K vector per head, so each new vector is
  quantized to 4-bit MANT immediately, groups along ``d_head``.
* **V cache — temporal.**  softmax(·)·V contracts over the sequence, so
  a V group spans ``window`` *decode iterations* of one channel.  The
  two-phase scheme stages incoming vectors in INT8 (channel scales fixed
  at prefill), accumulates Σv, Σv² and max per channel streaming, and
  re-quantizes the staged window to 4-bit MANT once full — picking ``a``
  from the accumulated variance (Eq. 7).

All caches here are *fake-quantized*: they store dequantized float
values of exactly the precision the hardware would see, which is what
accuracy experiments need.  The cycle-level behaviour of the same scheme
is modelled in :mod:`repro.hardware.rqu`.

Storage is a preallocated ``(heads, capacity, d_head)`` buffer per
tensor with amortized doubling (Anda-style grouped layout): appends are
O(1) amortized and ``keys()``/``values()`` return zero-copy views, so a
T-token generation costs O(T) cache work instead of the O(T²) a
concatenate-per-read layout pays.  Returned views are *read-only*,
alias the cache's storage and are only valid until the next ``append``
— consume them (or copy) before mutating the cache, which is exactly
how the attention loop uses them.

For multi-tenant serving, :class:`KVCacheArena` pools that storage:
per-sequence, per-layer caches are carved out of shared
``(slots, heads, capacity, d_head)`` slabs (one K and one V slab per
layer), and a sequence's slot is recycled into the free list when its
request completes — so ``S`` concurrent sequences share ``2 ×
n_layers`` allocations, and a recycled slot inherits the capacity its
predecessors already grew.  Arena-backed caches behave identically to
standalone ones; views are valid until the next append on *any* slot
of the same arena (a growth reallocates the shared slab).

The same ``bind_buffer_factory`` seam carries the *paged* backend
(:mod:`repro.serve.paging`): a :class:`TokenBuffer`-compatible facade
over fixed-size ref-counted pages of a block pool, with hash-based
prompt-prefix sharing and copy-on-write.  Every cache class here runs
unchanged over either storage — the quantization math never sees the
layout, which is what makes paged caches bit-identical to flat ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.codec import MantCodec, INT_A
from repro.core.groups import to_groups, from_groups
from repro.core.selection import VarianceSelector
from repro.datatypes.int_type import IntType
from repro.quant.config import KVCacheConfig, QuantConfig

__all__ = [
    "KVCache",
    "TokenBuffer",
    "SlabTokenBuffer",
    "FP16KVCache",
    "IntKVCache",
    "MantKVCache",
    "make_kv_cache",
    "validate_chunk_compat",
    "KVCacheArena",
    "CacheLease",
]

_EMPTY = np.empty((0, 0, 0))


def _promote_token_block(block: np.ndarray, heads: int, d_head: int) -> np.ndarray:
    """Normalize an append block to ``(heads, t, d_head)``, validating shape.

    The single place the token-storage geometry contract lives, shared
    by :class:`TokenBuffer` and the arena slabs so the standalone and
    pooled paths cannot drift apart.
    """
    if block.ndim == 2:
        block = block[:, None, :]
    if block.shape[0] != heads or block.shape[-1] != d_head:
        raise ValueError(
            f"token block (n_heads, d_head)=({block.shape[0]}, "
            f"{block.shape[-1]}) does not match this buffer's "
            f"({heads}, {d_head})"
        )
    return block


class TokenBuffer:
    """Preallocated ``(heads, capacity, d_head)`` token storage.

    Capacity doubles when exhausted (amortized O(1) appends) and
    :meth:`view` / :meth:`tail` return zero-copy slices of the live
    region, which is what makes per-decode-step cache reads O(1).
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, heads: int, d_head: int, capacity: int = 16):
        self._buf = np.empty((heads, max(1, capacity), d_head))
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def heads(self) -> int:
        return self._buf.shape[0]

    @property
    def d_head(self) -> int:
        return self._buf.shape[2]

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        cap = self._buf.shape[1]
        if need <= cap:
            return
        heads, _, d_head = self._buf.shape
        grown = np.empty((heads, max(need, 2 * cap), d_head))
        grown[:, : self._len] = self._buf[:, : self._len]
        self._buf = grown

    def append(self, block: np.ndarray) -> None:
        """Append ``(heads, d_head)`` or ``(heads, t, d_head)`` tokens."""
        block = _promote_token_block(block, self.heads, self.d_head)
        t = block.shape[1]
        self._reserve(t)
        self._buf[:, self._len : self._len + t] = block
        self._len += t

    def view(self) -> np.ndarray:
        """Zero-copy ``(heads, len, d_head)`` view of all live tokens.

        Read-only: the seed returned freshly concatenated arrays, so
        callers mutating the result in place were harmless; a writable
        view here would let them silently corrupt the cache history.
        """
        v = self._buf[:, : self._len]
        v.flags.writeable = False
        return v

    def tail(self, n: int) -> np.ndarray:
        """Zero-copy writable view of the last ``n`` tokens."""
        if n > self._len:
            raise ValueError(f"tail({n}) exceeds buffer length {self._len}")
        return self._buf[:, self._len - n : self._len]


class KVCache:
    """Interface the attention layer drives.

    Shapes: ``prefill`` takes ``(n_heads, seq, d_head)``; ``append``
    takes one token's ``(n_heads, d_head)``.  ``keys()``/``values()``
    return the effective (quantization-degraded) cache contents as
    zero-copy views valid until the next mutation.
    """

    def prefill(self, k: np.ndarray, v: np.ndarray) -> None:
        raise NotImplementedError

    def prefill_chunk(self, k: np.ndarray, v: np.ndarray, final: bool = False) -> None:
        """Extend a prompt prefill by one ``(n_heads, t, d_head)`` chunk.

        Feeding a prompt through successive ``prefill_chunk`` calls
        (``final=True`` on the last) must leave the cache *bit-identical*
        to one :meth:`prefill` of the concatenation — the invariant the
        chunked-prefill serving pipeline rests on.  Non-final chunks of
        caches with temporal quantization state (the MANT V window) must
        be a multiple of that window so no group straddles a chunk
        boundary (:func:`validate_chunk_compat`); the final chunk may be
        ragged, its remainder entering staging exactly as in
        :meth:`prefill`.
        """
        raise NotImplementedError

    def append(self, k_t: np.ndarray, v_t: np.ndarray) -> None:
        raise NotImplementedError

    @classmethod
    def append_batch(cls, caches: list, k_batch: np.ndarray, v_batch: np.ndarray) -> None:
        """Append one token to each of ``caches`` (``k/v_batch`` are
        ``(B, n_heads, d_head)``, row ``b`` for cache ``b``).

        The default is the per-cache loop; quantized subclasses fuse the
        group-wise quantization math across the batch — bit-identical
        (groups are row-independent) but one vectorized call instead of
        ``B``, which is what makes batched decode throughput scale for
        quantized caches.
        """
        for cache, k_t, v_t in zip(caches, k_batch, v_batch):
            cache.append(k_t, v_t)

    def keys(self) -> np.ndarray:
        raise NotImplementedError

    def values(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def seq_len(self) -> int:
        raise NotImplementedError


class _BufferedKVCache(KVCache):
    """Shared buffer plumbing: subclasses only define the quantizers."""

    def __init__(self):
        self._k: TokenBuffer | None = None
        self._v: TokenBuffer | None = None
        self._buffer_factory = None

    def bind_buffer_factory(self, factory) -> None:
        """Route buffer allocation through a pool (see :class:`KVCacheArena`).

        ``factory(role, heads, d_head, capacity)`` must return a
        :class:`TokenBuffer`-compatible object for ``role`` in
        ``("k", "v")``.  Must be bound before the cache holds data.
        """
        if self._k is not None:
            raise RuntimeError("cannot rebind buffers on a cache already holding data")
        self._buffer_factory = factory

    def _reset_buffers(self, heads: int, d_head: int, capacity: int) -> None:
        if self._buffer_factory is None:
            self._k = TokenBuffer(heads, d_head, capacity)
            self._v = TokenBuffer(heads, d_head, capacity)
        else:
            self._k = self._buffer_factory("k", heads, d_head, capacity)
            self._v = self._buffer_factory("v", heads, d_head, capacity)

    def _validate_token(self, name: str, arr: np.ndarray) -> None:
        """Reject appends whose head geometry drifts from the cache's.

        Without this, a ``(n_heads, d_head)`` mismatch against the
        first append surfaces later as a cryptic broadcast error deep
        inside the buffer or the staging quantizer.
        """
        if arr.ndim != 2:
            raise ValueError(
                f"{name} must be one token shaped (n_heads, d_head), "
                f"got {arr.ndim}-D shape {arr.shape}"
            )
        if self._k is not None and arr.shape != (self._k.heads, self._k.d_head):
            raise ValueError(
                f"{name} shape {arr.shape} does not match this cache's "
                f"established (n_heads, d_head)=({self._k.heads}, {self._k.d_head})"
            )

    def keys(self) -> np.ndarray:
        return self._k.view() if self._k is not None else _EMPTY

    def values(self) -> np.ndarray:
        return self._v.view() if self._v is not None else _EMPTY

    @property
    def seq_len(self) -> int:
        return len(self._k) if self._k is not None else 0


class FP16KVCache(_BufferedKVCache):
    """No quantization — the baselines' 16-bit attention path."""

    def prefill(self, k, v):
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        heads, seq, d_head = k.shape
        self._reset_buffers(heads, d_head, seq)
        self._k.append(k)
        self._v.append(v)

    def prefill_chunk(self, k, v, final=False):
        # Unquantized storage is trivially chunk-invariant: the first
        # chunk is a plain prefill, later chunks extend.
        if self._k is None:
            self.prefill(k, v)
            return
        self._k.append(np.asarray(k, dtype=np.float64))
        self._v.append(np.asarray(v, dtype=np.float64))

    def append(self, k_t, v_t):
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        self._validate_token("k_t", k_t)
        self._validate_token("v_t", v_t)
        if self._k is None:
            self._reset_buffers(*k_t.shape, capacity=16)
        self._k.append(k_t)
        self._v.append(v_t)


def _int_qdq_lastaxis(x: np.ndarray, bits: int, group_size: int) -> np.ndarray:
    """Group-wise symmetric INT fake-quant along the last axis."""
    itype = IntType(bits)
    view = to_groups(x, group_size, axis=-1)
    amax = np.max(np.abs(view.groups), axis=-1, keepdims=True)
    amax = np.where(amax <= 0, itype.qmax, amax)
    scale = (amax / itype.qmax).astype(np.float16).astype(np.float64)
    q = itype.round_clip(view.groups / scale)
    return from_groups(view, q * scale)


class IntKVCache(_BufferedKVCache):
    """Baseline INT-quantized cache: per-token groups along ``d_head``.

    The straightforward real-time scheme an INT accelerator would use —
    no temporal windows, no type adaptation.  Used for Tbl. III's
    "INT4" row.
    """

    def __init__(self, bits: int = 4, group_size: int = 64):
        super().__init__()
        self.bits = bits
        self.group_size = group_size

    def _q(self, x: np.ndarray) -> np.ndarray:
        g = min(self.group_size, x.shape[-1])
        return _int_qdq_lastaxis(x, self.bits, g)

    def prefill(self, k, v):
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        heads, seq, d_head = k.shape
        self._reset_buffers(heads, d_head, seq)
        self._k.append(self._q(k))
        self._v.append(self._q(v))

    def prefill_chunk(self, k, v, final=False):
        # Group-wise INT quantization is per token (groups along
        # d_head), so chunk composition cannot change any group: the
        # first chunk is a plain prefill, later chunks extend.
        if self._k is None:
            self.prefill(k, v)
            return
        self._k.append(self._q(np.asarray(k, dtype=np.float64)))
        self._v.append(self._q(np.asarray(v, dtype=np.float64)))

    def append(self, k_t, v_t):
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        self._validate_token("k_t", k_t)
        self._validate_token("v_t", v_t)
        if self._k is None:
            self._reset_buffers(*k_t.shape, capacity=16)
        self._k.append(self._q(k_t))
        self._v.append(self._q(v_t))

    @classmethod
    def append_batch(cls, caches, k_batch, v_batch):
        """Fused batch append: one group-wise INT quantization for all rows."""
        k_batch = np.asarray(k_batch, dtype=np.float64)
        v_batch = np.asarray(v_batch, dtype=np.float64)
        first = caches[0]
        if not all(
            type(c) is cls and c.bits == first.bits
            and c.group_size == first.group_size for c in caches
        ):
            super().append_batch(caches, k_batch, v_batch)
            return
        for c, k_t, v_t in zip(caches, k_batch, v_batch):
            c._validate_token("k_t", k_t)
            c._validate_token("v_t", v_t)
        kq = first._q(k_batch)          # (B, heads, d_head), rows independent
        vq = first._q(v_batch)
        for b, c in enumerate(caches):
            if c._k is None:
                c._reset_buffers(*k_batch[b].shape, capacity=16)
            c._k.append(kq[b])
            c._v.append(vq[b])


class MantKVCache(_BufferedKVCache):
    """MANT real-time KV cache: spatial K + two-phase temporal V.

    K rows and V windows live in :class:`TokenBuffer` storage.  The V
    buffer holds the finalized 4-bit MANT prefix in ``[0, _v_final)``
    and the INT8-staged suffix behind it; closing a window re-quantizes
    the staged region *in place*, so ``values()`` is always one
    zero-copy view regardless of staging state.

    Parameters
    ----------
    selector:
        Fitted :class:`VarianceSelector` (falls back to its theoretical
        ranges when unfitted).
    bits, group_size:
        MANT code width and group length (4 / 64 in the paper).
    window:
        V-cache process window; the paper sets it to the group size.
    """

    def __init__(
        self,
        selector: VarianceSelector | None = None,
        bits: int = 4,
        group_size: int = 64,
        window: int | None = None,
        staging_bits: int = 8,
    ):
        super().__init__()
        self.bits = bits
        self.group_size = group_size
        self.window = window or group_size
        self.staging_bits = staging_bits
        self.selector = selector or VarianceSelector(bits=bits, group_size=group_size)
        self._codec = MantCodec(bits=bits, group_size=group_size)
        self._v_final = 0  # tokens of the V buffer already at 4-bit MANT
        # Streaming accumulators over the current window, per channel.
        self._acc_sum: np.ndarray | None = None      # (heads, d_head)
        self._acc_sqsum: np.ndarray | None = None
        self._acc_max: np.ndarray | None = None
        # Channel-wise INT8 staging scales, fixed at prefill (Fig. 8).
        self._stage_scale: np.ndarray | None = None  # (heads, d_head)
        self._int8 = IntType(staging_bits)
        # Channel maxima accumulated across prefill chunks; non-None
        # exactly while a chunked prefill is in flight.
        self._chunk_ch_max: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Shared: variance-selected MANT fake-quant along the last axis
    # ------------------------------------------------------------------
    def _codec_for(self, g: int) -> MantCodec:
        return self._codec if g == self.group_size else MantCodec(self.bits, g)

    def _mant_qdq_lastaxis(self, x: np.ndarray) -> np.ndarray:
        g = min(self.group_size, x.shape[-1])
        codec = self._codec_for(g)
        flat = x.reshape(-1, x.shape[-1])
        a = self.selector.select_batch(to_groups(flat, g, axis=-1).groups)
        return codec.qdq(flat, a).reshape(x.shape)

    # ------------------------------------------------------------------
    # K cache — spatial quantization
    # ------------------------------------------------------------------
    def _quantize_k(self, k: np.ndarray) -> np.ndarray:
        return self._mant_qdq_lastaxis(k)

    # ------------------------------------------------------------------
    # V cache — temporal two-phase quantization
    # ------------------------------------------------------------------
    def _reset_window(self, heads: int, d_head: int) -> None:
        self._acc_sum = np.zeros((heads, d_head))
        self._acc_sqsum = np.zeros((heads, d_head))
        self._acc_max = np.zeros((heads, d_head))

    def _finalize_window(self) -> None:
        """Phase 2 of Fig. 8: staged INT8 window → 4-bit MANT, in place."""
        staged = self._v.tail(self.window)           # (heads, window, d_head)
        heads, t, d_head = staged.shape
        # Group = one channel across the window (the V inner dimension).
        per_channel = np.moveaxis(staged, 1, -1)     # (heads, d_head, t)
        n = float(t)
        mean = self._acc_sum / n
        var = self._acc_sqsum / n - mean * mean
        amax = np.where(self._acc_max <= 0, 1.0, self._acc_max)
        norm_var = np.clip(var, 0.0, None) / (amax * amax)
        a_sel = self.selector.select_from_variances(norm_var)  # (heads, d_head)
        codec = self._codec_for(t)
        flat = per_channel.reshape(-1, t)
        out = codec.qdq(flat, a_sel.reshape(-1, 1))
        staged[:] = np.moveaxis(out.reshape(heads, d_head, t), -1, 1)
        self._v_final += self.window
        self._reset_window(heads, d_head)

    def _quantize_v_windows(self, body: np.ndarray) -> np.ndarray:
        """Quantize ``(heads, n·window, d_head)`` straight to 4-bit MANT.

        Both inner-dimension data are available for full windows, so
        they skip INT8 staging entirely (phase 1+2 of Fig. 8 collapse).
        Each window is quantized independently, which is what makes the
        result invariant to how a prompt is split into window-aligned
        prefill chunks.
        """
        heads, full, d_head = body.shape
        windows = body.reshape(heads, full // self.window, self.window, d_head)
        per_channel = np.moveaxis(windows, 2, -1)      # (heads, W, d_head, window)
        flat = per_channel.reshape(-1, self.window)
        a = self.selector.select_batch(flat)
        codec = self._codec_for(self.window)
        out = codec.qdq(flat, a[:, None])
        return np.moveaxis(
            out.reshape(heads, full // self.window, d_head, self.window), -1, 2
        ).reshape(heads, full, d_head)

    # ------------------------------------------------------------------
    def prefill(self, k, v):
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        heads, seq, d_head = v.shape
        self._reset_buffers(heads, d_head, seq)
        self._k.append(self._quantize_k(k))

        # Channel scales for the decode-stage INT8 staging (Fig. 8).
        ch_max = np.max(np.abs(v), axis=1)            # (heads, d_head)
        ch_max = np.where(ch_max <= 0, 1.0, ch_max)
        self._stage_scale = (ch_max / self._int8.qmax).astype(np.float16).astype(np.float64)

        # Prefill V: full windows quantize straight to MANT (both inner
        # dimension data are available), remainder enters staging.
        full = (seq // self.window) * self.window
        self._v_final = 0
        self._reset_window(heads, d_head)
        if full:
            self._v.append(self._quantize_v_windows(v[:, :full, :]))
            self._v_final = full
        if full < seq:
            # Batched staging: the remainder is < window, so no window
            # can close mid-batch and the accumulators update in bulk.
            self._stage_block(v[:, full:, :])

    def prefill_chunk(self, k, v, final=False):
        """One window-aligned slice of a chunked prompt prefill.

        Bit-identical to :meth:`prefill` of the concatenation: K rows
        and full V windows are quantized per token / per window (chunk-
        composition invariant by construction), while the INT8 staging
        channel scales — which :meth:`prefill` derives from the *whole*
        prompt — accumulate as running channel maxima across chunks and
        are only fixed on the final chunk, immediately before the
        sub-window remainder enters staging.  Non-final chunks must be a
        multiple of ``window``; only the final chunk may be ragged.
        """
        k = np.asarray(k, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        heads, t, d_head = v.shape
        if self._k is None:
            self._reset_buffers(heads, d_head, t)
            self._v_final = 0
            self._reset_window(heads, d_head)
            self._chunk_ch_max = np.zeros((heads, d_head))
        elif self._chunk_ch_max is None:
            raise RuntimeError(
                "prefill_chunk on a cache whose prefill already completed"
            )
        full = (t // self.window) * self.window
        if not final and full != t:
            raise ValueError(
                f"non-final prefill chunk of {t} tokens is not a multiple "
                f"of the MANT V-cache window ({self.window}); temporal "
                "quantization groups must never straddle a chunk boundary"
            )
        self._k.append(self._quantize_k(k))
        np.maximum(
            self._chunk_ch_max, np.max(np.abs(v), axis=1), out=self._chunk_ch_max
        )
        if full:
            self._v.append(self._quantize_v_windows(v[:, :full, :]))
            self._v_final += full
        if final:
            ch_max = np.where(self._chunk_ch_max <= 0, 1.0, self._chunk_ch_max)
            self._stage_scale = (
                (ch_max / self._int8.qmax).astype(np.float16).astype(np.float64)
            )
            self._chunk_ch_max = None
            if full < t:
                self._stage_block(v[:, full:, :])

    def _stage_block(self, block: np.ndarray) -> None:
        """INT8-stage ``(heads, t, d_head)`` tokens + update accumulators.

        The single place the staging quantization and streaming-stat
        semantics live; does not close windows — callers decide that.
        """
        scale = self._stage_scale[:, None, :]
        q = self._int8.round_clip(block / scale)
        self._v.append(q * scale)
        self._accumulate_stats(block)

    def _accumulate_stats(self, block: np.ndarray) -> None:
        """Fold ``(heads, t, d_head)`` raw tokens into the window stats."""
        self._acc_sum += block.sum(axis=1)
        self._acc_sqsum += (block * block).sum(axis=1)
        self._acc_max = np.maximum(self._acc_max, np.max(np.abs(block), axis=1))

    def _close_window_if_full(self) -> None:
        if len(self._v) - self._v_final == self.window:
            self._finalize_window()

    def _stage_append(self, v_t: np.ndarray) -> None:
        self._stage_block(v_t[:, None, :])
        self._close_window_if_full()

    def _stage_prequantized(self, v_raw_t: np.ndarray, v_q_t: np.ndarray) -> None:
        """The tail of :meth:`_stage_append` for callers (the fused batch
        path) that already INT8-staged the token: append + stats +
        window close share one implementation with the per-cache path."""
        self._v.append(v_q_t)
        self._accumulate_stats(v_raw_t[:, None, :])
        self._close_window_if_full()

    def append(self, k_t, v_t):
        k_t = np.asarray(k_t, dtype=np.float64)
        v_t = np.asarray(v_t, dtype=np.float64)
        self._validate_token("k_t", k_t)
        self._validate_token("v_t", v_t)
        if self._chunk_ch_max is not None:
            raise RuntimeError(
                "append during an unfinished chunked prefill — feed the "
                "last chunk with prefill_chunk(..., final=True) first"
            )
        if self._stage_scale is None:
            # Decode without prefill: bootstrap scales from this vector,
            # fp16-rounded like the prefill path (Fig. 8 stores 16-bit
            # channel scales regardless of how the cache started).
            heads, d_head = v_t.shape
            ch_max = np.where(np.abs(v_t) <= 0, 1.0, np.abs(v_t))
            self._stage_scale = (
                (ch_max / self._int8.qmax).astype(np.float16).astype(np.float64)
            )
            self._reset_buffers(heads, d_head, 16)
            self._v_final = 0
            self._reset_window(heads, d_head)
        self._k.append(self._quantize_k(k_t))
        self._stage_append(v_t)

    @classmethod
    def append_batch(cls, caches, k_batch, v_batch):
        """Fused batch append: one MANT select+encode for every K row and
        one INT8 staging round for every V row.

        Group-wise quantization is row-independent, so the fused call is
        bit-identical to per-cache :meth:`append`; caches whose configs
        differ (or that still need bootstrap scales) fall back to the
        loop.  Per-cache streaming accumulators and window finalization
        are untouched — only the heavy per-token math is batched.
        """
        k_batch = np.asarray(k_batch, dtype=np.float64)
        v_batch = np.asarray(v_batch, dtype=np.float64)
        first = caches[0]
        fusable = all(
            type(c) is cls
            and c.selector.same_policy(first.selector)
            and c.bits == first.bits
            and c.group_size == first.group_size
            and c.window == first.window
            and c.staging_bits == first.staging_bits
            and c._stage_scale is not None
            for c in caches
        )
        if not fusable:
            super().append_batch(caches, k_batch, v_batch)
            return
        for c, k_t, v_t in zip(caches, k_batch, v_batch):
            c._validate_token("k_t", k_t)
            c._validate_token("v_t", v_t)
        kq = first._mant_qdq_lastaxis(k_batch)        # (B, heads, d_head)
        scales = np.stack([c._stage_scale for c in caches])
        vq = first._int8.round_clip(v_batch / scales) * scales
        for b, c in enumerate(caches):
            c._k.append(kq[b])
            c._stage_prequantized(v_batch[b], vq[b])

    # ------------------------------------------------------------------
    @property
    def staging_fill(self) -> int:
        """Tokens currently held at INT8 (for tests/analysis)."""
        return len(self._v) - self._v_final if self._v is not None else 0


def make_kv_cache(config: KVCacheConfig, selector: VarianceSelector | None = None) -> KVCache:
    """Instantiate the cache implementation a config describes."""
    if config.is_fp16:
        return FP16KVCache()
    if config.key.method == "mant":
        return MantKVCache(
            selector=selector,
            bits=config.key.bits,
            group_size=config.key.group_size,
            window=config.window,
        )
    if config.key.method == "int":
        return IntKVCache(bits=config.key.bits, group_size=config.key.group_size)
    raise ValueError(f"no KV cache implementation for method {config.key.method!r}")


def validate_chunk_compat(cache: KVCache, chunk_tokens: int) -> None:
    """Reject prefill chunk sizes that would split a temporal group.

    The chunked-prefill counterpart of
    :func:`repro.serve.paging.validate_block_compat`: K caches quantize
    per token and tolerate any chunking, but the MANT V cache quantizes
    ``window`` consecutive tokens together, so every non-final chunk
    must hold a whole number of windows for chunked prefill to stay
    bit-identical to the one-shot :meth:`KVCache.prefill`.
    """
    if isinstance(cache, MantKVCache) and chunk_tokens % cache.window:
        raise ValueError(
            f"prefill_chunk_tokens={chunk_tokens} must be a multiple of "
            f"the MANT V-cache window ({cache.window}) so temporal "
            "quantization groups never straddle a chunk boundary"
        )


# ======================================================================
# Pooled cache arena for multi-tenant serving
# ======================================================================
class _ArenaSlab:
    """Shared ``(slots, heads, capacity, d_head)`` storage for one
    (layer, K/V-role) across every sequence slot of an arena.

    A single amortized-doubling allocation backs all slots: growing for
    any sequence grows the capacity axis once for everyone, and a
    recycled slot reuses the capacity its predecessors paid for.
    """

    __slots__ = ("_buf", "_lens")

    def __init__(self, slots: int, heads: int, d_head: int, capacity: int = 16):
        self._buf = np.empty((slots, heads, max(1, capacity), d_head))
        self._lens = np.zeros(slots, dtype=np.int64)

    @property
    def heads(self) -> int:
        return self._buf.shape[1]

    @property
    def d_head(self) -> int:
        return self._buf.shape[3]

    @property
    def capacity(self) -> int:
        return self._buf.shape[2]

    def ensure_capacity(self, capacity: int) -> None:
        cap = self._buf.shape[2]
        if capacity <= cap:
            return
        slots, heads, _, d_head = self._buf.shape
        grown = np.empty((slots, heads, max(capacity, 2 * cap), d_head))
        live = int(self._lens.max())
        grown[:, :, :live] = self._buf[:, :, :live]
        self._buf = grown

    def reset(self, slot: int) -> None:
        self._lens[slot] = 0

    def length(self, slot: int) -> int:
        return int(self._lens[slot])

    def append(self, slot: int, block: np.ndarray) -> None:
        block = _promote_token_block(block, self.heads, self.d_head)
        n = int(self._lens[slot])
        t = block.shape[1]
        self.ensure_capacity(n + t)
        self._buf[slot, :, n : n + t] = block
        self._lens[slot] = n + t

    def view(self, slot: int) -> np.ndarray:
        v = self._buf[slot, :, : int(self._lens[slot])]
        v.flags.writeable = False
        return v

    def tail(self, slot: int, n: int) -> np.ndarray:
        length = int(self._lens[slot])
        if n > length:
            raise ValueError(f"tail({n}) exceeds slot length {length}")
        return self._buf[slot, :, length - n : length]


class SlabTokenBuffer:
    """:class:`TokenBuffer`-compatible facade over one arena slab slot.

    Construction resets the slot (a fresh buffer is empty by
    definition); all storage and growth live in the shared slab.
    """

    __slots__ = ("_slab", "_slot")

    def __init__(self, slab: _ArenaSlab, slot: int):
        self._slab = slab
        self._slot = slot
        slab.reset(slot)

    def __len__(self) -> int:
        return self._slab.length(self._slot)

    @property
    def heads(self) -> int:
        return self._slab.heads

    @property
    def d_head(self) -> int:
        return self._slab.d_head

    def append(self, block: np.ndarray) -> None:
        self._slab.append(self._slot, block)

    def view(self) -> np.ndarray:
        return self._slab.view(self._slot)

    def tail(self, n: int) -> np.ndarray:
        return self._slab.tail(self._slot, n)


class CacheLease:
    """One sequence's tenancy in a :class:`KVCacheArena`.

    ``caches`` holds one arena-backed :class:`KVCache` per model layer;
    ``slot`` is the slab row they share.  Return it with
    :meth:`KVCacheArena.release` when the request finishes.
    """

    __slots__ = ("slot", "caches", "active")

    def __init__(self, slot: int, caches: list):
        self.slot = slot
        self.caches = caches
        self.active = True


class KVCacheArena:
    """Pooled per-layer KV caches carved out of shared slab buffers.

    ``acquire()`` hands out a :class:`CacheLease` whose per-layer caches
    (built by ``cache_factory`` — any :class:`KVCache` subclass using
    the buffered storage, i.e. FP16/INT/MANT) write into per-slot
    regions of ``2 × n_layers`` shared slabs instead of private
    allocations.  ``release()`` recycles the slot for the next
    sequence.  Invariants:

    * at most ``slots`` leases are live at a time (``acquire`` raises
      once exhausted — the serving scheduler's admission policy is what
      keeps this from triggering);
    * a released slot's storage is reused as-is (no zeroing; a fresh
      lease's caches start at length 0 and overwrite);
    * zero-copy cache views are valid until the next append through
      *any* lease of the arena, since growth reallocates shared slabs.
    """

    def __init__(
        self,
        n_layers: int,
        cache_factory,
        slots: int = 8,
        initial_capacity: int = 64,
    ):
        if slots < 1:
            raise ValueError("arena needs at least one slot")
        self.n_layers = n_layers
        self._cache_factory = cache_factory
        self._n_slots = slots
        self._initial_capacity = initial_capacity
        self._free = list(reversed(range(slots)))
        self._slabs: dict[tuple[int, str], _ArenaSlab] = {}
        self.high_water = 0
        self.total_leases = 0

    # ------------------------------------------------------------------
    @property
    def slots_total(self) -> int:
        return self._n_slots

    @property
    def slots_free(self) -> int:
        return len(self._free)

    @property
    def slots_in_use(self) -> int:
        return self._n_slots - len(self._free)

    # ------------------------------------------------------------------
    def _get_slab(self, layer: int, role: str, heads: int, d_head: int) -> _ArenaSlab:
        key = (layer, role)
        slab = self._slabs.get(key)
        if slab is None:
            slab = _ArenaSlab(self._n_slots, heads, d_head, self._initial_capacity)
            self._slabs[key] = slab
        elif (slab.heads, slab.d_head) != (heads, d_head):
            raise ValueError(
                f"layer {layer} {role}-cache geometry ({heads}, {d_head}) does "
                f"not match the arena's ({slab.heads}, {slab.d_head})"
            )
        return slab

    def _buffer_factory(self, slot: int, layer: int):
        def make(role: str, heads: int, d_head: int, capacity: int) -> SlabTokenBuffer:
            slab = self._get_slab(layer, role, heads, d_head)
            slab.ensure_capacity(capacity)
            return SlabTokenBuffer(slab, slot)

        return make

    # ------------------------------------------------------------------
    def acquire(self) -> CacheLease:
        """Lease one slot: a fresh set of per-layer arena-backed caches."""
        if not self._free:
            raise RuntimeError(
                f"KVCacheArena exhausted: all {self._n_slots} slots leased"
            )
        slot = self._free.pop()
        caches = []
        for layer in range(self.n_layers):
            cache = self._cache_factory()
            if not isinstance(cache, _BufferedKVCache):
                raise TypeError(
                    f"cache_factory produced {type(cache).__name__}, which does "
                    "not use the pooled buffer storage"
                )
            cache.bind_buffer_factory(self._buffer_factory(slot, layer))
            caches.append(cache)
        self.total_leases += 1
        self.high_water = max(self.high_water, self.slots_in_use)
        return CacheLease(slot, caches)

    def release(self, lease: CacheLease) -> None:
        """Recycle a lease's slot; its caches must not be used afterwards."""
        if not lease.active:
            raise RuntimeError("lease already released")
        lease.active = False
        for slab in self._slabs.values():
            slab.reset(lease.slot)
        self._free.append(lease.slot)
