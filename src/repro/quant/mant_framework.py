"""The MANT quantization framework (paper Sec. V).

* Weights: offline per-group MSE search over the 16-type set, then
  group-wise encode (``MantQuantizer``).
* Activations: group-wise INT8 (Sec. V-B) — handled by
  :func:`repro.core.fused.quantize_activations_int8` /
  :class:`repro.quant.quantizer.GroupQuantizer`.
* KV cache: real-time variance-based selection — in
  :mod:`repro.quant.kvcache`.

``MantModelQuantizer`` applies the weight path to a whole named-weight
collection and records the per-group coefficient choices, which is the
raw data behind the paper's Fig. 15.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.codec import MantCodec, MantEncoded, INT_A
from repro.core.mant import MANT_WEIGHT_A_SET
from repro.core.selection import MseSearchSelector

__all__ = ["MantQuantizer", "MantModelQuantizer", "QuantizedWeight"]


class MantQuantizer:
    """Offline MANT weight quantization: search + encode + decode.

    The fake-quantization entry point used by accuracy experiments is
    :meth:`qdq_tensor`; systems that need the actual codes (the fused
    kernel, the HW simulator) use :meth:`encode`.
    """

    def __init__(
        self,
        bits: int = 4,
        group_size: int = 64,
        a_candidates=MANT_WEIGHT_A_SET,
        include_int: bool = True,
        fp16_scales: bool = True,
    ):
        self.bits = bits
        self.group_size = group_size
        self.selector = MseSearchSelector(
            bits=bits,
            group_size=group_size,
            a_candidates=a_candidates,
            include_int=include_int,
        )
        self.codec = MantCodec(bits=bits, group_size=group_size, fp16_scales=fp16_scales)

    # ------------------------------------------------------------------
    def select(self, w: np.ndarray, act_sq_mean: np.ndarray | None = None) -> np.ndarray:
        """Per-group coefficients for a 2-D weight (Eq. 6 surrogate)."""
        return self.selector.select(w, act_sq_mean)

    def encode(self, w: np.ndarray, act_sq_mean: np.ndarray | None = None) -> MantEncoded:
        # Fused search + encode: the selector keeps the winning
        # candidate's codes from the sweep, so the weights are not
        # nearest-point-searched again after selection.  Bit-identical
        # to ``self.codec.encode(w, self.select(w, act_sq_mean))``.
        return self.selector.select_and_encode(w, act_sq_mean, codec=self.codec)

    def quantize(self, w: np.ndarray, act_sq_mean: np.ndarray | None = None) -> MantEncoded:
        """Alias of :meth:`encode` (paper's terminology)."""
        return self.encode(w, act_sq_mean)

    def dequantize(self, enc: MantEncoded) -> np.ndarray:
        return self.codec.decode(enc)

    # ------------------------------------------------------------------
    def qdq(self, w: np.ndarray, act_sq_mean: np.ndarray | None = None) -> np.ndarray:
        """Fake-quantize a 2-D weight matrix (fused search + encode)."""
        return self.codec.decode(self.encode(w, act_sq_mean))

    def qdq_tensor(
        self,
        x: np.ndarray,
        axis: int = -1,
        act_sq_mean: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fake-quantize an arbitrary-rank tensor along ``axis``."""
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, axis, -1)
        flat = moved.reshape(-1, moved.shape[-1])
        out = self.qdq(flat, act_sq_mean)
        return np.moveaxis(out.reshape(moved.shape), -1, axis)


@dataclass
class QuantizedWeight:
    """One weight's quantization artifacts: codes + fake-quant values."""

    name: str
    encoded: MantEncoded
    dequantized: np.ndarray

    def a_histogram(self) -> dict[float, float]:
        """Fraction of groups per coefficient (Fig. 15 raw data)."""
        a = self.encoded.a_coeff.ravel()
        values, counts = np.unique(a, return_counts=True)
        total = a.size
        return {float(v): float(c) / total for v, c in zip(values, counts)}


@dataclass
class MantModelQuantizer:
    """Quantize a named collection of 2-D weights with MANT.

    ``act_sq_means`` optionally maps weight names to the calibration
    statistic ``E[x_j²]`` of that weight's input features.
    """

    bits: int = 4
    group_size: int = 64
    fp16_scales: bool = True
    results: dict[str, QuantizedWeight] = field(default_factory=dict)

    def __post_init__(self):
        self._quantizer = MantQuantizer(
            bits=self.bits, group_size=self.group_size, fp16_scales=self.fp16_scales
        )

    def quantize_weights(
        self,
        weights: dict[str, np.ndarray],
        act_sq_means: dict[str, np.ndarray] | None = None,
    ) -> dict[str, np.ndarray]:
        """Return fake-quantized copies; artifacts land in ``results``."""
        out: dict[str, np.ndarray] = {}
        for name, w in weights.items():
            stat = None if act_sq_means is None else act_sq_means.get(name)
            enc = self._quantizer.encode(np.asarray(w, dtype=np.float64), stat)
            deq = self._quantizer.dequantize(enc)
            self.results[name] = QuantizedWeight(name, enc, deq)
            out[name] = deq
        return out

    def datatype_ratio_table(self) -> dict[str, dict[float, float]]:
        """Per-weight coefficient histograms (Fig. 15)."""
        return {name: qw.a_histogram() for name, qw in self.results.items()}

    def int_fraction(self) -> float:
        """Fraction of all groups that chose the plain-INT option."""
        total, ints = 0, 0
        for qw in self.results.values():
            a = qw.encoded.a_coeff
            total += a.size
            ints += int(np.sum(a == INT_A))
        return ints / total if total else 0.0
