"""The OliVe baseline (ISCA'23): outlier-victim pair quantization.

OliVe keeps a plain low-bit grid for the bulk of values but rescues
outliers by sacrificing their pair neighbour (the victim), whose slot
stores the outlier's extra bits in ``abfloat``.  Good at tensor/channel
granularity where outliers dominate the scale; under small groups the
sacrificed victims start to cost more than the protected outliers gain
(paper Tbl. V: OliVe gets *worse* from G-128 to G-32).
"""

from __future__ import annotations

import numpy as np

from repro.core.groups import to_groups, from_groups
from repro.datatypes.abfloat import OutlierVictimCodec
from repro.datatypes.int_type import IntType
from repro.quant.config import Granularity

__all__ = ["OliveQuantizer"]


class OliveQuantizer:
    """OliVe fake quantization.

    ``outlier_sigma`` is the outlier threshold in standard deviations of
    the quantization unit.  The normal (inlier) type is symmetric INT at
    ``bits``; outliers use 2x-width abfloat via the victim's slot.
    """

    def __init__(
        self,
        bits: int = 4,
        granularity: Granularity = Granularity.CHANNEL,
        group_size: int = 64,
        outlier_sigma: float = 3.5,
    ):
        self.bits = bits
        self.granularity = granularity
        self.group_size = group_size
        self.codec = OutlierVictimCodec(IntType(bits), outlier_sigma)

    def _qdq_rows(self, rows: np.ndarray) -> np.ndarray:
        out = np.empty_like(rows)
        for i in range(rows.shape[0]):
            out[i] = self.codec.qdq(rows[i])
        return out

    def qdq(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fake-quantize along ``axis`` with outlier-victim pairs."""
        x = np.asarray(x, dtype=np.float64)
        if self.granularity is Granularity.TENSOR:
            return self.codec.qdq(x.ravel()).reshape(x.shape)
        if self.granularity is Granularity.CHANNEL:
            moved = np.moveaxis(x, axis, -1)
            flat = moved.reshape(-1, moved.shape[-1])
            out = self._qdq_rows(flat).reshape(moved.shape)
            return np.moveaxis(out, -1, axis)
        view = to_groups(x, self.group_size, axis=axis)
        flat = view.groups.reshape(-1, view.group_size)
        out = self._qdq_rows(flat).reshape(view.groups.shape)
        return from_groups(view, out)
