"""Generic fake quantizers at tensor / channel / group granularity.

These implement the plain data-type paths (INT, FP4, NF4, PoT, flint):
one scaling factor per tensor, per channel or per group, absmax
symmetric (paper Eq. 1/4).  Adaptive methods (MANT, ANT, OliVe, Tender,
clustering) build on top of these in their own modules.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.groups import to_groups, from_groups
from repro.datatypes.base import GridDataType
from repro.datatypes.int_type import IntType
from repro.datatypes.mxfp import mxfp4_qdq
from repro.datatypes.floats import cast_fp16
from repro.quant.config import QuantConfig, Granularity

__all__ = ["GroupQuantizer", "quantize_dequantize", "qdq_with_config"]


@lru_cache(maxsize=None)
def _mant_quantizer(bits: int, group_size: int):
    """Process-wide MANT quantizer pool.

    The quantizer is stateless (grids and boundary tables are shared
    process-wide anyway), so config-driven dispatch reuses one instance
    per (bits, group_size) instead of rebuilding the search machinery on
    every call.
    """
    from repro.quant.mant_framework import MantQuantizer

    return MantQuantizer(bits=bits, group_size=group_size)


def _dtype_for(config: QuantConfig) -> GridDataType:
    """Resolve the plain data type a config names."""
    from repro.datatypes import flint4, fp4_e2m1, nf4, pot4_with_zero

    if config.method == "int":
        return IntType(config.bits)
    if config.method == "nf":
        if config.bits != 4:
            raise ValueError("NormalFloat implemented for 4 bits")
        return nf4
    if config.method == "fp":
        if config.bits != 4:
            raise ValueError("minifloat path implemented for 4 bits")
        return fp4_e2m1
    if config.method == "pot":
        return pot4_with_zero
    if config.method == "flint":
        return flint4
    raise ValueError(f"{config.method!r} is not a plain data type")


class GroupQuantizer:
    """Fake quantization of one tensor axis at a chosen granularity.

    ``axis`` is the quantization (inner/accumulation) dimension.  For
    CHANNEL granularity each slice along ``axis`` gets its own scale;
    for TENSOR a single scale; for GROUP one per ``group_size`` chunk.
    """

    def __init__(self, dtype: GridDataType, granularity: Granularity,
                 group_size: int = 64, fp16_scales: bool = True):
        self.dtype = dtype
        self.granularity = granularity
        self.group_size = group_size
        self.fp16_scales = fp16_scales

    def _round_scale(self, scale: np.ndarray) -> np.ndarray:
        if self.fp16_scales:
            return scale.astype(np.float16).astype(np.float64)
        return scale

    def qdq(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Quantize-dequantize ``x`` along ``axis``."""
        x = np.asarray(x, dtype=np.float64)
        if self.granularity is Granularity.TENSOR:
            scale = self._round_scale(self.dtype.scale_for(x))
            return self.dtype.qdq(x, scale)
        if self.granularity is Granularity.CHANNEL:
            # One scale per slice along every axis except `axis`.
            moved = np.moveaxis(x, axis, -1)
            amax = np.max(np.abs(moved), axis=-1, keepdims=True)
            amax = np.where(amax <= 0, self.dtype.grid_max, amax)
            scale = self._round_scale(amax / self.dtype.grid_max)
            out = self.dtype.qdq(moved, scale)
            return np.moveaxis(out, -1, axis)
        view = to_groups(x, self.group_size, axis=axis)
        amax = np.max(np.abs(view.groups), axis=-1, keepdims=True)
        amax = np.where(amax <= 0, self.dtype.grid_max, amax)
        scale = self._round_scale(amax / self.dtype.grid_max)
        out = self.dtype.qdq(view.groups, scale)
        return from_groups(view, out)


def quantize_dequantize(
    x: np.ndarray,
    dtype: GridDataType,
    granularity: Granularity = Granularity.GROUP,
    group_size: int = 64,
    axis: int = -1,
) -> np.ndarray:
    """One-shot functional form of :class:`GroupQuantizer`."""
    return GroupQuantizer(dtype, granularity, group_size).qdq(x, axis=axis)


def qdq_with_config(x: np.ndarray, config: QuantConfig, axis: int = -1,
                    calibration=None) -> np.ndarray:
    """Dispatch fake quantization by config.

    Adaptive methods are routed to their modules; ``calibration`` is the
    optional per-channel ``E[x²]`` statistic used by MSE searches.
    """
    if config.is_fp16:
        return cast_fp16(x)
    if config.method == "mxfp":
        return mxfp4_qdq(np.asarray(x, dtype=np.float64), config.group_size)
    if config.method == "mant":
        return _mant_quantizer(config.bits, config.group_size).qdq_tensor(
            x, axis=axis, act_sq_mean=calibration
        )
    if config.method == "ant":
        from repro.quant.ant import AntQuantizer

        return AntQuantizer(
            bits=config.bits,
            granularity=config.granularity,
            group_size=config.group_size,
        ).qdq(x, axis=axis)
    if config.method == "olive":
        from repro.quant.olive import OliveQuantizer

        return OliveQuantizer(
            bits=config.bits,
            granularity=config.granularity,
            group_size=config.group_size,
        ).qdq(x, axis=axis)
    if config.method == "tender":
        from repro.quant.tender import TenderQuantizer

        return TenderQuantizer(bits=config.bits).qdq(x, axis=axis)
    if config.method == "cluster":
        from repro.quant.clustering import PerGroupClusterQuantizer

        return PerGroupClusterQuantizer(
            bits=config.bits, group_size=config.group_size
        ).qdq(x, axis=axis)
    return GroupQuantizer(
        _dtype_for(config), config.granularity, config.group_size
    ).qdq(x, axis=axis)
