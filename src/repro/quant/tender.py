"""The Tender baseline (ISCA'24): tensor decomposition with 2^k scales.

Tender splits activation channels into chunks by magnitude; within a
chunk, channel groups share scaling factors that are powers of two of a
base scale, so "requantization" across groups is a shift in the
accumulator instead of a multiply.  Reproduced at the accuracy level:

1. rank channels by absmax,
2. partition into ``n_chunks`` contiguous (in rank order) chunks,
3. each chunk's scale is the base scale (from the largest chunk)
   divided by ``2^k`` with ``k`` chosen to fit the chunk's absmax,
4. symmetric INT quantization per chunk.

This captures Tender's accuracy behaviour: outlier channels no longer
stretch the scale of everyone else, but inside a chunk the resolution is
still power-of-two-coupled to the global base, which is why 4-bit Tender
beats ANT/OliVe yet trails true group-wise methods (paper Tbl. II).
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.int_type import IntType

__all__ = ["TenderQuantizer"]


class TenderQuantizer:
    """Tender-style chunked quantization along the channel axis."""

    def __init__(self, bits: int = 4, n_chunks: int = 16, fp16_scales: bool = True):
        self.bits = bits
        self.n_chunks = n_chunks
        self.itype = IntType(bits)
        self.fp16_scales = fp16_scales

    def qdq(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Fake-quantize with rank-ordered chunks of channels.

        ``axis`` indexes the channel dimension being decomposed.
        """
        x = np.asarray(x, dtype=np.float64)
        moved = np.moveaxis(x, axis, -1)
        flat = moved.reshape(-1, moved.shape[-1])
        n_ch = flat.shape[-1]

        ch_max = np.max(np.abs(flat), axis=0)
        order = np.argsort(ch_max)[::-1]          # descending magnitude
        chunks = np.array_split(order, self.n_chunks)

        base = float(ch_max[order[0]]) if n_ch else 0.0
        if base <= 0:
            return x.copy()
        base_scale = base / self.itype.qmax
        if self.fp16_scales:
            base_scale = float(np.float16(base_scale))

        out = np.empty_like(flat)
        for chunk in chunks:
            if chunk.size == 0:
                continue
            cmax = float(np.max(ch_max[chunk]))
            if cmax <= 0:
                out[:, chunk] = 0.0
                continue
            # Largest power-of-two downshift that still covers cmax:
            # scale_chunk = base_scale / 2^k with cmax <= qmax * scale_chunk.
            k = int(np.floor(np.log2(base / max(cmax, 1e-12))))
            k = max(k, 0)
            scale = base_scale / (2.0**k)
            q = self.itype.round_clip(flat[:, chunk] / scale)
            out[:, chunk] = q * scale
        return np.moveaxis(out.reshape(moved.shape), -1, axis)
