"""Token sampling shared by the serving engine and the eval tasks.

Lives at the package top level (below both ``repro.model`` and
``repro.serve``, numpy-only) so the model-layer tasks and the serving
engine share one sampler without a dependency between those layers;
:mod:`repro.serve.sampling` re-exports it as part of the serving API.

One :class:`Sampler` per request keeps an independent seeded RNG
stream, so a request's output depends only on its own logits and seed —
never on which other requests happen to share its decode batch.  That,
plus the bit-identical batched decode path, is what makes serving
deterministic under continuous batching.

``temperature == 0`` is exact greedy (:func:`greedy_sample`), the
default everywhere so existing single-stream evaluations are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SamplingParams", "Sampler", "greedy_sample", "GREEDY"]


def greedy_sample(logits: np.ndarray) -> int:
    """Deterministic argmax decoding (ties break to the lowest id)."""
    return int(np.argmax(logits))


@dataclass(frozen=True)
class SamplingParams:
    """How one request turns logits into tokens.

    ``temperature == 0`` selects greedy decoding (``top_k``/``seed``
    are ignored); otherwise softmax sampling at the given temperature,
    optionally truncated to the ``top_k`` highest-logit tokens.
    """

    temperature: float = 0.0
    top_k: int = 0          # 0 = no truncation
    seed: int = 0

    def __post_init__(self):
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k < 0:
            raise ValueError(f"top_k must be >= 0, got {self.top_k}")

    @property
    def is_greedy(self) -> bool:
        return self.temperature == 0.0


GREEDY = SamplingParams()


class Sampler:
    """Stateful per-request sampler: params + a private RNG stream.

    ``sample_index`` selects an independent stream for one of a
    request's parallel samples (``GenerationRequest.n > 1``): sample 0
    keeps the classic ``default_rng(seed)`` stream bit-for-bit, while
    sample ``i > 0`` seeds from the ``(seed, i)`` entropy pair — each
    sample's tokens depend only on its own logits, seed and index,
    never on batch composition or sibling count.
    """

    def __init__(self, params: SamplingParams = GREEDY, sample_index: int = 0):
        self.params = params
        if params.is_greedy:
            self._rng = None
        elif sample_index:
            self._rng = np.random.default_rng((params.seed, sample_index))
        else:
            self._rng = np.random.default_rng(params.seed)

    def get_state(self) -> dict | None:
        """Serializable RNG state (``None`` for greedy samplers).

        Together with :meth:`set_state` this lets a serving engine
        snapshot a mid-stream request and restore it so its remaining
        draws continue bit-for-bit where they left off.
        """
        return None if self._rng is None else self._rng.bit_generator.state

    def set_state(self, state: dict | None) -> None:
        """Restore a stream captured by :meth:`get_state`."""
        if state is None:
            return
        if self._rng is None:
            raise ValueError("cannot restore RNG state into a greedy sampler")
        self._rng.bit_generator.state = state

    def sample(self, logits: np.ndarray) -> int:
        """Draw the next token id from one sequence's logits ``(V,)``."""
        p = self.params
        if p.is_greedy:
            return greedy_sample(logits)
        z = logits / p.temperature
        if p.top_k and p.top_k < z.shape[-1]:
            cutoff = np.partition(z, -p.top_k)[-p.top_k]
            z = np.where(z >= cutoff, z, -np.inf)
        z = z - np.max(z)
        probs = np.exp(z)
        probs /= probs.sum()
        u = self._rng.random()
        return int(min(np.searchsorted(np.cumsum(probs), u), len(probs) - 1))
