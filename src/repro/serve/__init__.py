"""Multi-tenant serving: continuous batching over quantized KV caches.

The serving layer on top of the MANT quantization stack — an engine
that schedules many concurrent generation requests into one fused
decode batch, with per-request streaming, pooled per-layer KV caches
(FP16/INT/MANT) recycled across requests, and aggregate throughput /
occupancy / latency statistics.  See :mod:`repro.serve.engine` for the
determinism guarantees.
"""

from repro.serve.sampling import GREEDY, Sampler, SamplingParams, greedy_sample
from repro.serve.request import (
    FINISH_LENGTH,
    FINISH_STOP,
    GenerationRequest,
    GenerationResult,
    TokenEvent,
)
from repro.serve.scheduler import Scheduler, ServeConfig
from repro.serve.engine import EngineStats, GenerationEngine

__all__ = [
    "GREEDY",
    "Sampler",
    "SamplingParams",
    "greedy_sample",
    "FINISH_LENGTH",
    "FINISH_STOP",
    "GenerationRequest",
    "GenerationResult",
    "TokenEvent",
    "Scheduler",
    "ServeConfig",
    "EngineStats",
    "GenerationEngine",
]
