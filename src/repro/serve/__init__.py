"""Multi-tenant serving: continuous batching over quantized KV caches.

The serving layer on top of the MANT quantization stack — an engine
that schedules many concurrent generation requests into one fused
decode batch, with per-request streaming (token ids plus optional
incremental detokenized text), pooled per-layer KV caches (FP16/INT/
MANT) recycled across requests, and aggregate throughput / occupancy /
latency statistics.  Two storage backends: the contiguous
:class:`~repro.quant.kvcache.KVCacheArena` (one slab slot per batch
lane) and the paged :class:`~repro.serve.paging.BlockPool` (fixed-size
ref-counted pages with hash-based prompt-prefix sharing, copy-on-write
and prefix-aware block admission — ``ServeConfig(paged=True)``).  With
``ServeConfig(prefill_chunk_tokens=...)`` prompts prefill in
window-aligned chunks through mixed prefill+decode ticks under a
Sarathi-style ``max_tokens_per_tick`` budget, keeping decode
inter-token latency flat while long prompts stream in.  See
:mod:`repro.serve.engine` for the determinism guarantees and
:mod:`repro.serve.paging` for the paging design.
"""

from repro.serve.sampling import GREEDY, Sampler, SamplingParams, greedy_sample
from repro.serve.request import (
    FINISH_LENGTH,
    FINISH_STOP,
    GenerationRequest,
    GenerationResult,
    PrefillCursor,
    TokenEvent,
)
from repro.serve.scheduler import QueueFullError, Scheduler, ServeConfig
from repro.serve.paging import (
    BlockPool,
    PagedKVCache,
    PagedLease,
    PagedTokenBuffer,
    PagedView,
    PageTable,
    PoolExhausted,
)
from repro.serve.engine import EngineStats, GenerationEngine

__all__ = [
    "GREEDY",
    "Sampler",
    "SamplingParams",
    "greedy_sample",
    "FINISH_LENGTH",
    "FINISH_STOP",
    "GenerationRequest",
    "GenerationResult",
    "PrefillCursor",
    "TokenEvent",
    "Scheduler",
    "ServeConfig",
    "QueueFullError",
    "BlockPool",
    "PageTable",
    "PagedTokenBuffer",
    "PagedView",
    "PagedKVCache",
    "PagedLease",
    "PoolExhausted",
    "EngineStats",
    "GenerationEngine",
]
