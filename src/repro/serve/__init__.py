"""Multi-tenant serving: continuous batching over quantized KV caches.

The serving layer on top of the MANT quantization stack — an engine
that schedules many concurrent generation requests into one fused
decode batch, with per-request streaming (token ids plus optional
incremental detokenized text), pooled per-layer KV caches (FP16/INT/
MANT) recycled across requests, and aggregate throughput / occupancy /
latency statistics.

The v2 API is layered:

* **Configuration** — :class:`~repro.serve.config.ServeConfig`, one
  validated frozen dataclass with named presets
  (``ServeConfig.arena()`` / ``.paged()`` / ``.chunked()``) selecting
  the storage backend and prefill pipeline.
* **Policy** — every ordering decision (admission order, chunk
  recipients, preemption victim) goes through a pluggable
  :class:`~repro.serve.policy.SchedulerPolicy`:
  :class:`~repro.serve.policy.FCFSPolicy` (default, bit-for-bit the
  pre-policy engine), :class:`~repro.serve.policy.PriorityPolicy`
  (strict ``GenerationRequest.priority``, FCFS tiebreak) and
  :class:`~repro.serve.policy.DeadlinePolicy` (EDF over
  ``deadline_s`` with starvation-free aging), selected by
  ``ServeConfig(scheduler_policy=...)``.
* **Lifecycle** — :meth:`~repro.serve.engine.GenerationEngine.submit`
  returns a :class:`~repro.serve.request.RequestHandle` (a ``str``
  equal to the request id) with ``.stream()`` / ``.result()`` /
  ``.cancel()``; :meth:`~repro.serve.engine.GenerationEngine.cancel`
  works in every state — queued, mid-chunked-prefill, decoding —
  releasing blocks/arena slots and finishing with
  ``FINISH_CANCELLED``.
* **Parallel sampling** — ``GenerationRequest(n=...)`` prefills the
  prompt once and forks the paged lease copy-on-write per extra
  sample (:meth:`~repro.serve.paging.PagedLease.fork`; arena engines
  replay the prefill into a fresh slot), each sample drawing from an
  RNG stream derived from ``(seed, sample_index)``;
  :class:`~repro.serve.request.GenerationResult.samples` carries one
  :class:`~repro.serve.request.SampleOutput` per sample and the
  classic single-sample fields alias ``samples[0]``.
* **Fault tolerance** — hard per-request timeouts
  (``GenerationRequest.timeout_s`` / ``ServeConfig.request_timeout_s``
  → ``FINISH_TIMEOUT``), per-request fault isolation (a raising
  ``on_token`` callback or a forward/allocation failure quarantines
  only its own request as ``FINISH_ERROR``, after a bounded
  retry-with-recompute for transient faults; bystanders stay
  token-identical), a deterministic seeded chaos harness
  (:class:`~repro.serve.faults.FaultInjector` with named injection
  sites), and graceful drain + snapshot/restore
  (:meth:`~repro.serve.engine.GenerationEngine.drain` /
  :meth:`~repro.serve.engine.GenerationEngine.snapshot` /
  :meth:`~repro.serve.engine.GenerationEngine.restore`) that replays
  in-flight requests through the recompute path, RNG state included.
* **Fleet** — :class:`~repro.serve.fleet.FleetRouter` puts N replica
  engines behind one engine-shaped surface
  (:class:`~repro.serve.config.FleetConfig`): prefix-affinity routing
  with load fallback and composed backpressure, a per-replica health
  model (HEALTHY/DEGRADED/QUARANTINED) with a circuit breaker fed by
  each replica's own metrics, replica-scoped chaos sites
  (``REPLICA_STALL`` / ``REPLICA_CRASH``) with crash failover onto
  survivors via :meth:`~repro.serve.engine.GenerationEngine.adopt`,
  hedged straggler requests, and periodic per-replica snapshot
  rotation for crash recovery.
* **Observability** — every engine statistic is an instrument in a
  :class:`~repro.serve.observe.MetricsRegistry` (``engine.metrics``,
  Prometheus text exposition via ``to_prometheus()``, fleet
  aggregation via :meth:`~repro.serve.observe.MetricsRegistry.merge`);
  with ``ServeConfig.observe`` (default on) each tick's phases record
  nested spans into a :class:`~repro.serve.observe.TickTracer`
  (Chrome-trace/Perfetto export: ``engine.trace.save(path)``) and each
  request keeps a :class:`~repro.serve.observe.RequestTrace` lifecycle
  timeline (``handle.trace()`` / ``GenerationResult.trace``), with
  fired faults joined in from the injector's log.
* **Load & SLOs** — :mod:`repro.serve.loadgen` generates seeded,
  replayable multi-tenant workloads (Poisson/bursty arrivals, length
  mixtures, shared-prefix cohorts, per-class priority/deadline/n
  knobs) and drives them open-loop through a
  :class:`~repro.serve.loadgen.LoadHarness` (wall or deterministic
  virtual clock); :mod:`repro.serve.slo` declares per-class objectives
  (:class:`~repro.serve.slo.SLOSpec`), judges runs into scorecards
  (:func:`~repro.serve.slo.evaluate` — attainment, goodput), watches
  them live (:class:`~repro.serve.slo.SLOMonitor`, per-class labeled
  registries) and binary-searches the saturation knee
  (:func:`~repro.serve.slo.find_knee`).

Two storage backends: the contiguous
:class:`~repro.quant.kvcache.KVCacheArena` (one slab slot per batch
lane) and the paged :class:`~repro.serve.paging.BlockPool` (fixed-size
ref-counted pages with hash-based prompt-prefix sharing, copy-on-write
and prefix-aware block admission — ``ServeConfig(paged=True)``).  With
``ServeConfig(prefill_chunk_tokens=...)`` prompts prefill in
window-aligned chunks through mixed prefill+decode ticks under a
Sarathi-style ``max_tokens_per_tick`` budget, keeping decode
inter-token latency flat while long prompts stream in.  See
:mod:`repro.serve.engine` for the determinism guarantees and
:mod:`repro.serve.paging` for the paging design.
"""

from repro.serve.sampling import GREEDY, Sampler, SamplingParams, greedy_sample
from repro.serve.request import (
    FINISH_CANCELLED,
    FINISH_ERROR,
    FINISH_LENGTH,
    FINISH_STOP,
    FINISH_TIMEOUT,
    GenerationRequest,
    GenerationResult,
    PrefillCursor,
    RequestHandle,
    SampleOutput,
    TokenEvent,
)
from repro.serve.config import FleetConfig, ServeConfig
from repro.serve.policy import (
    DeadlinePolicy,
    FCFSPolicy,
    PriorityPolicy,
    SchedulerPolicy,
    get_policy,
)
from repro.serve.faults import (
    ALLOC,
    CALLBACK,
    CLOCK,
    FORWARD,
    REPLICA_CRASH,
    REPLICA_STALL,
    SITES,
    FaultInjector,
    InjectedFault,
)
from repro.serve.fleet import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    FleetRouter,
    FleetStats,
    ReplicaStatus,
)
from repro.serve.observe import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RequestTrace,
    TickTracer,
)
from repro.serve.scheduler import QueueFullError, Scheduler
from repro.serve.paging import (
    BlockPool,
    PagedKVCache,
    PagedLease,
    PagedTokenBuffer,
    PagedView,
    PageTable,
    PoolExhausted,
)
from repro.serve.engine import EngineStats, GenerationEngine
from repro.serve.loadgen import (
    ArrivalProcess,
    HarnessResult,
    LengthDist,
    LoadHarness,
    RequestRecord,
    TickCostModel,
    TraceEntry,
    TrafficClass,
    VirtualClock,
    WorkloadSpec,
    WorkloadTrace,
    generate_trace,
)
from repro.serve.slo import (
    ClassReport,
    ClassSLO,
    SLOMonitor,
    SLOReport,
    SLOSpec,
    attainment_gap,
    evaluate,
    find_knee,
    request_compliant,
)

__all__ = [
    "GREEDY",
    "Sampler",
    "SamplingParams",
    "greedy_sample",
    "FINISH_CANCELLED",
    "FINISH_ERROR",
    "FINISH_LENGTH",
    "FINISH_STOP",
    "FINISH_TIMEOUT",
    "GenerationRequest",
    "GenerationResult",
    "PrefillCursor",
    "RequestHandle",
    "SampleOutput",
    "TokenEvent",
    "Scheduler",
    "ServeConfig",
    "QueueFullError",
    "SchedulerPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "DeadlinePolicy",
    "get_policy",
    "BlockPool",
    "PageTable",
    "PagedTokenBuffer",
    "PagedView",
    "PagedKVCache",
    "PagedLease",
    "PoolExhausted",
    "FaultInjector",
    "InjectedFault",
    "FORWARD",
    "ALLOC",
    "CALLBACK",
    "CLOCK",
    "REPLICA_STALL",
    "REPLICA_CRASH",
    "SITES",
    "FleetConfig",
    "FleetRouter",
    "FleetStats",
    "ReplicaStatus",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTrace",
    "TickTracer",
    "EngineStats",
    "GenerationEngine",
    "ArrivalProcess",
    "HarnessResult",
    "LengthDist",
    "LoadHarness",
    "RequestRecord",
    "TickCostModel",
    "TraceEntry",
    "TrafficClass",
    "VirtualClock",
    "WorkloadSpec",
    "WorkloadTrace",
    "generate_trace",
    "ClassReport",
    "ClassSLO",
    "SLOMonitor",
    "SLOReport",
    "SLOSpec",
    "attainment_gap",
    "evaluate",
    "find_knee",
    "request_compliant",
]
