"""Serving configuration: one validated, frozen knob surface.

:class:`ServeConfig` is the single source of truth for every engine and
scheduler knob — storage backend (arena vs paged), admission budgets,
chunked-prefill shape, and (new in the v2 API) the pluggable
``scheduler_policy``.  All cross-field validation lives here, in
``__post_init__``, so an invalid configuration fails at construction
instead of mid-tick; the only checks left elsewhere are the ones that
need a live cache instance (chunk/window and block/window alignment,
performed by the engine via :func:`~repro.quant.kvcache.
validate_chunk_compat` / :func:`~repro.serve.paging.validate_block_compat`).

Named presets cover the three standard shapes::

    ServeConfig.arena()      # contiguous per-slot slabs (the default)
    ServeConfig.paged()      # vLLM-style block pool + prefix sharing
    ServeConfig.chunked()    # paged + Sarathi-style mixed-tick prefill

each accepting any field as a keyword override, e.g.
``ServeConfig.chunked(max_batch_size=16, scheduler_policy="priority")``.

``repro.serve.scheduler.ServeConfig`` remains importable as a
deprecated alias of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.serve.policy import POLICIES

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Engine/scheduler knobs.

    ``max_tokens_in_flight = None`` disables the token budget (the
    batch-size cap alone bounds concurrency).  ``max_queue_len = None``
    leaves the waiting queue unbounded.

    ``scheduler_policy`` names the :class:`~repro.serve.policy.
    SchedulerPolicy` ordering every queue/chunk/preemption decision:
    ``"fcfs"`` (default — bit-for-bit the pre-policy engine),
    ``"priority"`` (strict :attr:`~repro.serve.request.
    GenerationRequest.priority` with FCFS tiebreak) or ``"deadline"``
    (EDF over ``GenerationRequest.deadline_s`` with starvation-free
    aging).

    Paging (``paged=True`` — see :mod:`repro.serve.paging`):

    ``block_tokens``
        Page size in tokens.  Must be a multiple of the cache's
        temporal quantization group (the MANT V window) so per-page
        quantization is bit-identical to the flat caches.
    ``num_blocks``
        Pool size.  ``None`` sizes it for the worst case
        (``ceil(max_seq / block_tokens) × max_batch_size``); smaller
        values enable real admission control, on-demand growth and
        preemption under memory pressure.
    ``enable_prefix_cache``
        Deduplicate identical full prompt-prefix pages across requests
        (hash-chained, copy-on-write protected).

    Chunked prefill (the mixed prefill+decode tick):

    ``prefill_chunk_tokens``
        Split each admitted prompt into chunks of this many tokens and
        run them through the batched mixed tick alongside the decode
        rows, instead of prefilling each prompt whole and alone at
        admission.  Must be a multiple of the cache's temporal
        quantization window (the MANT V window; checked at engine
        construction) — and of ``block_tokens`` when paged — so chunk
        boundaries always land on quantization-group boundaries and
        chunked output stays token-identical to unchunked.  ``None``
        (default) keeps the whole-prompt prefill path.
    ``max_tokens_per_tick``
        Sarathi-style per-tick token budget for the mixed tick: the
        decode rows (one token each) are charged first, and prefill
        chunks are only scheduled into what remains, keeping every
        tick's forward-pass cost — and therefore decode inter-token
        latency — bounded regardless of prompt length.  Requires
        ``prefill_chunk_tokens`` and must be at least as large, so an
        all-prefill tick always makes progress.  ``None`` leaves tick
        size bounded only by one chunk per prefilling sequence.

    Fault tolerance (see :mod:`repro.serve.faults`):

    ``request_timeout_s``
        Default hard per-request wall-clock budget from submission,
        enforced at tick boundaries: an expired request finishes with
        ``FINISH_TIMEOUT`` and its storage is released immediately.
        ``GenerationRequest.timeout_s`` overrides it per request;
        ``None`` (default) disables the engine-wide timeout.
    ``max_retries``
        Bounded retry budget for *transient* faults (injected
        transient forward/allocation faults, real forward exceptions):
        each retry replays the victim through the preemption recompute
        path; past the budget the sequence finishes with
        ``FINISH_ERROR``.
    ``check_invariants``
        Run :meth:`~repro.serve.engine.GenerationEngine.
        check_invariants` (pool refcounts, arena slot accounting, lane
        bookkeeping) at the end of every tick.  The test suite forces
        this on via the ``REPRO_SERVE_STRICT`` environment variable;
        production engines leave it off (the check is O(blocks) per
        tick).

    Observability (see :mod:`repro.serve.observe`):

    ``observe``
        Enable the tick-phase tracer and per-request lifecycle
        timelines (default on — a span costs two clock reads, gated
        to <= 1.05x steady-state overhead by ``bench_observability``).
        ``False`` makes the tracing layer a no-op; the metrics
        registry behind :meth:`~repro.serve.engine.GenerationEngine.
        stats` stays live either way (it *is* the engine's counters).
        Tracer clock reads never touch the engine's injectable clock,
        so scheduling — and therefore token output — is bit-identical
        with observability on or off.
    """

    max_batch_size: int = 8
    max_tokens_in_flight: int | None = None
    initial_cache_capacity: int = 64
    max_queue_len: int | None = None
    paged: bool = False
    block_tokens: int = 32
    num_blocks: int | None = None
    enable_prefix_cache: bool = True
    prefill_chunk_tokens: int | None = None
    max_tokens_per_tick: int | None = None
    scheduler_policy: str = "fcfs"
    request_timeout_s: float | None = None
    max_retries: int = 1
    check_invariants: bool = False
    observe: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_tokens_in_flight is not None and self.max_tokens_in_flight < 1:
            raise ValueError("max_tokens_in_flight must be >= 1 (or None)")
        if self.initial_cache_capacity < 1:
            raise ValueError("initial_cache_capacity must be >= 1")
        if self.max_queue_len is not None and self.max_queue_len < 1:
            raise ValueError("max_queue_len must be >= 1 (or None)")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if self.num_blocks is not None and self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1 (or None)")
        if self.prefill_chunk_tokens is not None:
            if self.prefill_chunk_tokens < 1:
                raise ValueError("prefill_chunk_tokens must be >= 1 (or None)")
            if self.paged and self.prefill_chunk_tokens % self.block_tokens:
                raise ValueError(
                    f"prefill_chunk_tokens={self.prefill_chunk_tokens} must be "
                    f"a multiple of block_tokens ({self.block_tokens}) so every "
                    "non-final chunk fills whole pages and never straddles a "
                    "temporal quantization group"
                )
        if self.max_tokens_per_tick is not None:
            if self.prefill_chunk_tokens is None:
                raise ValueError(
                    "max_tokens_per_tick requires prefill_chunk_tokens (the "
                    "budget throttles the chunked-prefill mixed tick)"
                )
            if self.max_tokens_per_tick < self.prefill_chunk_tokens:
                raise ValueError(
                    f"max_tokens_per_tick ({self.max_tokens_per_tick}) must be "
                    f">= prefill_chunk_tokens ({self.prefill_chunk_tokens}) so "
                    "a tick with no decode rows still fits one chunk"
                )
        if self.request_timeout_s is not None and not self.request_timeout_s > 0:
            raise ValueError(
                f"request_timeout_s must be > 0 seconds (or None), got "
                f"{self.request_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.scheduler_policy not in POLICIES:
            raise ValueError(
                f"unknown scheduler_policy {self.scheduler_policy!r}; "
                f"available: {sorted(POLICIES)}"
            )

    # ------------------------------------------------------------------
    # Presets.  ``paged`` the classmethod is attached after the class
    # body (below) because the field of the same name would otherwise
    # shadow it during dataclass processing.
    # ------------------------------------------------------------------
    @classmethod
    def arena(cls, **overrides) -> "ServeConfig":
        """Contiguous arena backend (the default engine shape)."""
        overrides.setdefault("paged", False)
        return cls(**overrides)

    @classmethod
    def chunked(cls, **overrides) -> "ServeConfig":
        """Paged storage + chunked mixed-tick prefill.

        Defaults ``block_tokens=32``, ``prefill_chunk_tokens=32`` and
        ``max_tokens_per_tick=64`` — the shapes the chunked benchmarks
        gate — all overridable.
        """
        overrides.setdefault("paged", True)
        overrides.setdefault("block_tokens", 32)
        overrides.setdefault("prefill_chunk_tokens", overrides["block_tokens"])
        overrides.setdefault(
            "max_tokens_per_tick", 2 * overrides["prefill_chunk_tokens"]
        )
        return cls(**overrides)

    def with_policy(self, scheduler_policy: str) -> "ServeConfig":
        """Same configuration under a different scheduling policy."""
        return replace(self, scheduler_policy=scheduler_policy)


def _paged_preset(cls, **overrides) -> ServeConfig:
    """vLLM-style paged backend (block pool + prefix sharing)."""
    overrides.setdefault("paged", True)
    return cls(**overrides)


# The dataclass field ``paged`` claims the name inside the class body,
# so the preset is attached afterwards; instances still read the field
# (instance attribute) while ``ServeConfig.paged(...)`` resolves to the
# classmethod.
_paged_preset.__name__ = "paged"
ServeConfig.paged = classmethod(_paged_preset)
