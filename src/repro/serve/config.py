"""Serving configuration: one validated, frozen knob surface.

:class:`ServeConfig` is the single source of truth for every engine and
scheduler knob — storage backend (arena vs paged), admission budgets,
chunked-prefill shape, and (new in the v2 API) the pluggable
``scheduler_policy``.  All cross-field validation lives here, in
``__post_init__``, so an invalid configuration fails at construction
instead of mid-tick; the only checks left elsewhere are the ones that
need a live cache instance (chunk/window and block/window alignment,
performed by the engine via :func:`~repro.quant.kvcache.
validate_chunk_compat` / :func:`~repro.serve.paging.validate_block_compat`).

Named presets cover the three standard shapes::

    ServeConfig.arena()      # contiguous per-slot slabs (the default)
    ServeConfig.paged()      # vLLM-style block pool + prefix sharing
    ServeConfig.chunked()    # paged + Sarathi-style mixed-tick prefill

each accepting any field as a keyword override, e.g.
``ServeConfig.chunked(max_batch_size=16, scheduler_policy="priority")``.

``repro.serve.scheduler.ServeConfig`` remains importable as a
deprecated alias of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.serve.policy import POLICIES

__all__ = ["ServeConfig", "FleetConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Engine/scheduler knobs.

    ``max_tokens_in_flight = None`` disables the token budget (the
    batch-size cap alone bounds concurrency).  ``max_queue_len = None``
    leaves the waiting queue unbounded.

    ``scheduler_policy`` names the :class:`~repro.serve.policy.
    SchedulerPolicy` ordering every queue/chunk/preemption decision:
    ``"fcfs"`` (default — bit-for-bit the pre-policy engine),
    ``"priority"`` (strict :attr:`~repro.serve.request.
    GenerationRequest.priority` with FCFS tiebreak) or ``"deadline"``
    (EDF over ``GenerationRequest.deadline_s`` with starvation-free
    aging).

    Paging (``paged=True`` — see :mod:`repro.serve.paging`):

    ``block_tokens``
        Page size in tokens.  Must be a multiple of the cache's
        temporal quantization group (the MANT V window) so per-page
        quantization is bit-identical to the flat caches.
    ``num_blocks``
        Pool size.  ``None`` sizes it for the worst case
        (``ceil(max_seq / block_tokens) × max_batch_size``); smaller
        values enable real admission control, on-demand growth and
        preemption under memory pressure.
    ``enable_prefix_cache``
        Deduplicate identical full prompt-prefix pages across requests
        (hash-chained, copy-on-write protected).

    Chunked prefill (the mixed prefill+decode tick):

    ``prefill_chunk_tokens``
        Split each admitted prompt into chunks of this many tokens and
        run them through the batched mixed tick alongside the decode
        rows, instead of prefilling each prompt whole and alone at
        admission.  Must be a multiple of the cache's temporal
        quantization window (the MANT V window; checked at engine
        construction) — and of ``block_tokens`` when paged — so chunk
        boundaries always land on quantization-group boundaries and
        chunked output stays token-identical to unchunked.  ``None``
        (default) keeps the whole-prompt prefill path.
    ``max_tokens_per_tick``
        Sarathi-style per-tick token budget for the mixed tick: the
        decode rows (one token each) are charged first, and prefill
        chunks are only scheduled into what remains, keeping every
        tick's forward-pass cost — and therefore decode inter-token
        latency — bounded regardless of prompt length.  Requires
        ``prefill_chunk_tokens`` and must be at least as large, so an
        all-prefill tick always makes progress.  ``None`` leaves tick
        size bounded only by one chunk per prefilling sequence.

    Fault tolerance (see :mod:`repro.serve.faults`):

    ``request_timeout_s``
        Default hard per-request wall-clock budget from submission,
        enforced at tick boundaries: an expired request finishes with
        ``FINISH_TIMEOUT`` and its storage is released immediately.
        ``GenerationRequest.timeout_s`` overrides it per request;
        ``None`` (default) disables the engine-wide timeout.
    ``max_retries``
        Bounded retry budget for *transient* faults (injected
        transient forward/allocation faults, real forward exceptions):
        each retry replays the victim through the preemption recompute
        path; past the budget the sequence finishes with
        ``FINISH_ERROR``.
    ``check_invariants``
        Run :meth:`~repro.serve.engine.GenerationEngine.
        check_invariants` (pool refcounts, arena slot accounting, lane
        bookkeeping) at the end of every tick.  The test suite forces
        this on via the ``REPRO_SERVE_STRICT`` environment variable;
        production engines leave it off (the check is O(blocks) per
        tick).

    Observability (see :mod:`repro.serve.observe`):

    ``observe``
        Enable the tick-phase tracer and per-request lifecycle
        timelines (default on — a span costs two clock reads, gated
        to <= 1.05x steady-state overhead by ``bench_observability``).
        ``False`` makes the tracing layer a no-op; the metrics
        registry behind :meth:`~repro.serve.engine.GenerationEngine.
        stats` stays live either way (it *is* the engine's counters).
        Tracer clock reads never touch the engine's injectable clock,
        so scheduling — and therefore token output — is bit-identical
        with observability on or off.
    """

    max_batch_size: int = 8
    max_tokens_in_flight: int | None = None
    initial_cache_capacity: int = 64
    max_queue_len: int | None = None
    paged: bool = False
    block_tokens: int = 32
    num_blocks: int | None = None
    enable_prefix_cache: bool = True
    prefill_chunk_tokens: int | None = None
    max_tokens_per_tick: int | None = None
    scheduler_policy: str = "fcfs"
    request_timeout_s: float | None = None
    max_retries: int = 1
    check_invariants: bool = False
    observe: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_tokens_in_flight is not None and self.max_tokens_in_flight < 1:
            raise ValueError("max_tokens_in_flight must be >= 1 (or None)")
        if self.initial_cache_capacity < 1:
            raise ValueError("initial_cache_capacity must be >= 1")
        if self.max_queue_len is not None and self.max_queue_len < 1:
            raise ValueError("max_queue_len must be >= 1 (or None)")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if self.num_blocks is not None and self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1 (or None)")
        if self.prefill_chunk_tokens is not None:
            if self.prefill_chunk_tokens < 1:
                raise ValueError("prefill_chunk_tokens must be >= 1 (or None)")
            if self.paged and self.prefill_chunk_tokens % self.block_tokens:
                raise ValueError(
                    f"prefill_chunk_tokens={self.prefill_chunk_tokens} must be "
                    f"a multiple of block_tokens ({self.block_tokens}) so every "
                    "non-final chunk fills whole pages and never straddles a "
                    "temporal quantization group"
                )
        if self.max_tokens_per_tick is not None:
            if self.prefill_chunk_tokens is None:
                raise ValueError(
                    "max_tokens_per_tick requires prefill_chunk_tokens (the "
                    "budget throttles the chunked-prefill mixed tick)"
                )
            if self.max_tokens_per_tick < self.prefill_chunk_tokens:
                raise ValueError(
                    f"max_tokens_per_tick ({self.max_tokens_per_tick}) must be "
                    f">= prefill_chunk_tokens ({self.prefill_chunk_tokens}) so "
                    "a tick with no decode rows still fits one chunk"
                )
        if self.request_timeout_s is not None and not self.request_timeout_s > 0:
            raise ValueError(
                f"request_timeout_s must be > 0 seconds (or None), got "
                f"{self.request_timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.scheduler_policy not in POLICIES:
            raise ValueError(
                f"unknown scheduler_policy {self.scheduler_policy!r}; "
                f"available: {sorted(POLICIES)}"
            )

    # ------------------------------------------------------------------
    # Presets.  ``paged`` the classmethod is attached after the class
    # body (below) because the field of the same name would otherwise
    # shadow it during dataclass processing.
    # ------------------------------------------------------------------
    @classmethod
    def arena(cls, **overrides) -> "ServeConfig":
        """Contiguous arena backend (the default engine shape)."""
        overrides.setdefault("paged", False)
        return cls(**overrides)

    @classmethod
    def chunked(cls, **overrides) -> "ServeConfig":
        """Paged storage + chunked mixed-tick prefill.

        Defaults ``block_tokens=32``, ``prefill_chunk_tokens=32`` and
        ``max_tokens_per_tick=64`` — the shapes the chunked benchmarks
        gate — all overridable.
        """
        overrides.setdefault("paged", True)
        overrides.setdefault("block_tokens", 32)
        overrides.setdefault("prefill_chunk_tokens", overrides["block_tokens"])
        overrides.setdefault(
            "max_tokens_per_tick", 2 * overrides["prefill_chunk_tokens"]
        )
        return cls(**overrides)

    def with_policy(self, scheduler_policy: str) -> "ServeConfig":
        """Same configuration under a different scheduling policy."""
        return replace(self, scheduler_policy=scheduler_policy)


@dataclass(frozen=True)
class FleetConfig:
    """Knob surface of the multi-replica :class:`~repro.serve.fleet.
    FleetRouter` (every replica shares one :class:`ServeConfig`).

    Routing:

    ``n_replicas``
        In-process :class:`~repro.serve.engine.GenerationEngine`
        replicas the router owns.
    ``affinity_tokens``
        Prompt-head length hashed for prefix-affinity routing: requests
        sharing their first ``affinity_tokens`` ids land on the same
        replica (whose block pool already holds those prefix pages).
        ``0`` disables affinity (pure least-loaded routing).
    ``affinity_load_slack``
        Load-based fallback threshold: if the affinity target holds
        this many more queued+running requests than the least-loaded
        admitting replica, the request falls back to the latter
        (affinity never overrides a replica that is drowning).

    Health / circuit breaker (evaluated every router tick — the probe
    tick — from each replica's own metrics registry):

    ``degrade_errors``
        Failed+timed-out requests since the replica's last clean window
        that mark it DEGRADED (routed to only when no healthy replica
        admits).
    ``quarantine_errors``
        Error budget whose burn trips the breaker: the replica goes
        QUARANTINED (breaker open, no new admissions) for
        ``breaker_open_s``, then half-open — one probe request is
        admitted, and its outcome closes the breaker (HEALTHY, budgets
        reset) or re-opens it.
    ``breaker_open_s``
        Seconds the breaker stays open before the half-open probe.
    ``error_window_s``
        A replica with no new errors for this long gets its budget
        counters re-anchored (old errors age out).

    Hedging:

    ``hedge_after_s``
        Explicit straggler delay: a request with no first token after
        this many seconds is duplicated onto a second replica, first
        finisher wins, loser cancelled.  ``None`` derives the delay
        from observed TTFTs instead (below) — if those are also
        unavailable, hedging is off.
    ``hedge_ttft_percentile``
        Fleet-wide TTFT percentile used as the hedge delay when
        ``hedge_after_s`` is ``None`` (e.g. ``95.0``).  ``None``
        disables percentile-derived hedging.
    ``hedge_min_samples``
        Observed TTFTs required before the percentile is trusted.

    Crash recovery:

    ``snapshot_interval_s``
        Period of per-replica background snapshots written to
        ``snapshot_dir`` with keep-last-``snapshot_keep`` rotation;
        ``None`` disables disk snapshots (crash recovery then replays
        purely from the router's live token journal — still exact for
        greedy requests, but sampled requests restart their RNG
        streams).
    ``snapshot_dir`` / ``snapshot_keep``
        Rotation directory (one subdirectory per replica) and depth.
    """

    n_replicas: int = 2
    affinity_tokens: int = 16
    affinity_load_slack: int = 4
    degrade_errors: int = 2
    quarantine_errors: int = 5
    breaker_open_s: float = 1.0
    error_window_s: float = 60.0
    hedge_after_s: float | None = None
    hedge_ttft_percentile: float | None = None
    hedge_min_samples: int = 32
    snapshot_interval_s: float | None = None
    snapshot_dir: str | None = None
    snapshot_keep: int = 3

    def __post_init__(self):
        if self.n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {self.n_replicas}")
        if self.affinity_tokens < 0:
            raise ValueError("affinity_tokens must be >= 0")
        if self.affinity_load_slack < 0:
            raise ValueError("affinity_load_slack must be >= 0")
        if self.degrade_errors < 1:
            raise ValueError("degrade_errors must be >= 1")
        if self.quarantine_errors < self.degrade_errors:
            raise ValueError(
                f"quarantine_errors ({self.quarantine_errors}) must be >= "
                f"degrade_errors ({self.degrade_errors})")
        if not self.breaker_open_s > 0:
            raise ValueError("breaker_open_s must be > 0 seconds")
        if not self.error_window_s > 0:
            raise ValueError("error_window_s must be > 0 seconds")
        if self.hedge_after_s is not None and not self.hedge_after_s > 0:
            raise ValueError("hedge_after_s must be > 0 seconds (or None)")
        if (self.hedge_ttft_percentile is not None
                and not 0 < self.hedge_ttft_percentile <= 100):
            raise ValueError(
                "hedge_ttft_percentile must be in (0, 100] (or None)")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")
        if (self.snapshot_interval_s is not None
                and not self.snapshot_interval_s > 0):
            raise ValueError("snapshot_interval_s must be > 0 seconds (or None)")
        if self.snapshot_interval_s is not None and self.snapshot_dir is None:
            raise ValueError("snapshot_interval_s requires snapshot_dir")
        if self.snapshot_keep < 1:
            raise ValueError(f"snapshot_keep must be >= 1, got {self.snapshot_keep}")


def _paged_preset(cls, **overrides) -> ServeConfig:
    """vLLM-style paged backend (block pool + prefix sharing)."""
    overrides.setdefault("paged", True)
    return cls(**overrides)


# The dataclass field ``paged`` claims the name inside the class body,
# so the preset is attached afterwards; instances still read the field
# (instance attribute) while ``ServeConfig.paged(...)`` resolves to the
# classmethod.
_paged_preset.__name__ = "paged"
ServeConfig.paged = classmethod(_paged_preset)
