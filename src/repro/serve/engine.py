"""Continuous-batching generation engine over pooled quantized KV caches.

The engine turns the repo's single-stream ``prefill``/``decode_step``
generation into multi-tenant serving:

* clients :meth:`~GenerationEngine.submit` concurrent
  :class:`GenerationRequest`s;
* an FCFS :class:`~repro.serve.scheduler.Scheduler` admits them into a
  dynamic decode batch (new requests join as others finish) under a
  batch-size cap and either a KV token budget (arena mode) or actual
  free pages (paged mode, prefix-aware: pages a prefix-cache match
  covers are not charged);
* each :meth:`~GenerationEngine.step` runs *one* fused tick for every
  running sequence, each attending through its own pooled
  FP16/INT/MANT cache at its own position.  With
  ``ServeConfig.prefill_chunk_tokens`` set, admitted prompts do not
  prefill whole and alone: they are split into window-aligned chunks
  and each tick packs the decode rows *plus* a token-budgeted set of
  prefill chunks (``max_tokens_per_tick``, Sarathi-style) into one
  :meth:`~repro.model.transformer.TransformerLM.forward_mixed` call —
  prefill FLOPs batch across requests and with decode, and a long
  prompt can no longer stall every in-flight decode for a whole tick;
* tokens stream out per request through :class:`TokenEvent`s (iterator
  via :meth:`run`, or a per-request ``on_token`` callback), optionally
  carrying incremental text from a pluggable ``detokenize`` callback;
  per-request TTFT and inter-token latencies aggregate into
  :class:`EngineStats` percentiles.

Two storage backends share this loop:

* **Arena** (default): contiguous per-slot slabs
  (:class:`~repro.quant.kvcache.KVCacheArena`), one slot per batch lane.
* **Paged** (``ServeConfig(paged=True)``): fixed-size pages from a
  :class:`~repro.serve.paging.BlockPool` — admission on actually-free
  blocks instead of worst-case token budgets, on-demand page allocation
  each tick, hash-based prefix sharing of identical full prompt pages,
  and preemption-by-recompute (youngest first, back to the queue head)
  when the pool runs dry mid-decode.

Determinism guarantee: the batched decode path is bit-identical per
sequence to the single-stream loop and every request samples from its
own seeded RNG, so a request's output never depends on which other
requests shared its batch — greedy engine output == the plain
``prefill`` + ``decode_step`` loop, token for token, for every cache
type and for both storage backends.  Chunked mode keeps this at token
granularity: chunk boundaries land on quantization-window boundaries
by construction, so the caches' quantized contents are chunk-invariant,
while the packed GEMMs may wobble in the last float ulp (BLAS kernels
are not bitwise row-count-invariant) — greedy output stays identical
token for token, and decode-only ticks still route through
``decode_step_batch`` unchanged.  (Preemption is the one exception: a
preempted request's suffix is *recomputed* through the prefill path,
which re-quantizes decode-staged MANT windows from scratch — the same
trade every recompute-based paged server makes.  A preempted
half-prefilled prompt simply replays from token zero.)
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.model.transformer import MixedSegment
from repro.quant.kvcache import KVCacheArena, validate_chunk_compat
from repro.serve.paging import BlockPool, PoolExhausted, validate_block_compat
from repro.serve.request import (
    FINISH_LENGTH,
    FINISH_STOP,
    GenerationRequest,
    GenerationResult,
    PrefillCursor,
    TokenEvent,
)
from repro.sampling import Sampler
from repro.serve.scheduler import QueueFullError, Scheduler, ServeConfig

__all__ = ["GenerationEngine", "EngineStats"]

# Samples retained per latency histogram (TTFT / inter-token); the
# EngineStats percentiles describe the most recent window of traffic.
LATENCY_WINDOW = 4096


class _Sequence:
    """Engine-internal state of one in-flight request."""

    __slots__ = (
        "request", "sampler", "on_token", "lease", "pos", "next_token",
        "tokens", "finished", "finish_reason", "decode_steps",
        "submit_time", "admit_time", "resuming", "text_len",
        "cursor", "pending_ids", "prefill_chunks",
        "first_token_time", "last_token_time",
    )

    def __init__(self, request: GenerationRequest, on_token, submit_time: float):
        self.request = request
        self.sampler = Sampler(request.sampling)
        self.on_token = on_token
        self.lease = None
        self.pos = 0
        self.next_token = None
        self.tokens: list[int] = []
        self.finished = False
        self.finish_reason: str | None = None
        self.decode_steps = 0
        self.submit_time = submit_time
        self.admit_time = float("nan")
        self.resuming = False        # preempted: rebuild cache, don't re-emit
        self.text_len = 0            # detokenized chars already streamed
        self.cursor: PrefillCursor | None = None   # chunked prefill progress
        self.pending_ids = None      # ids the in-flight chunked prefill covers
        self.prefill_chunks = 0      # forward passes this request's prompt took
        self.first_token_time = float("nan")       # TTFT endpoint
        self.last_token_time = float("nan")        # inter-token latency anchor

    @property
    def prefill_len(self) -> int:
        """Tokens the next prefill must run (grows after preemption)."""
        n = int(self.request.prompt.size)
        if self.resuming:
            n += max(0, len(self.tokens) - 1)
        return n

    def prefill_ids(self) -> np.ndarray:
        """Prompt ids — plus already-generated tokens when resuming.

        ``tokens[-1]`` (== ``next_token``) is excluded: it has been
        emitted but not yet fed, exactly as in the uninterrupted loop.
        """
        prompt = self.request.prompt
        if self.resuming and len(self.tokens) > 1:
            return np.concatenate(
                [prompt, np.asarray(self.tokens[:-1], dtype=np.int64)]
            )
        return prompt


@dataclass(frozen=True)
class EngineStats:
    """Aggregate serving statistics since engine construction."""

    requests_submitted: int
    requests_completed: int
    requests_queued: int
    requests_running: int
    requests_rejected: int        # submit-time backpressure/budget rejections
    tokens_generated: int
    decode_ticks: int
    mean_batch_occupancy: float   # sequences per decode tick
    elapsed_s: float              # time spent inside step(), idle gaps excluded
    tokens_per_s: float           # aggregate serving throughput over elapsed_s
    mean_queue_latency_s: float
    max_queue_latency_s: float
    cache_slots: int              # arena slots, or pool blocks when paged
    cache_slots_high_water: int
    preemptions: int              # paged: sequences bumped back to the queue
    prefix_hit_tokens: int        # paged: prompt tokens served from shared pages
    prefill_chunks: int           # chunked mode: prompt chunks run in mixed ticks
    ttft_p50_s: float             # submit -> first token percentiles (NaN if none)
    ttft_p95_s: float
    inter_token_p50_s: float      # gap between consecutive tokens of one request
    inter_token_p95_s: float


class GenerationEngine:
    """Schedule many :class:`GenerationRequest`s through one model.

    ``cache_factory`` builds one buffered KV cache (FP16/INT/MANT —
    anything the pooled storage backends can carve); the engine owns
    either a :class:`~repro.quant.kvcache.KVCacheArena` (one slot per
    batch lane) or, with ``config.paged``, a
    :class:`~repro.serve.paging.BlockPool` of fixed-size pages shared
    by all lanes.  ``weights``/``act_quant`` are the usual quantization
    hooks, applied identically to every request.  ``detokenize`` is an
    optional ``(token_ids) -> str`` callback; when given, every emitted
    :class:`TokenEvent` carries the incremental ``text`` suffix.
    """

    def __init__(
        self,
        model,
        cache_factory,
        config: ServeConfig = ServeConfig(),
        weights=None,
        act_quant=None,
        clock=time.perf_counter,
        detokenize=None,
    ):
        self.model = model
        self.config = config
        self.weights = weights
        self.act_quant = act_quant
        self._clock = clock
        self._detokenize = detokenize
        self._cache_factory = cache_factory
        self.scheduler = Scheduler(config)
        if config.prefill_chunk_tokens is not None:
            # Paged mode implies window alignment transitively (chunk is
            # a multiple of block_tokens, block_tokens of the window),
            # but the explicit check gives arena engines the same error.
            validate_chunk_compat(cache_factory(), config.prefill_chunk_tokens)
        if config.paged:
            validate_block_compat(cache_factory(), config.block_tokens)
            num_blocks = config.num_blocks
            if num_blocks is None:
                # Worst case (arena-equivalent capacity); smaller pools
                # turn on real admission control and preemption.
                num_blocks = (
                    math.ceil(model.config.max_seq / config.block_tokens)
                    * config.max_batch_size
                )
            self.pool = BlockPool(
                n_layers=model.config.n_layers,
                block_tokens=config.block_tokens,
                num_blocks=num_blocks,
                enable_prefix_cache=config.enable_prefix_cache,
            )
            self.arena = None
            self.scheduler.bind_block_gauge(
                lambda: self.pool.blocks_available, config.block_tokens,
                prefix_probe=(
                    self.pool.probe_prefix if config.enable_prefix_cache else None
                ),
            )
        else:
            self.pool = None
            self.arena = KVCacheArena(
                n_layers=model.config.n_layers,
                cache_factory=cache_factory,
                slots=config.max_batch_size,
                initial_capacity=config.initial_cache_capacity,
            )
        self._results: dict[str, GenerationResult] = {}
        self._active_ids: set[str] = set()
        self._submitted = 0
        self._completed = 0
        self._rejected = 0
        self._preemptions = 0
        self._tokens_generated = 0
        self._decode_ticks = 0
        self._occupancy_sum = 0
        self._lat_sum = 0.0
        self._lat_max = 0.0
        self._busy_s = 0.0
        self._prefill_chunks = 0
        # Rolling latency windows: long-lived servers emit unboundedly
        # many tokens, so percentiles are over the most recent samples
        # and stats() stays O(window), not O(tokens ever served).
        self._ttfts: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._itls: deque[float] = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: GenerationRequest, on_token=None) -> str:
        """Queue a request; returns its id.  ``on_token(event)`` streams.

        Raises on capacity rejection — worst case over the model's
        ``max_seq``, over the token budget, over the paged pool's total
        size, or a full queue (:class:`QueueFullError`); rejections are
        counted in :class:`EngineStats`.
        """
        rid = request.request_id
        if rid in self._active_ids or rid in self._results:
            raise ValueError(f"duplicate request_id {rid!r}")
        try:
            max_seq = self.model.config.max_seq
            if request.token_footprint > max_seq:
                raise ValueError(
                    f"request {rid!r} needs {request.token_footprint} positions, "
                    f"over the model's max_seq of {max_seq}"
                )
            if self.pool is not None:
                pages = -(-request.token_footprint // self.pool.block_tokens)
                if pages > self.pool.num_blocks:
                    raise ValueError(
                        f"request {rid!r} can need {pages} pages, over the "
                        f"pool's num_blocks of {self.pool.num_blocks} — it "
                        "could never be scheduled"
                    )
            seq = _Sequence(request, on_token, self._clock())
            self.scheduler.submit(seq)   # may reject (budget / queue full)
        except (ValueError, QueueFullError):
            self._rejected += 1
            raise
        self._active_ids.add(rid)
        self._submitted += 1
        return rid

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def step(self) -> list[TokenEvent]:
        """One engine tick: admit, one fused forward, retire finished.

        Unchunked (``prefill_chunk_tokens is None``): admitted prompts
        prefill whole at admission, then every live sequence rides one
        ``decode_step_batch``.  Chunked: admission only leases cache
        storage and opens a :class:`~repro.serve.request.PrefillCursor`;
        the tick then packs the decode rows plus a token-budgeted set
        of prompt chunks into one ``forward_mixed`` call (pure-decode
        ticks keep the bit-exact ``decode_step_batch`` path).
        """
        if not self.scheduler.has_work():
            return []
        now = self._clock()
        events: list[TokenEvent] = []
        chunked = self.config.prefill_chunk_tokens is not None

        # 1. Admission, one request at a time (each admission's page
        # allocations must be visible to the next fit check).
        while (seq := self.scheduler.admit_one()) is not None:
            if math.isnan(seq.admit_time):
                seq.admit_time = now     # queue latency: first admission only
            ids = seq.prefill_ids()
            if self.pool is not None:
                seq.lease = self.pool.acquire(self._cache_factory)
                seq.lease.match_prefix(ids)
            else:
                seq.lease = self.arena.acquire()
            if chunked:
                # No forward yet — the prompt enters the chunk queue.
                seq.pending_ids = ids
                seq.cursor = PrefillCursor(ids.size)
            else:
                logits = self.model.prefill(
                    ids, seq.lease.caches,
                    weights=self.weights, act_quant=self.act_quant,
                )
                seq.pos = int(ids.size)
                seq.prefill_chunks += 1
                if self.pool is not None:
                    seq.lease.register_prefix(ids)
                self._finish_prefill(seq, logits, events)

        # 2. Plan this tick's work under the pool's block supply, then
        # run it as one fused forward.
        decode, chunks = self._plan_tick()
        if chunks:
            self._mixed_tick(decode, chunks, events)
        elif decode:
            self._decode_tick(decode, events)

        # 3. Retire finished sequences, recycling their cache storage.
        for seq in [s for s in self.scheduler.running if s.finished]:
            self._retire(seq)
        # Busy time accumulates per tick so throughput reflects time
        # spent serving, not idle gaps between bursts.
        self._busy_s += self._clock() - now
        return events

    # ------------------------------------------------------------------
    # Tick assembly
    # ------------------------------------------------------------------
    def _plan_tick(self):
        """Pick this tick's decode rows and prefill chunks; reserve pages.

        The decode rows are every running, unfinished, fully prefilled
        sequence; the chunk set comes from the scheduler's token-budget
        policy (decode tokens are charged against
        ``max_tokens_per_tick`` first).  Paged engines then check that
        the tick's page demands fit the pool — page *allocation* stays
        on demand inside the cache appends — preempting the youngest
        unfinished sequence (decoding or half-prefilled alike) back to
        the queue head until they do, instead of reserving worst-case
        ``prompt + max_tokens`` up front.
        """
        while True:
            running = self.scheduler.running
            decode = [s for s in running if not s.finished and s.cursor is None]
            prefilling = [s for s in running if s.cursor is not None]
            budget = math.inf
            if self.config.max_tokens_per_tick is not None:
                budget = max(0, self.config.max_tokens_per_tick - len(decode))
            chunks = self.scheduler.plan_chunks(prefilling, budget) if prefilling else []
            if self.pool is None:
                return decode, chunks
            need = sum(s.lease.new_pages_for(s.pos + 1) for s in decode)
            need += sum(s.lease.new_pages_for(s.cursor.done + n) for s, n in chunks)
            if need <= self.pool.blocks_available:
                return decode, chunks
            victims = [s for s in running if not s.finished]
            if len(victims) <= 1:
                # Cannot happen for pools that passed the submit-time
                # size check unless shared pages are pinned elsewhere.
                raise PoolExhausted(
                    "BlockPool exhausted with a single running sequence: "
                    f"{self.pool.blocks_available} blocks free, {need} needed"
                )
            self._preempt(victims[-1])   # youngest admitted first

    def _decode_tick(self, live: list, events: list) -> None:
        """One fused ``decode_step_batch`` over every decode row —
        unchanged from the pre-chunking engine, so decode-only ticks
        stay bit-identical to the single-stream loop."""
        logits = self.model.decode_step_batch(
            [s.next_token for s in live],
            [s.lease.caches for s in live],
            [s.pos for s in live],
            weights=self.weights, act_quant=self.act_quant,
        )
        self._decode_ticks += 1
        self._occupancy_sum += len(live)
        for b, seq in enumerate(live):
            seq.pos += 1
            seq.decode_steps += 1
            self._emit(seq, seq.sampler.sample(logits[b]), events)

    def _mixed_tick(self, decode: list, chunks: list, events: list) -> None:
        """One packed ``forward_mixed`` over decode rows + prompt chunks."""
        segments = [
            MixedSegment([s.next_token], s.lease.caches, s.pos, MixedSegment.DECODE)
            for s in decode
        ]
        for seq, n in chunks:
            start = seq.cursor.done
            final = start + n == seq.cursor.total
            segments.append(MixedSegment(
                seq.pending_ids[start : start + n], seq.lease.caches, start,
                MixedSegment.CHUNK_FINAL if final else MixedSegment.CHUNK,
            ))
        outs = self.model.forward_mixed(
            segments, weights=self.weights, act_quant=self.act_quant,
        )
        if decode:
            self._decode_ticks += 1
            self._occupancy_sum += len(decode)
        for seq, logits in zip(decode, outs):
            seq.pos += 1
            seq.decode_steps += 1
            self._emit(seq, seq.sampler.sample(logits), events)
        for (seq, n), logits in zip(chunks, outs[len(decode):]):
            seq.cursor.advance(n)
            seq.prefill_chunks += 1
            self._prefill_chunks += 1
            if seq.cursor.complete:
                seq.pos = seq.cursor.total
                if self.pool is not None:
                    seq.lease.register_prefix(seq.pending_ids)
                seq.cursor = None
                seq.pending_ids = None
                self._finish_prefill(seq, logits, events)

    def _finish_prefill(self, seq: _Sequence, logits, events: list) -> None:
        """Prompt fully in cache: sample the first token (or resume)."""
        if seq.resuming:
            # Preempted sequence: the cache is rebuilt, the next token
            # was already sampled and emitted before eviction.
            seq.resuming = False
        else:
            self._emit(seq, seq.sampler.sample(logits), events)

    def _preempt(self, seq: _Sequence) -> None:
        self.scheduler.requeue_front(seq)
        lease, seq.lease = seq.lease, None
        lease.release()
        # Discard any chunked-prefill progress: the evicted pages are
        # gone, so resume must rebuild a cursor over the whole (by then
        # grown) prompt via prefill_len and replay it from token zero.
        seq.cursor = None
        seq.pending_ids = None
        # Mid-prefill victims emitted nothing yet — their re-admission
        # is a plain first prefill, not a resume.
        seq.resuming = bool(seq.tokens)
        self._preemptions += 1

    def _emit(self, seq: _Sequence, token: int, events: list[TokenEvent]) -> None:
        """Record one sampled token, deciding emission and finish state."""
        rid = seq.request.request_id
        if token in seq.request.stop_tokens:
            seq.finished = True
            seq.finish_reason = FINISH_STOP
            event = TokenEvent(rid, None, len(seq.tokens), True, FINISH_STOP)
        else:
            seq.tokens.append(token)
            seq.next_token = token
            if len(seq.tokens) >= seq.request.max_tokens:
                seq.finished = True
                seq.finish_reason = FINISH_LENGTH
            text = None
            if self._detokenize is not None:
                full = self._detokenize(list(seq.tokens))
                text = full[seq.text_len:]
                seq.text_len = len(full)
            event = TokenEvent(
                rid, token, len(seq.tokens) - 1, seq.finished, seq.finish_reason,
                text,
            )
        if event.token is not None:
            # Latency histograms: TTFT on the first emitted token,
            # inter-token gaps between consecutive ones.
            t_emit = self._clock()
            if math.isnan(seq.first_token_time):
                seq.first_token_time = t_emit
                self._ttfts.append(t_emit - seq.submit_time)
            else:
                self._itls.append(t_emit - seq.last_token_time)
            seq.last_token_time = t_emit
        self._tokens_generated += event.token is not None
        events.append(event)
        if seq.on_token is not None:
            seq.on_token(event)

    def _retire(self, seq: _Sequence) -> None:
        now = self._clock()
        self.scheduler.release(seq)
        if self.pool is not None:
            seq.lease.release()
        else:
            self.arena.release(seq.lease)
        rid = seq.request.request_id
        self._active_ids.discard(rid)
        latency = seq.admit_time - seq.submit_time
        self._completed += 1
        self._lat_sum += latency
        self._lat_max = max(self._lat_max, latency)
        self._results[rid] = GenerationResult(
            request_id=rid,
            tokens=seq.tokens,
            finish_reason=seq.finish_reason,
            queue_latency_s=latency,
            service_time_s=now - seq.admit_time,
            decode_steps=seq.decode_steps,
            ttft_s=seq.first_token_time - seq.submit_time,
            prefill_chunks=seq.prefill_chunks,
        )

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        return self.scheduler.has_work()

    def run(self, requests=()):
        """Submit ``requests`` then step until idle, yielding every event."""
        for request in requests:
            self.submit(request)
        while self.has_work():
            yield from self.step()

    def generate(self, requests=()) -> dict[str, GenerationResult]:
        """Drain :meth:`run` and return results for the drained requests.

        With no ``requests``, drains already-submitted work and returns
        the results of the requests that finished *during this call*
        (results retained from earlier calls are not re-reported).
        """
        requests = list(requests)    # may be a generator; iterated twice
        ids = [r.request_id for r in requests]
        finished = []
        for event in self.run(requests):
            if event.finished:
                finished.append(event.request_id)
        return {rid: self._results[rid] for rid in (ids or finished)}

    def result(self, request_id: str) -> GenerationResult:
        return self._results[request_id]

    def pop_result(self, request_id: str) -> GenerationResult:
        """Retrieve and evict one finished request's result.

        Long-lived engines must consume results this way: retained
        results hold their token lists and reserve the request id, so a
        server that only ever reads with :meth:`result` grows without
        bound.  After eviction the id may be reused by a new request.
        """
        return self._results.pop(request_id)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    @staticmethod
    def _pctl(values, q: float) -> float:
        return float(np.percentile(list(values), q)) if values else float("nan")

    def stats(self) -> EngineStats:
        elapsed = self._busy_s
        if self.pool is not None:
            slots, high_water = self.pool.num_blocks, self.pool.high_water
            prefix_hits = self.pool.prefix_hit_tokens
        else:
            slots, high_water = self.arena.slots_total, self.arena.high_water
            prefix_hits = 0
        return EngineStats(
            requests_submitted=self._submitted,
            requests_completed=self._completed,
            requests_queued=self.scheduler.queue_depth,
            requests_running=self.scheduler.n_running,
            requests_rejected=self._rejected,
            tokens_generated=self._tokens_generated,
            decode_ticks=self._decode_ticks,
            mean_batch_occupancy=(
                self._occupancy_sum / self._decode_ticks if self._decode_ticks else 0.0
            ),
            elapsed_s=elapsed,
            tokens_per_s=self._tokens_generated / elapsed if elapsed > 0 else 0.0,
            mean_queue_latency_s=self._lat_sum / self._completed if self._completed else 0.0,
            max_queue_latency_s=self._lat_max,
            cache_slots=slots,
            cache_slots_high_water=high_water,
            preemptions=self._preemptions,
            prefix_hit_tokens=prefix_hits,
            prefill_chunks=self._prefill_chunks,
            ttft_p50_s=self._pctl(self._ttfts, 50),
            ttft_p95_s=self._pctl(self._ttfts, 95),
            inter_token_p50_s=self._pctl(self._itls, 50),
            inter_token_p95_s=self._pctl(self._itls, 95),
        )
