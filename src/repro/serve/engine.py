"""Continuous-batching generation engine over pooled quantized KV caches.

The engine turns the repo's single-stream ``prefill``/``decode_step``
generation into multi-tenant serving:

* clients :meth:`~GenerationEngine.submit` concurrent
  :class:`GenerationRequest`s;
* an FCFS :class:`~repro.serve.scheduler.Scheduler` admits them into a
  dynamic decode batch (new requests join as others finish) under a
  batch-size cap and an optional KV token budget;
* each :meth:`~GenerationEngine.step` runs *one* fused
  ``decode_step_batch`` tick for every running sequence, each attending
  through its own arena-backed FP16/INT/MANT cache at its own position;
* tokens stream out per request through :class:`TokenEvent`s (iterator
  via :meth:`run`, or a per-request ``on_token`` callback).

Determinism guarantee: the batched decode path is bit-identical per
sequence to the single-stream loop and every request samples from its
own seeded RNG, so a request's output never depends on which other
requests shared its batch — greedy engine output == the plain
``prefill`` + ``decode_step`` loop, token for token, for every cache
type.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.quant.kvcache import KVCacheArena
from repro.serve.request import (
    FINISH_LENGTH,
    FINISH_STOP,
    GenerationRequest,
    GenerationResult,
    TokenEvent,
)
from repro.sampling import Sampler
from repro.serve.scheduler import Scheduler, ServeConfig

__all__ = ["GenerationEngine", "EngineStats"]


class _Sequence:
    """Engine-internal state of one in-flight request."""

    __slots__ = (
        "request", "sampler", "on_token", "lease", "pos", "next_token",
        "tokens", "finished", "finish_reason", "decode_steps",
        "submit_time", "admit_time",
    )

    def __init__(self, request: GenerationRequest, on_token, submit_time: float):
        self.request = request
        self.sampler = Sampler(request.sampling)
        self.on_token = on_token
        self.lease = None
        self.pos = 0
        self.next_token = None
        self.tokens: list[int] = []
        self.finished = False
        self.finish_reason: str | None = None
        self.decode_steps = 0
        self.submit_time = submit_time
        self.admit_time = float("nan")


@dataclass(frozen=True)
class EngineStats:
    """Aggregate serving statistics since engine construction."""

    requests_submitted: int
    requests_completed: int
    requests_queued: int
    requests_running: int
    tokens_generated: int
    decode_ticks: int
    mean_batch_occupancy: float   # sequences per decode tick
    elapsed_s: float              # time spent inside step(), idle gaps excluded
    tokens_per_s: float           # aggregate serving throughput over elapsed_s
    mean_queue_latency_s: float
    max_queue_latency_s: float
    cache_slots: int
    cache_slots_high_water: int


class GenerationEngine:
    """Schedule many :class:`GenerationRequest`s through one model.

    ``cache_factory`` builds one buffered KV cache (FP16/INT/MANT —
    anything :class:`~repro.quant.kvcache.KVCacheArena` can pool); the
    engine owns an arena with one slot per batch lane and recycles
    slots as requests finish.  ``weights``/``act_quant`` are the usual
    quantization hooks, applied identically to every request.
    """

    def __init__(
        self,
        model,
        cache_factory,
        config: ServeConfig = ServeConfig(),
        weights=None,
        act_quant=None,
        clock=time.perf_counter,
    ):
        self.model = model
        self.config = config
        self.weights = weights
        self.act_quant = act_quant
        self._clock = clock
        self.scheduler = Scheduler(config)
        self.arena = KVCacheArena(
            n_layers=model.config.n_layers,
            cache_factory=cache_factory,
            slots=config.max_batch_size,
            initial_capacity=config.initial_cache_capacity,
        )
        self._results: dict[str, GenerationResult] = {}
        self._active_ids: set[str] = set()
        self._submitted = 0
        self._completed = 0
        self._tokens_generated = 0
        self._decode_ticks = 0
        self._occupancy_sum = 0
        self._lat_sum = 0.0
        self._lat_max = 0.0
        self._busy_s = 0.0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: GenerationRequest, on_token=None) -> str:
        """Queue a request; returns its id.  ``on_token(event)`` streams."""
        rid = request.request_id
        if rid in self._active_ids or rid in self._results:
            raise ValueError(f"duplicate request_id {rid!r}")
        max_seq = self.model.config.max_seq
        if request.token_footprint > max_seq:
            raise ValueError(
                f"request {rid!r} needs {request.token_footprint} positions, "
                f"over the model's max_seq of {max_seq}"
            )
        seq = _Sequence(request, on_token, self._clock())
        self.scheduler.submit(seq)   # may reject (e.g. over the token budget)
        self._active_ids.add(rid)
        self._submitted += 1
        return rid

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def step(self) -> list[TokenEvent]:
        """One engine tick: admit, one batched decode, retire finished."""
        if not self.scheduler.has_work():
            return []
        now = self._clock()
        events: list[TokenEvent] = []

        # 1. Admission: prefill newly admitted prompts one by one
        # (prompts are ragged) and emit their first sampled token.
        for seq in self.scheduler.admit():
            seq.admit_time = now
            seq.lease = self.arena.acquire()
            logits = self.model.prefill(
                seq.request.prompt, seq.lease.caches,
                weights=self.weights, act_quant=self.act_quant,
            )
            seq.pos = int(seq.request.prompt.size)
            self._emit(seq, seq.sampler.sample(logits), events)

        # 2. One fused decode tick across every live sequence.
        live = [s for s in self.scheduler.running if not s.finished]
        if live:
            logits = self.model.decode_step_batch(
                [s.next_token for s in live],
                [s.lease.caches for s in live],
                [s.pos for s in live],
                weights=self.weights, act_quant=self.act_quant,
            )
            self._decode_ticks += 1
            self._occupancy_sum += len(live)
            for b, seq in enumerate(live):
                seq.pos += 1
                seq.decode_steps += 1
                self._emit(seq, seq.sampler.sample(logits[b]), events)

        # 3. Retire finished sequences, recycling their cache slots.
        for seq in [s for s in self.scheduler.running if s.finished]:
            self._retire(seq)
        # Busy time accumulates per tick so throughput reflects time
        # spent serving, not idle gaps between bursts.
        self._busy_s += self._clock() - now
        return events

    def _emit(self, seq: _Sequence, token: int, events: list[TokenEvent]) -> None:
        """Record one sampled token, deciding emission and finish state."""
        rid = seq.request.request_id
        if token in seq.request.stop_tokens:
            seq.finished = True
            seq.finish_reason = FINISH_STOP
            event = TokenEvent(rid, None, len(seq.tokens), True, FINISH_STOP)
        else:
            seq.tokens.append(token)
            seq.next_token = token
            if len(seq.tokens) >= seq.request.max_tokens:
                seq.finished = True
                seq.finish_reason = FINISH_LENGTH
            event = TokenEvent(
                rid, token, len(seq.tokens) - 1, seq.finished, seq.finish_reason
            )
        self._tokens_generated += event.token is not None
        events.append(event)
        if seq.on_token is not None:
            seq.on_token(event)

    def _retire(self, seq: _Sequence) -> None:
        now = self._clock()
        self.scheduler.release(seq)
        self.arena.release(seq.lease)
        rid = seq.request.request_id
        self._active_ids.discard(rid)
        latency = seq.admit_time - seq.submit_time
        self._completed += 1
        self._lat_sum += latency
        self._lat_max = max(self._lat_max, latency)
        self._results[rid] = GenerationResult(
            request_id=rid,
            tokens=seq.tokens,
            finish_reason=seq.finish_reason,
            queue_latency_s=latency,
            service_time_s=now - seq.admit_time,
            decode_steps=seq.decode_steps,
        )

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        return self.scheduler.has_work()

    def run(self, requests=()):
        """Submit ``requests`` then step until idle, yielding every event."""
        for request in requests:
            self.submit(request)
        while self.has_work():
            yield from self.step()

    def generate(self, requests=()) -> dict[str, GenerationResult]:
        """Drain :meth:`run` and return results for the drained requests.

        With no ``requests``, drains already-submitted work and returns
        the results of the requests that finished *during this call*
        (results retained from earlier calls are not re-reported).
        """
        requests = list(requests)    # may be a generator; iterated twice
        ids = [r.request_id for r in requests]
        finished = []
        for event in self.run(requests):
            if event.finished:
                finished.append(event.request_id)
        return {rid: self._results[rid] for rid in (ids or finished)}

    def result(self, request_id: str) -> GenerationResult:
        return self._results[request_id]

    def pop_result(self, request_id: str) -> GenerationResult:
        """Retrieve and evict one finished request's result.

        Long-lived engines must consume results this way: retained
        results hold their token lists and reserve the request id, so a
        server that only ever reads with :meth:`result` grows without
        bound.  After eviction the id may be reused by a new request.
        """
        return self._results.pop(request_id)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        elapsed = self._busy_s
        return EngineStats(
            requests_submitted=self._submitted,
            requests_completed=self._completed,
            requests_queued=self.scheduler.queue_depth,
            requests_running=self.scheduler.n_running,
            tokens_generated=self._tokens_generated,
            decode_ticks=self._decode_ticks,
            mean_batch_occupancy=(
                self._occupancy_sum / self._decode_ticks if self._decode_ticks else 0.0
            ),
            elapsed_s=elapsed,
            tokens_per_s=self._tokens_generated / elapsed if elapsed > 0 else 0.0,
            mean_queue_latency_s=self._lat_sum / self._completed if self._completed else 0.0,
            max_queue_latency_s=self._lat_max,
            cache_slots=self.arena.slots_total,
            cache_slots_high_water=self.arena.high_water,
        )
