"""Continuous-batching generation engine over pooled quantized KV caches.

The engine turns the repo's single-stream ``prefill``/``decode_step``
generation into multi-tenant serving:

* clients :meth:`~GenerationEngine.submit` concurrent
  :class:`GenerationRequest`s and get back a
  :class:`~repro.serve.request.RequestHandle` (a ``str`` equal to the
  request id, with ``.stream()``/``.result()``/``.cancel()`` attached);
* a :class:`~repro.serve.scheduler.Scheduler` admits them into a
  dynamic decode batch (new requests join as others finish) under a
  batch-size cap and either a KV token budget (arena mode) or actual
  free pages (paged mode, prefix-aware: pages a prefix-cache match
  covers are not charged).  Every *ordering* decision — who admits
  first, who receives prefill chunks, who gets preempted — is
  delegated to the config's :class:`~repro.serve.policy.
  SchedulerPolicy` (FCFS by default, bit-for-bit the pre-policy
  engine; strict-priority and EDF-deadline policies ship alongside);
* each :meth:`~GenerationEngine.step` runs *one* fused tick for every
  running sequence, each attending through its own pooled
  FP16/INT/MANT cache at its own position.  With
  ``ServeConfig.prefill_chunk_tokens`` set, admitted prompts do not
  prefill whole and alone: they are split into window-aligned chunks
  and each tick packs the decode rows *plus* a token-budgeted set of
  prefill chunks (``max_tokens_per_tick``, Sarathi-style) into one
  :meth:`~repro.model.transformer.TransformerLM.forward_mixed` call;
* a request with ``n > 1`` prefills its prompt **once**; when the
  prefill completes, the engine forks the paged lease copy-on-write
  per extra sample (:meth:`~repro.serve.paging.PagedLease.fork`; the
  arena backend replays the prefill into a fresh slot instead), and
  every sample decodes as its own batch lane with an RNG stream
  derived from ``(seed, sample_index)``;
* requests can be :meth:`cancelled <GenerationEngine.cancel>` in any
  state — queued, mid-chunked-prefill, or decoding — releasing their
  blocks/arena slots and finishing with ``FINISH_CANCELLED``;
* tokens stream out per request through :class:`TokenEvent`s (iterator
  via :meth:`run`, a per-request ``on_token`` callback, or
  ``handle.stream()``), optionally carrying incremental text from a
  pluggable ``detokenize`` callback; per-request TTFT and inter-token
  latencies aggregate into :class:`EngineStats` percentiles;
* every statistic lives in a :class:`~repro.serve.observe.
  MetricsRegistry` (``engine.metrics`` — Prometheus-exportable,
  fleet-mergeable); with ``ServeConfig.observe`` (default on) each
  tick's phases are traced into named nested spans (``engine.trace``,
  Chrome-trace/Perfetto export via ``engine.trace.save(path)``) and
  every request records a lifecycle timeline
  (:class:`~repro.serve.observe.RequestTrace`: submit → admit →
  prefill chunks → preemptions/retries/faults → first token → finish)
  retrievable via ``handle.trace()`` and serialized into
  :attr:`~repro.serve.request.GenerationResult.trace`.

Two storage backends share this loop:

* **Arena** (default): contiguous per-slot slabs
  (:class:`~repro.quant.kvcache.KVCacheArena`), one slot per batch lane.
* **Paged** (``ServeConfig(paged=True)``): fixed-size pages from a
  :class:`~repro.serve.paging.BlockPool` — admission on actually-free
  blocks instead of worst-case token budgets, on-demand page allocation
  each tick, hash-based prefix sharing of identical full prompt pages,
  and preemption-by-recompute (policy-chosen victim, back to the queue)
  when the pool runs dry mid-decode.

Determinism guarantee: the batched decode path is bit-identical per
sequence to the single-stream loop and every sample draws from its
own seeded RNG, so a request's output never depends on which other
requests shared its batch — under the default FCFS policy, greedy
engine output == the plain ``prefill`` + ``decode_step`` loop, token
for token, for every cache type and for both storage backends.
Chunked mode keeps this at token granularity: chunk boundaries land on
quantization-window boundaries by construction, so the caches'
quantized contents are chunk-invariant, while the packed GEMMs may
wobble in the last float ulp (BLAS kernels are not bitwise
row-count-invariant) — greedy output stays identical token for token,
and decode-only ticks still route through ``decode_step_batch``
unchanged.  (Preemption is the one exception: a preempted request's
suffix is *recomputed* through the prefill path, which re-quantizes
decode-staged MANT windows from scratch — the same trade every
recompute-based paged server makes.  A preempted half-prefilled prompt
simply replays from token zero.)
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.model.transformer import MixedSegment
from repro.quant.kvcache import KVCacheArena, validate_chunk_compat
from repro.serve.config import ServeConfig
from repro.serve.faults import ALLOC, CALLBACK, FORWARD, InjectedFault
from repro.serve.observe import MetricsRegistry, RequestTrace, TickTracer
from repro.serve.paging import BlockPool, PoolExhausted, validate_block_compat
from repro.serve.request import (
    FINISH_CANCELLED,
    FINISH_ERROR,
    FINISH_LENGTH,
    FINISH_STOP,
    FINISH_TIMEOUT,
    GenerationRequest,
    GenerationResult,
    PrefillCursor,
    RequestHandle,
    SampleOutput,
    TokenEvent,
)
from repro.sampling import Sampler, SamplingParams
from repro.serve.scheduler import QueueFullError, Scheduler

__all__ = ["GenerationEngine", "EngineStats"]

# Finish reasons that mean "the request did not complete normally" —
# excluded from the requests_completed / queue-latency statistics.
_ABNORMAL_FINISH = (FINISH_CANCELLED, FINISH_TIMEOUT, FINISH_ERROR)

# Samples retained per latency histogram (TTFT / inter-token); the
# EngineStats percentiles describe the most recent window of traffic.
# (Also the Histogram reservoir size, so registry-backed percentiles
# are computed over exactly the same window as before the registry.)
LATENCY_WINDOW = 4096


class _Sequence:
    """Engine-internal state of one in-flight sample lane.

    A request with ``n == 1`` is exactly one sequence.  With ``n > 1``
    the submitted sequence is *sample 0* and reserves ``n`` batch lanes
    (``lanes``); its siblings are materialized by the engine when the
    shared prefill completes, each holding its own lease and sampler
    but the same ``family`` list and request.
    """

    __slots__ = (
        "request", "sampler", "on_token", "lease", "pos", "next_token",
        "tokens", "finished", "finish_reason", "decode_steps",
        "submit_time", "admit_time", "resuming", "text_len",
        "cursor", "pending_ids", "prefill_chunks",
        "first_token_time", "last_token_time",
        "arrival_seq", "sample_index", "lanes", "family", "retired",
        "retries", "error", "timeout_s", "cancelled_samples",
    )

    def __init__(self, request: GenerationRequest, on_token, submit_time: float,
                 sample_index: int = 0):
        self.request = request
        self.sampler = Sampler(request.sampling, sample_index=sample_index)
        self.on_token = on_token
        self.lease = None
        self.pos = 0
        self.next_token = None
        self.tokens: list[int] = []
        self.finished = False
        self.finish_reason: str | None = None
        self.decode_steps = 0
        self.submit_time = submit_time
        self.admit_time = float("nan")
        self.resuming = False        # preempted: rebuild cache, don't re-emit
        self.text_len = 0            # detokenized chars already streamed
        self.cursor: PrefillCursor | None = None   # chunked prefill progress
        self.pending_ids = None      # ids the in-flight chunked prefill covers
        self.prefill_chunks = 0      # forward passes this request's prompt took
        self.first_token_time = float("nan")       # TTFT endpoint
        self.last_token_time = float("nan")        # inter-token latency anchor
        self.arrival_seq = 0         # engine-wide submission order stamp
        self.sample_index = sample_index
        # Sample 0 reserves every sibling's lane until the fork happens.
        self.lanes = request.n if sample_index == 0 else 1
        self.family: list[_Sequence] = [self]
        self.retired = False         # storage released, awaiting siblings
        self.retries = 0             # transient-fault recomputes charged so far
        self.error = None            # first fault/exception message, if any
        self.timeout_s = None        # effective hard budget, stamped at submit
        # Sample indices cancelled before the fork (held by sample 0):
        # the fork materializes these as already-cancelled stubs.
        self.cancelled_samples: set[int] = set()

    @property
    def prefill_len(self) -> int:
        """Tokens the next prefill must run (grows after preemption)."""
        n = int(self.request.prompt.size)
        if self.resuming:
            n += max(0, len(self.tokens) - 1)
        return n

    @property
    def token_footprint(self) -> int:
        """Worst-case KV tokens this sequence still accounts for
        (pre-fork sample 0 carries the whole family)."""
        return self.lanes * self.request.token_footprint

    def prefill_ids(self) -> np.ndarray:
        """Prompt ids — plus already-generated tokens when resuming.

        ``tokens[-1]`` (== ``next_token``) is excluded: it has been
        emitted but not yet fed, exactly as in the uninterrupted loop.
        """
        prompt = self.request.prompt
        if self.resuming and len(self.tokens) > 1:
            return np.concatenate(
                [prompt, np.asarray(self.tokens[:-1], dtype=np.int64)]
            )
        return prompt


@dataclass(frozen=True)
class EngineStats:
    """Aggregate serving statistics since engine construction.

    Every field is a read of the engine's
    :class:`~repro.serve.observe.MetricsRegistry` (``engine.metrics``)
    — the registry is the single source of truth, this dataclass just a
    stable snapshot of it (``STATS_METRICS`` maps the integer fields to
    their registered metric names; the float fields derive from the
    registry's histograms and gauges).

    Two elapsed-time views, both driven by the engine's *injectable*
    clock (the one faults can skew — the ``observe`` tracer keeps its
    own):

    * ``elapsed_s`` — time spent *inside* :meth:`GenerationEngine.step`,
      idle gaps between ticks excluded; the denominator of
      ``tokens_per_s``.
    * ``wall_elapsed_s`` — first engine clock read to the latest one
      (submit or tick, whichever came first/last), idle gaps included.
      ``0.0`` before the clock is ever read.

    The queue-latency fields (``mean_queue_latency_s`` /
    ``max_queue_latency_s``) measure submit → first admission on that
    same injectable clock, over *normally completed* requests only.
    """

    scheduler_policy: str         # name of the active SchedulerPolicy
    requests_submitted: int
    requests_completed: int
    requests_queued: int          # current queue depth
    requests_running: int
    requests_rejected: int        # submit-time backpressure/budget rejections
    requests_cancelled: int       # client cancellations (any state)
    requests_timed_out: int       # hard per-request timeout expirations
    requests_failed: int          # finished FINISH_ERROR (fault / bad callback)
    retries: int                  # transient-fault recompute replays
    snapshot_restores: int        # requests re-queued by GenerationEngine.restore
    tokens_generated: int
    decode_ticks: int
    mean_batch_occupancy: float   # sequences per decode tick
    batch_lanes: int              # configured max_batch_size (occupancy ceiling)
    elapsed_s: float              # time spent inside step(), idle gaps excluded
    wall_elapsed_s: float         # first -> last engine clock read, idle included
    tokens_per_s: float           # aggregate serving throughput over elapsed_s
    mean_queue_latency_s: float
    max_queue_latency_s: float
    cache_slots: int              # arena slots, or pool blocks when paged
    cache_slots_high_water: int
    preemptions: int              # paged: sequences bumped back to the queue
    prefix_hit_tokens: int        # paged: prompt tokens served from shared pages
    prefill_chunks: int           # chunked mode: prompt chunks run in mixed ticks
    prefill_tokens: int           # prompt tokens actually run through the model
    ttft_p50_s: float             # submit -> first token percentiles (NaN if none)
    ttft_p95_s: float
    inter_token_p50_s: float      # gap between consecutive tokens of one request
    inter_token_p95_s: float

    # Stats-field -> registry-metric-name contract.  Every field listed
    # here is, by construction, a verbatim read of that metric's current
    # value; the test suite enforces the mapping (and that every integer
    # field is covered) so no counter can silently drift off the
    # registry.  Unlisted fields are derived (ratios, percentiles) or
    # non-numeric (scheduler_policy).
    STATS_METRICS = {
        "requests_submitted": "requests_submitted",
        "requests_completed": "requests_completed",
        "requests_queued": "requests_queued",
        "requests_running": "requests_running",
        "requests_rejected": "requests_rejected",
        "requests_cancelled": "requests_cancelled",
        "requests_timed_out": "requests_timed_out",
        "requests_failed": "requests_failed",
        "retries": "retries",
        "snapshot_restores": "snapshot_restores",
        "tokens_generated": "tokens_generated",
        "decode_ticks": "decode_ticks",
        "batch_lanes": "batch_lanes",
        "cache_slots": "cache_slots",
        "cache_slots_high_water": "cache_slots_high_water",
        "preemptions": "preemptions",
        "prefix_hit_tokens": "prefix_hit_tokens",
        "prefill_chunks": "prefill_chunks",
        "prefill_tokens": "prefill_tokens",
        "elapsed_s": "engine_busy_seconds",
        "wall_elapsed_s": "wall_seconds",
    }

    def summary(self) -> dict:
        """Field dict for reporting: NaN placeholders render as ``None``.

        Before any token exists the TTFT/inter-token percentiles are
        NaN internally; a dashboard serializing this summary gets
        ``None`` (JSON ``null``) instead of a not-a-number literal.

        The extra ``"derived"`` section carries the ratios a fleet
        dashboard wants precomputed: ``tokens_per_s``,
        ``occupancy_pct`` (mean decode occupancy over ``batch_lanes``),
        ``prefix_hit_ratio`` (prompt tokens whose pages came from the
        prefix cache, over all prompt tokens prefilled) and
        ``retry_rate`` (transient-fault replays per submitted request).
        Zero denominators yield ``0.0``, never a division error.
        """
        out = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, float) and math.isnan(value):
                value = None
            out[f.name] = value
        out["derived"] = {
            "tokens_per_s": self.tokens_per_s,
            "occupancy_pct": (
                100.0 * self.mean_batch_occupancy / self.batch_lanes
                if self.batch_lanes else 0.0
            ),
            "prefix_hit_ratio": (
                self.prefix_hit_tokens / self.prefill_tokens
                if self.prefill_tokens else 0.0
            ),
            "retry_rate": (
                self.retries / self.requests_submitted
                if self.requests_submitted else 0.0
            ),
        }
        return out


class GenerationEngine:
    """Schedule many :class:`GenerationRequest`s through one model.

    ``cache_factory`` builds one buffered KV cache (FP16/INT/MANT —
    anything the pooled storage backends can carve); the engine owns
    either a :class:`~repro.quant.kvcache.KVCacheArena` (one slot per
    batch lane) or, with ``config.paged``, a
    :class:`~repro.serve.paging.BlockPool` of fixed-size pages shared
    by all lanes.  ``weights``/``act_quant`` are the usual quantization
    hooks, applied identically to every request.  ``detokenize`` is an
    optional ``(token_ids) -> str`` callback; when given, every emitted
    :class:`TokenEvent` carries the incremental ``text`` suffix.
    ``policy`` overrides the config's ``scheduler_policy`` with a
    ready-made :class:`~repro.serve.policy.SchedulerPolicy` instance.
    ``faults`` takes a :class:`~repro.serve.faults.FaultInjector`; its
    armed rules fire at the engine's named injection sites (``forward``,
    ``alloc``, ``callback``, ``clock``) and exercise exactly the
    recovery paths real faults take.

    ``metrics`` supplies the :class:`~repro.serve.observe.
    MetricsRegistry` the engine registers every statistic in (a fresh
    one by default; pass labeled registries to tell replicas apart in a
    fleet export).  ``trace_clock`` overrides the tick tracer's clock —
    deliberately a *separate* clock from the engine's injectable
    ``clock`` so tracing never changes the engine-clock read count the
    fault injector's ``clock_skew`` rules key off, i.e. observability
    on/off cannot perturb scheduling or determinism.
    """

    def __init__(
        self,
        model,
        cache_factory,
        config: ServeConfig = ServeConfig(),
        weights=None,
        act_quant=None,
        clock=time.perf_counter,
        detokenize=None,
        policy=None,
        faults=None,
        metrics: MetricsRegistry | None = None,
        trace_clock=None,
    ):
        self.model = model
        self.config = config
        self.weights = weights
        self.act_quant = act_quant
        self._faults = faults
        if faults is not None:
            clock = faults.wrap_clock(clock)
        self._clock = clock
        self._t_first = None         # first/latest engine-clock reads:
        self._t_last = None          # the wall_elapsed_s anchors
        self._detokenize = detokenize
        self._cache_factory = cache_factory
        self._observe = bool(config.observe)
        self._tracer = TickTracer(clock=trace_clock, enabled=self._observe)
        self._tracer.extra_provider = self._trace_extra
        # Span factory handed down into the model so cache appends get
        # honest "append" spans inside "forward"; None disables the
        # nested spans without the model importing anything from serve.
        self._model_trace = self._tracer.span if self._observe else None
        self._req_traces: dict[str, RequestTrace] = {}
        if faults is not None and self._observe:
            # Join fired faults into the victim's timeline + tick trace.
            faults.on_fire(self._fault_fired)
        self.scheduler = Scheduler(config, policy=policy)
        if config.prefill_chunk_tokens is not None:
            # Paged mode implies window alignment transitively (chunk is
            # a multiple of block_tokens, block_tokens of the window),
            # but the explicit check gives arena engines the same error.
            validate_chunk_compat(cache_factory(), config.prefill_chunk_tokens)
        if config.paged:
            validate_block_compat(cache_factory(), config.block_tokens)
            num_blocks = config.num_blocks
            if num_blocks is None:
                # Worst case (arena-equivalent capacity); smaller pools
                # turn on real admission control and preemption.
                num_blocks = (
                    math.ceil(model.config.max_seq / config.block_tokens)
                    * config.max_batch_size
                )
            self.pool = BlockPool(
                n_layers=model.config.n_layers,
                block_tokens=config.block_tokens,
                num_blocks=num_blocks,
                enable_prefix_cache=config.enable_prefix_cache,
                faults=faults,
            )
            self.arena = None
            self.scheduler.bind_block_gauge(
                lambda: self.pool.blocks_available, config.block_tokens,
                prefix_probe=(
                    self.pool.probe_prefix if config.enable_prefix_cache else None
                ),
            )
        else:
            self.pool = None
            self.arena = KVCacheArena(
                n_layers=model.config.n_layers,
                cache_factory=cache_factory,
                slots=config.max_batch_size,
                initial_capacity=config.initial_cache_capacity,
            )
        self._results: dict[str, GenerationResult] = {}
        self._active_ids: set[str] = set()
        self._arrivals = 0           # submission-order stamp, not a metric
        # Every statistic is a registry instrument from birth — stats()
        # is a *read* of the registry, never a separate tally.  The
        # private attributes keep their historical names so every
        # counting site below just swaps `+= n` for `.inc(n)`.
        m = self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._submitted = m.counter(
            "requests_submitted", "Requests accepted by submit()")
        self._completed = m.counter(
            "requests_completed", "Requests finished normally (length/stop)")
        self._rejected = m.counter(
            "requests_rejected", "Submit-time backpressure/budget rejections")
        self._cancelled = m.counter(
            "requests_cancelled", "Client cancellations, any state")
        self._timed_out = m.counter(
            "requests_timed_out", "Hard per-request timeout expirations")
        self._failed = m.counter(
            "requests_failed", "Requests finished FINISH_ERROR")
        self._retries = m.counter(
            "retries", "Transient-fault recompute replays")
        self._restored = m.counter(
            "snapshot_restores", "Requests re-queued by restore()")
        self._preemptions = m.counter(
            "preemptions", "Sequences bumped back to the queue")
        self._tokens_generated = m.counter(
            "tokens_generated", "Output tokens emitted")
        self._decode_ticks = m.counter(
            "decode_ticks", "Ticks that ran at least one decode row")
        self._occupancy_sum = m.counter(
            "decode_lane_ticks", "Sum of decode rows over decode ticks "
            "(mean occupancy numerator)")
        self._busy_s = m.counter(
            "engine_busy_seconds", "Injectable-clock seconds spent inside step()")
        self._prefill_chunks = m.counter(
            "prefill_chunks", "Prompt chunks run in mixed ticks")
        self._prefill_tokens = m.counter(
            "prefill_tokens", "Prompt tokens actually run through the model")
        # Latency histograms: log-scale buckets for the exposition plus a
        # bounded exact reservoir (LATENCY_WINDOW samples) so the
        # EngineStats percentiles stay bit-identical to the pre-registry
        # rolling-deque implementation.
        self._ttfts = m.histogram(
            "ttft_seconds", "Submit -> first emitted token",
            reservoir=LATENCY_WINDOW)
        self._itls = m.histogram(
            "inter_token_seconds", "Gap between consecutive tokens of one request",
            reservoir=LATENCY_WINDOW)
        self._queue_lat = m.histogram(
            "queue_latency_seconds",
            "Submit -> first admission (normally completed requests)",
            reservoir=LATENCY_WINDOW)
        # Live gauges over the scheduler, the storage backend and the
        # engine itself — sampled at read time, zero steady-state cost.
        self.scheduler.bind_metrics(m)
        if self.pool is not None:
            self.pool.bind_metrics(m)
            self._g_cache_slots = m.gauge(
                "cache_slots", "Pool blocks total", fn=lambda: self.pool.num_blocks)
            self._g_cache_high = m.gauge(
                "cache_slots_high_water", "Peak pool blocks in use",
                fn=lambda: self.pool.high_water)
            self._g_prefix_hits = m.gauge(
                "prefix_hit_tokens", "Prompt tokens served from shared pages",
                fn=lambda: self.pool.prefix_hit_tokens)
        else:
            self._g_cache_slots = m.gauge(
                "cache_slots", "Arena slots total",
                fn=lambda: self.arena.slots_total)
            self._g_cache_high = m.gauge(
                "cache_slots_high_water", "Peak arena slots in use",
                fn=lambda: self.arena.high_water)
            self._g_prefix_hits = m.gauge(
                "prefix_hit_tokens", "Prompt tokens served from shared pages "
                "(always 0: arena slots cannot alias)", fn=lambda: 0)
        m.gauge("batch_lanes", "Configured max_batch_size",
                fn=lambda: self.config.max_batch_size)
        m.gauge("wall_seconds", "First -> latest engine clock read",
                fn=self._wall_elapsed)
        self._stepping = False       # guards reentrant cancel from callbacks
        self._draining = False       # drain(): admission stopped
        # Timeout sweeps cost a pass over queue + running set per tick;
        # skip them entirely until some request actually has a budget.
        self._timeouts_armed = config.request_timeout_s is not None
        # Strict mode: check_invariants() after every tick.  The test
        # suite forces it via the environment so every serving test runs
        # checked; production engines opt in through the config.
        self._strict = (
            config.check_invariants
            or os.environ.get("REPRO_SERVE_STRICT", "") == "1"
        )

    # ------------------------------------------------------------------
    # Clock & observability plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        """The engine's single seam over the injectable clock.

        Every read routes through here so the wall-clock anchors behind
        ``EngineStats.wall_elapsed_s`` are stamped without adding clock
        reads — the fault injector's ``clock_skew(after=N)`` rules count
        reads, so the read schedule must be identical with or without
        observability.
        """
        t = self._clock()
        if self._t_first is None:
            self._t_first = t
        self._t_last = t
        return t

    def _wall_elapsed(self) -> float:
        if self._t_first is None:
            return 0.0
        return self._t_last - self._t_first

    @property
    def trace(self) -> TickTracer:
        """The engine's tick tracer.  ``engine.trace.save(path)``
        exports Chrome-trace/Perfetto JSON — phase spans, fault
        instants, a metrics snapshot and every live request timeline."""
        return self._tracer

    def request_trace(self, request_id: str) -> RequestTrace | None:
        """One request's live lifecycle timeline, or ``None`` when
        observability is off, the id is unknown, or the result was
        already popped (``GenerationResult.trace`` keeps a copy)."""
        return self._req_traces.get(str(request_id))

    def _trace_extra(self) -> dict:
        """Extra top-level sections for the exported trace JSON."""
        return {
            "metrics": self.metrics.to_dict(),
            "requestTimelines": {
                rid: t.to_events() for rid, t in self._req_traces.items()
            },
        }

    def _tl(self, seq: _Sequence, event: str, **detail) -> None:
        """Append one lifecycle event to the request's timeline (no-op
        with observability off).  Sibling samples share one timeline;
        non-zero lanes tag their events with ``sample``."""
        if not self._observe:
            return
        trace = self._req_traces.get(seq.request.request_id)
        if trace is not None:
            if seq.sample_index:
                detail.setdefault("sample", seq.sample_index)
            trace.add(event, self._tracer.now(), **detail)

    def _fault_fired(self, index: int, site: str, request_id) -> None:
        """:meth:`FaultInjector.on_fire` observer: join the fired fault
        into the victim's timeline and drop an instant marker into the
        tick trace.  ``index`` is the fault's position in the
        injector's ``log``, so trace events correlate 1:1 with it."""
        detail = {"site": site, "log_index": index}
        if request_id is not None:
            detail["request_id"] = request_id
            trace = self._req_traces.get(request_id)
            if trace is not None:
                trace.add("fault", self._tracer.now(), site=site,
                          log_index=index)
        self._tracer.instant("fault", detail)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: GenerationRequest, on_token=None) -> RequestHandle:
        """Queue a request; returns its :class:`RequestHandle`.

        The handle *is* the request id (a ``str`` subclass), so callers
        that stored the old raw-id return value are unchanged;
        ``on_token(event)`` streams as before.  Raises on capacity
        rejection — worst case over the model's ``max_seq``, more
        parallel samples than batch lanes, over the token budget, over
        the paged pool's total size, or a full queue
        (:class:`QueueFullError`); rejections are counted in
        :class:`EngineStats`.
        """
        rid = request.request_id
        if rid in self._active_ids or rid in self._results:
            raise ValueError(f"duplicate request_id {rid!r}")
        seq = None
        try:
            if self._draining:
                raise RuntimeError(
                    "engine is draining: admission is stopped "
                    "(resume_admission() re-opens it)"
                )
            max_seq = self.model.config.max_seq
            if request.token_footprint > max_seq:
                raise ValueError(
                    f"request {rid!r} needs {request.token_footprint} positions, "
                    f"over the model's max_seq of {max_seq}"
                )
            if request.n > self.config.max_batch_size:
                raise ValueError(
                    f"request {rid!r} asks for n={request.n} parallel samples, "
                    f"over max_batch_size={self.config.max_batch_size} lanes — "
                    "it could never be scheduled"
                )
            if self.pool is not None:
                # Feasibility is per sample: forked samples share prompt
                # pages copy-on-write, and under pool pressure the
                # engine preempts samples until one runs alone — so a
                # request is only hopeless if a *single* sample's worst
                # case cannot fit the pool.
                pages = -(-request.token_footprint // self.pool.block_tokens)
                if pages > self.pool.num_blocks:
                    raise ValueError(
                        f"request {rid!r} can need {pages} pages, over the "
                        f"pool's num_blocks of {self.pool.num_blocks} — it "
                        "could never be scheduled"
                    )
            seq = _Sequence(request, on_token, self._now())
            seq.arrival_seq = self._arrivals
            seq.timeout_s = (
                request.timeout_s if request.timeout_s is not None
                else self.config.request_timeout_s
            )
            self.scheduler.submit(seq)   # may reject (budget / queue full)
        except Exception:
            # A rejected request must leave no trace behind: not queued,
            # not registered — the same id can be resubmitted right away.
            if seq is not None:
                self.scheduler.remove_queued(seq)
            self._rejected.inc()
            raise
        if seq.timeout_s is not None:
            self._timeouts_armed = True
        self._active_ids.add(rid)
        self._submitted.inc()
        self._arrivals += 1
        if self._observe:
            trace = self._req_traces[rid] = RequestTrace(rid)
            detail = dict(prompt_tokens=int(request.prompt.size),
                          max_tokens=request.max_tokens, n=request.n)
            if request.traffic_class is not None:
                detail["traffic_class"] = request.traffic_class
            trace.add("submit", self._tracer.now(), **detail)
        return RequestHandle(rid, self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def cancel(self, request_id: str, sample_index: int | None = None) -> bool:
        """Cancel a request in any state; True if it was still live.

        Queued requests are dropped before ever touching the model;
        running ones — mid-chunked-prefill or decoding, every parallel
        sample — finish immediately with ``FINISH_CANCELLED``, their
        blocks/arena slots released and a finish :class:`TokenEvent`
        delivered to the request's ``on_token`` callback.  Safe to call
        from inside an ``on_token`` callback: storage release then
        defers to the end of the in-flight tick.  Returns False for
        ids that already finished (or were never submitted).

        ``sample_index`` cancels just one parallel sample of an ``n>1``
        request: a forked sample's lease is released immediately while
        its siblings keep decoding untouched; an index cancelled before
        the fork is simply never materialized (the result still carries
        a ``FINISH_CANCELLED`` entry for it, and the reserved lane is
        freed right away).  Cancelling the last live sample cancels the
        request.
        """
        rid = str(request_id)
        if sample_index is not None:
            return self._cancel_sample(rid, int(sample_index))
        if rid not in self._active_ids:
            return False
        family = None
        live = False
        # A request that already had samples cancelled one-by-one was
        # counted in requests_cancelled then; don't double-count it.
        already_counted = any(
            (seq.family[0].cancelled_samples
             or any(m.finish_reason == FINISH_CANCELLED for m in seq.family))
            for seq in [*self.scheduler.find_queued(rid),
                        *self.scheduler.running]
            if seq.request.request_id == rid
        )
        for seq in self.scheduler.find_queued(rid):
            self.scheduler.remove_queued(seq)
            self._finish_cancel(seq)
            self._release_storage(seq)
            seq.retired = True
            family = seq.family
            live = True
        for seq in self.scheduler.running:
            if seq.request.request_id == rid:
                family = seq.family
                if not seq.finished:
                    self._finish_cancel(seq)
                    live = True
        if not live:
            # Nothing left to cancel (e.g. a repeated cancel inside the
            # same tick, before the retire phase ran): idempotent no-op.
            return False
        if not already_counted:
            self._cancelled.inc()
        if not self._stepping:
            # Outside a tick it is safe to release storage right away;
            # mid-tick (a reentrant cancel from an on_token callback)
            # the step's own retire phase finishes the job.  The last
            # _retire also records the family's result.
            for seq in [s for s in self.scheduler.running
                        if s.request.request_id == rid]:
                self._retire(seq)
        if (family is not None and rid in self._active_ids
                and all(m.retired for m in family)):
            # Queued-only cancellation: no _retire ran, record here.
            self._record_result(family, self._now())
        return True

    def _cancel_sample(self, rid: str, idx: int) -> bool:
        """Cancel one parallel sample of an ``n>1`` request.

        Post-fork, the sample's lease is released immediately (outside
        a tick) and its siblings decode on untouched.  Pre-fork, the
        index is recorded on the sample-0 carrier: the fork skips
        materializing it (its cancel event fires then) and the reserved
        lane is freed now.  Cancelling the last live sample falls back
        to whole-request cancellation.
        """
        if rid not in self._active_ids:
            return False
        family = None
        for seq in [*self.scheduler.find_queued(rid), *self.scheduler.running]:
            if seq.request.request_id == rid:
                family = seq.family
                break
        if family is None:
            return False
        request = family[0].request
        if not 0 <= idx < request.n:
            raise ValueError(
                f"sample_index {idx} out of range for n={request.n}")
        if request.n == 1:
            return self.cancel(rid)
        if len(family) == 1:
            # Pre-fork: only the sample-0 carrier exists.
            parent = family[0]
            if parent.finished or idx in parent.cancelled_samples:
                return False
            parent.cancelled_samples.add(idx)
            if len(parent.cancelled_samples) >= request.n:
                return self.cancel(rid)     # every sample cancelled
            if len(parent.cancelled_samples) == 1:
                self._cancelled.inc()
            parent.lanes = request.n - len(parent.cancelled_samples)
            self._tl(parent, "cancel_sample", sample=idx)
            return True
        target = next((m for m in family if m.sample_index == idx), None)
        if target is None or target.finished:
            return False
        if not any(m is not target and not m.finished for m in family):
            return self.cancel(rid)         # last live sample
        first = not any(m.finish_reason == FINISH_CANCELLED for m in family)
        self._finish_cancel(target)
        if first:
            self._cancelled.inc()
        if not self._stepping:
            self._retire(target)   # forked lease released immediately
        return True

    def has_result(self, request_id: str) -> bool:
        return str(request_id) in self._results

    def _finish_cancel(self, seq: _Sequence) -> None:
        seq.finished = True
        # lint: allow[finish-release-pairing] release is owned by the caller:
        # cancel()/_cancel_sample() retire immediately outside a tick, and a
        # reentrant mid-tick cancel defers to step()'s retire phase.
        seq.finish_reason = FINISH_CANCELLED
        self._tl(seq, "finish", reason=FINISH_CANCELLED,
                 tokens=len(seq.tokens))
        event = TokenEvent(
            seq.request.request_id, None, len(seq.tokens), True,
            FINISH_CANCELLED, sample=seq.sample_index,
        )
        self._deliver(seq, event)

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def step(self) -> list[TokenEvent]:
        """One engine tick: admit, one fused forward, retire finished.

        Unchunked (``prefill_chunk_tokens is None``): admitted prompts
        prefill whole at admission, then every live sequence rides one
        ``decode_step_batch``.  Chunked: admission only leases cache
        storage and opens a :class:`~repro.serve.request.PrefillCursor`;
        the tick then packs the decode rows plus a token-budgeted set
        of prompt chunks into one ``forward_mixed`` call (pure-decode
        ticks keep the bit-exact ``decode_step_batch`` path).
        """
        if not self.scheduler.has_work():
            return []
        tracer = self._tracer
        now = self._now()
        events: list[TokenEvent] = []
        chunked = self.config.prefill_chunk_tokens is not None
        with tracer.span("tick"):
            # 0. Timeout sweep, at the tick boundary (before admission,
            # so an expired queued request never wastes a prefill):
            # expired sequences finish FINISH_TIMEOUT and free their
            # storage *now*.
            with tracer.span("sweep"):
                self._sweep_timeouts(now, events)
            self._stepping = True
            try:
                # 1. Admission, one request at a time (each admission's
                # page allocations must be visible to the next fit
                # check).  Draining engines skip it: in-flight work runs
                # dry while queued work waits for the snapshot.
                with tracer.span("admit"):
                    self._admit(now, chunked, events)

                # 2. Plan this tick's work under the pool's block
                # supply, then run it as one fused forward.  A fault
                # mid-batch poisons every participant's cache-position
                # bookkeeping, so recovery is collective: evict them all
                # back through the recompute path and charge the retry
                # budget of the attributable ones.
                with tracer.span("plan"):
                    decode, chunks = self._plan_tick(events)
                try:
                    if chunks:
                        self._mixed_tick(decode, chunks, events)
                    elif decode:
                        self._decode_tick(decode, events)
                except PoolExhausted:
                    raise            # genuine capacity error, not a fault
                except Exception as exc:
                    self._tick_failure(decode, chunks, exc, events)

                # 3. Retire finished sequences, recycling their storage.
                with tracer.span("finish"):
                    for seq in [s for s in self.scheduler.running
                                if s.finished]:
                        self._retire(seq)
            finally:
                self._stepping = False
        # Busy time accumulates per tick so throughput reflects time
        # spent serving, not idle gaps between bursts.
        self._busy_s.inc(self._now() - now)
        if self._strict:
            self.check_invariants()
        return events

    def _admit(self, now: float, chunked: bool, events: list) -> None:
        """The tick's admission loop (factored out of :meth:`step` so
        the whole phase sits under one ``admit`` span)."""
        while (not self._draining
               and (seq := self.scheduler.admit_one()) is not None):
            if math.isnan(seq.admit_time):
                seq.admit_time = now     # queue latency: first admission only
            self._tl(seq, "admit", resumed=seq.resuming)
            ids = seq.prefill_ids()
            try:
                # Admission is where arena slots / pool leases are
                # taken — the alloc fault site for this sequence.
                self._fire(ALLOC, seq)
                if self.pool is not None:
                    seq.lease = self.pool.acquire(self._cache_factory)
                    seq.lease.match_prefix(ids)
                else:
                    seq.lease = self.arena.acquire()
                if chunked:
                    # No forward yet — the prompt enters the chunk queue.
                    seq.pending_ids = ids
                    seq.cursor = PrefillCursor(ids.size)
                    continue
                self._fire(FORWARD, seq)
                with self._tracer.span("forward"):
                    logits = self.model.prefill(
                        ids, seq.lease.caches,
                        weights=self.weights, act_quant=self.act_quant,
                    )
            except Exception as exc:
                # Whole-prompt prefill runs one sequence alone, so a
                # real exception here is attributable — quarantine
                # (or retry) just this sequence, bystanders untouched.
                self._on_fault(seq, exc, events)
                continue
            seq.pos = int(ids.size)
            seq.prefill_chunks += 1
            self._prefill_tokens.inc(int(ids.size))
            self._tl(seq, "prefill", tokens=int(ids.size))
            if self.pool is not None:
                seq.lease.register_prefix(ids)
            self._finish_prefill(seq, logits, events)

    # ------------------------------------------------------------------
    # Tick assembly
    # ------------------------------------------------------------------
    def _plan_tick(self, events: list):
        """Pick this tick's decode rows and prefill chunks; reserve pages.

        The decode rows are every running, unfinished, fully prefilled
        sequence; the chunk set comes from the scheduler's token-budget
        policy (decode tokens are charged against
        ``max_tokens_per_tick`` first).  Paged engines then check that
        the tick's page demands fit the pool — page *allocation* stays
        on demand inside the cache appends — preempting the
        policy-chosen victim (decoding or half-prefilled alike) back to
        the queue until they do, instead of reserving worst-case
        ``prompt + max_tokens`` up front.

        This is also where per-sequence injected faults fire: the plan
        phase runs *before* any model call or cache write of the tick,
        so a victim is pulled out (retried or failed) while every
        bystander's cache is untouched — their outputs stay
        token-for-token identical to a fault-free run.
        """
        while True:
            running = self.scheduler.running
            decode = [s for s in running if not s.finished and s.cursor is None]
            prefilling = [s for s in running
                          if s.cursor is not None and not s.finished]
            budget = math.inf
            if self.config.max_tokens_per_tick is not None:
                budget = max(0, self.config.max_tokens_per_tick - len(decode))
            chunks = self.scheduler.plan_chunks(prefilling, budget) if prefilling else []
            if self._faults is not None:
                decode = [s for s in decode if self._gate(FORWARD, s, events)]
                chunks = [(s, n) for s, n in chunks
                          if self._gate(FORWARD, s, events)]
                if self.pool is not None:
                    # Alloc faults target sequences that need new pages
                    # this tick (mid-decode block-boundary growth).
                    decode = [s for s in decode
                              if s.lease.new_pages_for(s.pos + 1) == 0
                              or self._gate(ALLOC, s, events)]
                    chunks = [(s, n) for s, n in chunks
                              if s.lease.new_pages_for(s.cursor.done + n) == 0
                              or self._gate(ALLOC, s, events)]
            if self.pool is None:
                return decode, chunks
            need = sum(s.lease.new_pages_for(s.pos + 1) for s in decode)
            need += sum(s.lease.new_pages_for(s.cursor.done + n) for s, n in chunks)
            if need <= self.pool.blocks_available:
                return decode, chunks
            victims = [s for s in running if not s.finished]
            if len(victims) <= 1:
                # Cannot happen for pools that passed the submit-time
                # size check unless shared pages are pinned elsewhere.
                raise PoolExhausted(
                    "BlockPool exhausted with a single running sequence: "
                    f"{self.pool.blocks_available} blocks free, {need} needed"
                )
            self._preempt(self.scheduler.policy.choose_preemption_victim(victims))

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def _fire(self, site: str, seq: _Sequence) -> None:
        """Raise :class:`InjectedFault` if an armed rule matches ``seq``."""
        if self._faults is not None:
            self._faults.fire(site, seq.request.request_id)

    def _gate(self, site: str, seq: _Sequence, events: list) -> bool:
        """Plan-phase fault gate: False drops ``seq`` from this tick."""
        try:
            self._fire(site, seq)
            return True
        except InjectedFault as fault:
            self._on_fault(seq, fault, events)
            return False

    def _sweep_timeouts(self, now: float, events: list) -> None:
        if not self._timeouts_armed:
            return
        for seq in self.scheduler.pop_expired(now):
            self._fail(seq, FINISH_TIMEOUT, events)
            self._retire(seq)
        for seq in self.scheduler.running:
            if (not seq.finished and seq.timeout_s is not None
                    and now - seq.submit_time >= seq.timeout_s):
                self._fail(seq, FINISH_TIMEOUT, events)
                self._retire(seq)    # storage released immediately

    def _tick_failure(self, decode, chunks, exc, events: list) -> None:
        """A fused forward raised mid-batch: collective recovery.

        The model may have mutated any participant's cache before
        raising, so every participant is evicted back through the
        recompute path.  Attributable participants (an
        :class:`InjectedFault` carrying their request id, or everyone
        when unattributed) are charged against their retry budget;
        provably-innocent bystanders get a free recompute, counted as a
        preemption.
        """
        rid = getattr(exc, "request_id", None)
        for seq in [*decode, *(s for s, _ in chunks)]:
            if seq.finished:
                continue
            if rid is None or seq.request.request_id == rid:
                self._on_fault(seq, exc, events)
            else:
                self._evict(seq)

    def _on_fault(self, seq: _Sequence, exc, events: list) -> None:
        """One sequence hit a fault: bounded retry, then quarantine.

        Injected faults declare their transience; real exceptions are
        assumed transient (a poison request exhausts its retry budget
        replaying and then fails — bounded either way).
        """
        transient = exc.transient if isinstance(exc, InjectedFault) else True
        if seq.error is None:
            seq.error = f"{type(exc).__name__}: {exc}"
        if not isinstance(exc, InjectedFault):
            # Injected faults reach the timeline via the injector's
            # on_fire observer; real exceptions are recorded here.
            self._tl(seq, "fault", error=f"{type(exc).__name__}: {exc}")
        if transient and seq.retries < self.config.max_retries:
            seq.retries += 1
            self._retries.inc()
            self._tl(seq, "retry", retries=seq.retries)
            self._evict(seq, count_preemption=False)
        else:
            # lint: allow[finish-release-pairing] the quarantined victim stays
            # in scheduler.running; step()'s retire phase releases its storage
            # at the end of the failing tick.
            self._fail(seq, FINISH_ERROR, events)

    def _fail(self, seq: _Sequence, reason: str, events: list) -> None:
        """Finish ``seq`` abnormally and deliver the finish event."""
        seq.finished = True
        seq.finish_reason = reason
        self._tl(seq, "finish", reason=reason, tokens=len(seq.tokens))
        # Per-request counters: only the family's first member to finish
        # with this reason bumps them (n>1 siblings expire together).
        if not any(m is not seq and m.finish_reason == reason
                   for m in seq.family):
            if reason == FINISH_TIMEOUT:
                self._timed_out.inc()
            elif reason == FINISH_ERROR:
                self._failed.inc()
        event = TokenEvent(
            seq.request.request_id, None, len(seq.tokens), True, reason,
            sample=seq.sample_index,
        )
        events.append(event)
        self._deliver(seq, event)

    def _deliver(self, seq: _Sequence, event: TokenEvent,
                 events: list | None = None) -> None:
        """Invoke ``seq.on_token`` under the callback quarantine.

        A raising callback (real, or the ``callback`` injection site)
        poisons only its own request: the callback is dropped, the
        sequence finishes ``FINISH_ERROR`` (if still live) and every
        other request keeps streaming — a misbehaving client cannot
        take the batch down.
        """
        if seq.on_token is None:
            return
        try:
            with self._tracer.span("deliver"):
                self._fire(CALLBACK, seq)
                seq.on_token(event)
        except Exception as exc:
            seq.on_token = None      # quarantined: never called again
            seq.error = f"on_token callback failed: {type(exc).__name__}: {exc}"
            self._tl(seq, "callback_error", error=seq.error)
            if not seq.finished:
                seq.finished = True
                # lint: allow[finish-release-pairing] callback quarantine can
                # fire mid-tick while the row is still in the fused batch; the
                # tick's retire phase releases the storage.
                seq.finish_reason = FINISH_ERROR
                self._tl(seq, "finish", reason=FINISH_ERROR,
                         tokens=len(seq.tokens))
                if not any(m is not seq and m.finish_reason == FINISH_ERROR
                           for m in seq.family):
                    self._failed.inc()
                if events is not None:
                    events.append(TokenEvent(
                        seq.request.request_id, None, len(seq.tokens), True,
                        FINISH_ERROR, sample=seq.sample_index,
                    ))

    def _decode_tick(self, live: list, events: list) -> None:
        """One fused ``decode_step_batch`` over every decode row —
        unchanged from the pre-chunking engine, so decode-only ticks
        stay bit-identical to the single-stream loop."""
        with self._tracer.span("forward"):
            logits = self.model.decode_step_batch(
                [s.next_token for s in live],
                [s.lease.caches for s in live],
                [s.pos for s in live],
                weights=self.weights, act_quant=self.act_quant,
                trace=self._model_trace,
            )
        self._decode_ticks.inc()
        self._occupancy_sum.inc(len(live))
        with self._tracer.span("sample"):
            for b, seq in enumerate(live):
                seq.pos += 1
                seq.decode_steps += 1
                if seq.finished:
                    continue   # cancelled mid-tick by a reentrant callback
                self._emit(seq, seq.sampler.sample(logits[b]), events)

    def _mixed_tick(self, decode: list, chunks: list, events: list) -> None:
        """One packed ``forward_mixed`` over decode rows + prompt chunks."""
        tracer = self._tracer
        with tracer.span("pack_prefill"):
            segments = [
                MixedSegment([s.next_token], s.lease.caches, s.pos,
                             MixedSegment.DECODE)
                for s in decode
            ]
            for seq, n in chunks:
                start = seq.cursor.done
                final = start + n == seq.cursor.total
                segments.append(MixedSegment(
                    seq.pending_ids[start : start + n], seq.lease.caches, start,
                    MixedSegment.CHUNK_FINAL if final else MixedSegment.CHUNK,
                ))
        with tracer.span("forward"):
            outs = self.model.forward_mixed(
                segments, weights=self.weights, act_quant=self.act_quant,
                trace=self._model_trace,
            )
        if decode:
            self._decode_ticks.inc()
            self._occupancy_sum.inc(len(decode))
        with tracer.span("sample"):
            for seq, logits in zip(decode, outs):
                seq.pos += 1
                seq.decode_steps += 1
                if seq.finished:
                    continue   # cancelled mid-tick by a reentrant callback
                self._emit(seq, seq.sampler.sample(logits), events)
            for (seq, n), logits in zip(chunks, outs[len(decode):]):
                seq.cursor.advance(n)
                seq.prefill_chunks += 1
                self._prefill_chunks.inc()
                self._prefill_tokens.inc(n)
                self._tl(seq, "prefill_chunk", tokens=n,
                         done=seq.cursor.done, total=seq.cursor.total)
                if seq.cursor.complete:
                    seq.pos = seq.cursor.total
                    if self.pool is not None:
                        seq.lease.register_prefix(seq.pending_ids)
                    seq.cursor = None
                    seq.pending_ids = None
                    if not seq.finished:
                        self._finish_prefill(seq, logits, events)

    def _finish_prefill(self, seq: _Sequence, logits, events: list) -> None:
        """Prompt fully in cache: sample first token(s), fork siblings."""
        if seq.resuming:
            # Preempted sequence: the cache is rebuilt, the next token
            # was already sampled and emitted before eviction.
            seq.resuming = False
            return
        if 0 in seq.cancelled_samples:
            # Sample 0 was cancelled before its prefill finished: emit
            # nothing for it, fork the surviving siblings off its
            # prefill logits, then let it retire this tick.
            self._spawn_samples(seq, logits, events)
            self._finish_cancel(seq)
            return
        self._emit(seq, seq.sampler.sample(logits), events)
        # A cancel from the first token's on_token callback must stop
        # the whole request: never fork siblings for a cancelled parent
        # (finishing normally — max_tokens=1, stop token — still forks;
        # each sibling owes its own sample).
        if (seq.request.n > 1 and seq.sample_index == 0
                and len(seq.family) == 1
                and seq.finish_reason != FINISH_CANCELLED):
            self._spawn_samples(seq, logits, events)

    def _spawn_samples(self, seq: _Sequence, logits, events: list) -> None:
        """Materialize samples 1..n-1 off sample 0's completed prefill.

        Paged: :meth:`~repro.serve.paging.PagedLease.fork` — every
        prompt page is shared copy-on-write, no extra prefill compute.
        Arena: contiguous slots cannot alias, so the fallback replays
        the prompt into a fresh slot per sample (compute repeated,
        output identical).  Either way each sibling samples its *first*
        token from the parent's prefill logits — the distributions are
        identical by construction, and reusing the parent's avoids a
        spurious dependence on packed-GEMM ulp wobble — and then
        decodes as an independent lane.  The parent's reserved lanes
        shrink to 1; each sibling carries its own lane from here on.
        """
        prompt = seq.request.prompt
        seq.lanes = 1
        self._tl(seq, "fork", n=seq.request.n)
        for i in range(1, seq.request.n):
            if i in seq.cancelled_samples:
                # Cancelled before the fork: never allocate a lane or
                # lease — a finished stub carries the sample's
                # FINISH_CANCELLED entry (and its cancel event) instead.
                stub = _Sequence(seq.request, seq.on_token, seq.submit_time,
                                 sample_index=i)
                stub.arrival_seq = seq.arrival_seq
                stub.admit_time = seq.admit_time
                stub.family = seq.family
                seq.family.append(stub)
                self._finish_cancel(stub)
                stub.retired = True
                continue
            sibling = _Sequence(seq.request, seq.on_token, seq.submit_time,
                                sample_index=i)
            sibling.arrival_seq = seq.arrival_seq
            sibling.admit_time = seq.admit_time
            sibling.family = seq.family
            seq.family.append(sibling)
            if self.pool is not None:
                sibling.lease = seq.lease.fork()
            else:
                sibling.lease = self.arena.acquire()
                self.model.prefill(
                    prompt, sibling.lease.caches,
                    weights=self.weights, act_quant=self.act_quant,
                )
                self._prefill_tokens.inc(int(prompt.size))
            sibling.pos = seq.pos
            self.scheduler.add_running(sibling)
            self._emit(sibling, sibling.sampler.sample(logits), events)

    def _preempt(self, seq: _Sequence) -> None:
        self._evict(seq)

    def _evict(self, seq: _Sequence, count_preemption: bool = True) -> None:
        """Running → head of the queue, storage released, replay later.

        The shared recompute path under preemption (pool pressure),
        transient-fault retries and batch-failure recovery: on
        re-admission :meth:`_Sequence.prefill_ids` replays prompt +
        emitted tokens and ``resuming`` suppresses re-emission, so the
        sequence continues exactly where it left off.
        """
        self.scheduler.requeue_front(seq)
        self._release_storage(seq)
        # Discard any chunked-prefill progress: the evicted pages are
        # gone, so resume must rebuild a cursor over the whole (by then
        # grown) prompt via prefill_len and replay it from token zero.
        seq.cursor = None
        seq.pending_ids = None
        # Mid-prefill victims emitted nothing yet — their re-admission
        # is a plain first prefill, not a resume.
        seq.resuming = bool(seq.tokens)
        if count_preemption:
            self._preemptions.inc()
            self._tl(seq, "preempt")

    def _emit(self, seq: _Sequence, token: int, events: list[TokenEvent]) -> None:
        """Record one sampled token, deciding emission and finish state."""
        rid = seq.request.request_id
        if token in seq.request.stop_tokens:
            seq.finished = True
            # lint: allow[finish-release-pairing] normal finishes (stop token /
            # max_tokens) are retired by step()'s finish phase the same tick —
            # release here would free the lease while the batch still runs.
            seq.finish_reason = FINISH_STOP
            event = TokenEvent(rid, None, len(seq.tokens), True, FINISH_STOP,
                               sample=seq.sample_index)
        else:
            seq.tokens.append(token)
            seq.next_token = token
            if len(seq.tokens) >= seq.request.max_tokens:
                seq.finished = True
                seq.finish_reason = FINISH_LENGTH
            text = None
            if self._detokenize is not None:
                full = self._detokenize(list(seq.tokens))
                text = full[seq.text_len:]
                seq.text_len = len(full)
            event = TokenEvent(
                rid, token, len(seq.tokens) - 1, seq.finished, seq.finish_reason,
                text, sample=seq.sample_index,
            )
        if event.token is not None:
            # Latency histograms: TTFT on the first emitted token,
            # inter-token gaps between consecutive ones.
            t_emit = self._now()
            if math.isnan(seq.first_token_time):
                seq.first_token_time = t_emit
                self._ttfts.observe(t_emit - seq.submit_time)
                self._tl(seq, "first_token")
            else:
                self._itls.observe(t_emit - seq.last_token_time)
            seq.last_token_time = t_emit
        self._tokens_generated.inc(event.token is not None)
        if seq.finished:
            self._tl(seq, "finish", reason=seq.finish_reason,
                     tokens=len(seq.tokens))
        events.append(event)
        self._deliver(seq, event, events)

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _release_storage(self, seq: _Sequence) -> None:
        if seq.lease is None:
            return               # queued / preempted: nothing leased
        if self.pool is not None:
            seq.lease.release()
        else:
            self.arena.release(seq.lease)
        seq.lease = None

    def _retire(self, seq: _Sequence) -> None:
        if seq.retired:
            return               # fault/timeout/cancel paths may race
        now = self._now()
        self.scheduler.release(seq)
        self._release_storage(seq)
        seq.retired = True
        if all(m.retired for m in seq.family):
            self._record_result(seq.family, now)

    def _record_result(self, family: list, now: float) -> None:
        """All samples done: build the request's :class:`GenerationResult`."""
        parent = family[0]
        rid = parent.request.request_id
        self._active_ids.discard(rid)
        samples = [
            SampleOutput(
                m.sample_index, m.tokens, m.finish_reason,
                text=(self._detokenize(list(m.tokens))
                      if self._detokenize is not None else None),
                error=m.error,
            )
            for m in sorted(family, key=lambda m: m.sample_index)
        ]
        admitted = not math.isnan(parent.admit_time)
        latency = (parent.admit_time - parent.submit_time) if admitted else float("nan")
        if parent.finish_reason in _ABNORMAL_FINISH:
            pass    # counted in requests_cancelled/timed_out/failed instead
        else:
            self._completed.inc()
            self._queue_lat.observe(latency)
        trace = self._req_traces.get(rid)
        self._results[rid] = GenerationResult(
            request_id=rid,
            tokens=samples[0].tokens,
            finish_reason=samples[0].finish_reason,
            queue_latency_s=latency,
            service_time_s=(now - parent.admit_time) if admitted else 0.0,
            decode_steps=parent.decode_steps,
            ttft_s=parent.first_token_time - parent.submit_time,
            prefill_chunks=parent.prefill_chunks,
            samples=samples,
            error=next((s.error for s in samples if s.error is not None), None),
            trace=trace.to_events() if trace is not None else None,
            traffic_class=parent.request.traffic_class,
        )

    # ------------------------------------------------------------------
    # Driving loops
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        return self.scheduler.has_work()

    def run(self, requests=()):
        """Submit ``requests`` then step until idle, yielding every event."""
        for request in requests:
            self.submit(request)
        while self.has_work():
            yield from self.step()

    def generate(self, requests=()) -> dict[str, GenerationResult]:
        """Drain :meth:`run` and return results for the drained requests.

        With no ``requests``, drains already-submitted work and returns
        the results of the requests that finished *during this call*
        (results retained from earlier calls are not re-reported).
        """
        requests = list(requests)    # may be a generator; iterated twice
        ids = [r.request_id for r in requests]
        finished = []
        for event in self.run(requests):
            if event.finished:
                finished.append(event.request_id)
        return {rid: self._results[rid] for rid in (ids or finished)}

    def result(self, request_id: str) -> GenerationResult:
        return self._results[str(request_id)]

    def pop_result(self, request_id: str) -> GenerationResult:
        """Retrieve and evict one finished request's result.

        Long-lived engines must consume results this way: retained
        results hold their token lists and reserve the request id, so a
        server that only ever reads with :meth:`result` grows without
        bound.  After eviction the id may be reused by a new request.
        (The request's live timeline is evicted with it; the popped
        result's ``trace`` field keeps the serialized copy.)
        """
        self._req_traces.pop(str(request_id), None)
        return self._results.pop(str(request_id))

    # ------------------------------------------------------------------
    # Drain / snapshot / restore
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining

    def stop_admission(self) -> None:
        """Stop admitting queued work; in-flight sequences keep running.

        New :meth:`submit` calls are rejected while draining.
        """
        self._draining = True

    def resume_admission(self) -> None:
        self._draining = False

    def drain(self) -> list[TokenEvent]:
        """Run the *admitted* work to completion, admitting nothing new.

        The graceful-shutdown half of snapshot/restore: after ``drain``
        the running set is empty and every still-queued request is
        untouched, ready for :meth:`snapshot`.  Admission stays stopped
        until :meth:`resume_admission`.  Returns the events emitted
        while draining.
        """
        self.stop_admission()
        events: list[TokenEvent] = []
        while self.scheduler.n_running:
            events.extend(self.step())
        return events

    def snapshot(self) -> dict:
        """Serialize every live (queued or running) request.

        The snapshot is pure JSON-compatible data: the config, each
        request's full submission parameters and, per sample, the
        emitted tokens and the sampler's RNG state.  KV-cache contents
        are deliberately *not* captured — :meth:`restore` replays each
        in-flight sequence through the preemption recompute path, which
        rebuilds the cache and (with the restored RNG state) continues
        token-for-token where the snapshot stopped.  Finished samples
        of partially-done families are carried verbatim.
        """
        if self._stepping:
            raise RuntimeError("snapshot() must run at a tick boundary, "
                               "not from inside an on_token callback")
        families: dict[str, list] = {}
        order: dict[str, int] = {}
        for seq in [*self.scheduler.queued, *self.scheduler.running]:
            rid = seq.request.request_id
            families.setdefault(rid, seq.family)
            order.setdefault(rid, seq.arrival_seq)
        records = []
        for rid, family in families.items():
            req = family[0].request
            cancelled = sorted(family[0].cancelled_samples)
            records.append({
                **({"cancelled_samples": cancelled} if cancelled else {}),
                "request": {
                    "request_id": req.request_id,
                    "prompt": [int(t) for t in req.prompt],
                    "max_tokens": req.max_tokens,
                    "sampling": dataclasses.asdict(req.sampling),
                    "stop_tokens": sorted(int(t) for t in req.stop_tokens),
                    "priority": req.priority,
                    "deadline_s": req.deadline_s,
                    "n": req.n,
                    "timeout_s": req.timeout_s,
                    "traffic_class": req.traffic_class,
                },
                "arrival_seq": order[rid],
                "samples": [
                    {
                        "index": m.sample_index,
                        "tokens": [int(t) for t in m.tokens],
                        "finished": m.finished,
                        "finish_reason": m.finish_reason,
                        "error": m.error,
                        "rng_state": m.sampler.get_state(),
                    }
                    for m in sorted(family, key=lambda m: m.sample_index)
                ],
            })
        records.sort(key=lambda r: r["arrival_seq"])
        return {
            "version": 1,
            "config": dataclasses.asdict(self.config),
            "requests": records,
        }

    @classmethod
    def restore(cls, snapshot: dict, model, cache_factory, *,
                config: ServeConfig | None = None, on_token=None,
                **engine_kwargs) -> "GenerationEngine":
        """Build a fresh engine resuming a :meth:`snapshot`.

        ``config`` overrides the snapshotted one (same model required
        either way).  ``on_token`` re-attaches streaming callbacks —
        callbacks are process-local and cannot be serialized — either
        one callable for every request or a ``{request_id: callable}``
        mapping.  Each restored sequence replays prompt + emitted
        tokens through the recompute path and continues from its
        restored RNG state; for deterministic cache types (fp16/int4)
        the continuation is token-for-token what the original engine
        would have produced (MANT recompute re-quantizes the replayed
        window — the standing recompute trade).
        """
        if snapshot.get("version") != 1:
            raise ValueError(
                f"unsupported snapshot version {snapshot.get('version')!r}"
            )
        cfg = config if config is not None else ServeConfig(**snapshot["config"])
        engine = cls(model, cache_factory, cfg, **engine_kwargs)
        for record in sorted(snapshot["requests"], key=lambda r: r["arrival_seq"]):
            engine._restore_request(record, on_token)
        return engine

    def adopt(self, record: dict, on_token=None) -> RequestHandle:
        """Resume one snapshot-format request record in this *live* engine.

        The failover half of snapshot/restore: where :meth:`restore`
        builds a fresh engine from a whole snapshot, ``adopt`` takes a
        single request record (one entry of ``snapshot()["requests"]``)
        and resubmits it here — a fleet router uses this to move a
        crashed replica's in-flight requests onto survivors.  The
        record replays through the recompute path exactly as under
        :meth:`restore` (``force``-submitted past ``max_queue_len``,
        RNG state restored, deterministic caches continue
        token-for-token).  Raises ``ValueError`` if the request id is
        already live or finished here.
        """
        if self._stepping:
            raise RuntimeError("adopt() must run at a tick boundary, "
                               "not from inside an on_token callback")
        self._restore_request(record, on_token)
        return RequestHandle(record["request"]["request_id"], self)

    def _restore_request(self, record: dict, on_token=None) -> None:
        r = record["request"]
        request = GenerationRequest(
            request_id=r["request_id"],
            prompt=np.asarray(r["prompt"], dtype=np.int64),
            max_tokens=r["max_tokens"],
            sampling=SamplingParams(**r["sampling"]),
            stop_tokens=frozenset(r["stop_tokens"]),
            priority=r.get("priority", 0),
            deadline_s=r.get("deadline_s"),
            n=r.get("n", 1),
            timeout_s=r.get("timeout_s"),
            traffic_class=r.get("traffic_class"),
        )
        rid = request.request_id
        if rid in self._active_ids or rid in self._results:
            raise ValueError(f"duplicate request_id {rid!r} in snapshot")
        cb = (on_token if on_token is None or callable(on_token)
              else on_token.get(rid))
        now = self._now()
        family: list[_Sequence] = []
        live: list[_Sequence] = []
        for s in sorted(record["samples"], key=lambda s: s["index"]):
            seq = _Sequence(request, cb, now, sample_index=s["index"])
            seq.arrival_seq = self._arrivals
            seq.timeout_s = (
                request.timeout_s if request.timeout_s is not None
                else self.config.request_timeout_s
            )
            seq.tokens = [int(t) for t in s["tokens"]]
            seq.next_token = seq.tokens[-1] if seq.tokens else None
            seq.error = s.get("error")
            seq.family = family
            family.append(seq)
            if s["finished"]:
                seq.finished = True
                seq.finish_reason = s["finish_reason"]
                seq.retired = True
            else:
                seq.resuming = bool(seq.tokens)
                seq.sampler.set_state(s.get("rng_state"))
                live.append(seq)
        if not live:
            return               # fully-finished family: nothing to resume
        # Lane accounting: a pre-fork n>1 parent (single tokenless
        # sample) still reserves the whole family's lanes; a post-fork
        # family restores each live sample as its own single lane.
        if not (request.n > 1 and len(family) == 1 and not family[0].tokens):
            for m in live:
                m.lanes = 1
        else:
            family[0].cancelled_samples = set(
                record.get("cancelled_samples", ()))
            family[0].lanes = max(
                1, request.n - len(family[0].cancelled_samples))
        for m in live:
            # ``force``: formerly-*running* sequences legitimately
            # exceed max_queue_len; the token budget still applies.
            self.scheduler.submit(m, force=True)
        if any(m.timeout_s is not None for m in live):
            self._timeouts_armed = True
        self._active_ids.add(rid)
        self._submitted.inc()
        self._arrivals += 1
        self._restored.inc()
        if self._observe:
            trace = self._req_traces[rid] = RequestTrace(rid)
            trace.add("restore", self._tracer.now(),
                      samples=len(record["samples"]),
                      tokens=sum(len(m.tokens) for m in live))

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify engine-wide resource accounting; raises on violation.

        Checked: pool block refcounts against the running leases' page
        tables (paged), arena slot accounting (arena), scheduler lane
        bookkeeping against ``max_batch_size``, and request-id
        registration.  Runs after every tick in strict mode
        (``ServeConfig.check_invariants`` or ``REPRO_SERVE_STRICT=1`` —
        the test suite's default); call it at tick boundaries.
        """
        sched = self.scheduler
        running = sched.running
        queued = sched.queued
        lanes = sched.lanes_in_flight
        if lanes > self.config.max_batch_size:
            raise RuntimeError(
                f"lane bookkeeping violated: {lanes} lanes in flight, "
                f"max_batch_size={self.config.max_batch_size}"
            )
        for seq in running:
            if seq.retired:
                raise RuntimeError(
                    f"retired sequence {seq.request.request_id!r} still in "
                    "the running set"
                )
        for seq in queued:
            if seq.lease is not None:
                raise RuntimeError(
                    f"queued sequence {seq.request.request_id!r} holds "
                    "cache storage"
                )
        live_ids = {s.request.request_id for s in [*running, *queued]}
        unregistered = live_ids - self._active_ids
        if unregistered:
            raise RuntimeError(
                f"live sequences not registered as active: {unregistered}"
            )
        stale = live_ids & set(self._results)
        if stale:
            raise RuntimeError(
                f"requests both live and holding a recorded result: {stale}"
            )
        if self.pool is not None:
            expected: dict[int, int] = {}
            for seq in running:
                if seq.lease is not None:
                    for bid in seq.lease.table.blocks:
                        expected[bid] = expected.get(bid, 0) + 1
            self.pool.check_integrity(expected)
        else:
            slots = [seq.lease.slot for seq in running if seq.lease is not None]
            if len(slots) != len(set(slots)):
                raise RuntimeError(f"arena slot double-leased: {sorted(slots)}")
            if self.arena.slots_in_use != len(slots):
                raise RuntimeError(
                    f"arena slot accounting violated: {self.arena.slots_in_use} "
                    f"slots in use, {len(slots)} leases held by running "
                    "sequences"
                )

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> EngineStats:
        """Snapshot the metrics registry as an :class:`EngineStats`.

        Pure read — every field comes from a registry instrument (see
        ``EngineStats.STATS_METRICS``) or is a ratio/percentile derived
        from one, so ``stats()``, ``metrics.to_prometheus()`` and a
        fleet ``MetricsRegistry.merge`` all describe the same numbers.
        """
        m = self.metrics
        elapsed = self._busy_s.value
        completed = self._completed.value
        tokens = self._tokens_generated.value
        decode_ticks = self._decode_ticks.value
        return EngineStats(
            scheduler_policy=self.scheduler.policy.name,
            requests_submitted=self._submitted.value,
            requests_completed=completed,
            requests_queued=m.get("requests_queued").value,
            requests_running=m.get("requests_running").value,
            requests_rejected=self._rejected.value,
            requests_cancelled=self._cancelled.value,
            requests_timed_out=self._timed_out.value,
            requests_failed=self._failed.value,
            retries=self._retries.value,
            snapshot_restores=self._restored.value,
            tokens_generated=tokens,
            decode_ticks=decode_ticks,
            mean_batch_occupancy=(
                self._occupancy_sum.value / decode_ticks if decode_ticks else 0.0
            ),
            batch_lanes=self.config.max_batch_size,
            elapsed_s=elapsed,
            wall_elapsed_s=self._wall_elapsed(),
            tokens_per_s=tokens / elapsed if elapsed > 0 else 0.0,
            mean_queue_latency_s=(
                self._queue_lat.sum / completed if completed else 0.0
            ),
            max_queue_latency_s=self._queue_lat.max_value,
            cache_slots=self._g_cache_slots.value,
            cache_slots_high_water=self._g_cache_high.value,
            preemptions=self._preemptions.value,
            prefix_hit_tokens=self._g_prefix_hits.value,
            prefill_chunks=self._prefill_chunks.value,
            prefill_tokens=self._prefill_tokens.value,
            ttft_p50_s=self._ttfts.percentile(50),
            ttft_p95_s=self._ttfts.percentile(95),
            inter_token_p50_s=self._itls.percentile(50),
            inter_token_p95_s=self._itls.percentile(95),
        )
