"""Deterministic fault injection (chaos harness) for the serving engine.

Production serving engines fail in ways unit tests never exercise: a
model forward raises mid-batch, the block pool refuses an allocation
under pressure, a client's streaming callback throws, the wall clock
jumps.  This module makes every one of those paths *testable and
reproducible*: a :class:`FaultInjector` is armed with named injection
points and threaded through engine, scheduler and pool, and fires
deterministically — either at scripted occurrences (:meth:`FaultInjector.
arm`: "the 3rd forward of request r2 raises") or pseudo-randomly from a
seeded RNG (:meth:`FaultInjector.chaos`), so a chaos run replays
bit-for-bit from its seed.

Injection sites (the engine documents where each fires):

``FORWARD``
    A model forward pass for one sequence raises.  Checked per sequence
    at the tick boundary *before* the fused call, so an injected
    forward fault never half-mutates bystander caches — the offender is
    quarantined, everyone else's tick proceeds untouched.
``ALLOC``
    KV storage allocation fails — at admission (arena slot / first
    lease) or when a paged sequence needs new pages this tick.  Also
    consulted by :meth:`~repro.serve.paging.BlockPool.allocate` itself,
    which covers allocations the planner cannot anticipate
    (copy-on-write clones).
``CALLBACK``
    A request's ``on_token`` callback raises (the engine also catches
    *real* callback exceptions through the same quarantine path).
``CLOCK``
    The engine's clock jumps forward by an armed skew
    (:meth:`FaultInjector.clock_skew`) — exercises timeout enforcement
    under clock trouble.
``REPLICA_STALL`` / ``REPLICA_CRASH``
    Replica-scoped sites consulted by the fleet router
    (:class:`~repro.serve.fleet.FleetRouter`), once per replica per
    fleet tick, with the *replica name* in the ``request_id`` slot of
    the replayable log.  A fired stall wedges the replica for that tick
    (arm ``times=K`` to wedge K consecutive ticks); a fired crash kills
    the replica outright — its in-flight requests fail over to
    survivors.  Engines never consult these sites themselves.

Faults armed ``transient=True`` model recoverable trouble: the engine
retries the victim through its recompute path (bounded by
``ServeConfig.max_retries``) instead of failing it outright.

The injector records every fault it fires in :attr:`FaultInjector.log`,
so a failing chaos run can be replayed as a scripted one.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FORWARD",
    "ALLOC",
    "CALLBACK",
    "CLOCK",
    "REPLICA_STALL",
    "REPLICA_CRASH",
    "SITES",
    "InjectedFault",
    "FaultInjector",
]

FORWARD = "forward"
ALLOC = "alloc"
CALLBACK = "callback"
CLOCK = "clock"
REPLICA_STALL = "replica_stall"
REPLICA_CRASH = "replica_crash"
SITES = (FORWARD, ALLOC, CALLBACK, CLOCK, REPLICA_STALL, REPLICA_CRASH)


class InjectedFault(RuntimeError):
    """The exception a fired injection point raises.

    ``request_id`` is the sequence the fault was attributed to (``None``
    for unattributed sites like a pool-internal allocation);
    ``transient`` marks faults the engine should retry-with-recompute
    rather than fail outright.
    """

    def __init__(self, site: str, request_id: str | None = None,
                 transient: bool = False):
        self.site = site
        self.request_id = request_id
        self.transient = transient
        target = f" for request {request_id!r}" if request_id is not None else ""
        kind = "transient " if transient else ""
        super().__init__(f"injected {kind}{site} fault{target}")


class _Rule:
    """One armed injection: site + target + firing schedule."""

    __slots__ = ("site", "request_id", "after", "times", "transient",
                 "probability", "skew_s")

    def __init__(self, site, request_id, after, times, transient,
                 probability=None, skew_s=0.0):
        self.site = site
        self.request_id = request_id
        self.after = after            # matching occasions to skip first
        self.times = times            # firings left (None = unlimited)
        self.transient = transient
        self.probability = probability  # None = always fire when eligible
        self.skew_s = skew_s          # CLOCK site: seconds to jump

    def matches(self, site, request_id) -> bool:
        if self.site != site:
            return False
        return self.request_id is None or self.request_id == request_id


class FaultInjector:
    """Seeded, scripted chaos source for one engine.

    Use one injector per engine (rules are consumed as they fire).  All
    scheduling is deterministic: scripted rules count *matching
    occasions* (``after``/``times``), and :meth:`chaos` rules draw from
    the injector's private seeded RNG in engine call order — the same
    seed against the same workload fires the same faults.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._rules: list[_Rule] = []
        self._skew = 0.0              # accumulated CLOCK skew
        self.log: list[tuple[str, str | None]] = []
        self._observers: list = []    # (log_index, site, request_id) callbacks

    def on_fire(self, callback) -> "FaultInjector":
        """Register ``callback(log_index, site, request_id)``, invoked
        synchronously whenever a fault fires (before the exception
        propagates).  ``log_index`` indexes :attr:`log`, so observers —
        the engine's observability layer joins fired faults into the
        victim request's timeline this way — can correlate without
        changing the log's replayable ``(site, request_id)`` shape.
        Observers must not raise; they run inside the firing path.
        """
        self._observers.append(callback)
        return self

    def _notify(self, site: str, request_id: str | None) -> None:
        index = len(self.log) - 1
        for callback in self._observers:
            callback(index, site, request_id)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def _check_site(self, site: str) -> None:
        if site not in SITES:
            raise ValueError(f"unknown fault site {site!r}; available: {SITES}")

    def arm(self, site: str, request_id: str | None = None, *,
            after: int = 0, times: int = 1,
            transient: bool = False) -> "FaultInjector":
        """Script a fault: fire at the ``after``-th matching occasion.

        ``request_id=None`` matches any sequence at the site; ``after``
        skips that many matching occasions first (``after=2``: the 3rd
        forward of the target raises); ``times`` bounds total firings.
        Returns ``self`` for chaining.
        """
        self._check_site(site)
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        self._rules.append(_Rule(site, request_id, after, times, transient))
        return self

    def chaos(self, site: str, probability: float,
              request_id: str | None = None, *, times: int | None = None,
              transient: bool = True) -> "FaultInjector":
        """Fire pseudo-randomly at ``probability`` per matching occasion.

        Draws come from the injector's seeded RNG in call order, so a
        chaos schedule is reproducible from ``seed`` alone.  Defaults to
        ``transient`` faults (the chaos-testing common case: trouble the
        engine should survive, not a poison request).
        """
        self._check_site(site)
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        if times is not None and times < 1:
            raise ValueError(f"times must be >= 1 (or None), got {times}")
        self._rules.append(
            _Rule(site, request_id, 0, times, transient, probability=probability)
        )
        return self

    def clock_skew(self, skew_s: float, *, after: int = 0) -> "FaultInjector":
        """Arm a one-shot clock jump of ``skew_s`` seconds.

        The skew applies permanently from the ``after``-th clock read
        of a :meth:`wrap_clock`-wrapped clock onward (a forward jump —
        the shape of clock trouble that falsely expires timeouts).
        """
        if after < 0:
            raise ValueError(f"after must be >= 0, got {after}")
        self._rules.append(_Rule(CLOCK, None, after, 1, False, skew_s=skew_s))
        return self

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, site: str, request_id: str | None = None) -> None:
        """Consult the rules at one injection occasion; raise if armed.

        Rules are consulted in arming order and the first eligible one
        fires (consuming one of its ``times``); a not-yet-eligible
        matching rule ticks its ``after`` counter down instead.  No-op
        when nothing is armed for the site.
        """
        for rule in self._rules:
            if rule.site == CLOCK or not rule.matches(site, request_id):
                continue
            if rule.after > 0:
                rule.after -= 1
                continue
            if rule.probability is not None and self._rng.random() >= rule.probability:
                continue
            if rule.times is not None:
                rule.times -= 1
                if rule.times == 0:
                    self._rules.remove(rule)
            self.log.append((site, request_id))
            self._notify(site, request_id)
            raise InjectedFault(site, request_id, rule.transient)

    def wrap_clock(self, clock):
        """Wrap an engine clock so armed :meth:`clock_skew` rules apply."""

        def skewed_clock() -> float:
            t = clock()
            for rule in list(self._rules):
                if rule.site != CLOCK:
                    continue
                if rule.after > 0:
                    rule.after -= 1
                    continue
                self._skew += rule.skew_s
                self._rules.remove(rule)
                self.log.append((CLOCK, None))
                self._notify(CLOCK, None)
            return t + self._skew

        return skewed_clock

    # ------------------------------------------------------------------
    @property
    def fired(self) -> int:
        """Total faults fired so far (all sites)."""
        return len(self.log)

    def fired_at(self, site: str) -> int:
        """Faults fired at one site."""
        return sum(1 for s, _ in self.log if s == site)

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.seed}, armed={len(self._rules)}, "
                f"fired={len(self.log)})")
