"""Multi-replica serving: routing, health, failover, hedging, recovery.

A single :class:`~repro.serve.engine.GenerationEngine` is one fault
domain: a wedged forward pass or an exhausted pool hurts every request
on it.  :class:`FleetRouter` makes the *replica* the fault domain
instead — it owns N in-process engines (each with its own labeled
:class:`~repro.serve.observe.MetricsRegistry`) behind one engine-shaped
surface (``submit / step / has_result / pop_result / stats``), so the
load harness, the request handles and the SLO layer drive a fleet
exactly like they drive one engine.

The five fleet mechanisms:

**Prefix-affinity routing.**  The first ``FleetConfig.affinity_tokens``
prompt ids are hashed (CRC-32, deterministic across processes) to pick
a home replica, so shared-system-prompt traffic lands on the replica
whose :class:`~repro.serve.paging.BlockPool` already holds those prefix
pages.  Load-based fallback (``affinity_load_slack``) keeps affinity
from drowning one replica, and ``max_queue_len`` backpressure composes
across the fleet: a request is rejected only when *every* admitting
replica refuses it.

**Health states + circuit breaker.**  Every router tick is a probe
tick: each replica's error/timeout budget is read from its own
registry.  HEALTHY replicas take traffic first, DEGRADED ones (budget
partially burned) only when no healthy replica admits, QUARANTINED
ones (breaker open) none at all.  The breaker runs closed → open (on
budget burn) → half-open (after ``breaker_open_s``: exactly one probe
request is admitted) → closed on probe success / reopen on failure.

**Replica-scoped chaos + failover.**  The router consults the shared
:class:`~repro.serve.faults.FaultInjector` at two replica-scoped
sites — ``REPLICA_STALL`` (the replica skips this tick; arm
``times=K`` to wedge it for K ticks) and ``REPLICA_CRASH`` — once per
replica per tick, with the replica name in the log's ``request_id``
slot, so a seeded chaos script kills or wedges replicas
deterministically and replays bit-for-bit.  On a crash the router
rebuilds the replica empty and resubmits its in-flight requests to
survivors through :meth:`~repro.serve.engine.GenerationEngine.adopt`
(the snapshot/restore recompute path): greedy requests continue
token-for-token from the router's live token journal; sampled requests
resume from the last disk snapshot's RNG state and *replay the delta*
(re-emissions are deduplicated before clients see them).  Bystander
replicas are never touched, so their output is bit-identical to an
undisturbed run.

**Hedged requests.**  A request with no first token after the hedge
delay (``hedge_after_s``, or the fleet-wide ``hedge_ttft_percentile``
of observed TTFTs) is duplicated onto a second replica.  The client
sees one merged, deduplicated token stream (whichever copy is ahead
feeds it); the first copy to finish normally wins and the loser is
cancelled.  A copy that dies abnormally while its twin lives is simply
dropped — hedging doubles as failover for wedged replicas.

**Snapshot rotation.**  With ``snapshot_interval_s`` set, each replica
is snapshotted (:meth:`~repro.serve.engine.GenerationEngine.snapshot`)
every interval into ``snapshot_dir/<replica>/snap-<seq>.json`` with
keep-last-``snapshot_keep`` rotation — the RNG-state source for
sampled-request crash recovery above, and an operator-grade restart
artifact either way.

Determinism: the router holds no wall-clock state of its own — every
timing decision reads the injected ``clock`` (wall or the loadgen
:class:`~repro.serve.loadgen.VirtualClock`), replicas are consulted and
stepped in fixed order, and the shared injector's RNG draws happen in
that same order, so an entire chaos scenario replays field-identically
from its seed.  One injector serves the whole fleet: request ids are
unique fleet-wide, and the replica-scoped sites carry replica names.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import zlib

import numpy as np

from repro.serve.config import FleetConfig, ServeConfig
from repro.serve.engine import GenerationEngine
from repro.serve.faults import REPLICA_CRASH, REPLICA_STALL, InjectedFault
from repro.serve.observe import Histogram, MetricsRegistry
from repro.serve.request import (
    FINISH_LENGTH,
    FINISH_STOP,
    GenerationRequest,
    GenerationResult,
    RequestHandle,
    SampleOutput,
    TokenEvent,
)
from repro.serve.scheduler import QueueFullError

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "HEDGE_SUFFIX",
    "ReplicaStatus",
    "FleetStats",
    "FleetRouter",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Suffix of the internal request id a hedged duplicate runs under.
HEDGE_SUFFIX = "::hedge"

_NORMAL_FINISH = (FINISH_LENGTH, FINISH_STOP)


def prefix_hash(prompt, n_tokens: int) -> int:
    """Deterministic hash of the first ``n_tokens`` prompt ids.

    CRC-32 over the id bytes — stable across processes and Python
    hash randomization, so affinity routing replays identically.
    """
    head = np.asarray(prompt, dtype=np.int64)[:n_tokens]
    return zlib.crc32(head.tobytes())


class _Replica:
    """One engine plus the router's view of its health and bookkeeping."""

    __slots__ = (
        "name", "index", "engine", "state", "breaker", "open_until",
        "err_base", "last_errs", "clean_since", "probe_rid", "incarnation",
        "snap_seq", "next_snap_due", "stalled", "prev_prefill", "prev_lanes",
    )

    def __init__(self, name: str, index: int, engine: GenerationEngine):
        self.name = name
        self.index = index
        self.state = HEALTHY
        self.breaker = BREAKER_CLOSED
        self.open_until = 0.0
        self.probe_rid: str | None = None
        self.incarnation = 0
        self.snap_seq = 0
        self.next_snap_due: float | None = None
        self.stalled = False          # wedged for the current tick only
        self.attach(engine)

    def attach(self, engine: GenerationEngine) -> None:
        """Bind a (fresh or replacement) engine and re-anchor budgets."""
        self.engine = engine
        self.err_base = 0
        self.last_errs = 0
        self.clean_since = 0.0
        self.prev_prefill = 0
        self.prev_lanes = 0

    @property
    def errors(self) -> int:
        m = self.engine.metrics
        return (m.get("requests_failed").value
                + m.get("requests_timed_out").value)

    @property
    def load(self) -> int:
        s = self.engine.scheduler
        return s.queue_depth + s.n_running

    def admits(self) -> bool:
        if self.breaker == BREAKER_CLOSED:
            return True
        if self.breaker == BREAKER_HALF_OPEN:
            return self.probe_rid is None     # exactly one probe in flight
        return False


class _Tracked:
    """Router-side state of one client request."""

    __slots__ = ("request", "on_token", "submit_s", "copies", "delivered",
                 "hedged", "done")

    def __init__(self, request: GenerationRequest, on_token, submit_s: float):
        self.request = request
        self.on_token = on_token
        self.submit_s = submit_s
        self.copies: dict[str, str] = {}   # copy rid -> replica name
        self.delivered: dict[int, int] = {}  # sample -> tokens streamed
        self.hedged = False
        self.done = False


@dataclasses.dataclass
class ReplicaStatus:
    """One replica's externally visible health snapshot."""

    name: str
    state: str
    breaker: str
    load: int
    errors: int
    incarnation: int

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class FleetStats:
    """Fleet counters + per-replica :class:`~repro.serve.engine.
    EngineStats`, the :meth:`FleetRouter.stats` snapshot."""

    ticks: int
    requests_routed: int
    affinity_hits: int
    fallback_routes: int
    requests_rejected: int
    hedges_launched: int
    hedges_won: int
    hedges_cancelled: int
    replica_crashes: int
    replica_stalls: int
    failovers: int
    snapshots_written: int
    replicas: dict                 # name -> EngineStats
    health: dict                   # name -> ReplicaStatus

    def summary(self) -> dict:
        """JSON-ready report (the shape ``HarnessResult.to_dict`` embeds)."""
        return {
            "fleet": {
                "ticks": self.ticks,
                "requests_routed": self.requests_routed,
                "affinity_hits": self.affinity_hits,
                "fallback_routes": self.fallback_routes,
                "requests_rejected": self.requests_rejected,
                "hedges_launched": self.hedges_launched,
                "hedges_won": self.hedges_won,
                "hedges_cancelled": self.hedges_cancelled,
                "replica_crashes": self.replica_crashes,
                "replica_stalls": self.replica_stalls,
                "failovers": self.failovers,
                "snapshots_written": self.snapshots_written,
            },
            "health": {n: s.to_dict() for n, s in sorted(self.health.items())},
            "replicas": {n: s.summary() for n, s in sorted(self.replicas.items())},
        }


class FleetRouter:
    """N in-process engine replicas behind one engine-shaped surface.

    Construction mirrors :class:`~repro.serve.engine.GenerationEngine`:
    every replica shares the ``model``/``cache_factory``/``config`` (and
    the injected ``clock`` and ``faults``), while each gets its own
    labeled metrics registry (``{"replica": "replica-<i>"}``).  The
    router's own counters live in :attr:`metrics` (labeled
    ``{"scope": "fleet"}``) — including ``prefill_tokens`` and
    ``decode_lane_ticks`` advanced by the *maximum* per-replica delta
    each tick, so the loadgen virtual-clock cost model charges a fleet
    tick like its slowest replica (replicas run in parallel).

    See the module docstring for routing/health/failover/hedging/
    snapshot semantics.
    """

    def __init__(
        self,
        model,
        cache_factory,
        config: ServeConfig = ServeConfig(),
        fleet: FleetConfig = FleetConfig(),
        *,
        weights=None,
        act_quant=None,
        clock=time.perf_counter,
        policy_factory=None,
        faults=None,
    ):
        self.model = model
        self.config = config
        self.fleet = fleet
        self._cache_factory = cache_factory
        self._weights = weights
        self._act_quant = act_quant
        self._clock = clock
        self._policy_factory = policy_factory
        self._faults = faults
        self._draining = False
        self._tracked: dict[str, _Tracked] = {}
        self._journal: dict[str, dict[int, dict]] = {}
        self._results: dict[str, GenerationResult] = {}

        m = self.metrics = MetricsRegistry(labels={"scope": "fleet"})
        self._ticks = m.counter("fleet_ticks", "Router ticks run")
        self._routed = m.counter("requests_routed", "Requests accepted by the fleet")
        self._affinity_hits = m.counter(
            "affinity_hits", "Requests routed to their prefix-affinity replica")
        self._fallbacks = m.counter(
            "fallback_routes", "Requests routed off their affinity replica "
            "(load fallback, unhealthy target, or backpressure)")
        self._rejected = m.counter(
            "requests_rejected", "Requests every admitting replica refused")
        self._hedges = m.counter("hedges_launched", "Straggler duplicates launched")
        self._hedges_won = m.counter(
            "hedges_won", "Hedge copies that finished first")
        self._hedges_cancelled = m.counter(
            "hedges_cancelled", "Losing copies cancelled after a win")
        self._crashes = m.counter("replica_crashes", "REPLICA_CRASH faults taken")
        self._stalls = m.counter("replica_stalls", "REPLICA_STALL ticks taken")
        self._failovers = m.counter(
            "failovers", "In-flight requests moved off a crashed replica")
        self._snapshots = m.counter(
            "snapshots_written", "Rotation snapshots written to disk")
        # The loadgen cost counters: max per-replica delta per tick.
        self._prefill_cost = m.counter(
            "prefill_tokens", "Slowest replica's prefill tokens per tick, summed")
        self._lane_cost = m.counter(
            "decode_lane_ticks", "Slowest replica's decode lane-ticks per tick, "
            "summed")
        m.gauge("replicas_total", "Replicas owned",
                fn=lambda: len(self._replicas))
        m.gauge("replicas_healthy", "Replicas currently HEALTHY",
                fn=lambda: sum(r.state == HEALTHY for r in self._replicas))

        self._replicas = [
            _Replica(f"replica-{i}", i, self._build_engine(f"replica-{i}"))
            for i in range(fleet.n_replicas)
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_engine(self, name: str, incarnation: int = 0) -> GenerationEngine:
        labels = {"replica": name}
        if incarnation:
            labels["incarnation"] = str(incarnation)
        # policy_factory builds a *fresh* policy per engine (policies may
        # carry per-engine state); None falls back to the config's name.
        policy = self._policy_factory() if self._policy_factory else None
        return GenerationEngine(
            self.model, self._cache_factory, self.config,
            weights=self._weights, act_quant=self._act_quant,
            clock=self._clock, policy=policy, faults=self._faults,
            metrics=MetricsRegistry(labels=labels),
        )

    def _now(self) -> float:
        return self._clock()

    @property
    def replicas(self) -> list:
        """The live replica engines, in routing order (read-only view)."""
        return [r.engine for r in self._replicas]

    def replica_status(self) -> dict[str, ReplicaStatus]:
        return {
            r.name: ReplicaStatus(r.name, r.state, r.breaker, r.load,
                                  r.errors, r.incarnation)
            for r in self._replicas
        }

    def merged_metrics(self) -> MetricsRegistry:
        """One fleet-wide registry: every replica's instruments summed."""
        return MetricsRegistry.merge(
            [r.engine.metrics for r in self._replicas],
            labels={"scope": "fleet-merged"},
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route_order(self, request: GenerationRequest) -> tuple[list, bool]:
        """Replica try-order for one submission + affinity-hit flag.

        Healthy admitting replicas first (least loaded), then degraded,
        then half-open probes; the affinity target leads iff it admits
        and is not ``affinity_load_slack`` deeper than the least-loaded
        candidate.
        """
        rank = {HEALTHY: 0, DEGRADED: 1, QUARANTINED: 2}
        admitting = [r for r in self._replicas if r.admits()]
        admitting.sort(key=lambda r: (rank[r.state], r.load, r.index))
        if not admitting:
            return [], False
        probe = next((r for r in admitting
                      if r.breaker == BREAKER_HALF_OPEN), None)
        if probe is not None:
            # Half-open means "admit exactly one trial": the next
            # submission becomes the probe — without this the probe
            # would wait behind every healthy replica and the breaker
            # could never close while the fleet has spare capacity.
            return [probe] + [r for r in admitting if r is not probe], False
        target = None
        if self.fleet.affinity_tokens > 0:
            idx = (prefix_hash(request.prompt, self.fleet.affinity_tokens)
                   % len(self._replicas))
            cand = self._replicas[idx]
            if (cand.admits() and cand.state == admitting[0].state
                    and cand.load - admitting[0].load
                    <= self.fleet.affinity_load_slack):
                target = cand
        if target is None:
            return admitting, False
        return [target] + [r for r in admitting if r is not target], True

    def submit(self, request: GenerationRequest, on_token=None) -> RequestHandle:
        """Route one request to a replica; reject only when all refuse.

        Raises :class:`~repro.serve.scheduler.QueueFullError` when every
        admitting replica's queue is full (composed backpressure) or no
        replica admits at all (fleet-wide quarantine — shed load either
        way), and ``RuntimeError`` while draining.
        """
        if self._draining:
            raise RuntimeError("fleet is draining: submissions are stopped")
        rid = str(request.request_id)
        if rid.endswith(HEDGE_SUFFIX):
            raise ValueError(
                f"request_id must not end with {HEDGE_SUFFIX!r} "
                "(reserved for internal hedge copies)")
        if rid in self._tracked or rid in self._results:
            raise ValueError(f"duplicate request_id {rid!r}")
        order, affinity = self._route_order(request)
        if not order:
            self._rejected.inc()
            raise QueueFullError(
                "no replica is admitting requests (all quarantined)")
        last_exc = None
        for pos, rep in enumerate(order):
            try:
                rep.engine.submit(request)
            except QueueFullError as exc:
                last_exc = exc
                continue
            tracked = _Tracked(request, on_token, self._now())
            tracked.copies[rid] = rep.name
            self._tracked[rid] = tracked
            self._journal[rid] = {}
            self._routed.inc()
            if affinity and pos == 0:
                self._affinity_hits.inc()
            else:
                self._fallbacks.inc()
            if rep.breaker == BREAKER_HALF_OPEN:
                rep.probe_rid = rid
            return RequestHandle(rid, self)
        self._rejected.inc()
        raise QueueFullError(
            f"every admitting replica rejected {rid!r}: {last_exc}")

    def cancel(self, request_id: str, sample_index: int | None = None) -> bool:
        """Cancel on every live copy; harvest the cancelled results."""
        rid = str(request_id)
        tracked = self._tracked.get(rid)
        if tracked is None or tracked.done:
            return False
        any_live = False
        for copy_rid, rep_name in list(tracked.copies.items()):
            rep = self._by_name(rep_name)
            if rep.engine.cancel(copy_rid, sample_index=sample_index):
                any_live = True
        if sample_index is None:
            # A full cancel records results synchronously (tick
            # boundary): harvest them now so handles resolve.
            self._sweep_finished([])
        return any_live

    def _by_name(self, name: str) -> _Replica:
        return next(r for r in self._replicas if r.name == name)

    # ------------------------------------------------------------------
    # The fleet tick
    # ------------------------------------------------------------------
    def step(self) -> list[TokenEvent]:
        """One fleet tick: chaos consult, health probe, snapshots,
        hedging, then every live replica steps once.

        Returns the client-visible (deduplicated, primary-id) token
        events of the tick, exactly as one engine's ``step`` would.
        """
        now = self._now()
        self._ticks.inc()
        self._consult_chaos()
        for rep in self._replicas:
            self._probe_health(rep, now)
        self._rotate_snapshots(now)
        self._maybe_hedge(now)

        out: list[TokenEvent] = []
        max_prefill = 0
        max_lanes = 0
        for rep in self._replicas:
            if rep.stalled:
                rep.stalled = False
                continue
            if not rep.engine.has_work():
                continue
            m = rep.engine.metrics
            pre_p = m.get("prefill_tokens").value
            pre_l = m.get("decode_lane_ticks").value
            events = rep.engine.step()
            max_prefill = max(max_prefill, m.get("prefill_tokens").value - pre_p)
            max_lanes = max(max_lanes, m.get("decode_lane_ticks").value - pre_l)
            for event in events:
                out.extend(self._translate(rep, event))
        self._prefill_cost.inc(max_prefill)
        self._lane_cost.inc(max_lanes)
        self._sweep_finished(out)
        return out

    def _consult_chaos(self) -> None:
        """Fire the replica-scoped sites, in replica order, once each."""
        if self._faults is None:
            return
        for rep in list(self._replicas):
            try:
                self._faults.fire(REPLICA_CRASH, rep.name)
            except InjectedFault:
                self._crash_replica(rep)
                continue
            try:
                self._faults.fire(REPLICA_STALL, rep.name)
            except InjectedFault:
                rep.stalled = True
                self._stalls.inc()

    # ------------------------------------------------------------------
    # Event translation (copies -> one client stream)
    # ------------------------------------------------------------------
    @staticmethod
    def _primary_rid(copy_rid: str) -> str:
        if copy_rid.endswith(HEDGE_SUFFIX):
            return copy_rid[:-len(HEDGE_SUFFIX)]
        return copy_rid

    def _translate(self, rep: _Replica, event: TokenEvent) -> list[TokenEvent]:
        """Merge one copy's event into the request's client stream.

        Token events are forwarded iff they advance the delivered
        prefix (so a hedge replaying tokens the primary already
        streamed — or a crash-recovery delta replay — emits nothing
        new); finish events are forwarded only when they decide the
        *request* (see :meth:`_copy_finished`).
        """
        copy_rid = event.request_id
        rid = self._primary_rid(copy_rid)
        tracked = self._tracked.get(rid)
        if tracked is None or tracked.done or copy_rid not in tracked.copies:
            return []
        forwarded: list[TokenEvent] = []
        entry = self._journal[rid].setdefault(
            event.sample,
            {"tokens": [], "finish_reason": None, "finish_delivered": False})
        if event.token is not None:
            seen = tracked.delivered.get(event.sample, 0)
            if event.index >= seen:
                tracked.delivered[event.sample] = event.index + 1
                entry["tokens"].append(int(event.token))
                forwarded.append(TokenEvent(
                    rid, event.token, event.index, False, None,
                    event.text, event.sample))
        if event.finished:
            if event.finish_reason in _NORMAL_FINISH:
                entry["finish_reason"] = event.finish_reason
            self._copy_finished(rep, tracked, copy_rid, event)
            # A normal sample finish is streamed once, from whichever
            # copy reaches it first (they are token-identical, so the
            # marker's position is the same either way); abnormal
            # finishes stream only when they end the whole request,
            # i.e. when this was the last copy standing.
            deliver_finish = (
                not entry["finish_delivered"]
                and (event.finish_reason in _NORMAL_FINISH or tracked.done)
            )
            if deliver_finish:
                entry["finish_delivered"] = True
                if forwarded:
                    forwarded[-1] = dataclasses.replace(
                        forwarded[-1], finished=True,
                        finish_reason=event.finish_reason)
                else:
                    forwarded.append(TokenEvent(
                        rid, None, tracked.delivered.get(event.sample, 0),
                        True, event.finish_reason, None, event.sample))
        for ev in forwarded:
            self._deliver(tracked, ev)
        return forwarded

    def _deliver(self, tracked: _Tracked, event: TokenEvent) -> None:
        if tracked.on_token is None:
            return
        try:
            tracked.on_token(event)
        except Exception:
            tracked.on_token = None       # quarantined, engine-style

    def _copy_finished(self, rep: _Replica, tracked: _Tracked,
                       copy_rid: str, event: TokenEvent) -> bool:
        """A copy's *last sample* event arrived; True if it decides the
        request (its engine result becomes the client result)."""
        rid = self._primary_rid(copy_rid)
        if not rep.engine.has_result(copy_rid):
            return False                  # siblings of an n>1 family remain
        self._probe_outcome(rep, copy_rid, event.finish_reason)
        result = rep.engine.pop_result(copy_rid)
        others = {c: n for c, n in tracked.copies.items() if c != copy_rid}
        if event.finish_reason in _NORMAL_FINISH or not others:
            # Winner (or the last copy standing, however it ended).
            if copy_rid != rid:
                result = dataclasses.replace(result, request_id=rid)
                self._hedges_won.inc()
            self._finalize(rid, tracked, result)
            for loser_rid, loser_rep in others.items():
                self._cancel_copy(loser_rid, loser_rep)
            return True
        # Abnormal finish with a live twin: drop this copy, twin carries on.
        del tracked.copies[copy_rid]
        return False

    def _finalize(self, rid: str, tracked: _Tracked,
                  result: GenerationResult) -> None:
        self._results[rid] = result
        tracked.done = True
        tracked.copies.clear()
        self._journal.pop(rid, None)

    def _cancel_copy(self, copy_rid: str, rep_name: str) -> None:
        rep = self._by_name(rep_name)
        if rep.engine.cancel(copy_rid):
            self._hedges_cancelled.inc()
        if rep.engine.has_result(copy_rid):
            rep.engine.pop_result(copy_rid)    # discard the loser's result
        self._probe_outcome(rep, copy_rid, None)

    def _sweep_finished(self, out: list) -> None:
        """Collect results recorded outside the event path (cancel() at
        a tick boundary, timeouts of queued requests, adoption of
        fully-finished records)."""
        for rid, tracked in list(self._tracked.items()):
            if tracked.done:
                continue
            for copy_rid, rep_name in list(tracked.copies.items()):
                rep = self._by_name(rep_name)
                if not rep.engine.has_result(copy_rid):
                    continue
                result = rep.engine.pop_result(copy_rid)
                self._probe_outcome(rep, copy_rid, result.finish_reason)
                others = {c: n for c, n in tracked.copies.items()
                          if c != copy_rid}
                if result.finish_reason in _NORMAL_FINISH or not others:
                    if copy_rid != rid:
                        result = dataclasses.replace(result, request_id=rid)
                        self._hedges_won.inc()
                    self._finalize(rid, tracked, result)
                    for loser, loser_rep in others.items():
                        self._cancel_copy(loser, loser_rep)
                    out.append(TokenEvent(
                        rid, None, sum(tracked.delivered.values()),
                        True, result.finish_reason))
                    self._deliver(tracked, out[-1])
                    break
                del tracked.copies[copy_rid]

    # ------------------------------------------------------------------
    # Health model
    # ------------------------------------------------------------------
    def _probe_health(self, rep: _Replica, now: float) -> None:
        """One probe tick: budgets from the replica's own registry."""
        errs = rep.errors
        if errs > rep.last_errs:
            rep.clean_since = now
        rep.last_errs = errs
        window_errs = errs - rep.err_base
        if rep.breaker == BREAKER_OPEN:
            if now >= rep.open_until:
                rep.breaker = BREAKER_HALF_OPEN
                rep.probe_rid = None
            return
        if rep.breaker == BREAKER_HALF_OPEN:
            return                        # waiting on the probe's outcome
        if window_errs >= self.fleet.quarantine_errors:
            rep.breaker = BREAKER_OPEN
            rep.state = QUARANTINED
            rep.open_until = now + self.fleet.breaker_open_s
        elif window_errs >= self.fleet.degrade_errors:
            rep.state = DEGRADED
        else:
            rep.state = HEALTHY
        if window_errs and now - rep.clean_since >= self.fleet.error_window_s:
            rep.err_base = errs           # a clean window ages errors out
            rep.state = HEALTHY

    def _probe_outcome(self, rep: _Replica, copy_rid: str,
                       finish_reason: str | None) -> None:
        """Close or reopen a half-open breaker on its probe's outcome."""
        if rep.breaker != BREAKER_HALF_OPEN or rep.probe_rid != copy_rid:
            return
        rep.probe_rid = None
        if finish_reason in _NORMAL_FINISH:
            rep.breaker = BREAKER_CLOSED
            rep.state = HEALTHY
            rep.err_base = rep.errors
            rep.clean_since = self._now()
        elif finish_reason in (None, "cancelled"):
            # The probe was cancelled (hedge loser, client cancel):
            # inconclusive — stay half-open, admit another probe.
            pass
        else:
            rep.breaker = BREAKER_OPEN
            rep.state = QUARANTINED
            rep.open_until = self._now() + self.fleet.breaker_open_s

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def _hedge_delay(self) -> float | None:
        cfg = self.fleet
        if cfg.hedge_after_s is not None:
            return cfg.hedge_after_s
        if cfg.hedge_ttft_percentile is None:
            return None
        hists = [r.engine.metrics.get("ttft_seconds") for r in self._replicas]
        if sum(h.count for h in hists) < cfg.hedge_min_samples:
            return None
        delay = Histogram.percentile_over(hists, cfg.hedge_ttft_percentile)
        return delay if delay > 0 else None

    def _maybe_hedge(self, now: float) -> None:
        delay = self._hedge_delay()
        if delay is None:
            return
        for rid, tracked in self._tracked.items():
            if (tracked.done or tracked.hedged or tracked.delivered
                    or len(tracked.copies) != 1
                    or now - tracked.submit_s < delay):
                continue
            (primary_name,) = set(tracked.copies.values())
            targets = [r for r in self._replicas
                       if r.admits() and r.name != primary_name]
            if not targets:
                continue
            targets.sort(key=lambda r: (r.load, r.index))
            target = targets[0]
            hedge_rid = rid + HEDGE_SUFFIX
            hedge_req = dataclasses.replace(tracked.request,
                                            request_id=hedge_rid)
            try:
                target.engine.submit(hedge_req)
            except QueueFullError:
                continue
            tracked.copies[hedge_rid] = target.name
            tracked.hedged = True
            self._hedges.inc()
            if target.breaker == BREAKER_HALF_OPEN:
                target.probe_rid = hedge_rid

    # ------------------------------------------------------------------
    # Snapshot rotation
    # ------------------------------------------------------------------
    def _replica_dir(self, rep: _Replica) -> str:
        return os.path.join(self.fleet.snapshot_dir, rep.name)

    def _rotate_snapshots(self, now: float) -> None:
        cfg = self.fleet
        if cfg.snapshot_interval_s is None:
            return
        for rep in self._replicas:
            if rep.next_snap_due is None:
                rep.next_snap_due = now + cfg.snapshot_interval_s
                continue
            if now < rep.next_snap_due:
                continue
            rep.next_snap_due = now + cfg.snapshot_interval_s
            self.snapshot_replica(rep.name)

    def snapshot_replica(self, name: str) -> str:
        """Write one replica's snapshot into its rotation; returns the
        path.  Keeps the newest ``snapshot_keep`` files."""
        if self.fleet.snapshot_dir is None:
            raise RuntimeError("FleetConfig.snapshot_dir is not set")
        rep = self._by_name(name)
        d = self._replica_dir(rep)
        os.makedirs(d, exist_ok=True)
        path = os.path.join(d, f"snap-{rep.snap_seq:08d}.json")
        rep.snap_seq += 1
        with open(path, "w") as fh:
            json.dump(rep.engine.snapshot(), fh)
        self._snapshots.inc()
        kept = sorted(f for f in os.listdir(d)
                      if f.startswith("snap-") and f.endswith(".json"))
        for stale in kept[:-self.fleet.snapshot_keep]:
            os.remove(os.path.join(d, stale))
        return path

    def _load_rotation(self, rep: _Replica) -> dict[str, dict]:
        """Latest rotation snapshot's records by request id ({} if none)."""
        if self.fleet.snapshot_dir is None:
            return {}
        d = self._replica_dir(rep)
        try:
            files = sorted(f for f in os.listdir(d)
                           if f.startswith("snap-") and f.endswith(".json"))
        except FileNotFoundError:
            return {}
        if not files:
            return {}
        with open(os.path.join(d, files[-1])) as fh:
            snap = json.load(fh)
        return {r["request"]["request_id"]: r for r in snap.get("requests", [])}

    # ------------------------------------------------------------------
    # Crash + failover
    # ------------------------------------------------------------------
    def _recovery_record(self, tracked: _Tracked, copy_rid: str,
                         disk: dict[str, dict]) -> dict:
        """Snapshot-format record for one crashed copy.

        Greedy requests rebuild purely from the live token journal
        (exact continuation, minimal recompute).  Sampled requests
        prefer the last rotation snapshot — its tokens *and* RNG state
        are a consistent pair, and the journal delta beyond it is
        *replayed* (same state + same logits = the same delta tokens on
        deterministic caches; re-emissions are deduplicated).  Without
        a disk snapshot the journal tokens are used with a fresh RNG
        stream (documented trade when rotation is disabled).
        """
        req = tracked.request
        rid = self._primary_rid(copy_rid)
        journal = self._journal.get(rid, {})
        disk_rec = disk.get(copy_rid)
        use_disk = disk_rec is not None and not req.sampling.is_greedy
        if use_disk:
            samples = [dict(s) for s in disk_rec["samples"]]
            present = {s["index"] for s in samples}
            for idx, entry in sorted(journal.items()):
                if idx not in present:
                    samples.append({
                        "index": idx, "tokens": list(entry["tokens"]),
                        "finished": entry["finish_reason"] is not None,
                        "finish_reason": entry["finish_reason"],
                        "error": None, "rng_state": None,
                    })
        else:
            samples = [
                {
                    "index": idx,
                    "tokens": list(entry["tokens"]),
                    "finished": entry["finish_reason"] is not None,
                    "finish_reason": entry["finish_reason"],
                    "error": None,
                    "rng_state": None,
                }
                for idx, entry in sorted(journal.items())
            ] or [{"index": 0, "tokens": [], "finished": False,
                   "finish_reason": None, "error": None, "rng_state": None}]
        cancelled = disk_rec.get("cancelled_samples") if use_disk else None
        return {
            **({"cancelled_samples": cancelled} if cancelled else {}),
            "request": {
                "request_id": rid,
                "prompt": [int(t) for t in req.prompt],
                "max_tokens": req.max_tokens,
                "sampling": dataclasses.asdict(req.sampling),
                "stop_tokens": sorted(int(t) for t in req.stop_tokens),
                "priority": req.priority,
                "deadline_s": req.deadline_s,
                "n": req.n,
                "timeout_s": req.timeout_s,
                "traffic_class": req.traffic_class,
            },
            "arrival_seq": 0,
            "samples": samples,
        }

    def _crash_replica(self, rep: _Replica) -> None:
        """REPLICA_CRASH: discard the engine, fail its work over to
        survivors, bring the replica back empty."""
        self._crashes.inc()
        disk = self._load_rotation(rep)
        orphans: list[tuple[str, _Tracked, str]] = []   # (rid, tracked, copy)
        for rid, tracked in self._tracked.items():
            if tracked.done:
                continue
            for copy_rid, rep_name in list(tracked.copies.items()):
                if rep_name != rep.name:
                    continue
                del tracked.copies[copy_rid]
                if tracked.copies:
                    continue              # a twin survives elsewhere
                orphans.append((rid, tracked, copy_rid))
        # The replica comes back as a fresh, empty engine (its former
        # work continues on survivors); health history died with it.
        rep.incarnation += 1
        rep.attach(self._build_engine(rep.name, rep.incarnation))
        rep.state = HEALTHY
        rep.breaker = BREAKER_CLOSED
        rep.probe_rid = None
        rep.stalled = False
        for rid, tracked, copy_rid in orphans:
            record = self._recovery_record(tracked, copy_rid, disk)
            if all(s["finished"] for s in record["samples"]):
                # Finished between the last event sweep and the crash:
                # synthesize the result straight from the journal.
                samples = [
                    SampleOutput(s["index"], list(s["tokens"]),
                                 s["finish_reason"])
                    for s in sorted(record["samples"],
                                    key=lambda s: s["index"])
                ]
                self._finalize(rid, tracked, GenerationResult(
                    request_id=rid, tokens=samples[0].tokens,
                    finish_reason=samples[0].finish_reason,
                    queue_latency_s=float("nan"), service_time_s=0.0,
                    decode_steps=0, samples=samples,
                ))
                continue
            target = self._failover_target(rep)
            target.engine.adopt(record)
            tracked.copies[rid] = target.name
            # The adopting engine replays from the journal/snapshot
            # prefix; anything it re-decodes past the delivered count is
            # genuinely new to the client, so the dedup high-water mark
            # stands as-is.
            self._failovers.inc()

    def _failover_target(self, crashed: _Replica) -> _Replica:
        """Least-loaded admitting survivor, else the reborn replica."""
        survivors = [r for r in self._replicas
                     if r is not crashed and r.admits()]
        if not survivors:
            return crashed                # fresh engine adopts its own work
        survivors.sort(key=lambda r: (r.load, r.index))
        return survivors[0]

    def crash_replica(self, name: str) -> None:
        """Operator-initiated crash (the chaos site's manual twin)."""
        self._crash_replica(self._by_name(name))

    # ------------------------------------------------------------------
    # Engine-shaped surface
    # ------------------------------------------------------------------
    def has_work(self) -> bool:
        return any(r.engine.has_work() for r in self._replicas)

    def has_result(self, request_id: str) -> bool:
        return str(request_id) in self._results

    def result(self, request_id: str) -> GenerationResult:
        return self._results[str(request_id)]

    def pop_result(self, request_id: str) -> GenerationResult:
        rid = str(request_id)
        self._tracked.pop(rid, None)
        return self._results.pop(rid)

    def request_trace(self, request_id: str):
        rid = str(request_id)
        tracked = self._tracked.get(rid)
        if tracked is None:
            return None
        for copy_rid, rep_name in tracked.copies.items():
            trace = self._by_name(rep_name).engine.request_trace(copy_rid)
            if trace is not None:
                return trace
        return None

    def run(self, requests=()):
        """Submit ``requests`` then step until idle, yielding every
        client-visible event."""
        for request in requests:
            self.submit(request)
        while self.has_work():
            yield from self.step()

    def generate(self, requests=()) -> dict[str, GenerationResult]:
        """Drain :meth:`run`, returning results keyed by request id."""
        requests = list(requests)
        ids = [r.request_id for r in requests]
        finished = []
        for event in self.run(requests):
            if event.finished:
                finished.append(event.request_id)
        return {rid: self._results[rid] for rid in (ids or finished)}

    @property
    def draining(self) -> bool:
        return self._draining

    def stop_admission(self) -> None:
        """Fleet-wide admission stop (replicas drain their own queues)."""
        self._draining = True
        for r in self._replicas:
            r.engine.stop_admission()

    def resume_admission(self) -> None:
        self._draining = False
        for r in self._replicas:
            r.engine.resume_admission()

    def drain(self) -> list[TokenEvent]:
        """Run every replica's *admitted* work to completion.

        Mirrors :meth:`GenerationEngine.drain
        <repro.serve.engine.GenerationEngine.drain>`: still-queued
        requests are left untouched (ready for snapshots) and admission
        stays stopped until :meth:`resume_admission`.
        """
        self.stop_admission()
        events: list[TokenEvent] = []
        while any(r.engine.scheduler.n_running for r in self._replicas):
            events.extend(self.step())
        return events

    def check_invariants(self) -> None:
        for r in self._replicas:
            r.engine.check_invariants()

    def stats(self) -> FleetStats:
        m = self.metrics
        return FleetStats(
            ticks=m.get("fleet_ticks").value,
            requests_routed=m.get("requests_routed").value,
            affinity_hits=m.get("affinity_hits").value,
            fallback_routes=m.get("fallback_routes").value,
            requests_rejected=m.get("requests_rejected").value,
            hedges_launched=m.get("hedges_launched").value,
            hedges_won=m.get("hedges_won").value,
            hedges_cancelled=m.get("hedges_cancelled").value,
            replica_crashes=m.get("replica_crashes").value,
            replica_stalls=m.get("replica_stalls").value,
            failovers=m.get("failovers").value,
            snapshots_written=m.get("snapshots_written").value,
            replicas={r.name: r.engine.stats() for r in self._replicas},
            health=self.replica_status(),
        )
