"""Trace-driven load generation for the serving engine.

The per-feature benches drive the engine with tiny hand-rolled request
lists; this module is the *workload* layer that backs the repo's
"heavy traffic" claims with reproducible evidence:

* :class:`TrafficClass` — one tenant population: a share of the
  arrival stream (``weight``), prompt/output **length mixtures**
  (:class:`LengthDist`: fixed / uniform / clipped-lognormal / choice),
  the PR 5 lifecycle knobs (``priority`` / ``deadline_s`` /
  ``timeout_s`` / ``n`` parallel samples / sampling ``temperature``),
  and an optional **shared-prefix cohort** (``prefix_tokens`` drawn
  once per trace from a pool of ``prefix_pool`` distinct prefixes —
  the shared-system-prompt shape that exercises the paged prefix
  cache).
* :class:`ArrivalProcess` — a seeded open-loop arrival schedule:
  ``poisson(rate)`` (memoryless, the classic serving assumption) or
  ``bursty(...)`` (a two-state Markov-modulated Poisson process with
  exponential dwell times — traffic that alternates calm and burst
  phases, the adversarial case for admission control).
* :class:`WorkloadSpec` → :func:`generate_trace` →
  :class:`WorkloadTrace` — generation is **deterministic**: one
  ``numpy`` Generator seeded from ``spec.seed`` with a documented draw
  order (arrival gaps, then per-class prefix pools, then per-request
  class / lengths / prefix choice / tail tokens), so the same spec
  always yields the same trace *bit for bit*, including its JSON
  serialization (:meth:`WorkloadTrace.to_json` sorts keys).  Traces
  **record/replay**: :meth:`WorkloadTrace.save` /
  :meth:`WorkloadTrace.load` round-trip through JSON, so a workload
  captured once can be replayed against any engine configuration (or
  attached to a bug report).
* :class:`LoadHarness` — drives a trace through a
  :class:`~repro.serve.engine.GenerationEngine` **open-loop**:
  requests are submitted when their trace arrival time passes,
  regardless of whether the engine has kept up (the saturation-honest
  protocol — closed-loop harnesses hide overload by self-throttling).
  Two clock modes:

  - ``clock="wall"`` (default): real ``time.perf_counter`` drives both
    arrivals and the engine's injectable clock — honest latencies,
    machine-dependent.
  - ``clock="virtual"``: the harness owns a :class:`VirtualClock`
    (also injected as the engine clock) that jumps to the next arrival
    when idle and advances by a :class:`TickCostModel` estimate after
    each tick.  Every timestamp — arrivals, TTFT, inter-token gaps —
    is then a pure function of the trace and the cost model, so a
    replayed trace produces **identical harness results**, which is
    what makes the determinism suite (and seconds-scale CI smokes)
    possible.

The harness tags every request with its class
(:attr:`~repro.serve.request.GenerationRequest.traffic_class`) and
collects one :class:`RequestRecord` per request — class, arrival /
submit / finish times, TTFT, per-token gaps, token counts, finish
reason, plus preemption/retry/fault counts joined from the PR 7
request timeline — the exact input shape the :mod:`repro.serve.slo`
layer evaluates.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field

import numpy as np

from repro.sampling import GREEDY, SamplingParams
from repro.serve.config import ServeConfig
from repro.serve.engine import GenerationEngine
from repro.serve.request import GenerationRequest
from repro.serve.scheduler import QueueFullError

__all__ = [
    "LengthDist",
    "TrafficClass",
    "ArrivalProcess",
    "WorkloadSpec",
    "TraceEntry",
    "WorkloadTrace",
    "generate_trace",
    "VirtualClock",
    "TickCostModel",
    "RequestRecord",
    "HarnessResult",
    "LoadHarness",
]

TRACE_VERSION = 1

# Finish reasons that count as a normal completion for the harness
# (everything else — cancelled/timeout/error/rejected — is a failure
# from the client's point of view).
_NORMAL_FINISH = ("length", "stop")


# ----------------------------------------------------------------------
# Length mixtures
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LengthDist:
    """A token-length distribution, one of four shapes.

    * ``fixed(value)`` — every draw is ``value``.
    * ``uniform(lo, hi)`` — integer uniform on ``[lo, hi]`` inclusive.
    * ``lognormal(median, sigma, lo, hi)`` — ``median * exp(sigma·z)``
      rounded and clipped to ``[lo, hi]``; the heavy-tailed shape real
      prompt/output length data shows (most requests short, a long
      tail of huge ones).
    * ``choice(values, weights)`` — an explicit empirical mixture.

    Frozen and JSON-serializable (:meth:`to_dict` / :meth:`from_dict`)
    so a :class:`WorkloadSpec` round-trips losslessly with its trace.
    """

    kind: str
    value: int = 0
    lo: int = 1
    hi: int = 1
    median: float = 0.0
    sigma: float = 0.0
    values: tuple = ()
    weights: tuple = ()

    _KINDS = ("fixed", "uniform", "lognormal", "choice")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(
                f"unknown LengthDist kind {self.kind!r}; one of {self._KINDS}"
            )
        if self.kind == "fixed" and self.value < 1:
            raise ValueError(f"fixed length must be >= 1, got {self.value}")
        if self.kind in ("uniform", "lognormal"):
            if not 1 <= self.lo <= self.hi:
                raise ValueError(
                    f"need 1 <= lo <= hi, got lo={self.lo} hi={self.hi}"
                )
        if self.kind == "lognormal":
            if self.median <= 0 or self.sigma < 0:
                raise ValueError(
                    f"lognormal needs median > 0 and sigma >= 0, got "
                    f"median={self.median} sigma={self.sigma}"
                )
        if self.kind == "choice":
            if not self.values:
                raise ValueError("choice needs at least one value")
            if any(int(v) < 1 for v in self.values):
                raise ValueError(f"choice values must be >= 1, got {self.values}")
            if self.weights and len(self.weights) != len(self.values):
                raise ValueError(
                    f"{len(self.weights)} weights for {len(self.values)} values"
                )
            object.__setattr__(self, "values",
                               tuple(int(v) for v in self.values))
            object.__setattr__(self, "weights",
                               tuple(float(w) for w in self.weights))

    # -- constructors --------------------------------------------------
    @classmethod
    def fixed(cls, value: int) -> "LengthDist":
        return cls("fixed", value=value)

    @classmethod
    def uniform(cls, lo: int, hi: int) -> "LengthDist":
        return cls("uniform", lo=lo, hi=hi)

    @classmethod
    def lognormal(cls, median: float, sigma: float,
                  lo: int = 1, hi: int = 4096) -> "LengthDist":
        return cls("lognormal", median=median, sigma=sigma, lo=lo, hi=hi)

    @classmethod
    def choice(cls, values, weights=()) -> "LengthDist":
        return cls("choice", values=tuple(values), weights=tuple(weights))

    # -- sampling ------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one length.  Every kind consumes **exactly one** rng
        draw, so the trace-wide draw order (and therefore bit-for-bit
        reproducibility) is independent of the distribution shapes."""
        if self.kind == "fixed":
            rng.random()             # burn one draw: keep stream alignment
            return self.value
        if self.kind == "uniform":
            return int(rng.integers(self.lo, self.hi + 1))
        if self.kind == "lognormal":
            raw = self.median * np.exp(self.sigma * rng.standard_normal())
            return int(np.clip(round(raw), self.lo, self.hi))
        # choice
        w = np.asarray(self.weights if self.weights
                       else [1.0] * len(self.values))
        idx = rng.choice(len(self.values), p=w / w.sum())
        return int(self.values[idx])

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        d = {"kind": self.kind}
        if self.kind == "fixed":
            d["value"] = self.value
        elif self.kind == "uniform":
            d.update(lo=self.lo, hi=self.hi)
        elif self.kind == "lognormal":
            d.update(median=self.median, sigma=self.sigma, lo=self.lo, hi=self.hi)
        else:
            d.update(values=list(self.values), weights=list(self.weights))
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "LengthDist":
        d = dict(d)
        if "values" in d:
            d["values"] = tuple(d["values"])
        if "weights" in d:
            d["weights"] = tuple(d["weights"])
        return cls(**d)


# ----------------------------------------------------------------------
# Traffic classes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficClass:
    """One tenant population inside a workload.

    ``weight`` is the class's share of the (single, merged) arrival
    stream.  ``prompt_len`` draws the *unique* prompt tokens per
    request; with ``prefix_tokens > 0`` every request additionally
    carries one of ``prefix_pool`` class-wide shared prefixes drawn
    once per trace (total prompt = shared prefix + unique tail), the
    shape that makes the paged prefix cache pay.  The remaining fields
    are forwarded verbatim onto each :class:`~repro.serve.request.
    GenerationRequest`: ``priority`` (PriorityPolicy), ``deadline_s``
    (DeadlinePolicy EDF, and the SLO layer's deadline-hit objective),
    ``timeout_s`` (hard engine timeout), ``n`` parallel samples and
    sampling ``temperature`` (0 = greedy; seeded per request when > 0).
    """

    name: str
    prompt_len: LengthDist
    output_len: LengthDist
    weight: float = 1.0
    priority: int = 0
    deadline_s: float | None = None
    timeout_s: float | None = None
    n: int = 1
    temperature: float = 0.0
    prefix_tokens: int = 0
    prefix_pool: int = 1

    def __post_init__(self):
        if not self.name:
            raise ValueError("traffic class needs a non-empty name")
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.prefix_tokens < 0:
            raise ValueError(f"prefix_tokens must be >= 0, got {self.prefix_tokens}")
        if self.prefix_pool < 1:
            raise ValueError(f"prefix_pool must be >= 1, got {self.prefix_pool}")

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["prompt_len"] = self.prompt_len.to_dict()
        d["output_len"] = self.output_len.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TrafficClass":
        d = dict(d)
        d["prompt_len"] = LengthDist.from_dict(d["prompt_len"])
        d["output_len"] = LengthDist.from_dict(d["output_len"])
        return cls(**d)


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrivalProcess:
    """Open-loop arrival schedule: Poisson or two-state bursty MMPP.

    * ``poisson(rate)`` — exponential inter-arrival gaps at ``rate``
      requests/s.
    * ``bursty(rate_low, rate_high, dwell_low_s, dwell_high_s)`` — a
      Markov-modulated Poisson process alternating a calm state
      (``rate_low``) and a burst state (``rate_high``), each held for
      an exponential dwell time.  Starts calm.  The mean offered rate
      is the dwell-weighted average of the two rates.
    """

    kind: str = "poisson"
    rate: float = 1.0
    rate_low: float = 0.0
    rate_high: float = 0.0
    dwell_low_s: float = 0.0
    dwell_high_s: float = 0.0

    def __post_init__(self):
        if self.kind not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival kind {self.kind!r}")
        if self.kind == "poisson" and self.rate <= 0:
            raise ValueError(f"poisson rate must be > 0, got {self.rate}")
        if self.kind == "bursty":
            if min(self.rate_low, self.rate_high) <= 0:
                raise ValueError("bursty rates must both be > 0")
            if min(self.dwell_low_s, self.dwell_high_s) <= 0:
                raise ValueError("bursty dwell times must both be > 0")

    @classmethod
    def poisson(cls, rate: float) -> "ArrivalProcess":
        return cls("poisson", rate=rate)

    @classmethod
    def bursty(cls, rate_low: float, rate_high: float,
               dwell_low_s: float, dwell_high_s: float) -> "ArrivalProcess":
        return cls("bursty", rate_low=rate_low, rate_high=rate_high,
                   dwell_low_s=dwell_low_s, dwell_high_s=dwell_high_s)

    @property
    def mean_rate(self) -> float:
        """Long-run offered rate in requests/s."""
        if self.kind == "poisson":
            return self.rate
        total = self.dwell_low_s + self.dwell_high_s
        return (self.rate_low * self.dwell_low_s
                + self.rate_high * self.dwell_high_s) / total

    def sample_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` arrival timestamps (seconds from trace start), sorted."""
        if self.kind == "poisson":
            return np.cumsum(rng.exponential(1.0 / self.rate, size=n))
        times = np.empty(n)
        t = 0.0
        state_high = False
        switch = t + rng.exponential(self.dwell_low_s)
        i = 0
        while i < n:
            rate = self.rate_high if state_high else self.rate_low
            gap = rng.exponential(1.0 / rate)
            if t + gap >= switch:
                # State flips before the candidate arrival; jump to the
                # switch point and redraw (memorylessness makes the
                # discarded partial gap statistically free).
                t = switch
                state_high = not state_high
                dwell = self.dwell_high_s if state_high else self.dwell_low_s
                switch = t + rng.exponential(dwell)
                continue
            t += gap
            times[i] = t
            i += 1
        return times

    def to_dict(self) -> dict:
        if self.kind == "poisson":
            return {"kind": "poisson", "rate": self.rate}
        return {"kind": "bursty", "rate_low": self.rate_low,
                "rate_high": self.rate_high, "dwell_low_s": self.dwell_low_s,
                "dwell_high_s": self.dwell_high_s}

    @classmethod
    def from_dict(cls, d: dict) -> "ArrivalProcess":
        return cls(**d)


# ----------------------------------------------------------------------
# Workload spec → trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Everything :func:`generate_trace` needs, in one seeded value.

    ``max_seq`` bounds each request's worst-case KV footprint
    (``prompt + max_tokens``): drawn lengths that would exceed it have
    their prompt tail trimmed (deterministically), so every generated
    request is admissible on a model with that ``max_seq``.
    """

    classes: tuple
    arrivals: ArrivalProcess
    n_requests: int
    vocab_size: int
    seed: int = 0
    max_seq: int = 512

    def __post_init__(self):
        object.__setattr__(self, "classes", tuple(self.classes))
        if not self.classes:
            raise ValueError("workload needs at least one traffic class")
        names = [c.name for c in self.classes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate traffic class names in {names}")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if self.vocab_size < 1:
            raise ValueError(f"vocab_size must be >= 1, got {self.vocab_size}")
        if self.max_seq < 2:
            raise ValueError(f"max_seq must be >= 2, got {self.max_seq}")

    def to_dict(self) -> dict:
        return {
            "classes": [c.to_dict() for c in self.classes],
            "arrivals": self.arrivals.to_dict(),
            "n_requests": self.n_requests,
            "vocab_size": self.vocab_size,
            "seed": self.seed,
            "max_seq": self.max_seq,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "WorkloadSpec":
        d = dict(d)
        d["classes"] = tuple(TrafficClass.from_dict(c) for c in d["classes"])
        d["arrivals"] = ArrivalProcess.from_dict(d["arrivals"])
        return cls(**d)


@dataclass(frozen=True)
class TraceEntry:
    """One scheduled request of a workload trace."""

    arrival_s: float
    request_id: str
    traffic_class: str
    prompt: tuple          # token ids (plain ints: JSON-stable)
    max_tokens: int
    priority: int = 0
    deadline_s: float | None = None
    timeout_s: float | None = None
    n: int = 1
    temperature: float = 0.0
    seed: int = 0

    def to_request(self) -> GenerationRequest:
        sampling = (GREEDY if self.temperature == 0.0
                    else SamplingParams(temperature=self.temperature,
                                        seed=self.seed))
        return GenerationRequest(
            request_id=self.request_id,
            prompt=np.asarray(self.prompt, dtype=np.int64),
            max_tokens=self.max_tokens,
            sampling=sampling,
            priority=self.priority,
            deadline_s=self.deadline_s,
            timeout_s=self.timeout_s,
            n=self.n,
            traffic_class=self.traffic_class,
        )

    def to_dict(self) -> dict:
        return {
            "arrival_s": self.arrival_s,
            "request_id": self.request_id,
            "traffic_class": self.traffic_class,
            "prompt": list(self.prompt),
            "max_tokens": self.max_tokens,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "timeout_s": self.timeout_s,
            "n": self.n,
            "temperature": self.temperature,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEntry":
        d = dict(d)
        d["prompt"] = tuple(int(t) for t in d["prompt"])
        return cls(**d)


class WorkloadTrace:
    """An ordered list of :class:`TraceEntry` plus its provenance.

    The trace *is* the workload: replaying it (on any engine
    configuration) reproduces the exact arrival schedule, prompts and
    per-request knobs.  :meth:`to_json` is byte-stable (sorted keys,
    fixed separators) so same-seed generation reproduces the trace
    **bit for bit** — the reproducibility contract the determinism
    suite and ``check_perf.py --quick`` both verify.
    """

    def __init__(self, entries, spec: WorkloadSpec | None = None):
        self.entries = list(entries)
        self.spec = spec

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def duration_s(self) -> float:
        """Span of the arrival schedule (first arrival is relative 0)."""
        return self.entries[-1].arrival_s if self.entries else 0.0

    @property
    def offered_rate(self) -> float:
        """Mean offered request rate over the arrival span."""
        if len(self.entries) < 2 or self.duration_s <= 0:
            return 0.0
        return len(self.entries) / self.duration_s

    def class_counts(self) -> dict:
        counts: dict[str, int] = {}
        for e in self.entries:
            counts[e.traffic_class] = counts.get(e.traffic_class, 0) + 1
        return counts

    # -- record/replay -------------------------------------------------
    def to_json(self) -> str:
        obj = {
            "version": TRACE_VERSION,
            "spec": self.spec.to_dict() if self.spec is not None else None,
            "entries": [e.to_dict() for e in self.entries],
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        obj = json.loads(text)
        if obj.get("version") != TRACE_VERSION:
            raise ValueError(
                f"unsupported workload trace version {obj.get('version')!r}"
            )
        spec = (WorkloadSpec.from_dict(obj["spec"])
                if obj.get("spec") is not None else None)
        return cls([TraceEntry.from_dict(e) for e in obj["entries"]], spec)

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.to_json())
        return path

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def __repr__(self) -> str:
        return (f"WorkloadTrace({len(self.entries)} requests, "
                f"{self.duration_s:.3f}s span, classes={self.class_counts()})")


def generate_trace(spec: WorkloadSpec) -> WorkloadTrace:
    """Deterministically expand a :class:`WorkloadSpec` into a trace.

    Draw order (one ``default_rng(spec.seed)`` stream): all arrival
    gaps first, then each class's shared-prefix pool (classes in spec
    order), then per request — class assignment, prompt length, output
    length, prefix choice, unique tail tokens.  The order is part of
    the format: it is what makes same-seed traces bit-identical.
    """
    rng = np.random.default_rng(spec.seed)
    arrivals = spec.arrivals.sample_times(rng, spec.n_requests)
    weights = np.asarray([c.weight for c in spec.classes])
    weights = weights / weights.sum()
    prefixes = {
        c.name: [rng.integers(0, spec.vocab_size, size=c.prefix_tokens)
                 for _ in range(c.prefix_pool)] if c.prefix_tokens else []
        for c in spec.classes
    }
    entries = []
    for i in range(spec.n_requests):
        cls = spec.classes[int(rng.choice(len(spec.classes), p=weights))]
        tail_len = cls.prompt_len.sample(rng)
        max_tokens = cls.output_len.sample(rng)
        parts = []
        if cls.prefix_tokens:
            parts.append(prefixes[cls.name][int(rng.integers(cls.prefix_pool))])
        parts.append(rng.integers(0, spec.vocab_size, size=tail_len))
        prompt = np.concatenate(parts) if len(parts) > 1 else parts[0]
        # Worst-case footprint must fit the model: trim the unique tail
        # first, then the output budget (keeping at least one of each).
        over = prompt.size + max_tokens - spec.max_seq
        if over > 0:
            trim = min(over, prompt.size - 1)
            prompt = prompt[: prompt.size - trim]
            max_tokens = max(1, spec.max_seq - int(prompt.size))
        entries.append(TraceEntry(
            arrival_s=float(arrivals[i]),
            request_id=f"{cls.name}-{i}",
            traffic_class=cls.name,
            prompt=tuple(int(t) for t in prompt),
            max_tokens=int(max_tokens),
            priority=cls.priority,
            deadline_s=cls.deadline_s,
            timeout_s=cls.timeout_s,
            n=cls.n,
            temperature=cls.temperature,
            seed=(spec.seed * 1_000_003 + i) & 0x7FFFFFFF,
        ))
    return WorkloadTrace(entries, spec)


# ----------------------------------------------------------------------
# The open-loop harness
# ----------------------------------------------------------------------
class VirtualClock:
    """A callable clock the harness advances by hand (virtual mode)."""

    __slots__ = ("t",)

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot advance a clock by {dt}")
        self.t += dt


@dataclass(frozen=True)
class TickCostModel:
    """Virtual-time cost of one engine tick.

    ``base_s`` charges fixed tick overhead (scheduling, Python), the
    per-token coefficients charge the fused forward: decode rows are
    single-token, prefill chunks amortize the dense ops over many
    tokens, hence the cheaper per-token rate.  The defaults roughly
    match the unit-test model on the perf-baseline machine; pass a
    :meth:`calibrated <calibrate>` model for honest virtual rates.
    Virtual-clock results are a pure function of (trace, cost model) —
    change the model and virtual timings change, deterministically.
    """

    base_s: float = 2e-4
    per_decode_token_s: float = 1.2e-4
    per_prefill_token_s: float = 1.5e-5

    def cost(self, decode_rows: int, prefill_tokens: int) -> float:
        return (self.base_s
                + self.per_decode_token_s * decode_rows
                + self.per_prefill_token_s * prefill_tokens)


@dataclass
class RequestRecord:
    """Everything the SLO layer needs to know about one served request.

    Times are harness-clock seconds relative to the harness start
    (which is also arrival time 0).  ``itl_s`` holds every inter-token
    gap of the request (all samples pooled), so class-level p99s are
    computed over real gaps, not per-request maxima.  ``preemptions`` /
    ``retries`` / ``faults`` are joined from the request's PR 7
    lifecycle timeline when observability is on.
    """

    request_id: str
    traffic_class: str
    arrival_s: float
    submit_s: float
    finish_s: float = float("nan")
    ttft_s: float = float("nan")
    latency_s: float = float("nan")     # submit -> finish
    tokens: int = 0                     # across all samples
    finish_reason: str = "pending"
    error: str | None = None
    deadline_s: float | None = None
    deadline_hit: bool | None = None    # None when no deadline was set
    itl_s: list = field(default_factory=list)
    preemptions: int = 0
    retries: int = 0
    faults: int = 0

    @property
    def completed(self) -> bool:
        return self.finish_reason in _NORMAL_FINISH

    @property
    def max_itl_s(self) -> float:
        return max(self.itl_s) if self.itl_s else 0.0

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["itl_s"] = list(self.itl_s)
        return d


@dataclass
class HarnessResult:
    """One harness run: per-request records plus engine-level context."""

    records: list
    duration_s: float          # harness start -> last finish (or last arrival)
    offered_rate: float        # requests/s over the arrival span
    clock_mode: str
    stats: object              # EngineStats snapshot at the end of the run
    monitor: object = None     # the live SLOMonitor, when one was attached

    def by_class(self) -> dict:
        out: dict[str, list] = {}
        for r in self.records:
            out.setdefault(r.traffic_class, []).append(r)
        return out

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "offered_rate": self.offered_rate,
            "clock_mode": self.clock_mode,
            "records": [r.to_dict() for r in self.records],
            "stats": self.stats.summary() if self.stats is not None else None,
        }


class LoadHarness:
    """Open-loop driver: a :class:`WorkloadTrace` through one engine.

    Builds a fresh :class:`~repro.serve.engine.GenerationEngine` per
    :meth:`run` (loads must not share warm caches or metrics) — or
    whatever engine-shaped target ``engine_factory(clock)`` returns,
    e.g. a :class:`~repro.serve.fleet.FleetRouter` — injects
    the harness clock as the engine clock so TTFT/deadline timings are
    measured on the same axis as the arrival schedule, and submits
    each trace entry the moment its arrival time passes — whether or
    not the engine has kept up.  Backpressure rejections
    (:class:`~repro.serve.scheduler.QueueFullError` under
    ``max_queue_len``) and submit-time validation errors become
    ``finish_reason="rejected"`` records: shed load is an SLO miss,
    not an excuse.

    ``monitor`` (any object with ``record(RequestRecord)`` and
    ``sample(t)``) is fed each finished request as it completes and
    polled every ``poll_interval_s`` of harness time — the live half
    of the SLO layer (:class:`repro.serve.slo.SLOMonitor`).
    """

    def __init__(self, model, cache_factory,
                 config: ServeConfig = ServeConfig(), *,
                 clock: str = "wall", cost_model: TickCostModel | None = None,
                 policy=None, faults=None, metrics=None,
                 poll_interval_s: float = 0.05, engine_factory=None):
        if clock not in ("wall", "virtual"):
            raise ValueError(f"clock must be 'wall' or 'virtual', got {clock!r}")
        self.model = model
        self.cache_factory = cache_factory
        self.config = config
        self.clock_mode = clock
        self.cost_model = cost_model if cost_model is not None else TickCostModel()
        self.policy = policy
        self.faults = faults
        self.metrics = metrics
        self.poll_interval_s = poll_interval_s
        self.engine_factory = engine_factory  # clock -> engine-shaped target
        self.monitor = None          # attach_monitor(): live SLO feed
        self.engine = None           # the engine of the latest run()

    # -- internals -----------------------------------------------------
    def _build_engine(self):
        if self.clock_mode == "virtual":
            vclock = VirtualClock()
        else:
            vclock = None
        clock = vclock if vclock is not None else time.perf_counter
        if self.engine_factory is not None:
            # Anything engine-shaped (submit/step/pop_result/stats and
            # "prefill_tokens"/"decode_lane_ticks" counters) can be
            # driven — a FleetRouter, notably.  The factory gets the
            # harness clock so all timing shares one axis.
            return self.engine_factory(clock), vclock
        engine = GenerationEngine(
            self.model, self.cache_factory, self.config,
            clock=clock,
            policy=self.policy, faults=self.faults, metrics=self.metrics,
        )
        return engine, vclock

    @staticmethod
    def _timeline_counts(result) -> tuple:
        events = result.trace or []
        names = [e.get("event") for e in events]
        return (names.count("preempt"), names.count("retry"),
                names.count("fault"))

    # -- the run loop --------------------------------------------------
    def run(self, trace: WorkloadTrace) -> HarnessResult:
        entries = sorted(trace.entries, key=lambda e: e.arrival_s)
        engine, vclock = self._build_engine()
        self.engine = engine
        # lint: allow[clock-discipline] this IS the harness's wall-clock seam:
        # clock="wall" opts out of determinism explicitly; virtual mode never
        # reaches these reads.
        t0 = 0.0 if vclock is not None else time.perf_counter()

        def now() -> float:
            # lint: allow[clock-discipline] wall-mode half of the clock seam
            # (see t0 above); virtual replay takes the vclock branch.
            return (vclock() if vclock is not None else time.perf_counter()) - t0

        records: dict[str, RequestRecord] = {}
        last_token_t: dict[tuple, float] = {}
        monitor = self.monitor
        next_poll = self.poll_interval_s
        # Virtual busy time mirrors wall elapsed_s: read the registry
        # counters the engine already keeps to cost each tick.
        m_prefill = engine.metrics.get("prefill_tokens")
        m_lanes = engine.metrics.get("decode_lane_ticks")

        i = 0
        while i < len(entries) or engine.has_work():
            t = now()
            while i < len(entries) and entries[i].arrival_s <= t:
                entry = entries[i]
                i += 1
                rec = RequestRecord(
                    request_id=entry.request_id,
                    traffic_class=entry.traffic_class,
                    arrival_s=entry.arrival_s,
                    submit_s=t,
                    deadline_s=entry.deadline_s,
                )
                records[entry.request_id] = rec
                try:
                    engine.submit(entry.to_request())
                except (QueueFullError, ValueError) as exc:
                    rec.finish_reason = "rejected"
                    rec.finish_s = t
                    rec.latency_s = 0.0
                    rec.error = f"{type(exc).__name__}: {exc}"
                    self._finalize(rec, monitor)
            if engine.has_work():
                pre_prefill = m_prefill.value
                pre_lanes = m_lanes.value
                events = engine.step()
                if vclock is not None:
                    vclock.advance(self.cost_model.cost(
                        m_lanes.value - pre_lanes,
                        m_prefill.value - pre_prefill,
                    ))
                # Token timestamps are assigned *after* the tick's cost
                # is charged (virtual mode: the token exists once its
                # forward pass has been paid for), so TTFT and the
                # inter-token gaps honestly include compute time.
                t = now()
                for event in events:
                    rec = records.get(event.request_id)
                    if rec is None:
                        continue
                    if event.token is not None:
                        key = (event.request_id, event.sample)
                        if np.isnan(rec.ttft_s):
                            rec.ttft_s = t - rec.submit_s
                        if key in last_token_t:
                            rec.itl_s.append(t - last_token_t[key])
                        last_token_t[key] = t
                    if (event.finished and rec.finish_reason == "pending"
                            and engine.has_result(event.request_id)):
                        self._collect(engine, rec, t, monitor)
            elif i < len(entries):
                gap = entries[i].arrival_s - now()
                if gap > 0:
                    if vclock is not None:
                        vclock.advance(gap)
                    else:
                        time.sleep(min(gap, 5e-4))
            if monitor is not None and now() >= next_poll:
                monitor.sample(now())
                next_poll = now() + self.poll_interval_s

        end = now()
        # Straggler sweep: a family whose last finish event raced the
        # loop exit still has its result recorded at the tick boundary.
        for rec in records.values():
            if rec.finish_reason == "pending" and engine.has_result(rec.request_id):
                self._collect(engine, rec, end, monitor)
        if monitor is not None:
            monitor.sample(end)
        ordered = [records[e.request_id] for e in entries]
        offered = trace.offered_rate
        return HarnessResult(
            records=ordered,
            duration_s=end,
            offered_rate=offered,
            clock_mode=self.clock_mode,
            stats=engine.stats(),
            monitor=monitor,
        )

    def _collect(self, engine, rec: RequestRecord, t: float, monitor) -> None:
        """Fill a record from its finished :class:`GenerationResult`."""
        result = engine.pop_result(rec.request_id)
        rec.finish_s = t
        rec.latency_s = t - rec.submit_s
        rec.tokens = sum(len(s.tokens) for s in result.samples)
        rec.finish_reason = result.finish_reason
        rec.error = result.error
        if rec.deadline_s is not None:
            rec.deadline_hit = rec.latency_s <= rec.deadline_s
        rec.preemptions, rec.retries, rec.faults = self._timeline_counts(result)
        self._finalize(rec, monitor)

    @staticmethod
    def _finalize(rec: RequestRecord, monitor) -> None:
        if monitor is not None:
            monitor.record(rec)

    def attach_monitor(self, monitor) -> None:
        """Feed finished requests + periodic polls to ``monitor`` during
        :meth:`run` (see :class:`repro.serve.slo.SLOMonitor`)."""
        self.monitor = monitor
