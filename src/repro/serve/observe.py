"""Serving observability: metrics registry, tick tracer, request timelines.

Three cooperating pieces turn the engine's ad-hoc counters into a
first-class observability layer:

* :class:`MetricsRegistry` — a labeled namespace of
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments that
  is the *single source of truth* behind
  :class:`~repro.serve.engine.EngineStats`: every engine counter is a
  registry object, ``engine.stats()`` is a read of the registry, and
  :meth:`MetricsRegistry.to_prometheus` renders the standard text
  exposition so N engine replicas (each with its own ``labels``) can
  export side by side.  :meth:`MetricsRegistry.merge` folds replica
  registries into one fleet aggregate — the shape the multi-replica
  router (ROADMAP direction 1) scrapes.
* :class:`TickTracer` — named, nested spans over the phases of one
  engine tick (``sweep``/``admit``/``plan``/``pack_prefill``/
  ``forward``/``append``/``sample``/``deliver``/``finish`` under a
  ``tick`` root), recorded into a bounded in-memory ring buffer and
  exported as Chrome-trace/Perfetto JSON via :meth:`TickTracer.save`
  (load the file at ``chrome://tracing`` or https://ui.perfetto.dev).
  A span costs two clock reads and one tuple append; a *disabled*
  tracer hands out a shared no-op span, so ``ServeConfig(observe=
  False)`` engines pay one attribute check per phase.
* :class:`RequestTrace` — the lifecycle timeline of one request
  (submit, admit, prefill chunks, preemption, retry, fired faults
  joined against :attr:`~repro.serve.faults.FaultInjector.log`, first
  token, finish), retrievable live via
  :meth:`~repro.serve.request.RequestHandle.trace` and serialized into
  :attr:`~repro.serve.request.GenerationResult.trace`.

The tracer's clock is deliberately *separate* from the engine's
injectable clock: engine clock reads are counted by the fault
injector's ``clock_skew(after=N)`` rules and must never depend on
whether observability is enabled — determinism of scheduling under
``observe=True`` vs ``observe=False`` rests on this separation.

Histograms pair fixed log-scale buckets (for mergeable, Prometheus-
style exposition) with a bounded reservoir of raw samples (for *exact*
small-n percentiles — the engine's TTFT/inter-token p50/p95 are
computed from the reservoir with ``np.percentile``, bit-for-bit the
pre-registry deques).
"""

from __future__ import annotations

import bisect
import json
import time
from collections import deque

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TickTracer",
    "RequestTrace",
    "DEFAULT_BUCKETS",
]

# Log-scale histogram bounds: two per decade from 1 µs to 1000 s —
# wide enough for TTFT and queue latencies on anything from the
# unit-test model to a saturated fleet, and fixed so replica histograms
# merge bucket-for-bucket.
DEFAULT_BUCKETS = tuple(10.0 ** (e / 2.0) for e in range(-12, 7))

# Raw samples retained per histogram for exact percentiles; matches the
# engine's pre-registry LATENCY_WINDOW so percentile values are
# unchanged bit for bit.
DEFAULT_RESERVOIR = 4096


class Counter:
    """A monotonically increasing value (int or float)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value: either set explicitly or read through a
    bound callable (the registry pattern for pool/scheduler depths —
    the gauge always reflects live state, no update calls on the hot
    path)."""

    __slots__ = ("name", "help", "fn", "_value")

    def __init__(self, name: str, help: str = "", fn=None):
        self.name = name
        self.help = help
        self.fn = fn
        self._value = 0

    def set(self, value) -> None:
        self.fn = None
        self._value = value

    @property
    def value(self):
        return self.fn() if self.fn is not None else self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Log-scale bucket counts plus a bounded reservoir of raw samples.

    The buckets give a mergeable, Prometheus-compatible shape; the
    reservoir (a ``deque(maxlen=...)`` of the most recent samples)
    gives *exact* percentiles for the windows the engine reports —
    identical to ``np.percentile`` over the raw deque the engine used
    before the registry existed.  ``max_value`` starts at ``0.0`` (not
    ``-inf``) to preserve the engine's historical "max latency is 0
    before any completion" reading.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count",
                 "max_value", "reservoir")

    def __init__(self, name: str, help: str = "",
                 buckets=DEFAULT_BUCKETS, reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)   # +1 = +Inf overflow
        self.sum = 0.0
        self.count = 0
        self.max_value = 0.0
        self.reservoir: deque = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        self.max_value = max(self.max_value, value)
        self.reservoir.append(value)

    def percentile(self, q: float) -> float:
        """Exact percentile over the reservoir window (NaN when empty)."""
        if not self.reservoir:
            return float("nan")
        return float(np.percentile(list(self.reservoir), q))

    @staticmethod
    def percentile_over(histograms, q: float) -> float:
        """Percentile over the pooled reservoirs of several histograms.

        The fleet-wide view of a per-replica instrument (e.g. the
        router's hedge-delay TTFT percentile) without merging the
        registries first: pools every histogram's reservoir window and
        takes one exact percentile.  NaN when all are empty.
        """
        pooled = [v for h in histograms for v in h.reservoir]
        if not pooled:
            return float("nan")
        return float(np.percentile(pooled, q))

    def fraction_below(self, value: float) -> float:
        """Fraction of observations ``<= value``, at bucket resolution.

        Counts every bucket whose upper bound is ``<= value`` — a
        *conservative* (never over-counting) estimate, since samples in
        the straddling bucket are excluded.  Mergeable across replicas
        (pure bucket arithmetic, no reservoir), which is what the live
        SLO monitor wants; ``1.0`` on an empty histogram (no
        observation has violated anything yet).
        """
        if not self.count:
            return 1.0
        covered = sum(c for bound, c in zip(self.buckets, self.counts)
                      if bound <= value)
        return covered / self.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6g})"


class MetricsRegistry:
    """A labeled namespace of named instruments.

    One registry per engine: instrument names are unique within it and
    ``labels`` (e.g. ``{"replica": "r3"}``) distinguish replicas in the
    merged/exported views.  Registration returns the live instrument —
    the engine holds direct references, so the hot path pays one
    attribute access, never a dict lookup.
    """

    def __init__(self, namespace: str = "repro_serve",
                 labels: dict | None = None):
        self.namespace = namespace
        self.labels = dict(labels or {})
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _register(self, metric):
        if metric.name in self._metrics:
            raise ValueError(
                f"metric {metric.name!r} already registered in namespace "
                f"{self.namespace!r}"
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "", fn=None) -> Gauge:
        return self._register(Gauge(name, help, fn=fn))

    def histogram(self, name: str, help: str = "",
                  buckets=DEFAULT_BUCKETS,
                  reservoir: int = DEFAULT_RESERVOIR) -> Histogram:
        return self._register(Histogram(name, help, buckets, reservoir))

    # ------------------------------------------------------------------
    def get(self, name: str):
        return self._metrics[name]

    def names(self) -> list[str]:
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible snapshot (embedded in saved traces)."""
        out: dict = {"namespace": self.namespace, "labels": dict(self.labels),
                     "metrics": {}}
        for m in self:
            if isinstance(m, Counter):
                out["metrics"][m.name] = {"type": "counter", "value": m.value}
            elif isinstance(m, Gauge):
                out["metrics"][m.name] = {"type": "gauge", "value": m.value}
            else:
                out["metrics"][m.name] = {
                    "type": "histogram",
                    "count": m.count,
                    "sum": m.sum,
                    "max": m.max_value,
                    "buckets": list(m.buckets),
                    "counts": list(m.counts),
                }
        return out

    @staticmethod
    def _escape_label_value(value) -> str:
        """Escape one label value per the Prometheus text exposition
        spec: backslash, double-quote and newline (in that order — the
        backslash pass must not re-escape the others' escapes)."""
        return (str(value)
                .replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n"))

    def to_prometheus(self) -> str:
        """Standard Prometheus text exposition of every instrument."""
        label_str = ""
        if self.labels:
            inner = ",".join(
                f'{k}="{self._escape_label_value(v)}"'
                for k, v in sorted(self.labels.items())
            )
            label_str = "{" + inner + "}"
        lines: list[str] = []
        for m in self:
            full = f"{self.namespace}_{m.name}"
            if m.help:
                # HELP text has its own (smaller) escape set: backslash
                # and newline, but *not* double-quote.
                help_text = m.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {full} {help_text}")
            if isinstance(m, Counter):
                lines.append(f"# TYPE {full} counter")
                lines.append(f"{full}{label_str} {m.value}")
            elif isinstance(m, Gauge):
                lines.append(f"# TYPE {full} gauge")
                lines.append(f"{full}{label_str} {m.value}")
            else:
                lines.append(f"# TYPE {full} histogram")
                cumulative = 0
                for bound, count in zip(m.buckets, m.counts):
                    cumulative += count
                    le = self._merge_label(label_str, f'le="{bound:g}"')
                    lines.append(f"{full}_bucket{le} {cumulative}")
                le = self._merge_label(label_str, 'le="+Inf"')
                lines.append(f"{full}_bucket{le} {m.count}")
                lines.append(f"{full}_sum{label_str} {m.sum}")
                lines.append(f"{full}_count{label_str} {m.count}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _merge_label(label_str: str, extra: str) -> str:
        if not label_str:
            return "{" + extra + "}"
        return label_str[:-1] + "," + extra + "}"

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, registries, namespace: str | None = None,
              labels: dict | None = None) -> "MetricsRegistry":
        """Fleet aggregation: fold replica registries into one.

        Counters and histogram buckets/sums sum; gauges sum as snapshot
        values (queue depths and live blocks add across replicas);
        histogram reservoirs concatenate (bounded by the reservoir
        size, so merged percentiles are window-approximate while
        bucket counts stay exact).  Instruments sharing a name must
        share a type — and, for histograms, bucket bounds.
        """
        registries = list(registries)
        if not registries:
            raise ValueError("merge() needs at least one registry")
        merged = cls(
            namespace=namespace if namespace is not None
            else registries[0].namespace,
            labels=labels,
        )
        for reg in registries:
            for m in reg:
                have = merged._metrics.get(m.name)
                if have is None:
                    if isinstance(m, Counter):
                        have = merged.counter(m.name, m.help)
                    elif isinstance(m, Gauge):
                        have = merged.gauge(m.name, m.help)
                    else:
                        have = merged.histogram(m.name, m.help, m.buckets,
                                                m.reservoir.maxlen)
                if isinstance(m, Counter):
                    if not isinstance(have, Counter):
                        raise TypeError(f"metric {m.name!r} type mismatch")
                    have.value += m.value
                elif isinstance(m, Gauge):
                    if not isinstance(have, Gauge):
                        raise TypeError(f"metric {m.name!r} type mismatch")
                    have.set(have.value + m.value)
                else:
                    if not isinstance(have, Histogram):
                        raise TypeError(f"metric {m.name!r} type mismatch")
                    if have.buckets != m.buckets:
                        raise ValueError(
                            f"histogram {m.name!r} bucket bounds differ"
                        )
                    for i, c in enumerate(m.counts):
                        have.counts[i] += c
                    have.sum += m.sum
                    have.count += m.count
                    have.max_value = max(have.max_value, m.max_value)
                    have.reservoir.extend(m.reservoir)
        return merged


class _Span:
    """One live span; records ``(name, t0, t1, depth)`` on exit."""

    __slots__ = ("_tracer", "_name", "_t0", "_depth")

    def __init__(self, tracer: "TickTracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self):
        tracer = self._tracer
        self._depth = tracer._depth
        tracer._depth += 1
        self._t0 = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self._tracer
        tracer._depth -= 1
        tracer._records.append(
            (self._name, self._t0, tracer._clock(), self._depth, None)
        )
        return False


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class TickTracer:
    """Nested named spans over engine ticks, in a bounded ring buffer.

    Spans are recorded *at exit* as ``(name, t0, t1, depth, args)``
    tuples (``args`` is ``None`` for spans, a detail dict for
    :meth:`instant` events, whose ``t1`` is ``None``); nesting is
    recoverable from time containment, exactly how Chrome-trace viewers
    render it.  The ring (``capacity`` completed records) bounds memory
    on long-lived servers — when it wraps, the oldest records drop
    first, which can orphan a child whose parent span closed later;
    viewers tolerate this, and :meth:`save` exports whatever the ring
    holds.

    The clock defaults to ``time.perf_counter`` and is injectable for
    tests; it is intentionally **not** the engine's (possibly
    fault-wrapped) clock — see the module docstring.
    """

    def __init__(self, capacity: int = 65536, clock=None,
                 enabled: bool = True):
        self._clock = clock if clock is not None else time.perf_counter
        self._records: deque = deque(maxlen=capacity)
        self._depth = 0
        self.enabled = enabled
        # Optional callable returning extra top-level JSON sections for
        # save() — the engine wires metrics + request timelines here.
        self.extra_provider = None

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    def span(self, name: str):
        """Context manager timing one phase; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def instant(self, name: str, args: dict | None = None) -> None:
        """Record a point event (rendered as an arrow/instant marker)."""
        if not self.enabled:
            return
        self._records.append((name, self._clock(), None, self._depth, args))

    def clear(self) -> None:
        self._records.clear()

    # ------------------------------------------------------------------
    def records(self) -> list[tuple]:
        """The raw ring contents: ``(name, t0, t1, depth, args)``."""
        return list(self._records)

    def spans(self, name: str | None = None) -> list[tuple]:
        """Completed spans (optionally filtered by name), oldest first."""
        return [r for r in self._records
                if r[2] is not None and (name is None or r[0] == name)]

    def instants(self, name: str | None = None) -> list[tuple]:
        return [r for r in self._records
                if r[2] is None and (name is None or r[0] == name)]

    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Chrome-trace/Perfetto JSON object for the ring contents.

        Spans become complete events (``ph: "X"`` with ``ts``/``dur``
        in microseconds); instants become ``ph: "i"``.  Extra top-level
        sections from ``extra_provider`` (metrics snapshot, request
        timelines) ride along — trace viewers ignore unknown keys.
        """
        trace_events = []
        for name, t0, t1, depth, args in self._records:
            if t1 is None:
                event = {"name": name, "ph": "i", "ts": t0 * 1e6,
                         "pid": 0, "tid": 0, "s": "t"}
                if args:
                    event["args"] = args
            else:
                event = {"name": name, "ph": "X", "ts": t0 * 1e6,
                         "dur": (t1 - t0) * 1e6, "pid": 0, "tid": 0}
            trace_events.append(event)
        out = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        if self.extra_provider is not None:
            out.update(self.extra_provider())
        return out

    def save(self, path: str) -> str:
        """Write the Chrome-trace JSON to ``path``; returns the path."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)
        return path

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"TickTracer({state}, records={len(self._records)})"


class RequestTrace:
    """The lifecycle timeline of one request.

    ``events`` is a list of dicts ``{"event", "t", "sample", ...}`` in
    occurrence order; ``t`` is a tracer-clock timestamp (seconds —
    subtract the first event's to get relative offsets).  Bounded by
    ``max_events`` so a pathological request (thousands of chunks or
    retries) cannot grow one timeline without limit; when full, further
    events are dropped and :attr:`dropped` counts them.
    """

    __slots__ = ("request_id", "events", "max_events", "dropped")

    def __init__(self, request_id: str, max_events: int = 512):
        self.request_id = request_id
        self.events: list[dict] = []
        self.max_events = max_events
        self.dropped = 0

    def add(self, event: str, t: float, **detail) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        record = {"event": event, "t": t}
        record.update(detail)
        self.events.append(record)

    def names(self) -> list[str]:
        """The event names in occurrence order."""
        return [e["event"] for e in self.events]

    @property
    def duration_s(self) -> float:
        """First-to-last event span (0.0 with fewer than two events)."""
        if len(self.events) < 2:
            return 0.0
        return self.events[-1]["t"] - self.events[0]["t"]

    def to_events(self) -> list[dict]:
        """A JSON-compatible copy of the event list."""
        return [dict(e) for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (f"RequestTrace({self.request_id!r}, "
                f"{len(self.events)} events: {' '.join(self.names())})")
