"""Paged quantized KV-cache subsystem: block pool, prefix sharing, COW.

PR 2's :class:`~repro.quant.kvcache.KVCacheArena` carves contiguous
per-slot slabs, so one sequence's growth reallocates whole lanes and
worst-case ``prompt + max_tokens`` admission strands memory.  This
module replaces that with vLLM/mlc-llm-style paging:

* **BlockPool** — fixed-size pages of ``block_tokens`` tokens backed by
  one shared ``(heads, num_blocks, block_tokens, d_head)`` slab per
  (layer, K/V-role).  A *block id* names the same row in every slab, so
  one logical page table per sequence covers all layers.  Blocks are
  ref-counted and recycled through a free list; blocks whose content is
  a registered prompt prefix are retained ("cached-free") after their
  last reference drops and are only evicted LRU when allocation needs
  them — so a popular system prompt keeps paying off across request
  waves.
* **PageTable / PagedTokenBuffer** — per-sequence mapping of logical
  page index to block id, plus a :class:`~repro.quant.kvcache.TokenBuffer`-
  compatible facade over it.  The existing FP16/INT4/MANT4 cache
  classes are reused *unchanged* via ``bind_buffer_factory``, which is
  what makes the paged quantization math bit-identical to the flat
  caches: M-ANT's group-wise scheme quantizes each page independently
  as long as ``block_tokens`` is a multiple of the temporal group
  (the V-cache window), so pages can be shared, recycled and gathered
  without touching neighbours.
* **Prefix sharing** — identical full prompt-prefix pages are
  deduplicated across live requests with a *chained* SHA-256 over the
  page's token ids (page ``i``'s hash commits to tokens ``[0, (i+1)·bt)``
  — necessary because K/V content at position ``p`` depends on the whole
  token prefix through the transformer).  A matching request attaches
  the donor's blocks (ref-count++), suppresses its own writes over the
  sealed region, and starts writing at the first divergent page.
* **Copy-on-write** — any write (append or in-place V-window finalize)
  to a block with more than one reference first clones the block across
  every slab, so :meth:`PagedLease.fork` gives cheap sequence clones
  (parallel sampling / beam style) whose mutations never perturb each
  other.

Correctness invariants (gated by ``tests/test_serve_paging.py``):

* Paged greedy decode is token-for-token identical to the
  contiguous-arena engine for FP16/INT4/MANT4 caches.  Prefix sharing
  preserves this because a full prompt page's content is a pure
  function of the token prefix: K rows are quantized per token, and
  full V windows are quantized directly from window data (the per-
  sequence INT8 staging scale only ever touches the partial tail page,
  which is never shared).
* ``block_tokens`` must be a multiple of the MANT V window so temporal
  groups never straddle pages (:func:`validate_block_compat` enforces
  this); the in-place window finalize then always lands inside one
  page.
* Releasing a lease returns every non-shared page to the pool with no
  state leakage; shared pages survive as long as any borrower holds
  them, then linger evictable in the prefix cache.
"""

from __future__ import annotations

import copy
import hashlib
from collections import OrderedDict

import numpy as np

from repro.quant.kvcache import (
    KVCache,
    MantKVCache,
    _BufferedKVCache,
    _promote_token_block,
)

__all__ = [
    "PoolExhausted",
    "BlockPool",
    "PageTable",
    "PagedTokenBuffer",
    "PagedView",
    "PagedKVCache",
    "PagedLease",
    "validate_block_compat",
]

_EMPTY = np.empty((0, 0, 0))


class PoolExhausted(RuntimeError):
    """No free (or evictable cached-free) blocks left in the pool."""


def validate_block_compat(cache, block_tokens: int) -> None:
    """Reject page sizes that would split a temporal quantization group.

    K caches group along ``d_head`` (one token at a time) and are
    compatible with any page size; the MANT V cache quantizes groups of
    ``window`` consecutive *tokens*, so a page must hold a whole number
    of windows for per-page quantization to be bit-identical to the
    flat cache (and for the in-place window finalize to stay within one
    page).
    """
    if isinstance(cache, MantKVCache) and block_tokens % cache.window:
        raise ValueError(
            f"block_tokens={block_tokens} must be a multiple of the MANT "
            f"V-cache window ({cache.window}) so temporal quantization "
            "groups never straddle page boundaries"
        )


class BlockPool:
    """Fixed-size KV pages shared by every sequence of one engine.

    One ``(heads, num_blocks, block_tokens, d_head)`` slab per
    (layer, role) — created lazily at the first geometry sighting, like
    the arena's slabs — with a single block-id space across all of
    them: block ``b`` is row ``b`` of every slab, so a sequence's page
    table is one list of ids covering all layers, and "blocks in use"
    is a direct measure of KV memory.
    """

    def __init__(
        self,
        n_layers: int,
        block_tokens: int,
        num_blocks: int,
        enable_prefix_cache: bool = True,
        faults=None,
    ):
        if n_layers < 1:
            raise ValueError("pool needs at least one layer")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        self.n_layers = n_layers
        self.block_tokens = block_tokens
        self.num_blocks = num_blocks
        self.enable_prefix_cache = enable_prefix_cache
        # Optional chaos harness (repro.serve.faults.FaultInjector):
        # allocate() consults its "alloc" site, covering allocations the
        # engine's tick planner cannot anticipate (COW clones).
        self.faults = faults
        self._free_set = set(range(num_blocks))
        self._ref = [0] * num_blocks
        self._slabs: dict[tuple[int, str], np.ndarray] = {}
        self._flats: dict[tuple[int, str], np.ndarray] = {}
        # Prefix cache: chained page hash <-> block id, plus the set of
        # zero-ref blocks retained only for future prefix hits (LRU).
        self._block_of_hash: dict[bytes, int] = {}
        self._hash_of_block: dict[int, bytes] = {}
        self._cached_free: OrderedDict[int, None] = OrderedDict()
        # Stats (read by EngineStats and the paging benchmark).
        self.allocations = 0
        self.high_water = 0
        self.total_leases = 0
        self.forks = 0           # PagedLease.fork clones (parallel sampling)
        self.cow_copies = 0
        self.prefix_hit_tokens = 0
        self.prefill_pages_total = 0
        self.prefill_pages_hit = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def blocks_available(self) -> int:
        """Blocks an allocation could obtain: free + evictable cached."""
        return len(self._free_set) + len(self._cached_free)

    @property
    def blocks_in_use(self) -> int:
        return self.num_blocks - self.blocks_available

    def refcount(self, block_id: int) -> int:
        return self._ref[block_id]

    def bind_metrics(self, registry) -> None:
        """Register live pool gauges on the engine's
        :class:`~repro.serve.observe.MetricsRegistry`: free / cached /
        live / hashed block counts plus the allocation, lease, fork and
        copy-on-write counters — bound callables, so the gauges track
        pool state with zero cost on the allocation path."""
        registry.gauge("pool_blocks_free", "Blocks on the free list",
                       fn=lambda: len(self._free_set))
        registry.gauge("pool_blocks_cached",
                       "Zero-ref blocks retained for prefix-cache hits",
                       fn=lambda: len(self._cached_free))
        registry.gauge("pool_blocks_live", "Blocks referenced by live leases",
                       fn=lambda: self.blocks_in_use)
        registry.gauge("pool_blocks_hashed",
                       "Blocks registered in the prefix hash chain",
                       fn=lambda: len(self._hash_of_block))
        registry.gauge("pool_allocations", "Total block allocations",
                       fn=lambda: self.allocations)
        registry.gauge("pool_leases", "Total leases ever acquired",
                       fn=lambda: self.total_leases)
        registry.gauge("pool_forks", "Copy-on-write lease forks",
                       fn=lambda: self.forks)
        registry.gauge("pool_cow_copies", "Copy-on-write block copies",
                       fn=lambda: self.cow_copies)

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    def _spread_block(self) -> int:
        """Middle of the longest free run — binary-splitting placement.

        First allocations land mid-run so each sequence's later pages
        can extend at ``last + 1``; successive sequences split the
        remaining runs.  Keeping per-sequence pages consecutive is what
        keeps :meth:`PagedView.gather` on its zero-copy fast path, so
        this locality heuristic is directly a decode-throughput lever.
        """
        ids = sorted(self._free_set)
        best_start = start = ids[0]
        best_len = run = 1
        for prev, cur in zip(ids, ids[1:]):
            if cur == prev + 1:
                run += 1
            else:
                if run > best_len:
                    best_start, best_len = start, run
                start, run = cur, 1
        if run > best_len:
            best_start, best_len = start, run
        return best_start + best_len // 2

    def allocate(self, hint: int | None = None) -> int:
        """Hand out one block (ref-count 1).

        ``hint`` asks for a specific id (a growing sequence passes its
        ``last block + 1``); granted when that block is free or
        retained-evictable.  LRU cached-free prefix blocks are evicted
        only when the plain free set is empty.
        """
        if self.faults is not None:
            self.faults.fire("alloc")
        if self._free_set:
            if hint is not None and hint in self._free_set:
                bid = hint
            else:
                bid = self._spread_block()
            self._free_set.remove(bid)
        elif self._cached_free:
            if hint is not None and hint in self._cached_free:
                del self._cached_free[hint]
                bid = hint
            else:
                bid, _ = self._cached_free.popitem(last=False)
            self._unhash(bid)
        else:
            raise PoolExhausted(
                f"BlockPool exhausted: all {self.num_blocks} blocks of "
                f"{self.block_tokens} tokens are referenced"
            )
        self._ref[bid] = 1
        self.allocations += 1
        self.high_water = max(self.high_water, self.blocks_in_use)
        return bid

    def incref(self, block_id: int) -> None:
        if self._ref[block_id] < 1:
            raise RuntimeError(f"incref on unreferenced block {block_id}")
        self._ref[block_id] += 1

    def decref(self, block_id: int) -> None:
        if self._ref[block_id] < 1:
            raise RuntimeError(f"decref on unreferenced block {block_id}")
        self._ref[block_id] -= 1
        if self._ref[block_id] == 0:
            if block_id in self._hash_of_block:
                # Keep the content for future prefix hits; evictable.
                self._cached_free[block_id] = None
            else:
                self._free_set.add(block_id)

    def check_integrity(self, expected_refs: dict[int, int] | None = None) -> None:
        """Verify pool bookkeeping; raise ``RuntimeError`` on corruption.

        Structural checks always run: the free set, the cached-free set
        and the referenced blocks must partition ``num_blocks``; free
        blocks must have refcount 0; cached-free blocks must be
        zero-ref *and* hashed; the hash maps must be a bijection.  With
        ``expected_refs`` (block id → references the caller can account
        for, e.g. from every live lease's page table) each referenced
        block's refcount must match exactly — the check that catches
        leaked or double-freed pages the free counts alone would miss.
        """
        free = self._free_set
        cached = set(self._cached_free)
        if free & cached:
            raise RuntimeError(f"pool blocks both free and cached-free: "
                               f"{sorted(free & cached)}")
        referenced = {b for b in range(self.num_blocks) if self._ref[b] > 0}
        if referenced & (free | cached):
            raise RuntimeError(
                "pool blocks referenced while on a free list: "
                f"{sorted(referenced & (free | cached))}"
            )
        if len(free) + len(cached) + len(referenced) != self.num_blocks:
            raise RuntimeError(
                f"pool accounting leak: {len(free)} free + {len(cached)} "
                f"cached-free + {len(referenced)} referenced != "
                f"{self.num_blocks} blocks"
            )
        for bid in cached:
            if bid not in self._hash_of_block:
                raise RuntimeError(f"cached-free block {bid} has no prefix hash")
        if len(self._block_of_hash) != len(self._hash_of_block):
            raise RuntimeError("prefix-cache hash maps out of sync")
        for h, bid in self._block_of_hash.items():
            if self._hash_of_block.get(bid) != h:
                raise RuntimeError(f"prefix-cache mapping for block {bid} "
                                   "is not a bijection")
        if expected_refs is not None:
            for bid in referenced:
                if self._ref[bid] != expected_refs.get(bid, 0):
                    raise RuntimeError(
                        f"block {bid} refcount {self._ref[bid]} != "
                        f"{expected_refs.get(bid, 0)} references held by "
                        "live leases"
                    )

    def clone_block(self, src: int) -> int:
        """Copy-on-write clone: duplicate ``src`` across every slab."""
        dst = self.allocate()
        for slab in self._slabs.values():
            slab[:, dst] = slab[:, src]
        self.cow_copies += 1
        return dst

    # ------------------------------------------------------------------
    # Prefix cache
    # ------------------------------------------------------------------
    def _unhash(self, block_id: int) -> None:
        h = self._hash_of_block.pop(block_id, None)
        if h is not None:
            del self._block_of_hash[h]

    def lookup(self, page_hash: bytes) -> int | None:
        """Resolve a chained page hash to a live block, taking a ref.

        Resurrects cached-free blocks (the donor may long be gone).
        """
        bid = self._block_of_hash.get(page_hash)
        if bid is None:
            return None
        if self._ref[bid] == 0:
            del self._cached_free[bid]
        self._ref[bid] += 1
        self.high_water = max(self.high_water, self.blocks_in_use)
        return bid

    def probe_prefix(self, ids: np.ndarray) -> int:
        """Pages of ``ids``'s prompt prefix backed by *live* shared blocks.

        A read-only admission probe: unlike :meth:`lookup` it takes no
        references and resurrects nothing.  Only blocks some sequence
        still references count — attaching those is free, whereas
        resurrecting a cached-free match consumes a block the
        ``blocks_available`` gauge currently counts, so it must keep
        being charged like a fresh page.  The walk stops at the first
        page that is unmatched or not live (later live pages would be
        attached by :meth:`PagedLease.match_prefix`, but charging them
        too only errs conservative).
        """
        if not self.enable_prefix_cache:
            return 0
        matched = 0
        for h in self.page_hashes(ids):
            bid = self._block_of_hash.get(h)
            if bid is None or self._ref[bid] < 1:
                break
            matched += 1
        return matched

    def register(self, page_hash: bytes, block_id: int) -> int:
        """Publish a full page for sharing; returns 1 if newly registered.

        First writer wins: a hash already mapped (or a block already
        hashed) is left alone, so registered content is immutable for
        the mapping's lifetime.
        """
        if not self.enable_prefix_cache:
            return 0
        if page_hash in self._block_of_hash or block_id in self._hash_of_block:
            return 0
        self._block_of_hash[page_hash] = block_id
        self._hash_of_block[block_id] = page_hash
        return 1

    def page_hashes(self, ids: np.ndarray):
        """Yield the chained SHA-256 digest of every *full* page of ``ids``.

        Page ``i``'s digest commits to tokens ``[0, (i+1)·block_tokens)``
        — K/V content at a position depends on the entire token prefix,
        so equal page digests imply bit-equal page content (same model,
        same cache config: both fixed per pool).
        """
        ids = np.ascontiguousarray(np.asarray(ids, dtype=np.int64))
        bt = self.block_tokens
        h = b""
        for i in range(ids.size // bt):
            h = hashlib.sha256(h + ids[i * bt : (i + 1) * bt].tobytes()).digest()
            yield h

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def _get_slab(self, layer: int, role: str, heads: int, d_head: int) -> np.ndarray:
        key = (layer, role)
        slab = self._slabs.get(key)
        if slab is None:
            slab = np.empty((heads, self.num_blocks, self.block_tokens, d_head))
            self._slabs[key] = slab
            # Slabs are fixed-size (never reallocated), so one flat
            # (heads, num_blocks·bt, d_head) alias per slab serves the
            # consecutive-pages gather as a single zero-copy slice.
            self._flats[key] = slab.reshape(heads, -1, d_head)
        elif (slab.shape[0], slab.shape[3]) != (heads, d_head):
            raise ValueError(
                f"layer {layer} {role}-cache geometry ({heads}, {d_head}) does "
                f"not match the pool's ({slab.shape[0]}, {slab.shape[3]})"
            )
        return slab

    def _buffer_factory(self, lease: "PagedLease", layer: int):
        def make(role: str, heads: int, d_head: int, capacity: int) -> PagedTokenBuffer:
            # `capacity` is a contiguous-buffer concept; pages are
            # allocated on demand at first write instead.
            slab = self._get_slab(layer, role, heads, d_head)
            return PagedTokenBuffer(
                self, lease.table, slab, self._flats[(layer, role)],
                sealed=lease.sealed_tokens,
            )

        return make

    # ------------------------------------------------------------------
    def acquire(self, cache_factory) -> "PagedLease":
        """Lease a fresh paged sequence: per-layer caches over one table."""
        lease = PagedLease(self, PageTable(self))
        caches = []
        for layer in range(self.n_layers):
            inner = cache_factory()
            if not isinstance(inner, _BufferedKVCache):
                raise TypeError(
                    f"cache_factory produced {type(inner).__name__}, which does "
                    "not use the pooled buffer storage"
                )
            validate_block_compat(inner, self.block_tokens)
            inner.bind_buffer_factory(self._buffer_factory(lease, layer))
            caches.append(PagedKVCache(inner, lease.table))
        lease.caches = caches
        self.total_leases += 1
        return lease


class PageTable:
    """One sequence's logical-page → block-id mapping (all layers).

    ``contiguous`` is maintained incrementally (True while the ids form
    one ascending run) so the gather's zero-copy fast path costs a flag
    read instead of rebuilding a range per attention call.
    """

    __slots__ = ("_pool", "blocks", "contiguous")

    def __init__(self, pool: BlockPool, blocks: list[int] | None = None):
        self._pool = pool
        self.blocks = blocks if blocks is not None else []
        b0 = self.blocks[0] if self.blocks else 0
        self.contiguous = self.blocks == list(range(b0, b0 + len(self.blocks)))

    @property
    def n_pages(self) -> int:
        return len(self.blocks)

    def append_block(self, bid: int) -> None:
        if self.blocks and bid != self.blocks[-1] + 1:
            self.contiguous = False
        self.blocks.append(bid)

    def ensure_tokens(self, n_tokens: int) -> None:
        """Allocate pages on demand so ``n_tokens`` positions are backed,
        hinting for the block after the current last (locality)."""
        need = -(-n_tokens // self._pool.block_tokens)
        while len(self.blocks) < need:
            hint = self.blocks[-1] + 1 if self.blocks else None
            if hint is not None and hint >= self._pool.num_blocks:
                hint = None
            self.append_block(self._pool.allocate(hint))

    def writable_block(self, page: int) -> int:
        """Block id for writing: copy-on-write when the page is shared."""
        bid = self.blocks[page]
        if self._pool._ref[bid] > 1:
            new = self._pool.clone_block(bid)
            self._pool.decref(bid)
            self.blocks[page] = new
            self.contiguous = False
            bid = new
        return bid

    def release(self) -> None:
        for bid in self.blocks:
            self._pool.decref(bid)
        self.blocks.clear()
        self.contiguous = True


class PagedTokenBuffer:
    """:class:`~repro.quant.kvcache.TokenBuffer`-compatible facade over
    non-contiguous pool pages.

    ``sealed`` positions (a prefix-cache hit) already hold bit-identical
    content written by the donor, so appends over them advance the
    length without writing — the caller's prefill math is unchanged,
    only the redundant stores are dropped.
    """

    __slots__ = ("_pool", "_table", "_slab", "_flat", "_len", "_sealed")

    def __init__(self, pool: BlockPool, table: PageTable, slab: np.ndarray,
                 flat: np.ndarray, sealed: int = 0):
        self._pool = pool
        self._table = table
        self._slab = slab
        self._flat = flat
        self._len = 0
        self._sealed = sealed

    def __len__(self) -> int:
        return self._len

    @property
    def heads(self) -> int:
        return self._slab.shape[0]

    @property
    def d_head(self) -> int:
        return self._slab.shape[3]

    def append(self, block: np.ndarray) -> None:
        block = _promote_token_block(block, self.heads, self.d_head)
        t = block.shape[1]
        bt = self._pool.block_tokens
        if t == 1 and self._len >= self._sealed:
            # Single-token fast path: the per-tick decode append.
            page, off = divmod(self._len, bt)
            if off == 0:
                self._table.ensure_tokens(self._len + 1)
            bid = self._table.writable_block(page)
            self._slab[:, bid, off, :] = block[:, 0, :]
            self._len += 1
            return
        if self._len < self._sealed:
            skip = min(t, self._sealed - self._len)
            self._len += skip
            block = block[:, skip:]
            t -= skip
        i = 0
        while i < t:
            page, off = divmod(self._len, bt)
            chunk = min(t - i, bt - off)
            self._table.ensure_tokens(self._len + chunk)
            bid = self._table.writable_block(page)
            self._slab[:, bid, off : off + chunk, :] = block[:, i : i + chunk, :]
            self._len += chunk
            i += chunk

    def view(self) -> "PagedView":
        """Lazy read-only view over the live pages.

        Materialization (and the contiguous zero-copy fast path) lives
        in :meth:`PagedView.gather`, which the attention layer invokes;
        like all cache views it is only valid until the next mutation
        through any facade of the same table.
        """
        return PagedView(self._slab, self._flat, self._table, self._len)

    def tail(self, n: int) -> np.ndarray:
        """Writable view of the last ``n`` tokens (single page only).

        The MANT V-cache finalizes ``window``-sized regions in place;
        with ``block_tokens`` a multiple of the window that region
        always lands inside one page, so a direct writable slab slice
        (after copy-on-write) preserves the flat-cache semantics.
        """
        if n > self._len:
            raise ValueError(f"tail({n}) exceeds buffer length {self._len}")
        bt = self._pool.block_tokens
        start = self._len - n
        spage, soff = divmod(start, bt)
        if n and (self._len - 1) // bt != spage:
            raise ValueError(
                f"tail({n}) spans a page boundary (block_tokens={bt}); "
                "page size must be a multiple of the in-place window"
            )
        bid = self._table.writable_block(spage)
        return self._slab[:, bid, soff : soff + n, :]

    def clone_for(self, table: PageTable) -> "PagedTokenBuffer":
        """Same-length facade over a forked sequence's page table."""
        clone = PagedTokenBuffer(self._pool, table, self._slab, self._flat,
                                 sealed=self._sealed)
        clone._len = self._len
        return clone


class PagedView:
    """Read-only token view over (possibly) non-contiguous pages.

    Consumers that need a dense array call :meth:`gather`;
    ``layers.cached_attention_fwd`` does this via duck typing, so the
    attention math itself is unchanged and trivially bit-identical to
    the contiguous view.  When the pages are consecutive block ids (the
    common no-sharing case, tracked incrementally by the table) the
    gather is one zero-copy slice of the slab's flat alias — the same
    cost as the arena's contiguous view.
    """

    __slots__ = ("_slab", "_flat", "_table", "_len")

    def __init__(self, slab: np.ndarray, flat: np.ndarray, table: PageTable,
                 length: int):
        self._slab = slab
        self._flat = flat
        self._table = table
        self._len = length

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self._slab.shape[0], self._len, self._slab.shape[3])

    def gather(self) -> np.ndarray:
        """Materialize ``(heads, len, d_head)``; zero-copy if contiguous."""
        length = self._len
        if length == 0:
            return _EMPTY
        table = self._table
        if table.contiguous:
            start = table.blocks[0] * self._slab.shape[2]
            out = self._flat[:, start : start + length]
            out.flags.writeable = False    # aliases the slab
            return out
        # Non-contiguous: copy exactly the live tokens, page by page
        # (cheaper than one advanced-index gather, which would also
        # materialize the unused remainder of the last page).
        slab = self._slab
        heads, _, bt, d_head = slab.shape
        blocks = table.blocks
        out = np.empty((heads, length, d_head))
        pos = page = 0
        while pos < length:
            c = min(bt, length - pos)
            out[:, pos : pos + c] = slab[:, blocks[page], :c]
            pos += c
            page += 1
        return out

    def __array__(self, dtype=None, copy=None):
        arr = self.gather()
        return np.asarray(arr, dtype=dtype) if dtype is not None else arr


class PagedKVCache(KVCache):
    """The :class:`~repro.quant.kvcache.KVCache` interface over pages.

    Wraps one buffered cache (FP16/INT4/MANT4) whose storage is paged;
    the quantization math runs entirely in the wrapped class, so the
    paged cache is bit-identical to the flat one per construction.
    ``append_batch`` unwraps to the inner class so the fused batch
    quantization fast path is preserved under paging.
    """

    def __init__(self, inner: _BufferedKVCache, table: PageTable):
        self.inner = inner
        self.table = table

    def prefill(self, k, v):
        self.inner.prefill(k, v)

    def prefill_chunk(self, k, v, final=False):
        self.inner.prefill_chunk(k, v, final=final)

    def append(self, k_t, v_t):
        self.inner.append(k_t, v_t)

    def keys(self):
        return self.inner.keys()

    def values(self):
        return self.inner.values()

    @property
    def seq_len(self) -> int:
        return self.inner.seq_len

    @property
    def n_pages(self) -> int:
        return self.table.n_pages

    @classmethod
    def append_batch(cls, caches, k_batch, v_batch):
        if all(type(c) is cls for c in caches):
            inners = [c.inner for c in caches]
            type(inners[0]).append_batch(inners, k_batch, v_batch)
        else:
            KVCache.append_batch(caches, k_batch, v_batch)

    def __getattr__(self, name):
        # Delegate cache-specific extras (staging_fill, window, ...).
        if name in ("inner", "table"):
            raise AttributeError(name)
        return getattr(self.inner, name)


class PagedLease:
    """One sequence's tenancy in a :class:`BlockPool`.

    ``caches`` holds one :class:`PagedKVCache` per model layer, all
    sharing one :class:`PageTable`.  The prefix-cache protocol is:
    :meth:`match_prefix` *before* the model prefill (attaches shared
    pages and seals them against redundant writes), then
    :meth:`register_prefix` *after* it (publishes the freshly written
    full pages).  :meth:`release` returns the slot when the request
    finishes or is preempted.
    """

    __slots__ = ("pool", "table", "caches", "active", "sealed_tokens",
                 "_matched_pages")

    def __init__(self, pool: BlockPool, table: PageTable):
        self.pool = pool
        self.table = table
        self.caches: list[PagedKVCache] = []
        self.active = True
        self.sealed_tokens = 0
        self._matched_pages = 0

    # ------------------------------------------------------------------
    def match_prefix(self, ids: np.ndarray) -> int:
        """Attach the longest cached run of full prompt pages.

        Returns the number of *tokens* sealed (a multiple of
        ``block_tokens``).  Stops at the first miss: content beyond a
        divergent page depends on the divergent tokens, so later pages
        can never legally match.
        """
        if self.table.blocks or self.sealed_tokens:
            raise RuntimeError("match_prefix must run before any cache data")
        ids = np.asarray(ids, dtype=np.int64)
        self.pool.prefill_pages_total += -(-ids.size // self.pool.block_tokens)
        if not self.pool.enable_prefix_cache:
            return 0
        matched = 0
        for h in self.pool.page_hashes(ids):
            bid = self.pool.lookup(h)
            if bid is None:
                break
            self.table.append_block(bid)
            matched += 1
        self.sealed_tokens = matched * self.pool.block_tokens
        self._matched_pages = matched
        self.pool.prefill_pages_hit += matched
        self.pool.prefix_hit_tokens += self.sealed_tokens
        return self.sealed_tokens

    def register_prefix(self, ids: np.ndarray) -> int:
        """Publish this sequence's freshly written full prompt pages."""
        if not self.pool.enable_prefix_cache:
            return 0
        registered = 0
        for i, h in enumerate(self.pool.page_hashes(ids)):
            if i < self._matched_pages:
                continue               # already shared, donor registered it
            if i >= self.table.n_pages:
                break                  # prefill wrote less than ids (caller bug)
            registered += self.pool.register(h, self.table.blocks[i])
        return registered

    # ------------------------------------------------------------------
    def new_pages_for(self, n_tokens: int) -> int:
        """Pages still missing to back ``n_tokens`` positions."""
        return max(0, -(-n_tokens // self.pool.block_tokens) - self.table.n_pages)

    def fork(self) -> "PagedLease":
        """Clone this sequence, sharing every page copy-on-write.

        The clone gets its own page table (same block ids, ref-count++)
        and per-layer cache objects with copied scalar/accumulator state
        over shared storage — the parallel-sampling/beam primitive.  The
        first divergent write on either side triggers the pool's COW.
        """
        if not self.active:
            raise RuntimeError("cannot fork a released lease")
        table = PageTable(self.pool, blocks=list(self.table.blocks))
        for bid in table.blocks:
            self.pool.incref(bid)
        clone = PagedLease(self.pool, table)
        clone.sealed_tokens = self.sealed_tokens
        clone._matched_pages = self._matched_pages
        for layer, cache in enumerate(self.caches):
            inner = copy.copy(cache.inner)
            for role in ("_k", "_v"):
                buf = getattr(inner, role)
                if buf is not None:
                    setattr(inner, role, buf.clone_for(table))
            # Mutable quantizer state (MANT streaming window stats,
            # staging scales, mid-prefill chunk maxima) must not alias
            # the parent's.
            for attr in ("_acc_sum", "_acc_sqsum", "_acc_max", "_stage_scale",
                         "_chunk_ch_max"):
                val = getattr(inner, attr, None)
                if isinstance(val, np.ndarray):
                    setattr(inner, attr, val.copy())
            inner._buffer_factory = self.pool._buffer_factory(clone, layer)
            clone.caches.append(PagedKVCache(inner, table))
        self.pool.total_leases += 1
        self.pool.forks += 1
        return clone

    def release(self) -> None:
        """Return every page reference; caches must not be used after."""
        if not self.active:
            raise RuntimeError("lease already released")
        self.active = False
        self.table.release()
