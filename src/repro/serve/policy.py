"""Pluggable scheduling policies: queue order, chunk budget, preemption.

The v2 serving API separates *mechanism* (the scheduler's budgets and
the engine's tick assembly) from *policy* (which request goes first).
A :class:`SchedulerPolicy` answers exactly three questions, and the
scheduler/engine delegate every ordering decision to it:

``order_queue(waiting)``
    The admission order of the waiting queue.  Admission stays
    head-of-line over this *ordered* view: if the first request does
    not fit, nothing behind it is considered, so whatever the policy
    ranks first can never be starved by smaller requests behind it.
``pick_chunk_recipients(prefilling, budget)``
    Which half-prefilled sequences receive a chunk this mixed tick, as
    ``[(seq, n_tokens)]`` under the Sarathi-style token ``budget``
    (at most one chunk per sequence per tick).
``choose_preemption_victim(running)``
    Which running sequence a paged engine evicts back to the queue
    when the block pool runs dry.

Three implementations ship:

* :class:`FCFSPolicy` — arrival order everywhere, youngest-first
  preemption.  **Bit-for-bit the pre-policy engine behaviour** and the
  default; the token-level determinism suites (``test_serve_engine`` /
  ``_paging`` / ``_chunked``) run against it unchanged.
* :class:`PriorityPolicy` — strict :attr:`~repro.serve.request.
  GenerationRequest.priority` (higher first), FCFS tiebreak; preemption
  evicts the lowest-priority (youngest among equals) sequence, so a
  high-priority request can displace background work but never the
  other way around.
* :class:`DeadlinePolicy` — earliest-deadline-first over
  ``submit_time + deadline_s``, with starvation-free aging: a
  request's effective deadline is capped at ``submit_time +
  aging_cap_s``, so deadline-less (or far-deadline) requests still
  drain — once a request has waited past the cap, every later arrival
  (whose effective deadline is at least its own submit time) sorts
  behind it.  Preemption is *recompute-aware*, not pure EDF: eviction
  discards a sequence's whole KV cache and replays prompt + emitted
  tokens on re-admission, so among slack-rich candidates the policy
  prefers the one with the fewest tokens already decoded
  (``preempt_token_cost_s`` converts invested tokens into deadline
  credit).

Policies hold no per-request state — they are pure order functions
over the engine's sequence objects (``seq.request`` carries
``priority``/``deadline_s``; ``seq.submit_time``/``seq.arrival_seq``
are stamped at submission).  The scheduler does :meth:`bind
<_OrderingPolicy.bind>` its config's chunk size into the instance,
though, so use one policy instance per engine.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

__all__ = [
    "SchedulerPolicy",
    "FCFSPolicy",
    "PriorityPolicy",
    "DeadlinePolicy",
    "POLICIES",
    "get_policy",
]


def _arrival(seq) -> int:
    """Submission order stamp (engine-set; stubs without one tie at 0)."""
    return getattr(seq, "arrival_seq", 0)


@runtime_checkable
class SchedulerPolicy(Protocol):
    """The three ordering decisions a serving policy owns."""

    name: str

    def order_queue(self, waiting: list) -> list:
        """Admission order over the waiting queue (head-of-line)."""
        ...

    def pick_chunk_recipients(self, prefilling: list, budget: float) -> list:
        """``[(seq, n_tokens)]`` chunk plan for one mixed tick."""
        ...

    def choose_preemption_victim(self, running: list):
        """The running sequence to evict when the block pool runs dry."""
        ...


class _OrderingPolicy:
    """Shared mechanics: policies only define the sort key.

    ``chunk_tokens`` is bound by the scheduler (:meth:`bind`); the
    chunk plan walks the policy-ordered prefilling set head-of-line
    under the token budget — for FCFS this is exactly the pre-policy
    ``Scheduler.plan_chunks`` loop.
    """

    name = "?"

    def __init__(self):
        self.chunk_tokens: int | None = None

    def bind(self, chunk_tokens: int | None) -> None:
        self.chunk_tokens = chunk_tokens

    # -- the sort key; FCFS overrides order_queue to skip sorting ------
    def _key(self, seq):
        raise NotImplementedError

    def order_queue(self, waiting: list) -> list:
        return sorted(waiting, key=self._key)   # stable: FCFS tiebreak

    def pick_chunk_recipients(self, prefilling: list, budget: float) -> list:
        plan = []
        for seq in self.order_queue(prefilling):
            n = min(self.chunk_tokens, seq.cursor.remaining)
            if n > budget:
                break
            plan.append((seq, n))
            budget -= n
        return plan

    def choose_preemption_victim(self, running: list):
        # Highest key = least urgent; youngest among equals, so the
        # evict/recompute churn lands on the request that has invested
        # the least work.
        return max(running, key=lambda s: (self._key(s), _arrival(s)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FCFSPolicy(_OrderingPolicy):
    """Arrival order everywhere — the pre-policy engine, bit for bit."""

    name = "fcfs"

    def _key(self, seq):
        return _arrival(seq)

    def order_queue(self, waiting: list) -> list:
        # The queue is already in arrival order (preempted sequences
        # re-enter at the front, which FCFS must preserve) — returning
        # it unchanged is what makes this policy exactly the old code.
        return list(waiting)

    def choose_preemption_victim(self, running: list):
        return running[-1]    # youngest admitted (old engine behaviour)


class PriorityPolicy(_OrderingPolicy):
    """Strict priority (higher first), FCFS among equals."""

    name = "priority"

    def _key(self, seq):
        return (-seq.request.priority, _arrival(seq))


class DeadlinePolicy(_OrderingPolicy):
    """EDF over ``submit_time + deadline_s`` with aging.

    ``aging_cap_s`` bounds every request's effective deadline at
    ``submit_time + aging_cap_s``: deadline-less requests behave like
    requests due in ``aging_cap_s`` seconds, and no request — however
    lax its SLO — can be overtaken forever by a stream of later,
    tighter-deadline arrivals (starvation freedom: later arrivals'
    effective deadlines grow with their submit times).

    Preemption weighs recompute cost alongside deadline slack: evicting
    a sequence throws away every token it has decoded (the recompute
    path replays them all), so each decoded token earns the sequence
    ``preempt_token_cost_s`` seconds of effective-deadline credit when
    ranking victims.  The victim is the sequence maximizing
    ``effective_deadline - preempt_token_cost_s * len(tokens)`` —
    with the weight at 0 this is exactly latest-deadline-first (pure
    EDF).  Admission order is unaffected.
    """

    name = "deadline"

    def __init__(self, aging_cap_s: float = 30.0,
                 preempt_token_cost_s: float = 0.002):
        super().__init__()
        if aging_cap_s <= 0:
            raise ValueError(f"aging_cap_s must be > 0, got {aging_cap_s}")
        if preempt_token_cost_s < 0:
            raise ValueError(
                f"preempt_token_cost_s must be >= 0, got {preempt_token_cost_s}")
        self.aging_cap_s = aging_cap_s
        self.preempt_token_cost_s = preempt_token_cost_s

    def _key(self, seq):
        deadline = seq.request.deadline_s
        eff = min(deadline if deadline is not None else math.inf, self.aging_cap_s)
        return (seq.submit_time + eff, _arrival(seq))

    def choose_preemption_victim(self, running: list):
        w = self.preempt_token_cost_s
        return max(running, key=lambda s: (
            self._key(s)[0] - w * len(s.tokens), _arrival(s)))


POLICIES: dict[str, type] = {
    FCFSPolicy.name: FCFSPolicy,
    PriorityPolicy.name: PriorityPolicy,
    DeadlinePolicy.name: DeadlinePolicy,
}


def get_policy(policy) -> SchedulerPolicy:
    """Resolve a policy name (or pass a ready instance through)."""
    if isinstance(policy, str):
        try:
            return POLICIES[policy]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler_policy {policy!r}; available: "
                f"{sorted(POLICIES)}"
            ) from None
    return policy
