"""Request/response types of the serving engine.

A :class:`GenerationRequest` is everything one client asks for: prompt,
output budget, sampling policy, optional stop tokens — plus, in the v2
API, its *lifecycle* fields: a scheduling ``priority``, a soft
``deadline_s`` SLO (both consumed by the pluggable
:mod:`~repro.serve.policy` implementations) and ``n`` parallel samples
per prompt (served from one shared prefill via
:meth:`~repro.serve.paging.PagedLease.fork`).  The engine streams
:class:`TokenEvent`s while the request runs and retires it into a
:class:`GenerationResult` carrying one :class:`SampleOutput` per sample
(the classic single-sample fields alias ``samples[0]``).

:meth:`GenerationEngine.submit` returns a :class:`RequestHandle` — a
``str`` subclass equal to the request id, so every pre-v2 call site
keeps working — with ``.stream()`` / ``.result()`` / ``.cancel()``
attached, so callers stop juggling raw ids.

Every request-shape error (``max_tokens < 1``, negative or duplicate
stop tokens, ``n < 1``, ``deadline_s <= 0``, non-1-D or empty prompts)
raises a precise ``ValueError`` at construction — i.e. at submit time —
never mid-tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sampling import GREEDY, SamplingParams

__all__ = [
    "GenerationRequest",
    "PrefillCursor",
    "RequestHandle",
    "SampleOutput",
    "TokenEvent",
    "GenerationResult",
    "FINISH_LENGTH",
    "FINISH_STOP",
    "FINISH_CANCELLED",
    "FINISH_TIMEOUT",
    "FINISH_ERROR",
]

FINISH_LENGTH = "length"       # produced max_tokens tokens
FINISH_STOP = "stop"           # sampled a stop token (not emitted)
FINISH_CANCELLED = "cancelled"  # client cancelled (queued or mid-flight)
FINISH_TIMEOUT = "timeout"     # per-request deadline expired at a tick boundary
FINISH_ERROR = "error"         # quarantined by a fault (forward/alloc/callback)


@dataclass(frozen=True, eq=False)
class GenerationRequest:
    """One client request: prompt tokens plus generation policy.

    ``stop_tokens`` end generation when *sampled*; the stop token
    itself is not emitted.  ``request_id`` must be unique among the
    requests an engine currently knows about.

    ``priority`` orders admission/preemption under the ``"priority"``
    scheduling policy (higher = more urgent; other policies ignore it).
    ``deadline_s`` is a soft SLO in seconds from submission, consumed
    by the ``"deadline"`` (EDF) policy; ``None`` means no deadline.
    ``n`` asks for that many independent samples of the same prompt:
    the prompt is prefilled once and the KV pages are forked
    copy-on-write per extra sample (paged backend; the arena backend
    replays the prefill into a fresh slot), each sample drawing from
    its own RNG stream derived from ``sampling.seed``.

    ``timeout_s`` is a *hard* per-request wall-clock budget from
    submission: the engine finishes the request with
    ``FINISH_TIMEOUT`` (releasing its storage immediately) at the
    first tick boundary past the deadline — unlike the soft
    ``deadline_s`` SLO, which only influences scheduling order.
    ``None`` falls back to ``ServeConfig.request_timeout_s``.

    ``traffic_class`` is a free-form tenant/workload tag the engine
    carries through untouched — onto the submit timeline event, the
    :class:`GenerationResult`, and snapshots — so load harnesses and
    SLO evaluation (:mod:`repro.serve.loadgen` /
    :mod:`repro.serve.slo`) can group per-class without a side table.
    It never influences scheduling; use ``priority``/``deadline_s``
    for that.
    """

    request_id: str
    prompt: np.ndarray
    max_tokens: int = 16
    sampling: SamplingParams = GREEDY
    stop_tokens: frozenset = frozenset()
    priority: int = 0
    deadline_s: float | None = None
    n: int = 1
    timeout_s: float | None = None
    traffic_class: str | None = None

    def __post_init__(self):
        prompt = np.asarray(self.prompt, dtype=np.int64)
        if prompt.ndim != 1:
            raise ValueError(f"prompt must be 1-D, got shape {prompt.shape}")
        if prompt.size == 0:
            raise ValueError("empty prompt rejected: nothing to prefill")
        object.__setattr__(self, "prompt", prompt)
        stops = list(self.stop_tokens)
        if len(stops) != len(set(stops)):
            raise ValueError(
                f"duplicate stop tokens in {sorted(stops)} (each id once)"
            )
        if any(int(t) < 0 for t in stops):
            raise ValueError(
                f"negative stop tokens in {sorted(int(t) for t in stops)} "
                "(token ids are non-negative)"
            )
        object.__setattr__(self, "stop_tokens", frozenset(int(t) for t in stops))
        if self.max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {self.max_tokens}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1 sample, got {self.n}")
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError(
                f"deadline_s must be > 0 seconds (or None), got {self.deadline_s}"
            )
        if self.timeout_s is not None and not self.timeout_s > 0:
            raise ValueError(
                f"timeout_s must be > 0 seconds (or None), got {self.timeout_s}"
            )

    @property
    def token_footprint(self) -> int:
        """Worst-case KV-cache tokens *one sample* of this request needs."""
        return int(self.prompt.size) + self.max_tokens

    @property
    def total_token_footprint(self) -> int:
        """Worst-case KV tokens across all ``n`` samples (arena bound:
        every extra sample replays the prompt into its own slot)."""
        return self.n * self.token_footprint


class PrefillCursor:
    """Progress of one chunked prefill through a request's prompt.

    ``done`` counts prompt tokens already run through the model (and
    written to the KV caches); the engine advances it one scheduled
    chunk at a time.  Preemption must *discard* the cursor — the
    evicted pages make the prefilled prefix unreachable, so resume
    rebuilds a fresh cursor over the full (possibly grown) prompt and
    replays it from token zero.
    """

    __slots__ = ("total", "done")

    def __init__(self, total: int):
        if total < 1:
            raise ValueError(f"prefill cursor needs >= 1 tokens, got {total}")
        self.total = int(total)
        self.done = 0

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def advance(self, n: int) -> None:
        if n < 1 or self.done + n > self.total:
            raise ValueError(
                f"cannot advance cursor by {n} (done {self.done} of {self.total})"
            )
        self.done += n

    def __repr__(self) -> str:
        return f"PrefillCursor({self.done}/{self.total})"


class RequestHandle(str):
    """A request id with its lifecycle attached.

    Subclasses ``str`` (the handle *is* the request id), so existing
    code that treats :meth:`GenerationEngine.submit`'s return value as
    a plain id — dict keys, comparisons, formatting — is unchanged.
    The convenience methods drive the owning engine:

    * :meth:`cancel` — stop the request in whatever state it is in.
    * :meth:`result` — step the engine until this request finishes.
    * :meth:`stream` — iterate this request's :class:`TokenEvent`s,
      stepping the engine as needed (other requests keep being served;
      their events are still delivered to their own callbacks).
    * :meth:`trace` — the live lifecycle timeline
      (:class:`~repro.serve.observe.RequestTrace`) recorded so far,
      ``None`` on engines built with ``ServeConfig(observe=False)``.
    """

    def __new__(cls, request_id: str, engine):
        handle = super().__new__(cls, request_id)
        handle._engine = engine
        return handle

    @property
    def request_id(self) -> str:
        return str(self)

    @property
    def done(self) -> bool:
        """True once a :class:`GenerationResult` is available."""
        return self._engine.has_result(self)

    def cancel(self, sample_index: int | None = None) -> bool:
        """Cancel in any state; True if the request was still live.

        ``sample_index`` cancels just one parallel sample of an ``n>1``
        request — its forked lease is released immediately while the
        siblings keep decoding (see :meth:`GenerationEngine.cancel
        <repro.serve.engine.GenerationEngine.cancel>`).
        """
        return self._engine.cancel(self, sample_index=sample_index)

    def trace(self):
        """This request's :class:`~repro.serve.observe.RequestTrace`
        (lifecycle timeline), or ``None`` when observability is off or
        the result was already popped."""
        return self._engine.request_trace(self)

    def result(self):
        """Drive the engine until this request's result exists."""
        while not self._engine.has_result(self) and self._engine.has_work():
            self._engine.step()
        return self._engine.result(self)

    def stream(self):
        """Yield this request's events, stepping the engine to make them."""
        while not self._engine.has_result(self) and self._engine.has_work():
            for event in self._engine.step():
                if event.request_id == self:
                    yield event


@dataclass(frozen=True)
class TokenEvent:
    """One streamed output token (or a bare finish notification).

    ``token`` is ``None`` only on a finish event that emitted nothing
    new (a sampled stop token, or a cancellation); ``index`` is the
    token's position in the sample's output and ``sample`` which of the
    request's ``n`` parallel samples produced it.  ``finished``/
    ``finish_reason`` are set on each sample's last event.  ``text`` is
    the newly decoded text for this token when the engine was built
    with a ``detokenize`` callback (the *incremental* suffix —
    concatenating a sample's event texts yields its full detokenized
    output, which keeps multi-token glyphs correct), ``None`` otherwise.
    """

    request_id: str
    token: int | None
    index: int
    finished: bool = False
    finish_reason: str | None = None
    text: str | None = None
    sample: int = 0


@dataclass
class SampleOutput:
    """One of a request's ``n`` parallel samples."""

    index: int
    tokens: list[int]
    finish_reason: str
    text: str | None = None     # full detokenized output (engines with
                                # a detokenize callback), else None
    error: str | None = None    # fault description when finish_reason
                                # is FINISH_ERROR (else None)

    @property
    def n_tokens(self) -> int:
        return len(self.tokens)


@dataclass
class GenerationResult:
    """Final state of one served request.

    ``samples`` holds every parallel sample in index order; the classic
    single-sample fields (``tokens``, ``finish_reason``) alias
    ``samples[0]`` — same list object, not a copy — so pre-v2 callers
    read sample 0 exactly as before.

    ``error`` carries the first fault description among the samples
    when any lane finished with ``FINISH_ERROR`` (a raised ``on_token``
    callback, an injected or real forward/allocation failure after the
    retry budget), ``None`` for clean finishes.

    ``trace`` is the request's serialized lifecycle timeline — the
    :meth:`~repro.serve.observe.RequestTrace.to_events` event-dict list
    (submit, admit, prefill chunks, preemptions, retries, faults, first
    token, finish) — when the engine ran with ``ServeConfig.observe``
    on, else ``None``.
    """

    request_id: str
    tokens: list[int]
    finish_reason: str
    queue_latency_s: float      # submit -> admission into the batch
    service_time_s: float       # admission -> finish
    decode_steps: int           # batched decode ticks this request rode
    ttft_s: float = float("nan")      # submit -> first emitted token
    prefill_chunks: int = 0     # chunked mode: forward passes the prompt took
    samples: list[SampleOutput] = field(default=None)
    error: str | None = None    # first fault among the samples, else None
    trace: list | None = None   # lifecycle event dicts (observe=True), else None
    traffic_class: str | None = None  # tenant tag, copied from the request

    def __post_init__(self):
        if self.samples is None:
            # Pre-v2 construction sites pass only the single-sample
            # fields; synthesize the aliasing samples list.
            self.samples = [SampleOutput(0, self.tokens, self.finish_reason)]

    @property
    def n_tokens(self) -> int:
        return len(self.tokens)

    @property
    def n_samples(self) -> int:
        return len(self.samples)
