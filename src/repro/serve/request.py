"""Request/response types of the serving engine.

A :class:`GenerationRequest` is everything one client asks for: prompt,
output budget, sampling policy, optional stop tokens.  The engine
streams :class:`TokenEvent`s while the request runs and retires it into
a :class:`GenerationResult` carrying the finish reason and the
request's queue/service timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sampling import GREEDY, SamplingParams

__all__ = [
    "GenerationRequest",
    "PrefillCursor",
    "TokenEvent",
    "GenerationResult",
    "FINISH_LENGTH",
    "FINISH_STOP",
]

FINISH_LENGTH = "length"   # produced max_tokens tokens
FINISH_STOP = "stop"       # sampled a stop token (not emitted)


@dataclass(frozen=True, eq=False)
class GenerationRequest:
    """One client request: prompt tokens plus generation policy.

    ``stop_tokens`` end generation when *sampled*; the stop token
    itself is not emitted.  ``request_id`` must be unique among the
    requests an engine currently knows about.
    """

    request_id: str
    prompt: np.ndarray
    max_tokens: int = 16
    sampling: SamplingParams = GREEDY
    stop_tokens: frozenset = frozenset()

    def __post_init__(self):
        prompt = np.asarray(self.prompt, dtype=np.int64)
        if prompt.ndim != 1:
            raise ValueError(f"prompt must be 1-D, got shape {prompt.shape}")
        if prompt.size == 0:
            raise ValueError("empty prompt rejected: nothing to prefill")
        object.__setattr__(self, "prompt", prompt)
        object.__setattr__(self, "stop_tokens", frozenset(self.stop_tokens))
        if self.max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1, got {self.max_tokens}")

    @property
    def token_footprint(self) -> int:
        """Worst-case KV-cache tokens this request can occupy."""
        return int(self.prompt.size) + self.max_tokens


class PrefillCursor:
    """Progress of one chunked prefill through a request's prompt.

    ``done`` counts prompt tokens already run through the model (and
    written to the KV caches); the engine advances it one scheduled
    chunk at a time.  Preemption must *discard* the cursor — the
    evicted pages make the prefilled prefix unreachable, so resume
    rebuilds a fresh cursor over the full (possibly grown) prompt and
    replays it from token zero.
    """

    __slots__ = ("total", "done")

    def __init__(self, total: int):
        if total < 1:
            raise ValueError(f"prefill cursor needs >= 1 tokens, got {total}")
        self.total = int(total)
        self.done = 0

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    def advance(self, n: int) -> None:
        if n < 1 or self.done + n > self.total:
            raise ValueError(
                f"cannot advance cursor by {n} (done {self.done} of {self.total})"
            )
        self.done += n

    def __repr__(self) -> str:
        return f"PrefillCursor({self.done}/{self.total})"


@dataclass(frozen=True)
class TokenEvent:
    """One streamed output token (or a bare finish notification).

    ``token`` is ``None`` only on a finish event that emitted nothing
    new (a sampled stop token); ``index`` is the token's position in
    the request's output.  ``finished``/``finish_reason`` are set on
    the request's last event.  ``text`` is the newly decoded text for
    this token when the engine was built with a ``detokenize`` callback
    (the *incremental* suffix — concatenating every event's text yields
    the request's full detokenized output, which keeps multi-token
    glyphs correct), ``None`` otherwise.
    """

    request_id: str
    token: int | None
    index: int
    finished: bool = False
    finish_reason: str | None = None
    text: str | None = None


@dataclass
class GenerationResult:
    """Final state of one served request."""

    request_id: str
    tokens: list[int]
    finish_reason: str
    queue_latency_s: float      # submit -> admission into the batch
    service_time_s: float       # admission -> finish
    decode_steps: int           # batched decode ticks this request rode
    ttft_s: float = float("nan")      # submit -> first emitted token
    prefill_chunks: int = 0     # chunked mode: forward passes the prompt took

    @property
    def n_tokens(self) -> int:
        return len(self.tokens)
