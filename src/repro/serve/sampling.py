"""Serving-API re-export of the shared sampler.

The implementation lives in :mod:`repro.sampling` (below both the
model and serve layers) so eval tasks can use the same sampler without
importing the serving stack; this module keeps the sampler addressable
as part of the serving subsystem's API surface.
"""

from repro.sampling import GREEDY, Sampler, SamplingParams, greedy_sample

__all__ = ["SamplingParams", "Sampler", "greedy_sample", "GREEDY"]
