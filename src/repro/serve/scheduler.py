"""Continuous-batching admission control under a pluggable policy.

The scheduler decides *which* requests share the decode batch; it owns
no model or cache state.  Mechanism (budgets, gauges, head-of-line
admission) lives here; *ordering* is delegated to a
:class:`~repro.serve.policy.SchedulerPolicy`:

* **Policy-ordered, head-of-line.**  The waiting queue is viewed
  through ``policy.order_queue`` and only the ordered head is
  considered for admission; if it does not fit, nothing behind it is
  admitted (no starvation of large requests by small ones).  The
  default :class:`~repro.serve.policy.FCFSPolicy` keeps arrival order
  — bit-for-bit the pre-policy scheduler.
* **Batch-size cap.**  At most ``max_batch_size`` sample lanes decode
  per tick — which is also the cache arena's slot count.  A request
  asking for ``n`` parallel samples reserves ``n`` lanes at admission
  (its forked samples join the running set once the shared prefill
  completes).
* **Token-budget admission.**  If ``max_tokens_in_flight`` is set, the
  sum of worst-case KV footprints (all samples' ``prompt + max_tokens``
  per running request) stays under it, modelling a bounded
  cache-memory pool.
* **Block-aware admission** (paged engines).  When a block gauge is
  bound, the head is admitted iff its *prefill* — not its worst case —
  fits in the pool's actually-free pages; decode-time growth allocates
  on demand and the engine preempts back into this queue (at the
  front, preserving arrival order) on pool exhaustion.  This is what
  lets a paged engine admit far more work than worst-case token budgets
  would.
* **Prefix-aware admission.**  A bound ``prefix_probe`` reports how
  many of the head's leading prompt pages are already backed by live
  shared blocks; only the pages a prefix-cache hit *won't* cover are
  charged against the gauge, so a request repeating a popular system
  prompt admits as soon as its unique tail fits.
* **Chunked-prefill budget** (``prefill_chunk_tokens``).  Prompts run
  through the mixed prefill+decode tick in window-aligned chunks;
  :meth:`Scheduler.plan_chunks` delegates to
  ``policy.pick_chunk_recipients``: at most one chunk per prefilling
  sequence per tick, policy-ordered head-of-line, under the
  Sarathi-style ``max_tokens_per_tick`` token budget (decode rows are
  charged first, leftover budget feeds prefill).
* **Bounded queue.**  ``max_queue_len`` caps the waiting line;
  ``submit`` raises :class:`QueueFullError` instead of growing the
  deque without bound (backpressure — callers retry or shed load).

Admission happens between decode ticks: as requests finish mid-batch,
their slots free up and the next tick's :meth:`Scheduler.admit_one`
pulls queued requests in.

.. deprecated::
    ``repro.serve.scheduler.ServeConfig`` moved to
    :mod:`repro.serve.config`; the name importable here is a
    deprecated alias.
"""

from __future__ import annotations

import warnings
from collections import deque

from repro.serve.config import ServeConfig as _ServeConfig
from repro.serve.policy import FCFSPolicy, SchedulerPolicy, get_policy

# lint: allow[export-consistency] ServeConfig has no static binding here by
# design: the module __getattr__ below serves it as a deprecated alias of
# repro.serve.config.ServeConfig with a DeprecationWarning.
__all__ = ["ServeConfig", "Scheduler", "QueueFullError"]


def __getattr__(name):
    if name == "ServeConfig":
        warnings.warn(
            "repro.serve.scheduler.ServeConfig is deprecated; import it "
            "from repro.serve (or repro.serve.config)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _ServeConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class QueueFullError(RuntimeError):
    """Submission rejected: the scheduler's queue is at ``max_queue_len``."""


def _lanes(seq) -> int:
    """Batch lanes the sequence will occupy once fully admitted."""
    return getattr(seq, "lanes", 1)


def _footprint(seq) -> int:
    """Worst-case KV tokens across the sequence's remaining samples."""
    return getattr(seq, "token_footprint", None) or seq.request.token_footprint


class Scheduler:
    """Waiting queue + running set under the :class:`ServeConfig` policy.

    ``policy`` defaults to the config's ``scheduler_policy`` name; an
    explicit :class:`~repro.serve.policy.SchedulerPolicy` instance
    overrides it (e.g. a :class:`~repro.serve.policy.DeadlinePolicy`
    with a custom aging cap).
    """

    def __init__(self, config: _ServeConfig, policy: SchedulerPolicy | None = None):
        self.config = config
        self.policy = get_policy(
            policy if policy is not None
            else getattr(config, "scheduler_policy", "fcfs")
        )
        bind = getattr(self.policy, "bind", None)
        if bind is not None:
            bind(config.prefill_chunk_tokens)
        self._queue: deque = deque()
        self._running: list = []
        self._block_gauge = None      # () -> free blocks, bound by paged engines
        self._block_tokens = 0
        self._prefix_probe = None     # (ids) -> pages covered by live shared blocks

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def running(self) -> list:
        return list(self._running)

    @property
    def queued(self) -> list:
        """The queued sequences in raw (arrival/requeue) order."""
        return list(self._queue)

    @property
    def waiting(self) -> list:
        """The queued sequences in the policy's admission order."""
        return self.policy.order_queue(list(self._queue))

    @property
    def tokens_in_flight(self) -> int:
        """Worst-case KV tokens the running set may occupy."""
        return sum(_footprint(seq) for seq in self._running)

    @property
    def lanes_in_flight(self) -> int:
        """Batch lanes held by the running set, counting lanes still
        reserved for not-yet-forked parallel samples."""
        return sum(_lanes(seq) for seq in self._running)

    def has_work(self) -> bool:
        return bool(self._queue or self._running)

    # ------------------------------------------------------------------
    def bind_block_gauge(self, gauge, block_tokens: int, prefix_probe=None) -> None:
        """Enable block-aware admission: ``gauge()`` reports free pages.

        Admission then requires the head's prefill (its current token
        count, not its worst case) to fit in actually-free pages.
        ``prefix_probe(ids)``, when given, reports how many leading
        prompt pages a prefix-cache match already backs with *live*
        blocks; those pages cost no free blocks to attach, so they are
        subtracted from the head's demand — the prefix-aware admission
        that lets shared-prompt requests in while a cold prompt of the
        same length would still wait.
        """
        self._block_gauge = gauge
        self._block_tokens = block_tokens
        self._prefix_probe = prefix_probe

    def bind_metrics(self, registry) -> None:
        """Register live queue/running gauges on the engine's
        :class:`~repro.serve.observe.MetricsRegistry` — bound callables,
        so the gauges always read current depths with no update calls
        on the admission path."""
        registry.gauge("requests_queued", "Current waiting-queue depth",
                       fn=lambda: self.queue_depth)
        registry.gauge("requests_running", "Sequences in the running set",
                       fn=lambda: self.n_running)
        registry.gauge("lanes_in_flight",
                       "Batch lanes held by the running set (reserved "
                       "parallel-sample lanes included)",
                       fn=lambda: self.lanes_in_flight)

    # ------------------------------------------------------------------
    def submit(self, seq, force: bool = False) -> None:
        # A request that can never fit the budget must be rejected at
        # submission: queued, it would reach the head and wedge the
        # head-of-line queue forever (admission never skips the head).
        budget = self.config.max_tokens_in_flight
        if budget is not None and _footprint(seq) > budget:
            raise ValueError(
                f"request {seq.request.request_id!r} needs "
                f"{_footprint(seq)} tokens, over the "
                f"max_tokens_in_flight budget of {budget}"
            )
        # ``force`` bypasses the backpressure cap (never the budget):
        # snapshot restore re-queues formerly *running* sequences, which
        # legitimately exceed max_queue_len — they were not queue
        # occupants when the snapshot was taken.
        limit = self.config.max_queue_len
        if not force and limit is not None and len(self._queue) >= limit:
            raise QueueFullError(
                f"request {seq.request.request_id!r} rejected: queue is at "
                f"max_queue_len={limit} (backpressure — retry later)"
            )
        self._queue.append(seq)

    def pop_expired(self, now: float) -> list:
        """Remove and return queued sequences past their hard timeout.

        The engine's tick-boundary timeout sweep: a queued sequence
        whose ``timeout_s`` budget (stamped at submission) has elapsed
        is dropped here before it can waste an admission slot; the
        engine finishes it with ``FINISH_TIMEOUT``.  Sequences without
        a timeout are never touched.
        """
        expired = [
            s for s in self._queue
            if getattr(s, "timeout_s", None) is not None
            and now - s.submit_time >= s.timeout_s
        ]
        for seq in expired:
            self._queue.remove(seq)
        return expired

    def _fits(self, seq) -> bool:
        if self.lanes_in_flight + _lanes(seq) > self.config.max_batch_size:
            return False
        budget = self.config.max_tokens_in_flight
        if budget is not None:
            if self.tokens_in_flight + _footprint(seq) > budget:
                return False
        if self._block_gauge is not None:
            pages = -(-seq.prefill_len // self._block_tokens)
            if self._prefix_probe is not None:
                # Pages already backed by live shared blocks attach for
                # free (ref-count++, no allocation); cached-free matches
                # are *not* subtracted — resurrecting one consumes a
                # block the gauge currently counts as available.
                pages -= self._prefix_probe(seq.prefill_ids())
            # Chunked engines admit before any pages are written, so the
            # gauge alone cannot see earlier admissions' demand (the
            # unchunked path allocates at admission, making it visible).
            # Charge the outstanding prefill pages of already-admitted,
            # not-yet-prefilled sequences, or a burst of admissions
            # over-commits the pool and churns through preemptions.
            pages += sum(
                s.lease.new_pages_for(s.cursor.total)
                for s in self._running
                if getattr(s, "cursor", None) is not None and s.lease is not None
            )
            if pages > self._block_gauge():
                return False
        return True

    def admit_one(self):
        """Admit the policy-ordered head if it fits, else ``None``.

        Head-of-line over the *ordered* queue: only the request the
        policy ranks first is considered.  Paged engines admit one
        request at a time so each admission's page allocations are
        visible to the next fit check.
        """
        if not self._queue:
            return None
        if isinstance(self.policy, FCFSPolicy):
            head = self._queue[0]          # fast path: no ordering pass
        else:
            head = self.policy.order_queue(list(self._queue))[0]
        if self._fits(head):
            self._queue.remove(head)
            self._running.append(head)
            return head
        return None

    def admit(self) -> list:
        """Move queued requests into the running set while they fit."""
        admitted = []
        while (seq := self.admit_one()) is not None:
            admitted.append(seq)
        return admitted

    def add_running(self, seq) -> None:
        """Place an engine-materialized sequence (a forked parallel
        sample) directly into the running set, bypassing the queue —
        its lanes were reserved when its parent was admitted."""
        self._running.append(seq)

    def remove_queued(self, seq) -> bool:
        """Drop a still-queued sequence (cancellation); False if absent."""
        try:
            self._queue.remove(seq)
            return True
        except ValueError:
            return False

    def find_queued(self, request_id: str):
        """The queued sequences belonging to ``request_id`` (0 or 1)."""
        return [s for s in self._queue if s.request.request_id == request_id]

    def plan_chunks(self, prefilling: list, budget: float) -> list:
        """Token-budgeted prefill-chunk plan for one mixed tick.

        ``prefilling`` are the running sequences whose prompts are not
        fully prefilled, in admission order; ``budget`` is the tick's
        remaining token budget after charging the decode rows (``inf``
        when :attr:`ServeConfig.max_tokens_per_tick` is unset).  The
        policy orders them and packs head-of-line: each sequence gets
        at most one chunk of up to ``prefill_chunk_tokens`` per tick
        (the final chunk may be shorter), and when the next chunk does
        not fit the remaining budget nothing behind it is considered,
        so a long prompt can never be starved by later short ones.
        Returns ``[(seq, n_tokens)]``.
        """
        return self.policy.pick_chunk_recipients(prefilling, budget)

    def requeue_front(self, seq) -> None:
        """Preemption path: running → head of the queue (arrival order
        preserved — the FCFS engine preempts youngest-first, so
        successive calls restore the original arrival order ahead of
        everything already queued; sorting policies re-rank the queue
        on every admission anyway)."""
        self._running.remove(seq)
        self._queue.appendleft(seq)

    def release(self, seq) -> None:
        """Drop a sequence from the running set; idempotent.

        Fault, timeout and cancellation paths can race to retire the
        same sequence within one tick (e.g. a timeout sweep finishing a
        sequence a reentrant callback already cancelled), so releasing
        an already-released sequence is a no-op, not an error.
        """
        try:
            self._running.remove(seq)
        except ValueError:
            pass
