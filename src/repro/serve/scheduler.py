"""Continuous-batching admission control (FCFS + token budget).

The scheduler decides *which* requests share the decode batch; it owns
no model or cache state.  Policy:

* **FCFS, head-of-line.**  Requests are admitted strictly in arrival
  order; if the head of the queue does not fit, nothing behind it is
  considered (no starvation of large requests by small ones).
* **Batch-size cap.**  At most ``max_batch_size`` requests decode per
  tick — which is also the cache arena's slot count.
* **Token-budget admission.**  If ``max_tokens_in_flight`` is set, the
  sum of worst-case KV footprints (``prompt + max_tokens`` per running
  request) stays under it, modelling a bounded cache-memory pool.

Admission happens between decode ticks: as requests finish mid-batch,
their slots free up and the next tick's :meth:`Scheduler.admit` pulls
queued requests in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["ServeConfig", "Scheduler"]


@dataclass(frozen=True)
class ServeConfig:
    """Engine/scheduler knobs.

    ``max_tokens_in_flight = None`` disables the token budget (the
    batch-size cap alone bounds concurrency).
    """

    max_batch_size: int = 8
    max_tokens_in_flight: int | None = None
    initial_cache_capacity: int = 64

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_tokens_in_flight is not None and self.max_tokens_in_flight < 1:
            raise ValueError("max_tokens_in_flight must be >= 1 (or None)")


class Scheduler:
    """FCFS queue + running set under the :class:`ServeConfig` policy."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._queue: deque = deque()
        self._running: list = []

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def running(self) -> list:
        return list(self._running)

    @property
    def tokens_in_flight(self) -> int:
        """Worst-case KV tokens the running set may occupy."""
        return sum(seq.request.token_footprint for seq in self._running)

    def has_work(self) -> bool:
        return bool(self._queue or self._running)

    # ------------------------------------------------------------------
    def submit(self, seq) -> None:
        # A request that can never fit the budget must be rejected at
        # submission: queued, it would reach the head and wedge the FCFS
        # queue forever (head-of-line admission never skips it).
        budget = self.config.max_tokens_in_flight
        if budget is not None and seq.request.token_footprint > budget:
            raise ValueError(
                f"request {seq.request.request_id!r} needs "
                f"{seq.request.token_footprint} tokens, over the "
                f"max_tokens_in_flight budget of {budget}"
            )
        self._queue.append(seq)

    def _fits(self, seq) -> bool:
        if len(self._running) >= self.config.max_batch_size:
            return False
        budget = self.config.max_tokens_in_flight
        if budget is not None:
            if self.tokens_in_flight + seq.request.token_footprint > budget:
                return False
        return True

    def admit(self) -> list:
        """Move queued requests into the running set, FCFS, while they fit."""
        admitted = []
        while self._queue and self._fits(self._queue[0]):
            seq = self._queue.popleft()
            self._running.append(seq)
            admitted.append(seq)
        return admitted

    def release(self, seq) -> None:
        self._running.remove(seq)
