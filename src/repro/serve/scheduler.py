"""Continuous-batching admission control (FCFS + token/block budgets).

The scheduler decides *which* requests share the decode batch; it owns
no model or cache state.  Policy:

* **FCFS, head-of-line.**  Requests are admitted strictly in arrival
  order; if the head of the queue does not fit, nothing behind it is
  considered (no starvation of large requests by small ones).
* **Batch-size cap.**  At most ``max_batch_size`` requests decode per
  tick — which is also the cache arena's slot count.
* **Token-budget admission.**  If ``max_tokens_in_flight`` is set, the
  sum of worst-case KV footprints (``prompt + max_tokens`` per running
  request) stays under it, modelling a bounded cache-memory pool.
* **Block-aware admission** (paged engines).  When a block gauge is
  bound, the head is admitted iff its *prefill* — not its worst case —
  fits in the pool's actually-free pages; decode-time growth allocates
  on demand and the engine preempts back into this queue (at the
  front, preserving FCFS) on pool exhaustion.  This is what lets a
  paged engine admit far more work than worst-case token budgets would.
* **Bounded queue.**  ``max_queue_len`` caps the waiting line;
  ``submit`` raises :class:`QueueFullError` instead of growing the
  deque without bound (backpressure — callers retry or shed load).

Admission happens between decode ticks: as requests finish mid-batch,
their slots free up and the next tick's :meth:`Scheduler.admit_one`
pulls queued requests in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["ServeConfig", "Scheduler", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Submission rejected: the scheduler's queue is at ``max_queue_len``."""


@dataclass(frozen=True)
class ServeConfig:
    """Engine/scheduler knobs.

    ``max_tokens_in_flight = None`` disables the token budget (the
    batch-size cap alone bounds concurrency).  ``max_queue_len = None``
    leaves the waiting queue unbounded.

    Paging (``paged=True`` — see :mod:`repro.serve.paging`):

    ``block_tokens``
        Page size in tokens.  Must be a multiple of the cache's
        temporal quantization group (the MANT V window) so per-page
        quantization is bit-identical to the flat caches.
    ``num_blocks``
        Pool size.  ``None`` sizes it for the worst case
        (``ceil(max_seq / block_tokens) × max_batch_size``); smaller
        values enable real admission control, on-demand growth and
        preemption under memory pressure.
    ``enable_prefix_cache``
        Deduplicate identical full prompt-prefix pages across requests
        (hash-chained, copy-on-write protected).
    """

    max_batch_size: int = 8
    max_tokens_in_flight: int | None = None
    initial_cache_capacity: int = 64
    max_queue_len: int | None = None
    paged: bool = False
    block_tokens: int = 32
    num_blocks: int | None = None
    enable_prefix_cache: bool = True

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_tokens_in_flight is not None and self.max_tokens_in_flight < 1:
            raise ValueError("max_tokens_in_flight must be >= 1 (or None)")
        if self.initial_cache_capacity < 1:
            raise ValueError("initial_cache_capacity must be >= 1")
        if self.max_queue_len is not None and self.max_queue_len < 1:
            raise ValueError("max_queue_len must be >= 1 (or None)")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if self.num_blocks is not None and self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1 (or None)")


class Scheduler:
    """FCFS queue + running set under the :class:`ServeConfig` policy."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._queue: deque = deque()
        self._running: list = []
        self._block_gauge = None      # () -> free blocks, bound by paged engines
        self._block_tokens = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def running(self) -> list:
        return list(self._running)

    @property
    def tokens_in_flight(self) -> int:
        """Worst-case KV tokens the running set may occupy."""
        return sum(seq.request.token_footprint for seq in self._running)

    def has_work(self) -> bool:
        return bool(self._queue or self._running)

    # ------------------------------------------------------------------
    def bind_block_gauge(self, gauge, block_tokens: int) -> None:
        """Enable block-aware admission: ``gauge()`` reports free pages.

        Admission then requires the head's prefill (its current token
        count, not its worst case) to fit in actually-free pages.
        """
        self._block_gauge = gauge
        self._block_tokens = block_tokens

    # ------------------------------------------------------------------
    def submit(self, seq) -> None:
        # A request that can never fit the budget must be rejected at
        # submission: queued, it would reach the head and wedge the FCFS
        # queue forever (head-of-line admission never skips it).
        budget = self.config.max_tokens_in_flight
        if budget is not None and seq.request.token_footprint > budget:
            raise ValueError(
                f"request {seq.request.request_id!r} needs "
                f"{seq.request.token_footprint} tokens, over the "
                f"max_tokens_in_flight budget of {budget}"
            )
        limit = self.config.max_queue_len
        if limit is not None and len(self._queue) >= limit:
            raise QueueFullError(
                f"request {seq.request.request_id!r} rejected: queue is at "
                f"max_queue_len={limit} (backpressure — retry later)"
            )
        self._queue.append(seq)

    def _fits(self, seq) -> bool:
        if len(self._running) >= self.config.max_batch_size:
            return False
        budget = self.config.max_tokens_in_flight
        if budget is not None:
            if self.tokens_in_flight + seq.request.token_footprint > budget:
                return False
        if self._block_gauge is not None:
            pages = -(-seq.prefill_len // self._block_tokens)
            if pages > self._block_gauge():
                return False
        return True

    def admit_one(self):
        """Admit the queue head if it fits, else ``None`` (FCFS).

        Paged engines admit one request at a time so each admission's
        page allocations are visible to the next fit check.
        """
        if self._queue and self._fits(self._queue[0]):
            seq = self._queue.popleft()
            self._running.append(seq)
            return seq
        return None

    def admit(self) -> list:
        """Move queued requests into the running set, FCFS, while they fit."""
        admitted = []
        while (seq := self.admit_one()) is not None:
            admitted.append(seq)
        return admitted

    def requeue_front(self, seq) -> None:
        """Preemption path: running → head of the queue (FCFS preserved —
        engines preempt youngest-first, so successive calls restore the
        original arrival order ahead of everything already queued)."""
        self._running.remove(seq)
        self._queue.appendleft(seq)

    def release(self, seq) -> None:
        self._running.remove(seq)
