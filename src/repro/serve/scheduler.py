"""Continuous-batching admission control (FCFS + token/block budgets).

The scheduler decides *which* requests share the decode batch; it owns
no model or cache state.  Policy:

* **FCFS, head-of-line.**  Requests are admitted strictly in arrival
  order; if the head of the queue does not fit, nothing behind it is
  considered (no starvation of large requests by small ones).
* **Batch-size cap.**  At most ``max_batch_size`` requests decode per
  tick — which is also the cache arena's slot count.
* **Token-budget admission.**  If ``max_tokens_in_flight`` is set, the
  sum of worst-case KV footprints (``prompt + max_tokens`` per running
  request) stays under it, modelling a bounded cache-memory pool.
* **Block-aware admission** (paged engines).  When a block gauge is
  bound, the head is admitted iff its *prefill* — not its worst case —
  fits in the pool's actually-free pages; decode-time growth allocates
  on demand and the engine preempts back into this queue (at the
  front, preserving FCFS) on pool exhaustion.  This is what lets a
  paged engine admit far more work than worst-case token budgets would.
* **Prefix-aware admission.**  A bound ``prefix_probe`` reports how
  many of the head's leading prompt pages are already backed by live
  shared blocks; only the pages a prefix-cache hit *won't* cover are
  charged against the gauge, so a request repeating a popular system
  prompt admits as soon as its unique tail fits.
* **Chunked-prefill budget** (``prefill_chunk_tokens``).  Prompts run
  through the mixed prefill+decode tick in window-aligned chunks;
  :meth:`Scheduler.plan_chunks` hands the engine at most one chunk per
  prefilling sequence per tick, FCFS, under the Sarathi-style
  ``max_tokens_per_tick`` token budget (decode rows are charged first,
  leftover budget feeds prefill), head-of-line so a starved long
  prompt is never overtaken by later arrivals.
* **Bounded queue.**  ``max_queue_len`` caps the waiting line;
  ``submit`` raises :class:`QueueFullError` instead of growing the
  deque without bound (backpressure — callers retry or shed load).

Admission happens between decode ticks: as requests finish mid-batch,
their slots free up and the next tick's :meth:`Scheduler.admit_one`
pulls queued requests in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["ServeConfig", "Scheduler", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Submission rejected: the scheduler's queue is at ``max_queue_len``."""


@dataclass(frozen=True)
class ServeConfig:
    """Engine/scheduler knobs.

    ``max_tokens_in_flight = None`` disables the token budget (the
    batch-size cap alone bounds concurrency).  ``max_queue_len = None``
    leaves the waiting queue unbounded.

    Paging (``paged=True`` — see :mod:`repro.serve.paging`):

    ``block_tokens``
        Page size in tokens.  Must be a multiple of the cache's
        temporal quantization group (the MANT V window) so per-page
        quantization is bit-identical to the flat caches.
    ``num_blocks``
        Pool size.  ``None`` sizes it for the worst case
        (``ceil(max_seq / block_tokens) × max_batch_size``); smaller
        values enable real admission control, on-demand growth and
        preemption under memory pressure.
    ``enable_prefix_cache``
        Deduplicate identical full prompt-prefix pages across requests
        (hash-chained, copy-on-write protected).

    Chunked prefill (the mixed prefill+decode tick):

    ``prefill_chunk_tokens``
        Split each admitted prompt into chunks of this many tokens and
        run them through the batched mixed tick alongside the decode
        rows, instead of prefilling each prompt whole and alone at
        admission.  Must be a multiple of the cache's temporal
        quantization window (the MANT V window; checked at engine
        construction) — and of ``block_tokens`` when paged — so chunk
        boundaries always land on quantization-group boundaries and
        chunked output stays token-identical to unchunked.  ``None``
        (default) keeps the whole-prompt prefill path.
    ``max_tokens_per_tick``
        Sarathi-style per-tick token budget for the mixed tick: the
        decode rows (one token each) are charged first, and prefill
        chunks are only scheduled into what remains, keeping every
        tick's forward-pass cost — and therefore decode inter-token
        latency — bounded regardless of prompt length.  Requires
        ``prefill_chunk_tokens`` and must be at least as large, so an
        all-prefill tick always makes progress.  ``None`` leaves tick
        size bounded only by one chunk per prefilling sequence.
    """

    max_batch_size: int = 8
    max_tokens_in_flight: int | None = None
    initial_cache_capacity: int = 64
    max_queue_len: int | None = None
    paged: bool = False
    block_tokens: int = 32
    num_blocks: int | None = None
    enable_prefix_cache: bool = True
    prefill_chunk_tokens: int | None = None
    max_tokens_per_tick: int | None = None

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_tokens_in_flight is not None and self.max_tokens_in_flight < 1:
            raise ValueError("max_tokens_in_flight must be >= 1 (or None)")
        if self.initial_cache_capacity < 1:
            raise ValueError("initial_cache_capacity must be >= 1")
        if self.max_queue_len is not None and self.max_queue_len < 1:
            raise ValueError("max_queue_len must be >= 1 (or None)")
        if self.block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        if self.num_blocks is not None and self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1 (or None)")
        if self.prefill_chunk_tokens is not None:
            if self.prefill_chunk_tokens < 1:
                raise ValueError("prefill_chunk_tokens must be >= 1 (or None)")
            if self.paged and self.prefill_chunk_tokens % self.block_tokens:
                raise ValueError(
                    f"prefill_chunk_tokens={self.prefill_chunk_tokens} must be "
                    f"a multiple of block_tokens ({self.block_tokens}) so every "
                    "non-final chunk fills whole pages and never straddles a "
                    "temporal quantization group"
                )
        if self.max_tokens_per_tick is not None:
            if self.prefill_chunk_tokens is None:
                raise ValueError(
                    "max_tokens_per_tick requires prefill_chunk_tokens (the "
                    "budget throttles the chunked-prefill mixed tick)"
                )
            if self.max_tokens_per_tick < self.prefill_chunk_tokens:
                raise ValueError(
                    f"max_tokens_per_tick ({self.max_tokens_per_tick}) must be "
                    f">= prefill_chunk_tokens ({self.prefill_chunk_tokens}) so "
                    "a tick with no decode rows still fits one chunk"
                )


class Scheduler:
    """FCFS queue + running set under the :class:`ServeConfig` policy."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self._queue: deque = deque()
        self._running: list = []
        self._block_gauge = None      # () -> free blocks, bound by paged engines
        self._block_tokens = 0
        self._prefix_probe = None     # (ids) -> pages covered by live shared blocks

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def n_running(self) -> int:
        return len(self._running)

    @property
    def running(self) -> list:
        return list(self._running)

    @property
    def tokens_in_flight(self) -> int:
        """Worst-case KV tokens the running set may occupy."""
        return sum(seq.request.token_footprint for seq in self._running)

    def has_work(self) -> bool:
        return bool(self._queue or self._running)

    # ------------------------------------------------------------------
    def bind_block_gauge(self, gauge, block_tokens: int, prefix_probe=None) -> None:
        """Enable block-aware admission: ``gauge()`` reports free pages.

        Admission then requires the head's prefill (its current token
        count, not its worst case) to fit in actually-free pages.
        ``prefix_probe(ids)``, when given, reports how many leading
        prompt pages a prefix-cache match already backs with *live*
        blocks; those pages cost no free blocks to attach, so they are
        subtracted from the head's demand — the prefix-aware admission
        that lets shared-prompt requests in while a cold prompt of the
        same length would still wait.
        """
        self._block_gauge = gauge
        self._block_tokens = block_tokens
        self._prefix_probe = prefix_probe

    # ------------------------------------------------------------------
    def submit(self, seq) -> None:
        # A request that can never fit the budget must be rejected at
        # submission: queued, it would reach the head and wedge the FCFS
        # queue forever (head-of-line admission never skips it).
        budget = self.config.max_tokens_in_flight
        if budget is not None and seq.request.token_footprint > budget:
            raise ValueError(
                f"request {seq.request.request_id!r} needs "
                f"{seq.request.token_footprint} tokens, over the "
                f"max_tokens_in_flight budget of {budget}"
            )
        limit = self.config.max_queue_len
        if limit is not None and len(self._queue) >= limit:
            raise QueueFullError(
                f"request {seq.request.request_id!r} rejected: queue is at "
                f"max_queue_len={limit} (backpressure — retry later)"
            )
        self._queue.append(seq)

    def _fits(self, seq) -> bool:
        if len(self._running) >= self.config.max_batch_size:
            return False
        budget = self.config.max_tokens_in_flight
        if budget is not None:
            if self.tokens_in_flight + seq.request.token_footprint > budget:
                return False
        if self._block_gauge is not None:
            pages = -(-seq.prefill_len // self._block_tokens)
            if self._prefix_probe is not None:
                # Pages already backed by live shared blocks attach for
                # free (ref-count++, no allocation); cached-free matches
                # are *not* subtracted — resurrecting one consumes a
                # block the gauge currently counts as available.
                pages -= self._prefix_probe(seq.prefill_ids())
            # Chunked engines admit before any pages are written, so the
            # gauge alone cannot see earlier admissions' demand (the
            # unchunked path allocates at admission, making it visible).
            # Charge the outstanding prefill pages of already-admitted,
            # not-yet-prefilled sequences, or a burst of admissions
            # over-commits the pool and churns through preemptions.
            pages += sum(
                s.lease.new_pages_for(s.cursor.total)
                for s in self._running
                if getattr(s, "cursor", None) is not None and s.lease is not None
            )
            if pages > self._block_gauge():
                return False
        return True

    def admit_one(self):
        """Admit the queue head if it fits, else ``None`` (FCFS).

        Paged engines admit one request at a time so each admission's
        page allocations are visible to the next fit check.
        """
        if self._queue and self._fits(self._queue[0]):
            seq = self._queue.popleft()
            self._running.append(seq)
            return seq
        return None

    def admit(self) -> list:
        """Move queued requests into the running set, FCFS, while they fit."""
        admitted = []
        while (seq := self.admit_one()) is not None:
            admitted.append(seq)
        return admitted

    def plan_chunks(self, prefilling: list, budget: float) -> list:
        """Token-budgeted prefill-chunk plan for one mixed tick.

        ``prefilling`` are the running sequences whose prompts are not
        fully prefilled, in admission order; ``budget`` is the tick's
        remaining token budget after charging the decode rows (``inf``
        when :attr:`ServeConfig.max_tokens_per_tick` is unset).  Each
        sequence gets at most one chunk of up to
        ``prefill_chunk_tokens`` per tick (the final chunk may be
        shorter), FCFS and head-of-line: when the next chunk does not
        fit the remaining budget, nothing behind it is considered, so a
        long prompt can never be starved by later short ones.  Returns
        ``[(seq, n_tokens)]``.
        """
        chunk = self.config.prefill_chunk_tokens
        plan = []
        for seq in prefilling:
            n = min(chunk, seq.cursor.remaining)
            if n > budget:
                break
            plan.append((seq, n))
            budget -= n
        return plan

    def requeue_front(self, seq) -> None:
        """Preemption path: running → head of the queue (FCFS preserved —
        engines preempt youngest-first, so successive calls restore the
        original arrival order ahead of everything already queued)."""
        self._running.remove(seq)
        self._queue.appendleft(seq)

    def release(self, seq) -> None:
        self._running.remove(seq)
