"""Declarative SLOs over load-harness runs: specs, scorecards, knees.

The :mod:`repro.serve.loadgen` harness produces one
:class:`~repro.serve.loadgen.RequestRecord` per request; this module
is the *judgment* layer over those records:

* :class:`ClassSLO` / :class:`SLOSpec` — a declarative objective set
  per traffic class: TTFT p50/p99 ceilings, inter-token p99 ceiling,
  deadline hit-rate floor, an error budget (the tolerated fraction of
  abnormal finishes — rejections, timeouts, faults), and the
  ``attainment_target`` (the fraction of requests that must be
  individually SLO-compliant for the class to pass).  JSON
  round-trippable, so specs live next to workload traces.
* :func:`request_compliant` — the per-request rule: a request is
  compliant iff it finished normally, met its TTFT and inter-token
  ceilings, and hit its deadline (when one was set).  **Goodput** is
  tokens from compliant requests only, per second of harness run — the
  honest throughput number (a saturated engine can post huge raw
  tokens/s while every request blows its TTFT).
* :func:`evaluate` — records + spec → :class:`SLOReport`: per-class
  measured-vs-target objective rows, attainment, goodput, error rate,
  and an overall verdict; renders as a terminal scorecard
  (:meth:`SLOReport.render`) and serializes (:meth:`SLOReport.to_dict`)
  for CI artifacts.
* :class:`SLOMonitor` — the *live* half, fed by the harness while the
  run is in flight: per-class labeled
  :class:`~repro.serve.observe.MetricsRegistry` instruments (TTFT /
  inter-token histograms, compliant/total counters) that export
  per-class Prometheus series, merge into a fleet view
  (:meth:`SLOMonitor.merged` — :meth:`MetricsRegistry.merge` with the
  ``class`` label telling streams apart), and a sampled attainment
  time series for burn-rate-style inspection.
* :func:`find_knee` — the saturation probe: binary-search the highest
  arrival rate at which a workload still passes its spec.  Takes a
  ``run_at_rate(rate) -> SLOReport`` callable (the benchmark wires a
  harness run in), brackets at ``[rate_lo, rate_hi]``, and returns the
  knee plus the whole probe curve — the per-cache-type saturation
  evidence the M-ANT serving claims rest on.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.serve.observe import MetricsRegistry

__all__ = [
    "ClassSLO",
    "SLOSpec",
    "SLOReport",
    "ClassReport",
    "SLOMonitor",
    "request_compliant",
    "evaluate",
    "attainment_gap",
    "find_knee",
]


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassSLO:
    """Objectives for one traffic class; ``None`` disables a check.

    Distribution objectives (``ttft_p50_s`` / ``ttft_p99_s`` /
    ``inter_token_p99_s``) are ceilings on the class's *measured*
    percentiles.  ``deadline_hit_rate`` is a floor on the fraction of
    deadline-carrying requests that finished inside their deadline.
    ``error_budget`` is a ceiling on the abnormal-finish fraction
    (rejected / timeout / error / cancelled).  ``attainment_target``
    is the floor on the fraction of requests that are *individually*
    compliant (see :func:`request_compliant`).
    """

    ttft_p50_s: float | None = None
    ttft_p99_s: float | None = None
    inter_token_p99_s: float | None = None
    deadline_hit_rate: float | None = None
    error_budget: float = 0.0
    attainment_target: float = 0.95

    def __post_init__(self):
        for name in ("ttft_p50_s", "ttft_p99_s", "inter_token_p99_s"):
            v = getattr(self, name)
            if v is not None and not v > 0:
                raise ValueError(f"{name} must be > 0 (or None), got {v}")
        if self.deadline_hit_rate is not None and not (
                0.0 <= self.deadline_hit_rate <= 1.0):
            raise ValueError(
                f"deadline_hit_rate must be in [0, 1], got {self.deadline_hit_rate}"
            )
        if not 0.0 <= self.error_budget <= 1.0:
            raise ValueError(
                f"error_budget must be in [0, 1], got {self.error_budget}"
            )
        if not 0.0 < self.attainment_target <= 1.0:
            raise ValueError(
                f"attainment_target must be in (0, 1], got {self.attainment_target}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ClassSLO":
        return cls(**d)


@dataclass(frozen=True)
class SLOSpec:
    """Per-class objectives plus an optional default for unnamed classes."""

    classes: dict = field(default_factory=dict)   # name -> ClassSLO
    default: ClassSLO | None = None

    def __post_init__(self):
        object.__setattr__(self, "classes", dict(self.classes))
        for name, slo in self.classes.items():
            if not isinstance(slo, ClassSLO):
                raise TypeError(
                    f"class {name!r}: expected ClassSLO, got {type(slo).__name__}"
                )

    def for_class(self, name: str) -> ClassSLO | None:
        """The objectives governing ``name`` (``None`` = ungoverned)."""
        return self.classes.get(name, self.default)

    def to_dict(self) -> dict:
        return {
            "classes": {n: s.to_dict() for n, s in sorted(self.classes.items())},
            "default": self.default.to_dict() if self.default else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SLOSpec":
        return cls(
            classes={n: ClassSLO.from_dict(s)
                     for n, s in d.get("classes", {}).items()},
            default=(ClassSLO.from_dict(d["default"])
                     if d.get("default") else None),
        )


# ----------------------------------------------------------------------
# Per-request compliance
# ----------------------------------------------------------------------
def request_compliant(rec, slo: ClassSLO | None) -> bool:
    """One request's verdict against its class objectives.

    Abnormal finishes are never compliant.  The per-request TTFT check
    uses the class's ``ttft_p99_s`` ceiling (the p50 objective is a
    distribution property, meaningless per request), the inter-token
    check the request's *worst* gap.  A missed deadline disqualifies
    regardless of the class's aggregate ``deadline_hit_rate`` floor.
    With ``slo=None`` (ungoverned class) any normal finish complies.
    """
    if not rec.completed:
        return False
    if slo is None:
        return True
    if slo.ttft_p99_s is not None:
        if math.isnan(rec.ttft_s) or rec.ttft_s > slo.ttft_p99_s:
            return False
    if slo.inter_token_p99_s is not None and rec.max_itl_s > slo.inter_token_p99_s:
        return False
    if rec.deadline_hit is False:
        return False
    return True


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclass
class ClassReport:
    """One class's scorecard: objective rows + attainment + goodput."""

    name: str
    n_requests: int
    n_completed: int
    n_compliant: int
    attainment: float          # compliant / total
    attainment_target: float
    goodput_tokens_per_s: float
    error_rate: float
    objectives: list           # rows: {"objective", "target", "measured", "ok"}
    ok: bool

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["objectives"] = [dict(o) for o in self.objectives]
        return d


@dataclass
class SLOReport:
    """Scorecard of one harness run against one :class:`SLOSpec`."""

    classes: dict              # name -> ClassReport
    duration_s: float
    offered_rate: float
    attainment: float          # all classes pooled
    goodput_tokens_per_s: float
    ok: bool                   # every governed class passed

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "offered_rate": self.offered_rate,
            "attainment": self.attainment,
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "ok": self.ok,
            "classes": {n: c.to_dict() for n, c in sorted(self.classes.items())},
        }

    def render(self) -> str:
        """Terminal scorecard, one block per class."""
        lines = [
            f"SLO scorecard — {self.duration_s:.2f}s run at "
            f"{self.offered_rate:.1f} req/s offered: "
            f"{'PASS' if self.ok else 'FAIL'}",
            f"  overall attainment {self.attainment:6.1%}   "
            f"goodput {self.goodput_tokens_per_s:8.1f} tok/s",
        ]
        for name, cr in sorted(self.classes.items()):
            mark = "PASS" if cr.ok else "FAIL"
            lines.append(
                f"  [{mark}] {name}: {cr.n_compliant}/{cr.n_requests} compliant "
                f"({cr.attainment:.1%}, target {cr.attainment_target:.0%}), "
                f"goodput {cr.goodput_tokens_per_s:.1f} tok/s, "
                f"errors {cr.error_rate:.1%}"
            )
            for o in cr.objectives:
                omark = "ok " if o["ok"] else "MISS"
                measured = o["measured"]
                m_str = ("n/a" if measured is None or
                         (isinstance(measured, float) and math.isnan(measured))
                         else f"{measured:.4g}")
                lines.append(
                    f"         {omark} {o['objective']:<20} "
                    f"measured {m_str:>10} vs target {o['target']:.4g}"
                )
        return "\n".join(lines)


def _percentile(values, q: float) -> float:
    return float(np.percentile(values, q)) if values else float("nan")


def evaluate(result, spec: SLOSpec) -> SLOReport:
    """Judge a :class:`~repro.serve.loadgen.HarnessResult` against ``spec``.

    ``result`` only needs ``records`` (each a
    :class:`~repro.serve.loadgen.RequestRecord`-shaped object),
    ``duration_s`` and ``offered_rate`` — the evaluation is a pure
    function of those, so replaying a virtual-clock trace yields a
    bit-identical report.
    """
    by_class: dict[str, list] = {}
    for rec in result.records:
        by_class.setdefault(rec.traffic_class, []).append(rec)
    duration = max(result.duration_s, 1e-12)

    reports: dict[str, ClassReport] = {}
    total_compliant = 0
    total_requests = 0
    total_goodput_tokens = 0
    all_ok = True
    for name, recs in by_class.items():
        slo = spec.for_class(name)
        completed = [r for r in recs if r.completed]
        ttfts = [r.ttft_s for r in completed if not math.isnan(r.ttft_s)]
        gaps = [g for r in completed for g in r.itl_s]
        deadlined = [r for r in recs if r.deadline_hit is not None]
        compliant = [r for r in recs if request_compliant(r, slo)]
        goodput_tokens = sum(r.tokens for r in compliant)
        error_rate = 1.0 - (len(completed) / len(recs)) if recs else 0.0
        attainment = len(compliant) / len(recs) if recs else 1.0

        objectives = []

        def check(obj: str, target, measured, ok: bool) -> None:
            objectives.append({"objective": obj, "target": target,
                               "measured": measured, "ok": bool(ok)})

        if slo is not None:
            if slo.ttft_p50_s is not None:
                m = _percentile(ttfts, 50)
                check("ttft_p50_s", slo.ttft_p50_s, m,
                      not math.isnan(m) and m <= slo.ttft_p50_s)
            if slo.ttft_p99_s is not None:
                m = _percentile(ttfts, 99)
                check("ttft_p99_s", slo.ttft_p99_s, m,
                      not math.isnan(m) and m <= slo.ttft_p99_s)
            if slo.inter_token_p99_s is not None:
                m = _percentile(gaps, 99)
                # Single-token outputs have no gaps: vacuously met.
                check("inter_token_p99_s", slo.inter_token_p99_s, m,
                      math.isnan(m) or m <= slo.inter_token_p99_s)
            if slo.deadline_hit_rate is not None:
                m = (sum(1 for r in deadlined if r.deadline_hit)
                     / len(deadlined)) if deadlined else 1.0
                check("deadline_hit_rate", slo.deadline_hit_rate, m,
                      m >= slo.deadline_hit_rate)
            check("error_budget", slo.error_budget, error_rate,
                  error_rate <= slo.error_budget)

        target = slo.attainment_target if slo is not None else 0.0
        ok = all(o["ok"] for o in objectives) and attainment >= target
        if slo is not None and not ok:
            all_ok = False
        reports[name] = ClassReport(
            name=name,
            n_requests=len(recs),
            n_completed=len(completed),
            n_compliant=len(compliant),
            attainment=attainment,
            attainment_target=target,
            goodput_tokens_per_s=goodput_tokens / duration,
            error_rate=error_rate,
            objectives=objectives,
            ok=ok,
        )
        total_compliant += len(compliant)
        total_requests += len(recs)
        total_goodput_tokens += goodput_tokens

    return SLOReport(
        classes=reports,
        duration_s=result.duration_s,
        offered_rate=result.offered_rate,
        attainment=(total_compliant / total_requests) if total_requests else 1.0,
        goodput_tokens_per_s=total_goodput_tokens / duration,
        ok=all_ok,
    )


def attainment_gap(baseline: SLOReport, degraded: SLOReport) -> dict:
    """How much SLO attainment a disturbance cost, class by class.

    The recovery scorecard behind the fleet benchmarks: ``baseline``
    is the undisturbed run, ``degraded`` the same workload under a
    fault (replica crash, chaos script).  Gaps are ``baseline -
    degraded`` attainment (positive = the disturbance hurt); the
    ``overall`` gap pools every class, and ``goodput_ratio`` is the
    degraded run's goodput as a fraction of baseline's (1.0 when the
    baseline moved no tokens).
    """
    per_class = {
        name: baseline.classes[name].attainment - cr.attainment
        for name, cr in degraded.classes.items()
        if name in baseline.classes
    }
    base_gp = baseline.goodput_tokens_per_s
    return {
        "overall": baseline.attainment - degraded.attainment,
        "classes": per_class,
        "goodput_ratio": (degraded.goodput_tokens_per_s / base_gp
                          if base_gp > 0 else 1.0),
    }


# ----------------------------------------------------------------------
# Live monitoring
# ----------------------------------------------------------------------
class SLOMonitor:
    """Live per-class SLO instruments, fed by the harness as it runs.

    One labeled :class:`~repro.serve.observe.MetricsRegistry` per
    traffic class (``labels={"class": name}`` — exactly the replica
    pattern the fleet merge was built for): counters for
    total/compliant/abnormal requests and compliant tokens, histograms
    for TTFT and worst-gap-per-request.  :meth:`record` is called per
    finished request, :meth:`sample` on the harness's poll cadence —
    the resulting ``samples`` series is attainment-over-time, the
    burn-rate view.  :meth:`merged` folds every class into one
    registry; :meth:`to_prometheus` concatenates the per-class
    expositions (distinct ``class`` label values keep series apart).
    """

    def __init__(self, spec: SLOSpec, namespace: str = "repro_slo"):
        self.spec = spec
        self.namespace = namespace
        self._regs: dict[str, MetricsRegistry] = {}
        self._inst: dict[str, dict] = {}
        self.samples: list[dict] = []

    def _instruments(self, name: str) -> dict:
        inst = self._inst.get(name)
        if inst is None:
            reg = MetricsRegistry(namespace=self.namespace,
                                  labels={"class": name})
            inst = {
                "registry": reg,
                "total": reg.counter(
                    "requests_total", "Requests of this class, any outcome"),
                "compliant": reg.counter(
                    "requests_compliant", "Individually SLO-compliant requests"),
                "abnormal": reg.counter(
                    "requests_abnormal",
                    "Rejected / timed-out / faulted / cancelled requests"),
                "tokens": reg.counter(
                    "tokens_compliant", "Tokens from compliant requests "
                    "(goodput numerator)"),
                "ttft": reg.histogram(
                    "slo_ttft_seconds", "Submit -> first token, per request"),
                "itl_max": reg.histogram(
                    "slo_max_inter_token_seconds",
                    "Worst inter-token gap, per request"),
            }
            self._regs[name] = reg
            self._inst[name] = inst
        return inst

    # -- feed ----------------------------------------------------------
    def record(self, rec) -> None:
        """Fold one finished :class:`~repro.serve.loadgen.RequestRecord`."""
        inst = self._instruments(rec.traffic_class)
        inst["total"].inc()
        if not rec.completed:
            inst["abnormal"].inc()
        if not math.isnan(rec.ttft_s):
            inst["ttft"].observe(rec.ttft_s)
        if rec.itl_s:
            inst["itl_max"].observe(rec.max_itl_s)
        if request_compliant(rec, self.spec.for_class(rec.traffic_class)):
            inst["compliant"].inc()
            inst["tokens"].inc(rec.tokens)

    def sample(self, t: float) -> dict:
        """Snapshot per-class attainment at harness time ``t``."""
        point = {"t": t, "classes": {}}
        for name, inst in self._inst.items():
            total = inst["total"].value
            point["classes"][name] = {
                "total": total,
                "compliant": inst["compliant"].value,
                "attainment": inst["compliant"].value / total if total else 1.0,
            }
        self.samples.append(point)
        return point

    # -- read ----------------------------------------------------------
    def live_attainment(self, name: str) -> float:
        inst = self._inst.get(name)
        if inst is None or not inst["total"].value:
            return 1.0
        return inst["compliant"].value / inst["total"].value

    def registry(self, name: str) -> MetricsRegistry | None:
        return self._regs.get(name)

    def merged(self) -> MetricsRegistry:
        """All classes folded into one fleet-style registry."""
        return MetricsRegistry.merge(
            list(self._regs.values()), namespace=self.namespace,
            labels={"aggregate": "all_classes"},
        )

    def to_prometheus(self) -> str:
        """Per-class expositions concatenated (``class`` label varies)."""
        return "".join(reg.to_prometheus()
                       for _, reg in sorted(self._regs.items()))


# ----------------------------------------------------------------------
# Saturation sweep
# ----------------------------------------------------------------------
def find_knee(run_at_rate, rate_lo: float, rate_hi: float, *,
              iters: int = 6, predicate=None) -> dict:
    """Binary-search the max arrival rate that still meets the spec.

    ``run_at_rate(rate)`` runs the workload at that offered rate and
    returns an :class:`SLOReport` (or anything ``predicate`` accepts;
    the default predicate is ``report.ok``).  The bracket endpoints are
    probed first: if even ``rate_lo`` fails the knee is reported below
    the bracket (``knee = 0.0``), if ``rate_hi`` passes the knee is at
    least ``rate_hi`` (``saturated = False`` — widen the bracket for a
    tighter answer).  Returns ``{"knee_rate", "saturated", "probes"}``
    where ``probes`` is the full ``(rate, ok, attainment, goodput)``
    curve, cheapest-first evidence for the saturation plot.
    """
    if not 0 < rate_lo < rate_hi:
        raise ValueError(
            f"need 0 < rate_lo < rate_hi, got [{rate_lo}, {rate_hi}]"
        )
    if predicate is None:
        predicate = lambda report: report.ok

    probes = []

    def probe(rate: float) -> bool:
        report = run_at_rate(rate)
        ok = bool(predicate(report))
        entry = {"rate": rate, "ok": ok}
        if isinstance(report, SLOReport):
            entry["attainment"] = report.attainment
            entry["goodput_tokens_per_s"] = report.goodput_tokens_per_s
        probes.append(entry)
        return ok

    if not probe(rate_lo):
        return {"knee_rate": 0.0, "saturated": True, "probes": probes}
    if probe(rate_hi):
        return {"knee_rate": rate_hi, "saturated": False, "probes": probes}
    lo, hi = rate_lo, rate_hi       # invariant: lo passes, hi fails
    for _ in range(iters):
        mid = 0.5 * (lo + hi)
        if probe(mid):
            lo = mid
        else:
            hi = mid
    return {"knee_rate": lo, "saturated": True, "probes": probes}
