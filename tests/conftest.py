"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.model.zoo import get_model

# Every serving engine built under the test suite runs its invariant
# checker (pool refcounts, arena slot accounting, lane bookkeeping)
# after every tick — resource-hygiene bugs fail loudly at the tick that
# introduced them, not as a flaky assertion three suites later.
os.environ.setdefault("REPRO_SERVE_STRICT", "1")


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def unit_model():
    """A briefly-trained tiny model, cached in artifacts/ across runs."""
    model, corpus = get_model("unit-test")
    return model, corpus


@pytest.fixture(scope="session")
def unit_model_plain():
    """Same model without outlier injection."""
    model, corpus = get_model("unit-test", outliers=False)
    return model, corpus
