"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.model.zoo import get_model


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def unit_model():
    """A briefly-trained tiny model, cached in artifacts/ across runs."""
    model, corpus = get_model("unit-test")
    return model, corpus


@pytest.fixture(scope="session")
def unit_model_plain():
    """Same model without outlier injection."""
    model, corpus = get_model("unit-test", outliers=False)
    return model, corpus
