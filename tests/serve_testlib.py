"""Shared helpers for the serving test suites.

The cancel, fault, and timeout suites all end on the same question: did
the engine give *everything* back?  :func:`assert_storage_baseline` is
that check, factored once — every pool block free (none leaked to a
quarantined or timed-out sequence), every arena slot returned, and the
engine's own :meth:`~repro.serve.engine.GenerationEngine.
check_invariants` clean — so a storage leak fails identically no matter
which suite exposes it.
"""

import numpy as np


def assert_storage_baseline(engine) -> None:
    """Assert the engine holds no request storage and its books balance."""
    if engine.pool is not None:
        assert engine.pool.blocks_in_use == 0, (
            f"{engine.pool.blocks_in_use} pool blocks still referenced "
            "after all requests finished"
        )
        assert engine.pool.blocks_available == engine.pool.num_blocks, (
            f"pool not back to baseline: {engine.pool.blocks_available} of "
            f"{engine.pool.num_blocks} blocks available"
        )
    else:
        assert engine.arena.slots_in_use == 0, (
            f"{engine.arena.slots_in_use} arena slots still leased "
            "after all requests finished"
        )
    engine.check_invariants()


def single_stream(model, cache_factory, prompt, n_tokens):
    """The pre-serving greedy loop — the engine-output reference."""
    caches = [cache_factory() for _ in range(model.config.n_layers)]
    logits = model.prefill(prompt, caches)
    out, pos, token = [], len(prompt), int(np.argmax(logits))
    for _ in range(n_tokens):
        out.append(token)
        logits = model.decode_step(token, caches, pos)
        token = int(np.argmax(logits))
        pos += 1
    return out
