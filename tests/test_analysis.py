"""Tests for distribution analysis and reporting helpers."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    cdf_curves,
    diversity,
    granularity_report,
    ks_distance,
)
from repro.analysis.features import FEATURE_TABLE, feature_rows
from repro.analysis.reporting import fmt, render_series, render_table


class TestCdf:
    def test_cdf_monotone(self, rng):
        grid, curves = cdf_curves([rng.normal(size=500)])
        assert np.all(np.diff(curves[0]) >= 0)
        assert curves[0][-1] == pytest.approx(1.0)

    def test_ks_identical_zero(self, rng):
        x = rng.normal(size=300)
        _, curves = cdf_curves([x, x.copy()])
        assert ks_distance(curves[0], curves[1]) == 0.0

    def test_ks_different_positive(self, rng):
        _, curves = cdf_curves([rng.normal(size=300), rng.uniform(-1, 1, 300)])
        assert ks_distance(curves[0], curves[1]) > 0.05


class TestDiversity:
    def test_identical_units_zero(self, rng):
        x = rng.normal(size=100)
        assert diversity([x, x.copy(), x.copy()]) == 0.0

    def test_group_diversity_exceeds_tensor(self, rng):
        # The paper's Fig. 3 finding, reconstructed synthetically:
        # tensors mix group shapes (so they look alike); groups differ.
        def make_tensor():
            rows = []
            for i in range(32):
                if i % 2 == 0:
                    rows.append(rng.uniform(-1, 1, size=128))
                else:
                    rows.append(rng.laplace(scale=0.05, size=128))
            return np.stack(rows)

        tensors = {f"t{i}": make_tensor() for i in range(8)}
        rep = granularity_report(tensors, group_size=64, n_units=12)
        assert rep["group"] > rep["tensor"]

    def test_single_unit_zero(self, rng):
        assert diversity([rng.normal(size=50)]) == 0.0


class TestReporting:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(1.234) == "1.23"
        assert fmt(float("nan")) == "nan"
        assert fmt("x") == "x"

    def test_render_table(self):
        out = render_table(["a", "bb"], [[1, 2.5], [3, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        s = render_series("mant", [2048, 8192], [1.0, 2.0])
        assert "2048=1.00" in s


class TestFeatures:
    def test_rows_match_architectures(self):
        rows = feature_rows()
        assert len(rows) == len(FEATURE_TABLE) == 6
        assert rows[-1][0] == "MANT"
        # MANT's claims in Tbl. I: computes on INT, high adaptivity.
        assert rows[-1][3] == "INT" and rows[-1][-1] == "High"
