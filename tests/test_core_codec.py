"""Tests for the group-wise MANT codec (paper Eq. 4, Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import INT_A, MantCodec, MantEncoded
from repro.core.mant import MantGrid


def uniform_a(rows, n_groups, a=17.0):
    return np.full((rows, n_groups), a)


class TestEncodeDecode:
    def test_fig7_worked_example(self):
        # Paper Fig. 7: weights [0.33, 0.54, -0.2, 0.97] with a = 17.
        # s_W = 0.97 / 247; scaled = [84.03, 137.51, -50.93, 247.01];
        # nearest grid points = [84, 117, -59, 247] = mags [4, 5, 3, 7].
        codec = MantCodec(bits=4, group_size=4, fp16_scales=False)
        w = np.array([[0.33, 0.54, -0.2, 0.97]])
        enc = codec.encode(w, uniform_a(1, 1))
        assert list(enc.magnitude[0, 0]) == [4, 5, 3, 7]
        assert list(enc.sign[0, 0]) == [1, 1, -1, 1]
        assert enc.scale[0, 0] == pytest.approx(0.97 / 247)

    def test_roundtrip_error_bounded(self, rng):
        codec = MantCodec(group_size=64, fp16_scales=False)
        w = rng.normal(size=(8, 128))
        a = uniform_a(8, 2, 60.0)
        w_hat = codec.qdq(w, a)
        # Error bounded by half the largest normalised gap times absmax.
        grid = MantGrid(60)
        gap = np.max(np.diff(grid.grid)) / grid.grid_max
        amax = np.max(np.abs(w))
        assert np.max(np.abs(w - w_hat)) <= gap * amax / 2 + 1e-9

    def test_int_groups_decode_on_int_grid(self, rng):
        codec = MantCodec(group_size=32, fp16_scales=False)
        w = rng.normal(size=(2, 32))
        a = np.full((2, 1), INT_A)
        enc = codec.encode(w, a)
        deq = codec.decode(enc)
        scaled = deq / enc.scale[..., None].reshape(2, 1)
        # Every dequantized value / scale must be an integer in [-7, 7].
        assert np.allclose(scaled, np.rint(scaled))
        assert np.max(np.abs(scaled)) <= 7

    def test_qdq_idempotent(self, rng):
        codec = MantCodec(group_size=64, fp16_scales=False)
        w = rng.normal(size=(4, 128))
        a = uniform_a(4, 2, 17.0)
        once = codec.qdq(w, a)
        twice = codec.qdq(once, a)
        assert np.allclose(once, twice)

    def test_mixed_a_per_group(self, rng):
        codec = MantCodec(group_size=16, fp16_scales=False)
        w = rng.normal(size=(1, 32))
        a = np.array([[0.0, INT_A]])
        enc = codec.encode(w, a)
        assert enc.a_coeff[0, 0] == 0.0 and enc.a_coeff[0, 1] == INT_A
        deq = codec.decode(enc)
        assert deq.shape == (1, 32)

    def test_padding_handled(self, rng):
        codec = MantCodec(group_size=64, fp16_scales=False)
        w = rng.normal(size=(2, 100))
        a = uniform_a(2, 2, 17.0)
        w_hat = codec.qdq(w, a)
        assert w_hat.shape == (2, 100)

    def test_fp16_scale_rounding(self, rng):
        codec = MantCodec(group_size=64, fp16_scales=True)
        w = rng.normal(size=(2, 64))
        enc = codec.encode(w, uniform_a(2, 1))
        assert np.array_equal(
            enc.scale, enc.scale.astype(np.float16).astype(np.float64)
        )

    def test_shape_validation(self):
        codec = MantCodec(group_size=64)
        with pytest.raises(ValueError):
            codec.encode(np.zeros((2, 64, 3)), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            codec.encode(np.zeros((2, 64)), np.zeros((3, 1)))

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            MantCodec(bits=8)


class TestMetadataAccounting:
    def test_bits_per_element(self, rng):
        codec = MantCodec(group_size=64, fp16_scales=False)
        enc = codec.encode(rng.normal(size=(1, 64)), uniform_a(1, 1))
        assert enc.bits_per_element() == pytest.approx(4 + 24 / 64)
        assert enc.metadata_bits_per_element() == pytest.approx(0.375)


@given(
    st.integers(1, 6),
    st.integers(8, 80),
    st.sampled_from([0.0, 5.0, 17.0, 60.0, 120.0, float(INT_A)]),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_never_increases_groupwise_absmax(rows, cols, a):
    rng = np.random.default_rng(int(rows * 997 + cols * 31 + a))
    codec = MantCodec(group_size=16, fp16_scales=False)
    w = rng.normal(size=(rows, cols))
    n_groups = -(-cols // 16)
    enc = codec.encode(w, np.full((rows, n_groups), a))
    w_hat = codec.decode(enc)
    assert w_hat.shape == w.shape
    # Absmax scaling can never produce values beyond the group max.
    assert np.max(np.abs(w_hat)) <= np.max(np.abs(w)) * (1 + 1e-3) + 1e-9
