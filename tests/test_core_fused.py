"""Tests for decode-compute fusion (paper Eq. 5).

The headline invariant: the fused integer kernel (MAC lane + SAC lane)
produces *exactly* the same result as dequantize-then-matmul.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.codec import INT_A, MantCodec
from repro.core.fused import (
    fused_group_gemm,
    integer_partial_sums,
    quantize_activations_int8,
    reference_group_gemm,
)
from repro.core.selection import MseSearchSelector


def make_encoded(rng, n=8, k=128, group=64, a_values=(0.0, 17.0, 60.0, INT_A)):
    codec = MantCodec(group_size=group, fp16_scales=False)
    w = rng.normal(size=(n, k))
    a = rng.choice(a_values, size=(n, k // group))
    return codec.encode(w, a)


class TestActivationQuantization:
    def test_codes_in_int8_range(self, rng):
        xq = quantize_activations_int8(rng.normal(size=(4, 128)) * 10, 64)
        assert xq.codes.max() <= 127 and xq.codes.min() >= -127

    def test_dequantize_shape(self, rng):
        x = rng.normal(size=(4, 100))
        xq = quantize_activations_int8(x, 64)
        assert xq.dequantize().shape == x.shape

    def test_dequantize_error_small(self, rng):
        x = rng.normal(size=(4, 128))
        xq = quantize_activations_int8(x, 64, fp16_scales=False)
        err = np.abs(xq.dequantize() - x)
        assert np.max(err) <= np.max(np.abs(x)) / 127 + 1e-9


class TestFusedEquality:
    def test_fused_equals_reference(self, rng):
        enc = make_encoded(rng)
        xq = quantize_activations_int8(rng.normal(size=(4, 128)), 64)
        fused = fused_group_gemm(xq, enc)
        ref = reference_group_gemm(xq, enc)
        np.testing.assert_allclose(fused, ref, rtol=1e-10, atol=1e-10)

    def test_fused_with_real_selection(self, rng):
        sel = MseSearchSelector(group_size=64)
        w = rng.normal(size=(16, 256))
        enc = sel.select_and_encode(w)
        xq = quantize_activations_int8(rng.normal(size=(3, 256)), 64)
        np.testing.assert_allclose(
            fused_group_gemm(xq, enc), reference_group_gemm(xq, enc),
            rtol=1e-10, atol=1e-10,
        )

    def test_partial_sums_are_integers(self, rng):
        enc = make_encoded(rng)
        xq = quantize_activations_int8(rng.normal(size=(2, 128)), 64)
        p1, p2 = integer_partial_sums(xq, enc)
        assert p1.dtype == np.int64 and p2.dtype == np.int64

    def test_partial_sum_bounds(self, rng):
        # |psum2| <= group * 127 * 128 — no int64 overflow headroom issue.
        enc = make_encoded(rng)
        xq = quantize_activations_int8(rng.normal(size=(2, 128)) * 100, 64)
        _, p2 = integer_partial_sums(xq, enc)
        assert np.max(np.abs(p2)) <= 64 * 127 * 128

    def test_group_size_mismatch_rejected(self, rng):
        enc = make_encoded(rng, group=64)
        xq = quantize_activations_int8(rng.normal(size=(2, 128)), 32)
        with pytest.raises(ValueError):
            fused_group_gemm(xq, enc)

    def test_k_mismatch_rejected(self, rng):
        enc = make_encoded(rng, k=128)
        xq = quantize_activations_int8(rng.normal(size=(2, 192)), 64)
        with pytest.raises(ValueError):
            fused_group_gemm(xq, enc)


@given(
    st.integers(1, 4),
    st.integers(1, 6),
    st.integers(1, 3),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_fused_reference_property(m, n, n_groups, seed):
    """Eq. 5 holds for any shapes and any per-group coefficient mix."""
    rng = np.random.default_rng(seed)
    group = 16
    k = n_groups * group
    codec = MantCodec(group_size=group, fp16_scales=False)
    w = rng.normal(size=(n, k)) * rng.uniform(0.1, 10)
    a = rng.choice([0.0, 5.0, 17.0, 40.0, 90.0, 120.0, INT_A], size=(n, n_groups))
    enc = codec.encode(w, a)
    xq = quantize_activations_int8(rng.normal(size=(m, k)), group, fp16_scales=False)
    np.testing.assert_allclose(
        fused_group_gemm(xq, enc),
        reference_group_gemm(xq, enc),
        rtol=1e-9,
        atol=1e-9,
    )
