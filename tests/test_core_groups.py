"""Tests for group partitioning utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.groups import from_groups, num_groups, to_groups


class TestNumGroups:
    def test_exact_division(self):
        assert num_groups(128, 64) == 2

    def test_ceiling(self):
        assert num_groups(129, 64) == 3

    def test_single(self):
        assert num_groups(1, 64) == 1


class TestToFromGroups:
    def test_roundtrip_exact(self, rng):
        x = rng.normal(size=(3, 128))
        view = to_groups(x, 64)
        assert view.groups.shape == (3, 2, 64)
        assert np.array_equal(from_groups(view), x)

    def test_roundtrip_with_padding(self, rng):
        x = rng.normal(size=(2, 100))
        view = to_groups(x, 64)
        assert view.pad == 28
        assert view.groups.shape == (2, 2, 64)
        assert np.array_equal(from_groups(view), x)

    def test_padding_is_zero(self, rng):
        x = rng.normal(size=(2, 100))
        view = to_groups(x, 64)
        assert np.all(view.groups[..., 1, 36:] == 0)

    def test_axis_zero(self, rng):
        x = rng.normal(size=(6, 5))
        view = to_groups(x, 3, axis=0)
        assert view.groups.shape == (5, 2, 3)
        assert np.array_equal(from_groups(view), x)

    def test_substituted_groups(self, rng):
        x = rng.normal(size=(2, 8))
        view = to_groups(x, 4)
        doubled = from_groups(view, view.groups * 2)
        assert np.allclose(doubled, x * 2)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            to_groups(np.zeros(4), 0)

    @given(
        st.integers(1, 5),
        st.integers(1, 100),
        st.integers(1, 70),
    )
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, rows, length, group):
        rng = np.random.default_rng(rows * 1000 + length * 7 + group)
        x = rng.normal(size=(rows, length))
        view = to_groups(x, group)
        assert np.array_equal(from_groups(view), x)
        assert view.groups.shape[-1] == group
        assert view.groups.shape[-2] == num_groups(length, group)
