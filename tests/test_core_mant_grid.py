"""Tests for the MANT grid (paper Eq. 2, Fig. 5-7)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mant import (
    MANT_A_MAX,
    MANT_WEIGHT_A_SET,
    MantGrid,
    approximate_datatype,
    mant_positive_grid,
)
from repro.datatypes import fp4_e2m1, nf4, pot4


class TestGridConstruction:
    def test_fig7_values_at_a17(self):
        # The paper's Fig. 7 worked example: a = 17 gives the positive
        # grid {1, 19, 38, 59, 84, 117, 166, 247}.
        g = MantGrid(17)
        assert list(g.positive_grid) == [1, 19, 38, 59, 84, 117, 166, 247]

    def test_a0_equals_pot(self):
        g = MantGrid(0)
        pos = pot4.grid[pot4.grid > 0]
        assert np.allclose(g.positive_grid, pos)

    def test_grid_has_no_zero(self):
        assert not MantGrid(17).has_zero

    def test_grid_is_symmetric(self):
        g = MantGrid(40).grid
        assert np.allclose(g, -g[::-1])

    def test_positive_grid_strictly_increasing(self):
        for a in MANT_WEIGHT_A_SET:
            assert np.all(np.diff(MantGrid(a).positive_grid) > 0)

    def test_grid_max(self):
        # 7a + 2^7 (Sec. IV-A normalisation constant)
        assert MantGrid(17).grid_max == 7 * 17 + 128

    def test_a_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mant_positive_grid(-1)
        with pytest.raises(ValueError):
            mant_positive_grid(MANT_A_MAX + 1)

    @given(st.integers(0, MANT_A_MAX), st.sampled_from([2, 3, 4]))
    @settings(max_examples=50, deadline=None)
    def test_level_count(self, a, bits):
        g = MantGrid(float(a), bits)
        assert g.num_levels == 2**bits


class TestSignMagnitudeCodec:
    def test_roundtrip(self, rng):
        g = MantGrid(30)
        x = rng.uniform(-g.grid_max, g.grid_max, size=500)
        s, m = g.encode_sign_magnitude(x)
        back = g.decode_sign_magnitude(s, m)
        # Every decoded value must be a grid point and the nearest one.
        ref = g.decode(g.encode(x))
        assert np.allclose(back, ref)

    def test_magnitude_range(self, rng):
        g = MantGrid(17)
        _, m = g.encode_sign_magnitude(rng.normal(size=100) * 300)
        assert m.max() <= 7 and m.min() >= 0

    def test_signs_are_pm_one(self, rng):
        g = MantGrid(17)
        s, _ = g.encode_sign_magnitude(rng.normal(size=100))
        assert set(np.unique(s)) <= {-1, 1}


class TestVarianceMonotonicity:
    def test_variance_increases_with_a(self):
        variances = [MantGrid(a).normalized_variance() for a in (0, 10, 30, 60, 100, 128)]
        assert all(b > a for a, b in zip(variances, variances[1:]))


class TestDatatypeApproximation:
    def test_float_matches_near_17(self):
        a, err = approximate_datatype(fp4_e2m1)
        assert 10 <= a <= 25, f"fp4 approx a={a}"
        assert err < 0.08

    def test_nf_matches_near_25(self):
        a, err = approximate_datatype(nf4)
        assert 17 <= a <= 35, f"nf4 approx a={a}"

    def test_pot_matches_a0(self):
        a, err = approximate_datatype(pot4)
        assert a == 0 and err < 1e-12

    def test_smooth_transition(self):
        # Fig. 6: normalised grids change continuously in a.
        prev = MantGrid(0).normalized_grid()
        for a in range(1, 128, 8):
            cur = MantGrid(a).normalized_grid()
            assert np.max(np.abs(cur - prev)) < 0.25
            prev = cur
